#!/usr/bin/env python
"""End-to-end parallel data-transfer experiment (the paper's Section VI-E).

Compresses RTM wavefield snapshots in parallel worker processes (the paper's
embarrassingly parallel slice decomposition), then projects the measured
per-slice costs onto the paper's cluster scale — 3600 slices, 225-1800 cores,
a 461.75 MB/s Globus link — and reports the end-to-end gain of SZ3+QP over
vanilla SZ3.

Run:  python examples/parallel_transfer.py [workers]
"""
import os
import sys

import numpy as np

import repro
from repro.analysis import print_table
from repro.core import QPConfig
from repro.transfer import (
    PAPER_CORE_COUNTS,
    compare_strong_scaling,
    gain_vs_bandwidth,
    measure_slices,
    vanilla_transfer_seconds,
)


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else min(4, os.cpu_count() or 1)
    data = repro.generate("rtm", shape=(8, 48, 48, 28))
    slices = [np.ascontiguousarray(data[i]) for i in range(data.shape[0])]
    value_range = float(data.max() - data.min())
    eb = 1e-4 * value_range
    print(f"RTM snapshots: {len(slices)} slices of {slices[0].shape}, "
          f"eb={eb:.3g}, {workers} worker processes\n")

    base = measure_slices(slices, "sz3", eb, workers=workers, predictor="interp")
    qp = measure_slices(slices, "sz3", eb, qp=QPConfig(), workers=workers,
                        predictor="interp")
    print(f"SZ3    : CR={base.cr:6.2f}")
    print(f"SZ3+QP : CR={qp.cr:6.2f}\n")

    # Python per-core throughput is ~100x below the paper's C++ codes, which
    # distorts the compute/transfer balance.  Rescale the measured times so
    # the base per-core compression throughput matches the paper's SZ3
    # (~190 MB/s) while keeping QP's *measured relative overhead* — the
    # substitution DESIGN.md documents for throughput experiments.
    paper_mbs = 190.0
    factor = (base.raw_bytes / 1e6 / base.compress_seconds) / paper_mbs
    for m in (base, qp):
        m.compress_seconds *= factor
        m.decompress_seconds *= factor

    cmp = compare_strong_scaling(base, qp, scale_to_slices=3600)
    rows = []
    for b, q, gain in zip(cmp.base, cmp.qp, cmp.gains()):
        rows.append({
            "cores": b.cores,
            "base total (s)": round(b.total, 2),
            "+QP total (s)": round(q.total, 2),
            "end-to-end gain": f"{gain:.3f}x",
        })
    print_table(rows, "Strong scaling, paper link (461.75 MB/s), 3600 slices, "
                      "paper-grade compute throughput")

    secs = vanilla_transfer_seconds(base.raw_bytes, scale=3600 / base.n_slices)
    print(f"vanilla (uncompressed) transfer of the scaled dataset: {secs:.0f}s\n")

    pairs = gain_vs_bandwidth(base, qp, cores=PAPER_CORE_COUNTS[-1],
                              scale_to_slices=3600)
    for mult, gain in pairs:
        print(f"link bandwidth x{mult:g}: end-to-end gain {gain:.3f}x")


if __name__ == "__main__":
    main()
