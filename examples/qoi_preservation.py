#!/usr/bin/env python
"""Quantity-of-interest preserving compression (Table I's QoI column).

Compresses an S3D-like temperature field so that derived quantities stay
within tolerance: the squared field (radiative source terms ~ T^2... T^4),
the logarithm (Arrhenius exponents), and a reaction-front isoline — using
point-wise bounds derived per block, with QP enabled on the base compressor.

Run:  python examples/qoi_preservation.py
"""
import numpy as np

import repro
from repro.core import QPConfig
from repro.qoi import IsolineQoI, LogQoI, QoIPreservingCompressor, SquareQoI


def main() -> None:
    data = repro.generate("s3d", "temperature", shape=(48, 48, 48))
    print(f"S3D temperature {data.shape}, range [{data.min():.0f}, {data.max():.0f}] K\n")

    # 1. preserve T^2 to 1e3 K^2 (relative ~3e-4 of its range)
    qoi = SquareQoI()
    comp = QoIPreservingCompressor("qoz", qoi, tau=1e3, block_side=24, qp=QPConfig())
    blob = comp.compress(data)
    out = comp.decompress(blob)
    err = np.abs(data.astype(np.float64) ** 2 - out.astype(np.float64) ** 2).max()
    print(f"SquareQoI : CR={data.nbytes / len(blob):6.2f}  max|T^2 err|={err:.1f} (tau=1000)")

    # 2. preserve ln(T) to 1e-4 (multiplicative 0.01% accuracy)
    qoi = LogQoI()
    comp = QoIPreservingCompressor("qoz", qoi, tau=1e-4, block_side=24, qp=QPConfig())
    blob = comp.compress(data)
    out = comp.decompress(blob)
    err = np.abs(np.log(data.astype(np.float64)) - np.log(out.astype(np.float64))).max()
    print(f"LogQoI    : CR={data.nbytes / len(blob):6.2f}  max|ln T err|={err:.2e} (tau=1e-4)")

    # 3. preserve the 1000 K flame-front isosurface
    qoi = IsolineQoI(level=1000.0)
    comp = QoIPreservingCompressor("qoz", qoi, tau=5.0, block_side=24, qp=QPConfig())
    blob = comp.compress(data)
    out = comp.decompress(blob)
    ok = qoi.check(data, out, 5.0)
    frac = ((data > 1000) != (out > 1000)).mean()
    print(f"IsolineQoI: CR={data.nbytes / len(blob):6.2f}  front preserved={ok} "
          f"(side flips, all inside the tau band: {100 * frac:.4f}%)")

    print("\nEach mode derives per-block point-wise bounds from the QoI"
          " tolerance,\nso smooth regions compress aggressively while the QoI"
          " guarantee holds everywhere.")


if __name__ == "__main__":
    main()
