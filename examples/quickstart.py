#!/usr/bin/env python
"""Quickstart: compress a scientific field with SZ3, then switch on QP.

Demonstrates the one-line win of the paper: QP improves the compression
ratio while the decompressed data stays bit-identical.

Run:  python examples/quickstart.py
"""
import numpy as np

import repro
from repro.core import QPConfig


def main() -> None:
    # A SegSalt-like pressure wavefield (synthetic stand-in; see DESIGN.md)
    data = repro.generate("segsalt", "Pressure2000")
    value_range = float(data.max() - data.min())
    eb = 1e-4 * value_range  # value-range-relative 1e-4 bound
    print(f"data: segsalt/Pressure2000 {data.shape} {data.dtype}, eb={eb:.3g}\n")

    # vanilla SZ3.  predictor="interp" pins the interpolation pipeline; with
    # the default "auto", SZ3 may switch to its Lorenzo predictor at small
    # bounds (the paper's Section VI-B observation), where QP is inactive.
    base = repro.SZ3(eb, predictor="interp")
    blob = base.compress(data)
    out = base.decompress(blob)
    print(f"SZ3      : CR={data.nbytes / len(blob):7.2f}  "
          f"PSNR={repro.psnr(data, out):6.2f} dB  "
          f"max|err|={np.abs(out - data).max():.3g}")

    # SZ3 + QP (the paper's contribution; one constructor argument)
    plus = repro.SZ3(eb, qp=QPConfig(), predictor="interp")
    blob_qp = plus.compress(data)
    out_qp = plus.decompress(blob_qp)
    print(f"SZ3+QP   : CR={data.nbytes / len(blob_qp):7.2f}  "
          f"PSNR={repro.psnr(data, out_qp):6.2f} dB  "
          f"max|err|={np.abs(out_qp - data).max():.3g}")

    gain = len(blob) / len(blob_qp) - 1
    print(f"\nQP compression-ratio gain: {100 * gain:.1f}%")
    print(f"decompressed data identical: {np.array_equal(out, out_qp)}")


if __name__ == "__main__":
    main()
