#!/usr/bin/env python
"""Characterize quantization-index clustering (the paper's Section IV).

Reproduces the analysis pipeline behind Figures 3-5: extract the quantization
index volume from each interpolation-based compressor, measure per-slice and
regional entropy, and show how QP collapses the clustered regions.

Run:  python examples/characterize_indices.py
"""
import numpy as np

import repro
from repro.analysis import print_table
from repro.compressors import CompressionState
from repro.core import QPConfig, clustering_stats, regional_entropy, shannon_entropy, slice_entropy


def main() -> None:
    data = repro.generate("segsalt", "Pressure2000")
    value_range = float(data.max() - data.min())
    eb = 1e-4 * value_range
    print(f"SegSalt Pressure2000 {data.shape}, eb={eb:.3g}\n")

    rows = []
    for name in repro.INTERP_COMPRESSORS:
        st = CompressionState()
        comp = repro.get_compressor(name, eb, qp=QPConfig(), predictor="interp") \
            if name == "sz3" else repro.get_compressor(name, eb, qp=QPConfig())
        comp.compress(data, state=st)
        q = st.index_volume
        qp = st.extras["index_volume_qp"]
        cs = clustering_stats(q)
        rows.append({
            "compressor": name.upper(),
            "H(Q)": round(shannon_entropy(q), 3),
            "H(Q') after QP": round(shannon_entropy(qp), 3),
            "nonzero frac": round(cs.nonzero_fraction, 3),
            "same-sign nbrs": round(cs.same_sign_neighbour, 3),
        })
    print_table(rows, "Index entropy before/after QP (Fig. 5 analysis)")

    # per-slice entropy along the three planes (Fig. 4)
    st = CompressionState()
    repro.SZ3(eb, predictor="interp").compress(data, state=st)
    q = st.index_volume
    for plane in ("xy", "xz", "yz"):
        ent = slice_entropy(q, plane, stride=2)
        print(f"plane {plane}: slice entropy min={ent.min():.3f} "
              f"median={np.median(ent):.3f} max={ent.max():.3f}")

    # a zoomed region (Fig. 3 style)
    mid = data.shape[0] // 2
    r = regional_entropy(q, "xy", mid, (20, 80), (20, 80))
    print(f"\nregional entropy of central xy window: {r:.3f} bits/index")


if __name__ == "__main__":
    main()
