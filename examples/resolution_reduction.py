#!/usr/bin/env python
"""MGARD-style resolution reduction for multi-fidelity analysis.

Compresses a combustion temperature field once, then reconstructs it at
full, half, and quarter resolution from the same blob — MGARD's signature
feature (Table I), used to accelerate downstream analysis.

Run:  python examples/resolution_reduction.py
"""
import numpy as np

import repro
from repro.core import QPConfig


def main() -> None:
    data = repro.generate("s3d", "temperature")
    value_range = float(data.max() - data.min())
    eb = 1e-3 * value_range
    comp = repro.MGARD(eb, qp=QPConfig())
    blob = comp.compress(data)
    print(f"S3D temperature {data.shape}, eb={eb:.3g}, "
          f"CR={data.nbytes / len(blob):.2f}\n")

    full = comp.decompress(blob)
    print(f"full resolution   : {full.shape}, "
          f"max|err|={np.abs(full - data).max():.3g}")

    for level in (1, 2):
        sub = comp.decompress_resolution(blob, level)
        s = 1 << level
        ref = data[::s, ::s, ::s]
        print(f"level {level} (stride {s}): {sub.shape}, "
              f"max|err| vs subsampled original={np.abs(sub - ref).max():.3g}")

    print("\nCoarse grids decode without touching the fine levels' indices —")
    print("useful when a quick-look analysis only needs reduced resolution.")


if __name__ == "__main__":
    main()
