#!/usr/bin/env python
"""Regenerate Figure 3/5-style quantization-index images.

Compresses SegSalt Pressure2000 with each interpolation-based compressor,
extracts the index volume, and writes PPM images of the paper's three
region slices — before and after QP — plus a terminal heatmap preview.

Run:  python examples/visualize_indices.py [output_dir]
"""
import pathlib
import sys

import repro
from repro.analysis.visualize import ascii_heatmap, save_index_slice
from repro.compressors import CompressionState
from repro.core import QPConfig, plane_slice


def main() -> None:
    outdir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "index_images")
    outdir.mkdir(exist_ok=True)
    data = repro.generate("segsalt", "Pressure2000")
    eb = 1e-4 * float(data.max() - data.min())

    for name in ("mgard", "sz3", "qoz", "hpez"):
        kwargs = {"predictor": "interp"} if name == "sz3" else {}
        st = CompressionState()
        repro.get_compressor(name, eb, qp=QPConfig(), **kwargs).compress(
            data, state=st
        )
        mid = data.shape[0] // 2
        for tag, vol in (("orig", st.index_volume),
                         ("qp", st.extras["index_volume_qp"])):
            sl = plane_slice(vol, "xy", mid)
            path = save_index_slice(outdir / f"{name}_{tag}_xy.ppm", sl,
                                    value_range=4)
            print(f"wrote {path}")
        # terminal preview of the QP effect (|index| magnitudes)
        print(f"\n{name.upper()} |Q| on the xy mid-slice (left) vs |Q'| (right):")
        a = ascii_heatmap(plane_slice(st.index_volume, "xy", mid), -4, 4, width=34)
        b = ascii_heatmap(plane_slice(st.extras["index_volume_qp"], "xy", mid),
                          -4, 4, width=34)
        for la, lb in zip(a.splitlines()[::4], b.splitlines()[::4]):
            print(f"{la}   |   {lb}")
        print()


if __name__ == "__main__":
    main()
