#!/usr/bin/env python
"""Rate-distortion study across compressors (Figures 10-15 in miniature).

Sweeps error bounds on a turbulence field, comparing the four
interpolation-based compressors with and without QP plus the three
transform-based comparators — the full Table IV cast.

Run:  python examples/rate_distortion_sweep.py [dataset] [field]
"""
import sys

import repro
from repro.analysis import max_cr_gain, print_table, qp_comparison, rd_sweep


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "miranda"
    field = sys.argv[2] if len(sys.argv) > 2 else None
    data = repro.generate(dataset, field)
    print(f"dataset={dataset} field={field or repro.DATASETS[dataset].fields[0]} "
          f"shape={data.shape}\n")

    bounds = (1e-2, 1e-3, 1e-4)
    rows = []
    for name in repro.INTERP_COMPRESSORS:
        kwargs = {"predictor": "interp"} if name == "sz3" else {}
        points = qp_comparison(name, data, rel_bounds=bounds, **kwargs)
        for p in points:
            rows.append({
                "compressor": name.upper(),
                "rel eb": p.rel_bound,
                "PSNR": round(p.base.psnr, 2),
                "CR base": round(p.base.cr, 2),
                "CR +QP": round(p.qp.cr, 2),
                "QP gain %": round(100 * p.cr_gain, 1),
            })
        gain, at = max_cr_gain(points)
        print(f"{name.upper():6s}: max QP gain {100 * gain:.1f}% at PSNR {at:.1f}")
    print()
    print_table(rows, "Rate-distortion with and without QP")

    rows = []
    for name in ("zfp", "tthresh", "sperr"):
        for r in rd_sweep(name, data, rel_bounds=bounds):
            rows.append(r.row())
    print_table(rows, "Transform-based comparators")


if __name__ == "__main__":
    main()
