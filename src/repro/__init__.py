"""repro — reproduction of "Improving the Efficiency of Interpolation-based
Scientific Data Compressors with Adaptive Quantization Index Prediction"
(IPDPS 2025).

Public API
----------
The stable surface is exactly ``__all__`` below — seven names:

>>> import repro
>>> blob = repro.compress(data, compressor="sz3", error_bound=1e-3)
>>> out = repro.decompress(blob)
>>> with_qp = repro.compress(data, adaptive=repro.AdaptiveConfig())
>>> ar = repro.open_archive("results.rar1", create=True)
>>> repro.serve(port=9753)                      # blocking gateway

``Codec`` is the protocol every compressing object satisfies
(``compress(data, *, checksum=False, auto=False, adaptive=None)`` /
``decompress(blob)``), ``PipelineSpec`` the declarative stage-list
description of a compressor, and ``AdaptiveConfig`` the adaptive
quantization configuration from the paper.

Everything else importable from this module (``get_compressor``,
``generate``, ``ParallelCompressor``, ``TemporalCompressor``, the typed
error classes, ...) remains available for research workflows and
backwards compatibility but is private-by-convention: not part of the
frozen contract, documented in ``docs/api.md`` under "internal
surface".  The service layer lives in :mod:`repro.service`.
"""
from __future__ import annotations

from typing import Any

import numpy as np

from .analysis import max_cr_gain, qp_comparison, rd_sweep
from .compressors import (
    COMPRESSORS,
    HPEZ,
    INTERP_COMPRESSORS,
    MGARD,
    SZ3,
    Codec,
    CompressionState,
    QoZ,
    decompress_any,
    get_compressor,
    traits_table,
)
from .core import (
    AdaptiveConfig,
    QPConfig,
    clustering_stats,
    plane_slice,
    qp_forward,
    qp_inverse,
    regional_entropy,
    shannon_entropy,
    slice_entropy,
)
from .core.autotune import autotune_qp
from .datasets import DATASETS, generate, generate_all, table3_rows
from .errors import (
    CorruptArchiveError,
    CorruptBlobError,
    IntegrityError,
    ReproError,
    ServiceError,
    TransferError,
    TransferFaultError,
    TruncatedStreamError,
    VersionError,
)
from .metrics import EvalResult, evaluate, psnr
from .modes import PointwiseRelativeCompressor, relative_bound
from .parallel import ParallelCompressor
from .pipeline.spec import PipelineSpec
from .streaming import StreamResult, stream_compress, stream_decompress
from .temporal import TemporalCompressor

__version__ = "1.0.0"

#: the frozen public surface — everything else is private-by-convention
__all__ = [
    "AdaptiveConfig",
    "Codec",
    "PipelineSpec",
    "compress",
    "decompress",
    "open_archive",
    "serve",
    "__version__",
]


def compress(
    data: np.ndarray,
    *,
    compressor: str = "sz3",
    error_bound: float = 1e-3,
    checksum: bool = False,
    auto: bool = False,
    adaptive: Any = None,
    **kwargs: Any,
) -> bytes:
    """Compress an array to a self-describing blob in one call.

    Builds the named registry compressor (``repro.compressors``) with
    ``error_bound`` and any extra constructor ``kwargs`` (``qp=``, ...),
    then compresses with the uniform Codec knob set: ``checksum`` seals
    the container, ``auto`` runs the sampling auto-tuner, ``adaptive``
    applies adaptive quantization (an :class:`AdaptiveConfig` or its dict
    form) where the pipeline supports it.
    """
    return get_compressor(compressor, error_bound, **kwargs).compress(
        data, checksum=checksum, auto=auto, adaptive=adaptive
    )


def decompress(blob: bytes) -> np.ndarray:
    """Decompress any repro container back into its array.

    Dispatches on the container header: canonical/sealed blobs go
    through the registry, streamed ``RSTR`` containers (written by
    ``compress_stream`` or the service's oversized route) through the
    streaming decoder.  Raises the typed :mod:`repro.errors` family on
    corrupt input.
    """
    from .io.container import is_streamed_container

    if is_streamed_container(bytes(blob[:8])):
        return stream_decompress(blob)
    return decompress_any(blob)


def open_archive(path: Any, *, create: bool = False) -> Any:
    """Open (or create) a crash-safe ``RAR1`` archive at ``path``.

    Opening an existing archive replays its recovery protocol first
    (:meth:`~repro.io.container.Archive.recover`), so a crash-interrupted
    append never surfaces as a torn entry.  Returns the
    :class:`~repro.io.container.Archive`.
    """
    import os

    from .io.container import Archive

    if os.path.exists(os.fspath(path)):
        archive = Archive(path)
        archive.recover()
        return archive
    if not create:
        raise FileNotFoundError(
            f"archive {os.fspath(path)!r} does not exist (pass create=True)"
        )
    return Archive.create(path)


def serve(host: str = "127.0.0.1", port: int = 9753, *, config: Any = None) -> None:
    """Run the compression gateway over TCP until interrupted (blocking).

    ``config`` is an optional :class:`repro.service.GatewayConfig`; see
    :mod:`repro.service` for the request schema and admission semantics,
    and the ``repro serve`` CLI for the command-line form.
    """
    from .service import serve as _serve

    _serve(host, port, config=config)
