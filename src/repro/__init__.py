"""repro — reproduction of "Improving the Efficiency of Interpolation-based
Scientific Data Compressors with Adaptive Quantization Index Prediction"
(IPDPS 2025).

Quick tour
----------
>>> import repro
>>> data = repro.generate("segsalt", "Pressure2000")
>>> comp = repro.get_compressor("sz3", error_bound=1e-3, qp=repro.QPConfig())
>>> blob = comp.compress(data)
>>> out = comp.decompress(blob)

The QP transform itself lives in :mod:`repro.core`; the four
interpolation-based base compressors and three transform-based comparators in
:mod:`repro.compressors`; synthetic benchmark datasets in
:mod:`repro.datasets`; metrics/evaluation in :mod:`repro.metrics`; the
parallel transfer pipeline in :mod:`repro.transfer`.
"""
from .analysis import max_cr_gain, qp_comparison, rd_sweep
from .compressors import (
    COMPRESSORS,
    HPEZ,
    INTERP_COMPRESSORS,
    MGARD,
    SZ3,
    CompressionState,
    QoZ,
    decompress_any,
    get_compressor,
    traits_table,
)
from .core import (
    AdaptiveConfig,
    QPConfig,
    clustering_stats,
    plane_slice,
    qp_forward,
    qp_inverse,
    regional_entropy,
    shannon_entropy,
    slice_entropy,
)
from .datasets import DATASETS, generate, generate_all, table3_rows
from .errors import (
    CorruptArchiveError,
    CorruptBlobError,
    IntegrityError,
    ReproError,
    TransferError,
    TransferFaultError,
    TruncatedStreamError,
    VersionError,
)
from .metrics import EvalResult, evaluate, psnr
from .core.autotune import autotune_qp
from .modes import PointwiseRelativeCompressor, relative_bound
from .parallel import ParallelCompressor
from .streaming import StreamResult, stream_compress, stream_decompress
from .temporal import TemporalCompressor

__version__ = "1.0.0"

__all__ = [
    "AdaptiveConfig",
    "QPConfig",
    "qp_forward",
    "qp_inverse",
    "shannon_entropy",
    "slice_entropy",
    "plane_slice",
    "regional_entropy",
    "clustering_stats",
    "SZ3",
    "QoZ",
    "HPEZ",
    "MGARD",
    "CompressionState",
    "COMPRESSORS",
    "INTERP_COMPRESSORS",
    "get_compressor",
    "decompress_any",
    "traits_table",
    "DATASETS",
    "generate",
    "generate_all",
    "table3_rows",
    "evaluate",
    "EvalResult",
    "psnr",
    "rd_sweep",
    "qp_comparison",
    "max_cr_gain",
    "PointwiseRelativeCompressor",
    "relative_bound",
    "ParallelCompressor",
    "TemporalCompressor",
    "autotune_qp",
    "ReproError",
    "CorruptBlobError",
    "TruncatedStreamError",
    "VersionError",
    "IntegrityError",
    "CorruptArchiveError",
    "TransferError",
    "TransferFaultError",
    "__version__",
]
