"""Multidimensional Lorenzo predictor in dual-quantization form.

SZ3 switches from interpolation to a Lorenzo predictor at small error bounds
(the paper relies on this to explain SegSalt/SCALE behaviour), so a faithful
port needs one.  We implement the cuSZ-style *dual quantization* variant:

1. pre-quantize the data:      ``t = round(d / 2e)``   (so ``|d - 2e*t| <= e``)
2. n-D Lorenzo on integers:    ``q = finite difference of t along every axis``
3. inverse is an exact integer prefix-sum along every axis.

Residuals whose magnitude reaches the quantizer radius are moved to a
fixed-width escape stream (they hold the true delta, so decoding is a pure
reinstate-then-integrate with no data-dependent control flow).  Both
directions are fully vectorized (``np.diff`` / ``np.cumsum``), and the integer
arithmetic makes the transform exactly reversible — unlike classic Lorenzo,
whose compression loop is inherently sequential in Python.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels import select_backend
from ..obs import span as stage

__all__ = ["LorenzoResult", "lorenzo_encode", "lorenzo_decode"]

_OVERFLOW_LIMIT = 1 << 60


@dataclass
class LorenzoResult:
    """``indices`` Lorenzo residuals with the sentinel at escape positions;
    ``escapes`` holds the true residuals there, in C order; ``step`` the
    effective quantization step ``2*eb_eff`` the decoder must use."""

    indices: np.ndarray
    escapes: np.ndarray
    sentinel: int
    step: float = 0.0


def lorenzo_encode(
    data: np.ndarray, error_bound: float, radius: int = 32768,
    want_recon: bool = True, backend: str | None = None,
) -> tuple[LorenzoResult, np.ndarray | None]:
    """Encode ``data`` with dual-quantization Lorenzo.

    Returns the residual container plus the reconstruction (bit-identical to
    what decompression produces), which satisfies ``|d - recon| <= eb`` in
    real arithmetic; floating-point rounding can inflate the bound by one ULP
    of ``eb`` (e.g. 3.7 at eb=0.1), the same behaviour as cuSZ's dual-quant.

    ``want_recon=False`` skips materializing the reconstruction (returned as
    ``None``) — used by entropy-only trials such as SZ3's predictor selection,
    where only the residual statistics matter.
    """
    if error_bound <= 0:
        raise ValueError("error_bound must be positive")
    # Casting the reconstruction to the output dtype costs up to one ulp of
    # the value magnitude; shrink the internal step by that margin so the
    # user-facing bound holds in the output dtype.
    absmax = float(np.abs(data).max(initial=0.0))
    margin = 4.0 * absmax * float(np.finfo(data.dtype).eps)
    if margin >= 0.5 * error_bound:
        raise ValueError("error bound below the dtype's representable resolution")
    eb_eff = error_bound - margin
    two_eb = 2.0 * eb_eff
    scale = absmax / two_eb
    if scale >= _OVERFLOW_LIMIT:
        raise ValueError("error bound too small for dual-quantization range")
    with stage("quantize"):
        t = np.rint(data.astype(np.float64) / two_eb).astype(np.int64)
        recon = (t * two_eb).astype(data.dtype) if want_recon else None

    with stage("predict"):
        q = select_backend("lorenzo", backend).ops["forward_diff"](t)

    sentinel = -radius
    escape_mask = np.abs(q) >= radius
    escapes = q[escape_mask].ravel().copy()
    q[escape_mask] = sentinel
    return (
        LorenzoResult(indices=q, escapes=escapes, sentinel=sentinel, step=two_eb),
        recon,
    )


def lorenzo_decode(
    result: LorenzoResult, error_bound: float, dtype=np.float64,
    backend: str | None = None,
) -> np.ndarray:
    """Invert :func:`lorenzo_encode` back to the reconstruction.

    ``error_bound`` is used only when the result predates the ``step`` field;
    normally the stored effective step drives the reconstruction."""
    if error_bound <= 0:
        raise ValueError("error_bound must be positive")
    q = result.indices.astype(np.int64, copy=True)
    mask = q == result.sentinel
    if int(mask.sum()) != result.escapes.size:
        raise ValueError("escape count mismatch")
    if result.escapes.size:
        q[mask] = result.escapes
    with stage("predict"):
        q = select_backend("lorenzo", backend).ops["inverse_cumsum"](q)
    two_eb = result.step if result.step > 0 else 2.0 * error_bound
    with stage("quantize"):
        return (q * two_eb).astype(dtype)
