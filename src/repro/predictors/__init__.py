"""Data-domain predictors: multilevel interpolation kernels and Lorenzo."""
from .interpolation import INTERP_METHODS, predict_midpoints
from .lorenzo import LorenzoResult, lorenzo_decode, lorenzo_encode

__all__ = [
    "INTERP_METHODS",
    "predict_midpoints",
    "LorenzoResult",
    "lorenzo_encode",
    "lorenzo_decode",
]
