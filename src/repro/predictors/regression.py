"""Block linear-regression predictor (the SZ2 lineage, paper ref [5]).

Each block is approximated by a fitted hyperplane
``f(i0..ik) = b0 + sum_a b_a * i_a``; residuals go through the usual
linear-scaling quantizer.  On a regular grid the least-squares fit
diagonalizes after centering the coordinates, so the coefficients come from
closed-form sums — fully vectorized per block.

This predictor is exposed as ``SZ3(predictor="regression")`` to provide the
pre-interpolation baseline the paper's related-work section describes.
"""
from __future__ import annotations

import numpy as np

__all__ = ["fit_plane", "plane_prediction", "REGRESSION_BLOCK"]

REGRESSION_BLOCK = 6  # SZ2's default regression block size


def _centered_coords(shape: tuple[int, ...]) -> list[np.ndarray]:
    coords = []
    for ax, n in enumerate(shape):
        c = np.arange(n, dtype=np.float64) - (n - 1) / 2.0
        sl = [None] * len(shape)
        sl[ax] = slice(None)
        coords.append(c[tuple(sl)])
    return coords


def fit_plane(block: np.ndarray) -> np.ndarray:
    """Least-squares hyperplane coefficients ``[b0, b1, ..., bd]`` for a
    block on the regular grid (centered-coordinate closed form)."""
    b = block.astype(np.float64)
    coeffs = [b.mean()]
    for ax, c in enumerate(_centered_coords(block.shape)):
        denom = float((c**2).sum()) * b.size / block.shape[ax]
        if denom == 0:
            coeffs.append(0.0)
        else:
            coeffs.append(float((b * c).sum()) / denom)
    return np.array(coeffs, dtype=np.float32)


def plane_prediction(shape: tuple[int, ...], coeffs: np.ndarray) -> np.ndarray:
    """Evaluate the fitted hyperplane over the block grid."""
    coeffs = coeffs.astype(np.float64)
    pred = np.full(shape, coeffs[0], dtype=np.float64)
    for ax, c in enumerate(_centered_coords(shape)):
        pred = pred + coeffs[1 + ax] * c
    return pred
