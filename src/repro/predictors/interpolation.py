"""1-D interpolation kernels used by the multilevel decorrelation stage.

Given the values already known on a coarse grid along one axis, these kernels
predict the midpoints (the level's target points).  Everything operates on
strided views of the working array, with the interpolation axis moved to the
front, so a single vectorized expression predicts an entire pass.

``linear``   midpoint average of the two stride-``s`` neighbours.
``cubic``    4-point spline weights (-1/16, 9/16, 9/16, -1/16), the kernel
             SZ3/QoZ/HPEZ use away from boundaries, with linear fallback.

Boundary handling matches SZ3: a target with only a left neighbour copies it.
"""
from __future__ import annotations

import numpy as np

from ..kernels import select_backend

__all__ = ["predict_midpoints", "INTERP_METHODS"]

INTERP_METHODS = ("linear", "cubic")


def predict_midpoints(
    known: np.ndarray,
    n_targets: int,
    method: str = "linear",
    backend: str | None = None,
) -> np.ndarray:
    """Predict midpoint values along axis 0.

    Parameters
    ----------
    known:
        Array of already-decoded values on the coarse grid, axis 0 being the
        interpolation axis (shape ``(nk, ...)``). Target ``i`` sits between
        ``known[i]`` and ``known[i+1]``.
    n_targets:
        Number of midpoints to predict; either ``nk - 1`` (odd fine grid) or
        ``nk`` (even fine grid, whose last target has no right neighbour).
    method:
        ``"linear"`` or ``"cubic"``.
    backend:
        Kernel backend name for the fill loops (see :mod:`repro.kernels`);
        ``None`` resolves via environment/auto.
    """
    nk = known.shape[0]
    if n_targets not in (nk - 1, nk):
        raise ValueError(f"n_targets must be nk-1 or nk, got {n_targets} for nk={nk}")
    if method not in INTERP_METHODS:
        raise ValueError(f"unknown method {method!r}")
    out_shape = (n_targets,) + known.shape[1:]
    pred = np.empty(out_shape, dtype=known.dtype)
    n_inner = min(n_targets, nk - 1)  # targets with both neighbours

    kern = select_backend("interp", backend)
    if method == "linear" or nk < 4:
        kern.ops["linear_fill"](known, pred, n_inner)
    else:
        kern.ops["cubic_fill"](known, pred, n_inner)

    if n_targets == nk:  # trailing boundary target: copy left neighbour
        pred[nk - 1] = known[nk - 1]
    return pred


def _linear_fill(known: np.ndarray, pred: np.ndarray, n_inner: int) -> None:
    if n_inner > 0:
        np.add(known[:n_inner], known[1:n_inner + 1], out=pred[:n_inner])
        pred[:n_inner] /= 2


def _cubic_fill(known: np.ndarray, pred: np.ndarray, n_inner: int) -> None:
    """Cubic interior with linear fallback on the first/last inner targets."""
    # interior targets i = 1 .. n_inner-2 use known[i-1], known[i], known[i+1], known[i+2]
    lo, hi = 1, n_inner - 1
    if hi > lo:
        a = known[lo - 1:hi - 1]
        b = known[lo:hi]
        c = known[lo + 1:hi + 1]
        d = known[lo + 2:hi + 2]
        pred[lo:hi] = (9.0 * (b + c) - (a + d)) / 16.0
    # boundary inner targets fall back to linear
    if n_inner > 0:
        pred[0] = (known[0] + known[1]) / 2
    if n_inner > 1:
        pred[n_inner - 1] = (known[n_inner - 1] + known[n_inner]) / 2
