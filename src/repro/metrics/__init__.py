"""Quality/rate metrics and the shared evaluation harness."""
from ..core.characterize import shannon_entropy
from .errors import max_abs_error, max_rel_error, mse, nrmse, psnr
from .evaluate import EvalResult, evaluate
from .rate import bitrate, compression_ratio

__all__ = [
    "mse",
    "psnr",
    "max_abs_error",
    "max_rel_error",
    "nrmse",
    "compression_ratio",
    "bitrate",
    "shannon_entropy",
    "EvalResult",
    "evaluate",
]
