"""Distortion metrics (Section III-A)."""
from __future__ import annotations

import numpy as np

__all__ = ["mse", "psnr", "max_abs_error", "max_rel_error", "nrmse"]


def mse(original: np.ndarray, decoded: np.ndarray) -> float:
    a = original.astype(np.float64)
    b = decoded.astype(np.float64)
    if a.shape != b.shape:
        raise ValueError("shape mismatch")
    return float(np.mean((a - b) ** 2))


def psnr(original: np.ndarray, decoded: np.ndarray) -> float:
    """Peak signal-to-noise ratio with the paper's convention:
    ``20 log10((max(d) - min(d)) / sqrt(MSE))``."""
    value_range = float(original.max() - original.min())
    m = mse(original, decoded)
    if m == 0:
        return float("inf")
    if value_range == 0:
        return 0.0
    return float(20.0 * np.log10(value_range / np.sqrt(m)))


def max_abs_error(original: np.ndarray, decoded: np.ndarray) -> float:
    return float(
        np.abs(original.astype(np.float64) - decoded.astype(np.float64)).max()
    )


def max_rel_error(original: np.ndarray, decoded: np.ndarray) -> float:
    """Maximum error relative to the data's value range (Table II metric)."""
    value_range = float(original.max() - original.min())
    if value_range == 0:
        return 0.0
    return max_abs_error(original, decoded) / value_range


def nrmse(original: np.ndarray, decoded: np.ndarray) -> float:
    value_range = float(original.max() - original.min())
    if value_range == 0:
        return 0.0
    return float(np.sqrt(mse(original, decoded)) / value_range)
