"""Rate metrics: compression ratio and bit-rate (Section III-A)."""
from __future__ import annotations

import numpy as np

__all__ = ["compression_ratio", "bitrate"]


def compression_ratio(data: np.ndarray, compressed_bytes: int) -> float:
    if compressed_bytes <= 0:
        raise ValueError("compressed size must be positive")
    return data.nbytes / compressed_bytes


def bitrate(data: np.ndarray, compressed_bytes: int) -> float:
    """Average bits per data point in the compressed file (32/CR or 64/CR
    for single/double precision, per the paper)."""
    return 8.0 * compressed_bytes / data.size
