"""One-call compressor evaluation used by every benchmark."""
from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..compressors.base import Compressor
from ..obs import throughput_mbs
from .errors import max_abs_error, max_rel_error, psnr
from .rate import bitrate, compression_ratio

__all__ = ["EvalResult", "evaluate"]


@dataclass
class EvalResult:
    """Everything the paper reports per evaluation point."""

    compressor: str
    error_bound: float
    cr: float
    bitrate: float
    psnr: float
    max_abs_error: float
    max_rel_error: float
    compress_seconds: float
    decompress_seconds: float
    compress_mbs: float
    decompress_mbs: float
    compressed_bytes: int

    def row(self) -> dict[str, float | str]:
        return {
            "compressor": self.compressor,
            "eb": self.error_bound,
            "CR": round(self.cr, 2),
            "bitrate": round(self.bitrate, 4),
            "PSNR": round(self.psnr, 2),
            "max_rel_err": float(f"{self.max_rel_error:.3g}"),
            "S_C (MB/s)": round(self.compress_mbs, 2),
            "S_D (MB/s)": round(self.decompress_mbs, 2),
        }


def evaluate(comp: Compressor, data: np.ndarray, label: str | None = None) -> EvalResult:
    """Compress + decompress once, verifying the bound, collecting the
    metrics every table/figure of the paper reports."""
    t0 = time.perf_counter()
    blob = comp.compress(data)
    t1 = time.perf_counter()
    out = comp.decompress(blob)
    t2 = time.perf_counter()
    err = max_abs_error(data, out)
    if err > comp.error_bound * (1 + 1e-9):
        raise AssertionError(
            f"{comp.name}: error bound violated ({err} > {comp.error_bound})"
        )
    return EvalResult(
        compressor=label or comp.name,
        error_bound=comp.error_bound,
        cr=compression_ratio(data, len(blob)),
        bitrate=bitrate(data, len(blob)),
        psnr=psnr(data, out),
        max_abs_error=err,
        max_rel_error=max_rel_error(data, out),
        compress_seconds=t1 - t0,
        decompress_seconds=t2 - t1,
        compress_mbs=throughput_mbs(data.nbytes, t1 - t0),
        decompress_mbs=throughput_mbs(data.nbytes, t2 - t1),
        compressed_bytes=len(blob),
    )
