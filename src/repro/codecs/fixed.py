"""Fixed-width integer codec.

Used for metadata arrays and as a fallback entropy stage when the Huffman
table would not pay for itself (tiny inputs, near-uniform distributions).
Both directions are fully vectorized via ``packbits``/``unpackbits``.
"""
from __future__ import annotations

import struct

import numpy as np

from ..errors import CorruptBlobError, TruncatedStreamError

__all__ = ["encode_fixed", "decode_fixed"]

_MAGIC = b"FIX1"


def encode_fixed(values: np.ndarray) -> bytes:
    """Encode non-negative integers with the minimal common bit width."""
    values = np.ascontiguousarray(values).ravel().astype(np.uint64, copy=False)
    n = values.size
    if n == 0:
        return _MAGIC + struct.pack("<QB", 0, 0)
    vmax = int(values.max())
    width = max(vmax.bit_length(), 1)
    header = _MAGIC + struct.pack("<QB", n, width)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((values[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    return header + np.packbits(bits.ravel()).tobytes()


def decode_fixed(data: bytes) -> np.ndarray:
    if data[:4] != _MAGIC:
        raise CorruptBlobError("not a fixed-width container")
    if len(data) < 13:
        raise TruncatedStreamError("fixed-width container header truncated")
    n, width = struct.unpack_from("<QB", data, 4)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if width == 0 or width > 64:
        raise CorruptBlobError(f"fixed-width container has bit width {width}")
    if n * width > 8 * (len(data) - 13):
        raise TruncatedStreamError(
            f"fixed-width container declares {n}x{width} bits, only "
            f"{8 * (len(data) - 13)} present"
        )
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8, offset=13))
    bits = bits[:n * width].reshape(n, width).astype(np.uint64)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    return (bits << shifts[None, :]).sum(axis=1).astype(np.int64)
