"""Lossless byte-stream backends (the paper's ZSTD stage).

Three interchangeable backends sit behind one container format:

* ``zlib``  — stdlib DEFLATE; the default (same LZ77+entropy family as ZSTD).
* ``lz77``  — from-scratch greedy hash-chain LZ77 with byte-aligned token
  format; exercises the full match-find/copy path in pure Python.
* ``rle``   — from-scratch run-length coder, vectorized run detection.
* ``raw``   — store (used when a backend would expand the data).

All backends are self-framing: ``compress`` prepends a one-byte backend id and
the original size, and ``decompress`` dispatches on it, so a blob compressed
with any backend decompresses with the module-level ``decompress``.
"""
from __future__ import annotations

import struct
import zlib

import numpy as np

from ..errors import CorruptBlobError, TruncatedStreamError

__all__ = ["compress", "decompress", "BACKENDS"]

_ID_RAW = 0
_ID_ZLIB = 1
_ID_RLE = 2
_ID_LZ77 = 3

_NAME_TO_ID = {"raw": _ID_RAW, "zlib": _ID_ZLIB, "rle": _ID_RLE, "lz77": _ID_LZ77}
BACKENDS = tuple(_NAME_TO_ID)


def compress(data: bytes, backend: str = "zlib", level: int = 6) -> bytes:
    """Compress ``data`` with the named backend (falling back to raw storage
    whenever the backend output would be larger than the input)."""
    if backend not in _NAME_TO_ID:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if backend == "zlib":
        payload = zlib.compress(data, level)
    elif backend == "rle":
        payload = _rle_encode(data)
    elif backend == "lz77":
        payload = _lz77_encode(data)
    else:
        payload = data
    if backend != "raw" and len(payload) >= len(data):
        backend, payload = "raw", data
    header = struct.pack("<BQ", _NAME_TO_ID[backend], len(data))
    return header + payload


def decompress(blob: bytes) -> bytes:
    if len(blob) < 9:
        raise TruncatedStreamError("lossless container header truncated")
    backend_id, orig_size = struct.unpack_from("<BQ", blob, 0)
    payload = blob[9:]
    try:
        if backend_id == _ID_RAW:
            out = payload
        elif backend_id == _ID_ZLIB:
            out = zlib.decompress(payload)
        elif backend_id == _ID_RLE:
            out = _rle_decode(payload)
        elif backend_id == _ID_LZ77:
            out = _lz77_decode(payload)
        else:
            raise CorruptBlobError(f"unknown backend id {backend_id}")
    except zlib.error as exc:
        raise CorruptBlobError(f"zlib payload corrupt: {exc}") from None
    except (IndexError, struct.error):
        raise TruncatedStreamError("lossless token stream truncated") from None
    if len(out) != orig_size:
        raise CorruptBlobError("lossless payload corrupt: size mismatch")
    return out


# -- RLE --------------------------------------------------------------------
#
# Token format: (count:u8, byte) for runs >= 4 introduced by escape 0x00,
# literal spans prefixed by (0x01, span_len:u16). Run detection is vectorized.

def _rle_encode(data: bytes) -> bytes:
    if not data:
        return b""
    arr = np.frombuffer(data, dtype=np.uint8)
    # boundaries of equal-value runs
    change = np.nonzero(np.diff(arr))[0] + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [arr.size]))
    run_lens = ends - starts
    out = bytearray()
    lit_start = 0  # start of pending literal span (in original array)
    for s, ln in zip(starts.tolist(), run_lens.tolist()):
        if ln >= 4:
            _flush_literals(out, arr, lit_start, s)
            lit_start = s + ln
            remaining = ln
            while remaining > 0:
                take = min(remaining, 255)
                out += bytes((0x00, take, int(arr[s])))
                remaining -= take
        # short runs stay inside the literal span
    _flush_literals(out, arr, lit_start, arr.size)
    return bytes(out)


def _flush_literals(out: bytearray, arr: np.ndarray, start: int, end: int) -> None:
    pos = start
    while pos < end:
        take = min(end - pos, 0xFFFF)
        out += struct.pack("<BH", 0x01, take)
        out += arr[pos:pos + take].tobytes()
        pos += take


def _rle_decode(data: bytes) -> bytes:
    out = bytearray()
    pos = 0
    n = len(data)
    while pos < n:
        tag = data[pos]
        if tag == 0x00:
            count, value = data[pos + 1], data[pos + 2]
            out += bytes([value]) * count
            pos += 3
        elif tag == 0x01:
            (span,) = struct.unpack_from("<H", data, pos + 1)
            out += data[pos + 3:pos + 3 + span]
            pos += 3 + span
        else:
            raise CorruptBlobError("corrupt RLE stream")
    return bytes(out)


# -- LZ77 ---------------------------------------------------------------------
#
# Greedy hash-chain matcher over 4-byte prefixes, 64 KiB window.  Token
# stream: 0x00 <u16 len> <literals...> | 0x01 <u16 dist> <u16 len>.

_LZ_WINDOW = 1 << 16
_LZ_MIN_MATCH = 4
_LZ_MAX_MATCH = 0xFFFF
_LZ_MAX_CHAIN = 16


def _lz77_encode(data: bytes) -> bytes:
    n = len(data)
    if n < _LZ_MIN_MATCH:
        return struct.pack("<BH", 0x00, n) + data if n else b""
    out = bytearray()
    head: dict[int, int] = {}
    prev = [0] * n  # hash chain links
    lit_start = 0
    pos = 0
    mv = memoryview(data)
    while pos + _LZ_MIN_MATCH <= n:
        key = data[pos] | (data[pos + 1] << 8) | (data[pos + 2] << 16) | (data[pos + 3] << 24)
        cand = head.get(key, -1)
        best_len = 0
        best_dist = 0
        chain = 0
        while cand >= 0 and pos - cand <= _LZ_WINDOW and chain < _LZ_MAX_CHAIN:
            length = _match_len(mv, cand, pos, n)
            if length > best_len:
                best_len = length
                best_dist = pos - cand
                if length >= 128:  # good enough; stop searching
                    break
            cand = prev[cand] if prev[cand] != cand else -1
            chain += 1
        prev[pos] = head.get(key, pos)
        head[key] = pos
        if best_len >= _LZ_MIN_MATCH:
            if lit_start < pos:
                _emit_literals(out, data, lit_start, pos)
            best_len = min(best_len, _LZ_MAX_MATCH)
            out += struct.pack("<BHH", 0x01, best_dist, best_len)
            pos += best_len
            lit_start = pos
        else:
            pos += 1
    if lit_start < n:
        _emit_literals(out, data, lit_start, n)
    return bytes(out)


def _match_len(mv: memoryview, a: int, b: int, n: int) -> int:
    limit = min(n - b, _LZ_MAX_MATCH)
    length = 0
    # compare 8 bytes at a time via slices, then byte-wise tail
    while length + 8 <= limit and mv[a + length:a + length + 8] == mv[b + length:b + length + 8]:
        length += 8
    while length < limit and mv[a + length] == mv[b + length]:
        length += 1
    return length


def _emit_literals(out: bytearray, data: bytes, start: int, end: int) -> None:
    pos = start
    while pos < end:
        take = min(end - pos, 0xFFFF)
        out += struct.pack("<BH", 0x00, take)
        out += data[pos:pos + take]
        pos += take


def _lz77_decode(data: bytes) -> bytes:
    out = bytearray()
    pos = 0
    n = len(data)
    while pos < n:
        tag = data[pos]
        if tag == 0x00:
            (span,) = struct.unpack_from("<H", data, pos + 1)
            out += data[pos + 3:pos + 3 + span]
            pos += 3 + span
        elif tag == 0x01:
            dist, length = struct.unpack_from("<HH", data, pos + 1)
            start = len(out) - dist
            if start < 0:
                raise CorruptBlobError("corrupt LZ77 stream: bad distance")
            # overlapping copies must proceed byte-wise from the source
            for i in range(length):
                out.append(out[start + i])
            pos += 5
        else:
            raise CorruptBlobError("corrupt LZ77 stream")
    return bytes(out)
