"""Codec substrates: bit I/O, Huffman entropy coding, lossless byte codecs."""
from .ans import ANSCodec
from .bitstream import BitReader, BitWriter, pack_bits, unpack_bits
from .fixed import decode_fixed, encode_fixed
from .huffman import HuffmanCodec, canonical_codes, huffman_code_lengths
from .lossless import BACKENDS, compress, decompress
from .rangecoder import RangeCodec

__all__ = [
    "BitReader",
    "BitWriter",
    "pack_bits",
    "unpack_bits",
    "HuffmanCodec",
    "huffman_code_lengths",
    "canonical_codes",
    "RangeCodec",
    "ANSCodec",
    "compress",
    "decompress",
    "BACKENDS",
    "encode_fixed",
    "decode_fixed",
]
