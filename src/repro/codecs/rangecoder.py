"""Adaptive binary range coder (SZ3's alternative entropy stage).

Real SZ3 ships an arithmetic encoder beside Huffman; this module provides
the equivalent: a carry-less binary range coder with an adaptive bit model,
coding each symbol's unary-exponential (Elias-gamma-like) binarization.  It
beats Huffman on very skewed index distributions (no 1-bit-per-symbol floor)
at the cost of strictly sequential decoding — which is why Huffman remains
the default stage and this coder an option (mirroring SZ3's choice).

The implementation favours clarity over raw speed; both directions are
O(bits) Python loops over *binarized* symbols, so keep inputs to the ~1e5
symbol range (tests/benchmarks scale accordingly).
"""
from __future__ import annotations

import struct
import zlib

import numpy as np

from ..errors import CorruptBlobError, IntegrityError, TruncatedStreamError

__all__ = ["RangeCodec"]

_MASK32 = 0xFFFFFFFF
_TOP = 1 << 24
_BOT = 1 << 16
_MAGIC = b"RNG1"
#: v2 container: adds a CRC32 of the decoded symbol bytes, because an
#: adaptive arithmetic stream has no internal redundancy — without the
#: checksum a flipped payload bit decodes to plausible garbage silently
_MAGIC_V2 = b"RNG2"

#: decoder slack past the payload before declaring truncation (the encoder's
#: flush emits exactly 4 tail bytes; anything further means bytes are missing)
_TAIL_SLACK = 8

#: ceiling on symbols per payload byte: the adaptive model's probability
#: floor caps legitimate streams near ~700 symbols/byte, so anything beyond
#: this is a corrupt count field, not data (and would loop for minutes)
_MAX_SYMBOLS_PER_BYTE = 4096

# adaptive bit model parameters
_PROB_BITS = 12
_PROB_ONE = 1 << _PROB_BITS
_ADAPT = 5


class _Encoder:
    """Subbotin carry-less range encoder (32-bit low/range)."""

    def __init__(self) -> None:
        self.low = 0
        self.range = _MASK32
        self.out = bytearray()

    def encode_bit(self, prob_zero: int, bit: int) -> None:
        split = (self.range >> _PROB_BITS) * prob_zero
        if bit == 0:
            self.range = split
        else:
            self.low = (self.low + split) & _MASK32
            self.range -= split
        self._normalize()

    def _normalize(self) -> None:
        while True:
            if ((self.low ^ (self.low + self.range)) & _MASK32) < _TOP:
                pass  # top byte settled: emit
            elif self.range < _BOT:
                self.range = (-self.low) & (_BOT - 1)  # force emission
            else:
                break
            self.out.append((self.low >> 24) & 0xFF)
            self.low = (self.low << 8) & _MASK32
            self.range = (self.range << 8) & _MASK32

    def finish(self) -> bytes:
        for _ in range(4):
            self.out.append((self.low >> 24) & 0xFF)
            self.low = (self.low << 8) & _MASK32
        return bytes(self.out)


class _Decoder:
    """Mirror of :class:`_Encoder`."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 4
        self.low = 0
        self.range = _MASK32
        self.code = int.from_bytes(data[:4].ljust(4, b"\x00"), "big")

    def decode_bit(self, prob_zero: int) -> int:
        split = (self.range >> _PROB_BITS) * prob_zero
        if ((self.code - self.low) & _MASK32) < split:
            bit = 0
            self.range = split
        else:
            bit = 1
            self.low = (self.low + split) & _MASK32
            self.range -= split
        self._normalize()
        return bit

    def _normalize(self) -> None:
        while True:
            if ((self.low ^ (self.low + self.range)) & _MASK32) < _TOP:
                pass
            elif self.range < _BOT:
                self.range = (-self.low) & (_BOT - 1)
            else:
                break
            if self.pos < len(self.data):
                nxt = self.data[self.pos]
            elif self.pos < len(self.data) + _TAIL_SLACK:
                nxt = 0
            else:
                raise TruncatedStreamError("range-coded stream exhausted")
            self.pos += 1
            self.code = ((self.code << 8) | nxt) & _MASK32
            self.low = (self.low << 8) & _MASK32
            self.range = (self.range << 8) & _MASK32


class _BitModel:
    """Per-context adaptive probability of a zero bit."""

    def __init__(self, n_contexts: int) -> None:
        self.p = [_PROB_ONE // 2] * n_contexts

    def encode(self, enc: _Encoder, ctx: int, bit: int) -> None:
        p = self.p[ctx]
        enc.encode_bit(p, bit)
        self._adapt(ctx, bit)

    def decode(self, dec: _Decoder, ctx: int) -> int:
        bit = dec.decode_bit(self.p[ctx])
        self._adapt(ctx, bit)
        return bit

    def _adapt(self, ctx: int, bit: int) -> None:
        p = self.p[ctx]
        if bit == 0:
            self.p[ctx] = p + ((_PROB_ONE - p) >> _ADAPT)
        else:
            self.p[ctx] = p - (p >> _ADAPT)


_N_MAG_CTX = 72  # unary length contexts (covers 64-bit zigzag magnitudes)


class RangeCodec:
    """Adaptive range coder over signed integers.

    Binarization per symbol: unary-coded bit-length of the zigzag magnitude
    (each unary position has its own adaptive context) followed by the
    magnitude's payload bits under per-position contexts.  Skewed
    quantization-index streams spend well under a bit per symbol.
    """

    def encode(self, symbols: np.ndarray) -> bytes:
        symbols = np.ascontiguousarray(symbols).ravel().astype(np.int64)
        zz = np.where(symbols >= 0, 2 * symbols, -2 * symbols - 1).astype(np.uint64)
        enc = _Encoder()
        length_model = _BitModel(_N_MAG_CTX)
        payload_model = _BitModel(_N_MAG_CTX)
        for v in zz.tolist():  # sequential by nature of arithmetic coding
            nbits = v.bit_length()
            for i in range(nbits):
                length_model.encode(enc, i, 1)
            length_model.encode(enc, nbits, 0)
            for i in range(nbits - 2, -1, -1):  # MSB is implicit
                payload_model.encode(enc, i, (v >> i) & 1)
        payload = enc.finish()
        crc = zlib.crc32(symbols.tobytes()) & 0xFFFFFFFF
        return _MAGIC_V2 + struct.pack("<QI", symbols.size, crc) + payload

    def decode(self, data: bytes) -> np.ndarray:
        """Decode a range-coded container (v1 ``RNG1`` or v2 ``RNG2``).

        v2 streams carry a CRC32 of the symbol array that is verified after
        decoding — the only way to catch a mid-payload bit flip in an
        adaptive arithmetic stream.  All failures are typed and bounded:
        the symbol count is sanity-capped against the payload size so a
        tampered header cannot drive an hours-long decode loop.
        """
        if data[:4] == _MAGIC_V2:
            if len(data) < 16:
                raise TruncatedStreamError("range-coder container truncated")
            n, crc = struct.unpack_from("<QI", data, 4)
            body = data[16:]
        elif data[:4] == _MAGIC:
            if len(data) < 12:
                raise TruncatedStreamError("range-coder container truncated")
            (n,) = struct.unpack_from("<Q", data, 4)
            crc = None
            body = data[12:]
        else:
            raise CorruptBlobError("not a range-coder container")
        if n > _MAX_SYMBOLS_PER_BYTE * max(len(body), 1):
            raise CorruptBlobError(
                f"range-coder container declares {n} symbols for "
                f"{len(body)} payload bytes"
            )
        dec = _Decoder(body)
        length_model = _BitModel(_N_MAG_CTX)
        payload_model = _BitModel(_N_MAG_CTX)
        out = np.empty(n, dtype=np.int64)
        for j in range(n):
            nbits = 0
            while length_model.decode(dec, nbits) == 1:
                nbits += 1
                if nbits >= _N_MAG_CTX:
                    raise CorruptBlobError("corrupt range-coded stream")
            if nbits == 0:
                v = 0
            else:
                v = 1
                for i in range(nbits - 2, -1, -1):
                    v = (v << 1) | payload_model.decode(dec, i)
            out[j] = (v >> 1) if (v & 1) == 0 else -((v + 1) >> 1)
        if crc is not None and (zlib.crc32(out.tobytes()) & 0xFFFFFFFF) != crc:
            raise IntegrityError("range-coded stream CRC32 mismatch")
        return out
