"""Adaptive binary range coder (SZ3's alternative entropy stage).

Real SZ3 ships an arithmetic encoder beside Huffman; this module provides
the equivalent: a carry-less binary range coder with an adaptive bit model,
coding each symbol's unary-exponential (Elias-gamma-like) binarization.  It
beats Huffman on very skewed index distributions (no 1-bit-per-symbol floor)
at the cost of strictly sequential decoding — which is why Huffman remains
the default stage and this coder an option (mirroring SZ3's choice).

The implementation favours clarity over raw speed; both directions are
O(bits) Python loops over *binarized* symbols, so keep inputs to the ~1e5
symbol range (tests/benchmarks scale accordingly).
"""
from __future__ import annotations

import struct

import numpy as np

__all__ = ["RangeCodec"]

_MASK32 = 0xFFFFFFFF
_TOP = 1 << 24
_BOT = 1 << 16
_MAGIC = b"RNG1"

# adaptive bit model parameters
_PROB_BITS = 12
_PROB_ONE = 1 << _PROB_BITS
_ADAPT = 5


class _Encoder:
    """Subbotin carry-less range encoder (32-bit low/range)."""

    def __init__(self) -> None:
        self.low = 0
        self.range = _MASK32
        self.out = bytearray()

    def encode_bit(self, prob_zero: int, bit: int) -> None:
        split = (self.range >> _PROB_BITS) * prob_zero
        if bit == 0:
            self.range = split
        else:
            self.low = (self.low + split) & _MASK32
            self.range -= split
        self._normalize()

    def _normalize(self) -> None:
        while True:
            if ((self.low ^ (self.low + self.range)) & _MASK32) < _TOP:
                pass  # top byte settled: emit
            elif self.range < _BOT:
                self.range = (-self.low) & (_BOT - 1)  # force emission
            else:
                break
            self.out.append((self.low >> 24) & 0xFF)
            self.low = (self.low << 8) & _MASK32
            self.range = (self.range << 8) & _MASK32

    def finish(self) -> bytes:
        for _ in range(4):
            self.out.append((self.low >> 24) & 0xFF)
            self.low = (self.low << 8) & _MASK32
        return bytes(self.out)


class _Decoder:
    """Mirror of :class:`_Encoder`."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 4
        self.low = 0
        self.range = _MASK32
        self.code = int.from_bytes(data[:4].ljust(4, b"\x00"), "big")

    def decode_bit(self, prob_zero: int) -> int:
        split = (self.range >> _PROB_BITS) * prob_zero
        if ((self.code - self.low) & _MASK32) < split:
            bit = 0
            self.range = split
        else:
            bit = 1
            self.low = (self.low + split) & _MASK32
            self.range -= split
        self._normalize()
        return bit

    def _normalize(self) -> None:
        while True:
            if ((self.low ^ (self.low + self.range)) & _MASK32) < _TOP:
                pass
            elif self.range < _BOT:
                self.range = (-self.low) & (_BOT - 1)
            else:
                break
            nxt = self.data[self.pos] if self.pos < len(self.data) else 0
            self.pos += 1
            self.code = ((self.code << 8) | nxt) & _MASK32
            self.low = (self.low << 8) & _MASK32
            self.range = (self.range << 8) & _MASK32


class _BitModel:
    """Per-context adaptive probability of a zero bit."""

    def __init__(self, n_contexts: int) -> None:
        self.p = [_PROB_ONE // 2] * n_contexts

    def encode(self, enc: _Encoder, ctx: int, bit: int) -> None:
        p = self.p[ctx]
        enc.encode_bit(p, bit)
        self._adapt(ctx, bit)

    def decode(self, dec: _Decoder, ctx: int) -> int:
        bit = dec.decode_bit(self.p[ctx])
        self._adapt(ctx, bit)
        return bit

    def _adapt(self, ctx: int, bit: int) -> None:
        p = self.p[ctx]
        if bit == 0:
            self.p[ctx] = p + ((_PROB_ONE - p) >> _ADAPT)
        else:
            self.p[ctx] = p - (p >> _ADAPT)


_N_MAG_CTX = 72  # unary length contexts (covers 64-bit zigzag magnitudes)


class RangeCodec:
    """Adaptive range coder over signed integers.

    Binarization per symbol: unary-coded bit-length of the zigzag magnitude
    (each unary position has its own adaptive context) followed by the
    magnitude's payload bits under per-position contexts.  Skewed
    quantization-index streams spend well under a bit per symbol.
    """

    def encode(self, symbols: np.ndarray) -> bytes:
        symbols = np.ascontiguousarray(symbols).ravel().astype(np.int64)
        zz = np.where(symbols >= 0, 2 * symbols, -2 * symbols - 1).astype(np.uint64)
        enc = _Encoder()
        length_model = _BitModel(_N_MAG_CTX)
        payload_model = _BitModel(_N_MAG_CTX)
        for v in zz.tolist():  # sequential by nature of arithmetic coding
            nbits = v.bit_length()
            for i in range(nbits):
                length_model.encode(enc, i, 1)
            length_model.encode(enc, nbits, 0)
            for i in range(nbits - 2, -1, -1):  # MSB is implicit
                payload_model.encode(enc, i, (v >> i) & 1)
        payload = enc.finish()
        return _MAGIC + struct.pack("<Q", symbols.size) + payload

    def decode(self, data: bytes) -> np.ndarray:
        if data[:4] != _MAGIC:
            raise ValueError("not a range-coder container")
        (n,) = struct.unpack_from("<Q", data, 4)
        dec = _Decoder(data[12:])
        length_model = _BitModel(_N_MAG_CTX)
        payload_model = _BitModel(_N_MAG_CTX)
        out = np.empty(n, dtype=np.int64)
        for j in range(n):
            nbits = 0
            while length_model.decode(dec, nbits) == 1:
                nbits += 1
                if nbits >= _N_MAG_CTX:
                    raise ValueError("corrupt range-coded stream")
            if nbits == 0:
                v = 0
            else:
                v = 1
                for i in range(nbits - 2, -1, -1):
                    v = (v << 1) | payload_model.decode(dec, i)
            out[j] = (v >> 1) if (v & 1) == 0 else -((v + 1) >> 1)
        return out
