"""SPECK-style embedded set-partitioning coder for wavelet coefficients.

SPERR's native coefficient coder is SPECK: bit-plane significance coding
with recursive set partitioning.  This module implements the core algorithm
(simplified to regular 2^d block splitting over the whole coefficient array
rather than the octave-band S/I partition — the quantization behaviour per
kept bit-plane is the same):

* coefficients are scaled to integers against the target threshold;
* per bit-plane, insignificant blocks are tested against ``2^n`` using a
  precomputed max-magnitude pyramid (vectorized); significant blocks split
  into ``2^d`` children down to single coefficients, which emit a sign and
  join the refinement list;
* lower planes refine known-significant coefficients one bit at a time;
* the emitted bit-stream is self-terminating given (shape, n_max, n_min).

The coder is embedded: truncating the plane loop earlier just yields a
coarser reconstruction.  Python-level recursion makes it the slowest codec
here — which is faithful to SPERR's "medium speed" — so it is offered as
``SPERR(coder="speck")`` rather than the default.
"""
from __future__ import annotations

import struct

import numpy as np

from .bitstream import BitReader, BitWriter

__all__ = ["speck_encode", "speck_decode"]

_MAGIC = b"SPK1"


def _max_pyramid(mag: np.ndarray) -> list[np.ndarray]:
    """Max-magnitude reduction pyramid: level k holds the max over aligned
    2^k-sized blocks (edge blocks clipped)."""
    levels = [mag]
    cur = mag
    while max(cur.shape) > 1:
        slices = []
        new_shape = tuple(-(-n // 2) for n in cur.shape)
        nxt = np.zeros(new_shape, dtype=cur.dtype)
        # reduce pairwise along each axis in turn
        red = cur
        for ax in range(cur.ndim):
            n = red.shape[ax]
            even = red[tuple(slice(None) if a != ax else slice(0, n - n % 2, 2)
                            for a in range(red.ndim))]
            odd = red[tuple(slice(None) if a != ax else slice(1, None, 2)
                            for a in range(red.ndim))]
            merged = np.maximum(even, odd)
            if n % 2:
                tail = red[tuple(slice(None) if a != ax else slice(n - 1, None)
                                 for a in range(red.ndim))]
                merged = np.concatenate([merged, tail], axis=ax)
            red = merged
        nxt[...] = red
        levels.append(nxt)
        cur = nxt
    return levels


class _SetCoder:
    """Shared traversal for encode/decode (the bit source/sink differs)."""

    def __init__(self, shape: tuple[int, ...], n_max: int, n_min: int) -> None:
        self.shape = shape
        self.ndim = len(shape)
        self.n_max = n_max
        self.n_min = n_min

    def _children(self, origin: tuple[int, ...], size: int):
        half = size // 2
        for corner in np.ndindex(*(2,) * self.ndim):
            child = tuple(o + c * half for o, c in zip(origin, corner))
            if all(ci < n for ci, n in zip(child, self.shape)):
                yield child, half

    def _root_size(self) -> int:
        size = 1
        while size < max(self.shape):
            size *= 2
        return size


def speck_encode(coeffs: np.ndarray, threshold: float) -> bytes:
    """Encode ``coeffs`` so every coefficient is reconstructed within
    ``threshold`` (uniform, like SPERR's quantization target)."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    coeffs = np.asarray(coeffs, dtype=np.float64)
    # integerize: unit = threshold; reconstruct at +-unit/2 accuracy after
    # coding all planes down to n_min = 0 (value = plane bits + 0.5 offset)
    mag = np.abs(coeffs) / threshold
    imag = mag.astype(np.int64)  # floor
    signs = coeffs < 0
    n_max = int(imag.max()).bit_length() - 1 if imag.max() > 0 else -1

    writer = BitWriter()
    shape = coeffs.shape
    header = _MAGIC + struct.pack(
        "<B", len(shape)
    ) + struct.pack(f"<{len(shape)}I", *shape) + struct.pack("<bd", n_max, threshold)

    if n_max < 0:
        return header  # everything quantizes to zero

    pyramid = _max_pyramid(imag)
    coder = _SetCoder(shape, n_max, 0)
    lsp: list[tuple[int, ...]] = []  # significant coords, in discovery order

    def block_max(origin: tuple[int, ...], size: int) -> int:
        level = size.bit_length() - 1
        level = min(level, len(pyramid) - 1)
        idx = tuple(o >> level for o in origin)
        return int(pyramid[level][idx])

    lis: list[tuple[tuple[int, ...], int]] = [((0,) * coder.ndim, coder._root_size())]
    for n in range(n_max, -1, -1):
        t = 1 << n
        # significance pass over insignificant sets
        next_lis: list[tuple[tuple[int, ...], int]] = []
        stack = lis
        lis = []
        while stack:
            origin, size = stack.pop()
            significant = block_max(origin, size) >= t
            writer.write_bit(1 if significant else 0)
            if not significant:
                next_lis.append((origin, size))
                continue
            if size == 1:
                writer.write_bit(1 if signs[origin] else 0)
                lsp.append((origin, n))
            else:
                stack.extend(
                    (child, half) for child, half in coder._children(origin, size)
                )
        lis = next_lis
        # refinement pass: coefficients found significant in earlier planes
        for coord, found_n in lsp:
            if found_n > n:
                writer.write_bit((int(imag[coord]) >> n) & 1)
    payload = writer.getvalue()
    return header + struct.pack("<Q", len(writer)) + payload


def speck_decode(blob: bytes) -> np.ndarray:
    if blob[:4] != _MAGIC:
        raise ValueError("not a SPECK container")
    off = 4
    (ndim,) = struct.unpack_from("<B", blob, off)
    off += 1
    shape = struct.unpack_from(f"<{ndim}I", blob, off)
    off += 4 * ndim
    n_max, threshold = struct.unpack_from("<bd", blob, off)
    off += struct.calcsize("<bd")
    out = np.zeros(shape, dtype=np.float64)
    if n_max < 0:
        return out
    (nbits,) = struct.unpack_from("<Q", blob, off)
    off += 8
    reader = BitReader(blob[off:], nbits=nbits)

    coder = _SetCoder(shape, n_max, 0)
    imag = np.zeros(shape, dtype=np.int64)
    signs = np.zeros(shape, dtype=bool)
    lsp: list[tuple[int, ...]] = []

    lis: list[tuple[tuple[int, ...], int]] = [((0,) * ndim, coder._root_size())]
    for n in range(n_max, -1, -1):
        next_lis: list[tuple[tuple[int, ...], int]] = []
        stack = lis
        lis = []
        while stack:
            origin, size = stack.pop()
            significant = reader.read_bit()
            if not significant:
                next_lis.append((origin, size))
                continue
            if size == 1:
                signs[origin] = bool(reader.read_bit())
                imag[origin] = 1 << n
                lsp.append((origin, n))
            else:
                stack.extend(
                    (child, half) for child, half in coder._children(origin, size)
                )
        lis = next_lis
        for coord, found_n in lsp:
            if found_n > n:
                if reader.read_bit():
                    imag[coord] |= 1 << n
    # mid-tread reconstruction: coefficients land at (imag + 0.5) * threshold
    mags = np.where(imag > 0, (imag + 0.5) * threshold, 0.0)
    out = np.where(signs, -mags, mags)
    return out
