"""Bit-level I/O used by the entropy coders.

The writers/readers operate on NumPy bit arrays internally so that bulk
operations (appending thousands of variable-length codes) stay vectorized;
per-bit Python loops are avoided everywhere except tiny headers.
"""
from __future__ import annotations

import numpy as np

from ..errors import TruncatedStreamError

__all__ = ["BitWriter", "BitReader", "pack_bits", "unpack_bits", "encode_codes_packed"]


def pack_bits(bits: np.ndarray) -> bytes:
    """Pack a uint8 array of 0/1 values into bytes (MSB-first)."""
    bits = np.asarray(bits, dtype=np.uint8)
    return np.packbits(bits).tobytes()


def unpack_bits(data: bytes, nbits: int) -> np.ndarray:
    """Unpack bytes into a uint8 array of 0/1 values of length ``nbits``."""
    arr = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(arr)
    if nbits > bits.size:
        raise TruncatedStreamError(
            f"requested {nbits} bits but buffer holds {bits.size}"
        )
    return bits[:nbits]


def encode_codes_packed(
    codes: np.ndarray,
    lengths: np.ndarray,
    bit_positions: np.ndarray | None = None,
) -> bytes:
    """Concatenate variable-length codes straight into packed bytes.

    Produces exactly ``pack_bits`` of the bit expansion that
    :meth:`BitWriter.write_codes` builds, but in O(symbols) instead of
    O(total_bits): each code is left-aligned inside a byte-addressed integer
    window and the windows are OR-merged per output byte with one
    ``bitwise_or.reduceat`` per window column.  This is the Huffman encoder's
    hot path (millions of symbols per volume).

    ``bit_positions`` is the optional precomputed exclusive prefix sum of
    ``lengths`` (length ``n + 1``), letting callers that already need it
    (for block offsets) avoid a second cumsum.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.shape != lengths.shape:
        raise ValueError("codes and lengths must have the same shape")
    if codes.size == 0:
        return b""
    if bit_positions is None:
        bit_positions = np.concatenate(([0], np.cumsum(lengths)))
    starts = bit_positions[:-1]
    total = int(bit_positions[-1])
    if total == 0:
        return b""
    max_len = int(lengths.max())
    if max_len > 57 or int(lengths.min()) == 0:
        # window math needs 1 <= length and length + 7 <= 64; fall back
        writer = BitWriter()
        writer.write_codes(codes, lengths)
        return writer.getvalue()
    window_bytes = (max_len + 7 + 7) >> 3  # code bits + worst-case bit offset
    window_bits = 8 * window_bytes
    byte0 = (starts >> 3).astype(np.int64)
    bit_off = (starts & 7).astype(np.uint64)
    w = codes << (np.uint64(window_bits) - lengths.astype(np.uint64) - bit_off)
    nbytes = (total + 7) >> 3
    out = np.zeros(nbytes + window_bytes, dtype=np.uint8)
    # Codes whose windows start in the same output byte can be OR-merged as
    # whole uint64 windows *before* splitting into byte columns: their start
    # byte is equal, so every column lands on the same target.  One reduceat
    # over the symbols, then per-column work on the (much smaller) merged set.
    group_starts = np.concatenate(([0], np.flatnonzero(byte0[1:] != byte0[:-1]) + 1))
    merged = np.bitwise_or.reduceat(w, group_starts)
    first = byte0[group_starts]
    for j in range(window_bytes):
        col = ((merged >> np.uint64(window_bits - 8 * (j + 1))) & np.uint64(0xFF))
        out[first + j] |= col.astype(np.uint8)
    return out[:nbytes].tobytes()


class BitWriter:
    """Accumulates bits (MSB-first) and serializes to bytes.

    ``write_uint`` appends a single fixed-width value; ``write_codes`` appends
    many variable-length codes at once using vectorized bit extraction, which
    is what the Huffman encoder uses on millions of symbols.
    """

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._nbits = 0

    def __len__(self) -> int:  # number of bits written so far
        return self._nbits

    def write_bit(self, bit: int) -> None:
        self._chunks.append(np.array([bit & 1], dtype=np.uint8))
        self._nbits += 1

    def write_uint(self, value: int, width: int) -> None:
        """Append ``value`` as ``width`` bits, most significant bit first."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if width == 0:
            return
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        shifts = np.arange(width - 1, -1, -1)
        bits = ((value >> shifts) & 1).astype(np.uint8)
        self._chunks.append(bits)
        self._nbits += width

    def write_codes(self, codes: np.ndarray, lengths: np.ndarray) -> None:
        """Append many variable-length codes at once.

        ``codes[i]`` holds the code value for symbol ``i`` right-aligned in an
        integer; ``lengths[i]`` is its bit length.  The expansion into a flat
        bit array is done with one vectorized pass per bit position (bounded by
        the maximum code length, typically <= 24), never per symbol.
        """
        codes = np.asarray(codes, dtype=np.uint64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if codes.shape != lengths.shape:
            raise ValueError("codes and lengths must have the same shape")
        total = int(lengths.sum())
        if total == 0:
            return
        out = np.empty(total, dtype=np.uint8)
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        max_len = int(lengths.max())
        for b in range(max_len):
            sel = lengths > b
            # bit b (0 = most significant) of each selected code
            shift = (lengths[sel] - 1 - b).astype(np.uint64)
            out[starts[sel] + b] = ((codes[sel] >> shift) & np.uint64(1)).astype(np.uint8)
        self._chunks.append(out)
        self._nbits += total

    def getvalue(self) -> bytes:
        if not self._chunks:
            return b""
        bits = np.concatenate(self._chunks)
        return pack_bits(bits)


class BitReader:
    """Reads bits (MSB-first) from a byte buffer."""

    def __init__(self, data: bytes, nbits: int | None = None) -> None:
        self._bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        if nbits is not None:
            self._bits = self._bits[:nbits]
        self.pos = 0

    @property
    def remaining(self) -> int:
        return self._bits.size - self.pos

    def read_bit(self) -> int:
        if self.pos >= self._bits.size:
            raise TruncatedStreamError("bitstream exhausted")
        bit = int(self._bits[self.pos])
        self.pos += 1
        return bit

    def read_uint(self, width: int) -> int:
        if width == 0:
            return 0
        if self.pos + width > self._bits.size:
            raise TruncatedStreamError("bitstream exhausted")
        chunk = self._bits[self.pos:self.pos + width]
        self.pos += width
        value = 0
        for b in chunk:  # width is small (<= 64); fine as a scalar loop
            value = (value << 1) | int(b)
        return value

    def bits_view(self) -> np.ndarray:
        """Expose the remaining bits as an array (used by table decoders)."""
        return self._bits[self.pos:]

    def advance(self, nbits: int) -> None:
        if self.pos + nbits > self._bits.size:
            raise TruncatedStreamError("bitstream exhausted")
        self.pos += nbits
