"""Static range asymmetric numeral system (rANS) entropy coder.

The third entropy stage next to Huffman and the adaptive range coder: a
table-driven static coder whose per-symbol decode is one table gather, one
multiply and one shift — no bit-level code-length walk — which is what makes
ANS the entropy stage of choice in modern compressors (zstd's FSE is the
tabled variant of the same construction).

Container layout (all little-endian)::

    "ANS1" | <QII  n, block_size, n_present
          | uint32[n_present]  present symbols (strictly increasing)
          | uint32[n_present]  normalized frequencies (sum == 2**16)
          | <QQ   n_blocks, total_words
          | uint64[n_blocks]   per-block word offsets (exclusive prefix sum)
          | uint32[n_blocks]   per-block final encoder states
          | uint16[total_words] renormalization words

Coding parameters: probabilities are normalized to ``M = 2**16`` (so even a
fully saturated 16-bit alphabet keeps every frequency >= 1), the state lives
in ``[2**16, 2**32)`` and renormalizes by 16-bit words — at most one word in
or out per symbol, which keeps both directions vectorizable across blocks:
like the Huffman codec, symbols are split into ``block_size`` *lanes* that
encode and decode in lockstep, so the Python-level loop runs ``block_size``
times on whole-lane vectors, not once per symbol.

Strict validation mirrors the Huffman container: every count is
bounds-checked against the available bytes, the frequency table must
normalize exactly, the lockstep loop runs a fixed number of steps over
zero-padded words, and every lane must consume exactly its word span and
land back on the initial state.  Corrupt input raises
:class:`~repro.errors.CorruptBlobError` /
:class:`~repro.errors.TruncatedStreamError` in bounded time.
"""
from __future__ import annotations

import struct

import numpy as np

from ..errors import CorruptBlobError, TruncatedStreamError

__all__ = ["ANSCodec", "PROB_BITS", "DEFAULT_BLOCK_SIZE"]

_MAGIC = b"ANS1"

PROB_BITS = 16
_M = 1 << PROB_BITS  # probability denominator
_L = np.int64(1 << 16)  # state lower bound; state < 2**32
_MASK = np.int64(_M - 1)

DEFAULT_BLOCK_SIZE = 4096
_MAX_BLOCK_SIZE = 1 << 16  # bounds the lockstep step count on decode
_MAX_SYMBOLS = 1 << 31  # sanity cap on a declared symbol count


def _normalize_freqs(counts: np.ndarray) -> np.ndarray:
    """Scale raw counts to frequencies summing exactly to ``_M``.

    Every present symbol keeps frequency >= 1 (possible because the
    alphabet has at most ``_M`` distinct symbols); the residual after
    floor-scaling is distributed deterministically, largest counts first.
    """
    if counts.size == 1:
        return np.array([_M], dtype=np.int64)
    total = int(counts.sum())
    scaled = np.maximum((counts.astype(np.int64) * _M) // total, 1)
    diff = _M - int(scaled.sum())
    if diff > 0:
        # bulk first, then one unit each to the largest counts
        q, r = divmod(diff, counts.size)
        if q:
            scaled += q
        if r:
            order = np.argsort(-counts, kind="stable")[:r]
            scaled[order] += 1
    elif diff < 0:
        order = np.argsort(-counts, kind="stable")
        i = 0
        while diff < 0:
            j = order[i % order.size]
            if scaled[j] > 1:
                scaled[j] -= 1
                diff += 1
            i += 1
    return scaled


class ANSCodec:
    """Self-contained static rANS container: ``encode`` -> bytes -> ``decode``."""

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if not 0 < block_size <= _MAX_BLOCK_SIZE:
            raise ValueError(
                f"block_size must be in [1, {_MAX_BLOCK_SIZE}]"
            )
        self.block_size = block_size

    # -- encoding ---------------------------------------------------------

    def encode(self, symbols: np.ndarray) -> bytes:
        symbols = np.ascontiguousarray(symbols).ravel()
        n = symbols.size
        bs = self.block_size
        if n == 0:
            return _MAGIC + struct.pack("<QII", 0, bs, 0)
        if symbols.dtype != np.int64:
            symbols = symbols.astype(np.int64)
        try:
            counts = np.bincount(symbols)
        except ValueError:
            raise ValueError("symbols must be non-negative") from None
        present = np.nonzero(counts)[0]
        if present.size > _M:
            raise ValueError(
                f"rANS supports at most {_M} distinct symbols, "
                f"got {present.size}"
            )
        freqs = _normalize_freqs(counts[present])
        cum = np.zeros(present.size, dtype=np.int64)
        np.cumsum(freqs[:-1], out=cum[1:])
        # dense per-symbol tables for the encode gathers
        alpha = int(present[-1]) + 1
        f_dense = np.zeros(alpha, dtype=np.int64)
        f_dense[present] = freqs
        cum_dense = np.zeros(alpha, dtype=np.int64)
        cum_dense[present] = cum

        nb = (n + bs - 1) // bs
        llast = n - (nb - 1) * bs
        width = bs if nb > 1 else n
        symmat = np.zeros((nb, width), dtype=np.int64)
        symmat.reshape(-1)[:n] = symbols

        x = np.full(nb, _L, dtype=np.int64)
        wordbuf = np.empty((nb, width), dtype=np.uint16)
        wcount = np.zeros(nb, dtype=np.int64)
        # Encode back to front so the decoder walks forward.  The active
        # lane set is a prefix (only the last lane is short), mirroring the
        # decoder exactly; at most one 16-bit word leaves the state per
        # symbol by construction.
        for t in range(width - 1, -1, -1):
            act = nb if t < llast else nb - 1
            if act == 0:
                continue
            s = symmat[:act, t]
            f = f_dense[s]
            xa = x[:act]
            emit = xa >= (f << PROB_BITS)
            idx = np.nonzero(emit)[0]
            if idx.size:
                wordbuf[idx, wcount[idx]] = x[idx] & 0xFFFF
                wcount[idx] += 1
                x[idx] >>= 16
                xa = x[:act]
            q, r = np.divmod(xa, f)
            x[:act] = (q << PROB_BITS) + cum_dense[s] + r

        # per-lane words reversed so decode reads them in forward order
        streams = [wordbuf[k, : wcount[k]][::-1] for k in range(nb)]
        offsets = np.zeros(nb, dtype=np.int64)
        np.cumsum(wcount[:-1], out=offsets[1:])
        total_words = int(wcount.sum())
        header = [
            _MAGIC,
            struct.pack("<QII", n, bs, present.size),
            present.astype("<u4").tobytes(),
            freqs.astype("<u4").tobytes(),
            struct.pack("<QQ", nb, total_words),
            offsets.astype("<u8").tobytes(),
            x.astype("<u4").tobytes(),
        ]
        return b"".join(header) + np.concatenate(streams).astype("<u2").tobytes()

    # -- decoding ---------------------------------------------------------

    def decode(self, data: bytes) -> np.ndarray:
        """Decode one rANS container (strict-validating, bounded time)."""
        parsed = _parse_container(data)
        if parsed is None:
            return np.empty(0, dtype=np.int64)
        return _decode_parsed(parsed)

    def decode_many(self, datas: "list[bytes]") -> "list[np.ndarray]":
        """Decode several containers; each already decodes its blocks in
        one vectorized lockstep, so the batch form is a simple loop with
        ``decode``'s exact output and error behaviour per member."""
        return [self.decode(d) for d in datas]


def _parse_container(data: bytes):
    """Validate one container's header; ``None`` for the empty container."""
    if len(data) >= 4 and data[:4] != _MAGIC:
        raise CorruptBlobError("not an ANS container")
    if len(data) < 20:
        raise TruncatedStreamError("ANS container header truncated")
    off = 4
    n, block_size, n_present = struct.unpack_from("<QII", data, off)
    off += 16
    if n == 0:
        return None
    if n > _MAX_SYMBOLS:
        raise CorruptBlobError(f"ANS container declares {n} symbols")
    if not 0 < block_size <= _MAX_BLOCK_SIZE:
        raise CorruptBlobError(
            f"ANS block size {block_size} outside [1, {_MAX_BLOCK_SIZE}]"
        )
    if n_present == 0:
        raise CorruptBlobError(f"{n} symbols but an empty frequency table")
    if n_present > _M:
        raise CorruptBlobError(
            f"ANS frequency table with {n_present} entries exceeds {_M}"
        )
    if off + 8 * n_present + 16 > len(data):
        raise TruncatedStreamError("ANS frequency table truncated")
    present = np.frombuffer(data, dtype="<u4", count=n_present, offset=off)
    off += 4 * n_present
    freqs = np.frombuffer(data, dtype="<u4", count=n_present, offset=off)
    off += 4 * n_present
    if n_present > 1 and (np.diff(present.astype(np.int64)) <= 0).any():
        raise CorruptBlobError("ANS present symbols not strictly increasing")
    freqs = freqs.astype(np.int64)
    if (freqs <= 0).any() or int(freqs.sum()) != _M:
        raise CorruptBlobError("ANS frequency table does not normalize")
    n_blocks, total_words = struct.unpack_from("<QQ", data, off)
    off += 16
    if n_blocks != (n + block_size - 1) // block_size:
        raise CorruptBlobError(
            f"{n_blocks} block states inconsistent with {n} symbols "
            f"in blocks of {block_size}"
        )
    if total_words > n:
        # at most one renormalization word per symbol
        raise CorruptBlobError(
            f"{total_words} ANS words cannot come from {n} symbols"
        )
    if off + 12 * n_blocks + 2 * total_words > len(data):
        raise TruncatedStreamError("ANS block tables or payload truncated")
    offsets = np.frombuffer(
        data, dtype="<u8", count=n_blocks, offset=off
    ).astype(np.int64)
    off += 8 * n_blocks
    states = np.frombuffer(
        data, dtype="<u4", count=n_blocks, offset=off
    ).astype(np.int64)
    off += 4 * n_blocks
    if int(offsets[0]) != 0 or (np.diff(offsets) < 0).any() or (
        int(offsets[-1]) > total_words
    ):
        raise CorruptBlobError("ANS word offsets out of order or range")
    if (states < _L).any():
        raise CorruptBlobError("ANS block state below the coder's lower bound")
    words = np.frombuffer(data, dtype="<u2", count=int(total_words), offset=off)
    return n, block_size, int(total_words), present.astype(np.int64), freqs, \
        offsets, states, words


def _decode_parsed(parsed) -> np.ndarray:
    n, bs, total_words, present, freqs, offsets, states, words = parsed
    # slot-indexed tables: for every residue class of the state modulo 2**16,
    # the symbol owning that slot, its frequency, and the slot's offset
    # within the symbol's span (slot - cum[sym])
    slot_sym = np.repeat(present, freqs)
    slot_freq = np.repeat(freqs, freqs)
    cum = np.zeros(freqs.size, dtype=np.int64)
    np.cumsum(freqs[:-1], out=cum[1:])
    slot_r = np.arange(_M, dtype=np.int64) - np.repeat(cum, freqs)

    nb = offsets.size
    llast = n - (nb - 1) * bs
    width = bs if nb > 1 else n
    # a corrupt stream can demand one word per step on every lane, so pad by
    # one lane's worth of zero words to keep every gather in bounds
    padded = np.zeros(total_words + width + 1, dtype=np.int64)
    padded[:total_words] = words
    ends = np.empty(nb, dtype=np.int64)
    ends[:-1] = offsets[1:]
    ends[-1] = total_words

    x = states.copy()
    ptr = offsets.copy()
    out = np.empty((nb, width), dtype=np.int64)
    for t in range(width):
        act = nb if t < llast else nb - 1
        xa = x[:act]
        slot = xa & _MASK
        out[:act, t] = slot_sym[slot]
        x[:act] = slot_freq[slot] * (xa >> PROB_BITS) + slot_r[slot]
        need = np.nonzero(x[:act] < _L)[0]
        if need.size:
            x[need] = (x[need] << 16) | padded[ptr[need]]
            ptr[need] += 1

    if not np.array_equal(ptr, ends):
        if int(ptr.max()) > total_words:
            raise TruncatedStreamError("ANS payload exhausted mid-block")
        raise CorruptBlobError("ANS blocks misaligned after decode")
    if (x != _L).any():
        raise CorruptBlobError("ANS block state did not return to the origin")
    return out.reshape(-1)[:n]
