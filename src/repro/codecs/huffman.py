"""Canonical, length-limited Huffman coding for quantization indices.

This is the entropy stage shared by the SZ-family, MGARD, and SPERR ports.
Design constraints (see DESIGN.md section 7):

* **Encoding** is fully vectorized: per-symbol codes/lengths are gathered from
  lookup tables and expanded into a flat bit array with one pass per bit
  position of the longest code.
* **Decoding** avoids a per-symbol Python loop by encoding in fixed-size
  *blocks* whose starting bit offsets are stored in the header.  All blocks
  are then decoded in lockstep: a vector of per-block cursors advances one
  symbol per iteration, so the Python-level loop runs ``block_size`` times on
  vectors instead of ``n_symbols`` times on scalars.  Each step fetches its
  ``max_len``-bit windows *on demand* with a vectorized byte gather
  (``cursor >> 3`` indexes an overlapping big-endian uint32 view of the
  payload, ``cursor & 7`` aligns), so decode work scales with symbols
  decoded — not payload bits × code length as the earlier
  unpackbits/window-precompute design did.
* Code lengths are limited to ``MAX_CODE_LEN`` bits (via iterative frequency
  dampening) so a flat ``2**maxlen`` decode table stays small.  Decode
  tables are memoized keyed by a digest of the sparse code-length table, so
  repeated tables (parallel slabs, multi-level passes, repeated decodes of
  one container) skip the rebuild entirely.
"""
from __future__ import annotations

import hashlib
import heapq
import struct
from collections import OrderedDict

import numpy as np

from ..errors import CorruptBlobError, TruncatedStreamError
from ..kernels import select_backend
from ..obs import metric_count

__all__ = [
    "HuffmanCodec",
    "huffman_code_lengths",
    "canonical_codes",
    "decode_table_cache_info",
    "set_decode_table_cache_max",
    "clear_decode_table_cache",
]

_WIN_DTYPE = np.dtype(">u4")  # overlapping big-endian window view of payload

MAX_CODE_LEN = 20
DEFAULT_BLOCK_SIZE = 4096
_MAGIC = b"HUF1"


def huffman_code_lengths(freqs: np.ndarray, max_len: int = MAX_CODE_LEN) -> np.ndarray:
    """Return per-symbol code lengths for the given frequency table.

    Zero-frequency symbols get length 0.  Lengths are limited to ``max_len``
    by repeatedly halving frequencies (the standard practical fallback; the
    loss versus package-merge is negligible for our skewed distributions).
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    if freqs.ndim != 1:
        raise ValueError("freqs must be 1-D")
    if (freqs < 0).any():
        raise ValueError("negative frequency")
    present = np.nonzero(freqs)[0]
    lengths = np.zeros(freqs.size, dtype=np.int64)
    if present.size == 0:
        return lengths
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths

    work = freqs.copy()
    while True:
        lens = _huffman_lengths_heap(work, present)
        if lens.max() <= max_len:
            lengths[present] = lens
            return lengths
        # Dampen: flattening the distribution shortens the deepest leaves.
        work[present] = np.maximum(work[present] >> 1, 1)


def _huffman_lengths_heap(freqs: np.ndarray, present: np.ndarray) -> np.ndarray:
    """Optimal (unlimited) Huffman code lengths for the present symbols."""
    # Heap items: (freq, tiebreak, node). Leaves are ints (position within
    # ``present``); internal nodes are [left, right] lists.
    heap: list[tuple[int, int, object]] = [
        (int(freqs[s]), i, i) for i, s in enumerate(present)
    ]
    heapq.heapify(heap)
    counter = present.size
    while len(heap) > 1:
        f1, _, n1 = heapq.heappop(heap)
        f2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (f1 + f2, counter, [n1, n2]))
        counter += 1
    lens = np.zeros(present.size, dtype=np.int64)
    # Iterative DFS assigning depth to each leaf.
    stack = [(heap[0][2], 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, list):
            stack.append((node[0], depth + 1))
            stack.append((node[1], depth + 1))
        else:
            lens[node] = depth
    return lens


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical code values given per-symbol code lengths.

    Symbols are ordered by (length, symbol id); codes increase sequentially,
    left-shifted when the length grows.  Returns a uint64 array parallel to
    ``lengths`` (entries with length 0 are unused).
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    codes = np.zeros(lengths.size, dtype=np.uint64)
    present = np.nonzero(lengths)[0]
    if present.size == 0:
        return codes
    order = present[np.argsort(lengths[present], kind="stable")]
    code = 0
    prev_len = int(lengths[order[0]])
    for sym in order:  # loop over *distinct* symbols only — small
        ln = int(lengths[sym])
        code <<= ln - prev_len
        codes[sym] = code
        code += 1
        prev_len = ln
    return codes


# -- memoized decode tables ---------------------------------------------------

#: LRU of validated flat decode tables keyed by a digest of the sparse
#: (present, present_lens) code table.  Entries are read-only arrays, safe to
#: share across decodes, threads (GIL) and fork()ed worker processes.
_DECODE_TABLE_CACHE: "OrderedDict[bytes, tuple[np.ndarray, np.ndarray, int]]" = (
    OrderedDict()
)
_DECODE_TABLE_CACHE_MAX = 64
_DECODE_TABLE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def decode_table_cache_info() -> dict:
    """Hits/misses/evictions/size of the decode-table memo (for tests,
    ``repro stats``, and perf triage)."""
    return {
        **_DECODE_TABLE_STATS,
        "size": len(_DECODE_TABLE_CACHE),
        "max_entries": _DECODE_TABLE_CACHE_MAX,
    }


def set_decode_table_cache_max(max_entries: int) -> int:
    """Re-bound the decode-table LRU (returns the previous cap).

    Service workloads churning many distinct code tables can lower the cap
    to bound memory, or raise it to keep a hot spec set resident; shrinking
    evicts oldest-first immediately."""
    global _DECODE_TABLE_CACHE_MAX
    if int(max_entries) < 1:
        raise ValueError(f"cache cap must be >= 1, got {max_entries!r}")
    prev = _DECODE_TABLE_CACHE_MAX
    _DECODE_TABLE_CACHE_MAX = int(max_entries)
    _evict_decode_tables()
    return prev


def _evict_decode_tables() -> None:
    while len(_DECODE_TABLE_CACHE) > _DECODE_TABLE_CACHE_MAX:
        _DECODE_TABLE_CACHE.popitem(last=False)
        _DECODE_TABLE_STATS["evictions"] += 1
        metric_count("huffman.table_cache", result="evict")


def clear_decode_table_cache() -> None:
    """Drop all memoized decode tables and reset the hit/miss/evict counters."""
    _DECODE_TABLE_CACHE.clear()
    _DECODE_TABLE_STATS["hits"] = 0
    _DECODE_TABLE_STATS["misses"] = 0
    _DECODE_TABLE_STATS["evictions"] = 0


def _decode_tables(
    present: np.ndarray, present_lens: np.ndarray
) -> tuple[bytes, np.ndarray, np.ndarray, int]:
    """Flat (key, sym_table, len_table, max_len) for one sparse code table.

    Memoized: the key is a digest of the raw header bytes describing the
    table, so byte-identical code tables (parallel slabs of one volume,
    repeated decodes of one container) reuse the validated tables and skip
    both the Kraft check and the table fill.  The tables a cache hit returns
    are exactly the arrays a rebuild would produce — the build is a pure
    function of the key.
    """
    key = hashlib.blake2b(
        present.tobytes() + present_lens.tobytes(), digest_size=16
    ).digest()
    cached = _DECODE_TABLE_CACHE.get(key)
    if cached is not None:
        _DECODE_TABLE_CACHE.move_to_end(key)
        _DECODE_TABLE_STATS["hits"] += 1
        metric_count("huffman.table_cache", result="hit")
        return (key, *cached)
    _DECODE_TABLE_STATS["misses"] += 1
    metric_count("huffman.table_cache", result="miss")

    # ``present`` is validated strictly increasing by the container parse
    # (the canonical encoder emits it sorted), so no dense alphabet-sized
    # scratch array is needed — a tampered header declaring a symbol near
    # 2**32 must not cost alphabet-sized memory or scan time.
    psyms = present.astype(np.int64)
    plens = present_lens.astype(np.int64)
    max_len = int(plens.max())
    # Kraft inequality: an over-subscribed length table would assign
    # canonical codes past the table and corrupt the flat lookup
    if int((1 << (max_len - plens)).sum()) > (1 << max_len):
        raise CorruptBlobError("Huffman code-length table violates Kraft")

    # Canonical code values increase sequentially in (length, symbol) order,
    # so the flat-table spans they cover are contiguous from slot 0: the
    # whole fill is two np.repeat calls, no per-symbol loop and no explicit
    # code values needed.
    order = np.argsort(plens, kind="stable")  # psyms ascending -> (len, sym)
    spans = np.int64(1) << (max_len - plens[order])
    covered = int(spans.sum())  # <= 1 << max_len by Kraft
    sym_table = np.zeros(1 << max_len, dtype=np.int64)
    # uint8 (code lengths are <= MAX_CODE_LEN): the per-step cursor advance
    # gathers randomly from this table, so an 8x smaller footprint keeps it
    # cache-resident even for wide tables and concatenated multi-container
    # tables (numpy upcasts the += to int64)
    len_table = np.zeros(1 << max_len, dtype=np.uint8)
    sym_table[:covered] = np.repeat(psyms[order], spans)
    len_table[:covered] = np.repeat(plens[order], spans)
    sym_table.setflags(write=False)
    len_table.setflags(write=False)

    _DECODE_TABLE_CACHE[key] = (sym_table, len_table, max_len)
    _evict_decode_tables()
    return key, sym_table, len_table, max_len


#: LRU of width-expanded length tables for multi-container lockstep decodes,
#: keyed by the tuple of member table digests.  Byte-capped rather than
#: entry-capped: a deep (MAX_CODE_LEN) table is 1 MiB per container, so a
#: handful of four-slab entries is the natural working set.
_COMBINED_TABLE_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_COMBINED_TABLE_CACHE_MAX_BYTES = 192 << 20


def _combined_tables(
    parts: list[tuple[bytes, np.ndarray, np.ndarray, int]]
) -> tuple[np.ndarray, int, np.ndarray]:
    """Per-container length tables expanded to one width for joint decode.

    Returns ``(len_exp, M, norms)``: ``M = max(max_len)`` is the global
    window width; ``len_exp`` is every container's length table expanded to
    width ``M`` (its native table repeated ``2**(M - max_len_k)`` times, so
    the junk low bits of a wide window are absorbed by construction) and
    laid out contiguously, so ``len_exp[win + (k << M)]`` is container
    ``k``'s code length for the full ``M``-bit window ``win``;
    ``norms[k] = M - max_len_k`` converts stored windows back to native ones
    for the final symbol gather.  Expanding up front keeps the per-step
    cursor advance at one add plus one gather — no per-step normalization
    shift, which at lockstep lane counts is pure ufunc-call overhead.
    """
    key = tuple(p[0] for p in parts)
    cached = _COMBINED_TABLE_CACHE.get(key)
    if cached is not None:
        _COMBINED_TABLE_CACHE.move_to_end(key)
        return cached
    max_lens = [p[3] for p in parts]
    M = max(max_lens)
    len_exp = np.empty(len(parts) << M, dtype=np.uint8)
    for k, p in enumerate(parts):
        norm = M - max_lens[k]
        len_exp[k << M:(k + 1) << M] = (
            np.repeat(p[2], 1 << norm) if norm else p[2]
        )
    len_exp.setflags(write=False)
    norms = np.asarray([M - ml for ml in max_lens], dtype=np.int64)
    entry = (len_exp, M, norms)
    _COMBINED_TABLE_CACHE[key] = entry
    total = sum(e[0].nbytes for e in _COMBINED_TABLE_CACHE.values())
    while total > _COMBINED_TABLE_CACHE_MAX_BYTES and len(_COMBINED_TABLE_CACHE) > 1:
        _, dropped = _COMBINED_TABLE_CACHE.popitem(last=False)
        total -= dropped[0].nbytes
    return entry


class HuffmanCodec:
    """Self-contained Huffman container: ``encode`` -> bytes -> ``decode``.

    The header stores the code-length table (sparse: only present symbols),
    the symbol count, and per-block bit offsets enabling lockstep decoding.
    """

    def __init__(
        self, block_size: int = DEFAULT_BLOCK_SIZE, backend: str | None = None
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        #: kernel backend name for the hot loops (None = env/auto resolution)
        self.backend = backend

    # -- encoding ---------------------------------------------------------

    def encode(self, symbols: np.ndarray) -> bytes:
        symbols = np.ascontiguousarray(symbols).ravel()
        n = symbols.size
        if n == 0:
            return _MAGIC + struct.pack("<QII", 0, self.block_size, 0)
        if symbols.dtype != np.int64:
            symbols = symbols.astype(np.int64)
        # bincount scans the data once and rejects negatives as it goes, so
        # the frequency table, the alphabet bound and the sign guard all come
        # out of a single pass (no separate min()/max() sweeps).
        try:
            freqs = np.bincount(symbols)
        except ValueError:
            raise ValueError("symbols must be non-negative") from None
        lengths = huffman_code_lengths(freqs)
        codes = canonical_codes(lengths)

        sym_lengths = lengths[symbols]
        sym_codes = codes[symbols]
        bit_positions = np.empty(n + 1, dtype=np.int64)
        bit_positions[0] = 0
        np.cumsum(sym_lengths, out=bit_positions[1:])
        block_offsets = bit_positions[:-1:self.block_size].astype(np.uint64)
        total_bits = int(bit_positions[-1])

        kern = select_backend("huffman", self.backend)
        payload = kern.ops["encode_payload"](sym_codes, sym_lengths, bit_positions)

        present = np.nonzero(lengths)[0].astype(np.uint32)
        present_lens = lengths[present].astype(np.uint8)
        header = [
            _MAGIC,
            struct.pack("<QII", n, self.block_size, present.size),
            present.tobytes(),
            present_lens.tobytes(),
            struct.pack("<QQ", block_offsets.size, total_bits),
            block_offsets.tobytes(),
        ]
        return b"".join(header) + payload

    # -- decoding ---------------------------------------------------------

    def decode(self, data: bytes) -> np.ndarray:
        """Decode a Huffman container.

        Strict-validating: every header field is bounds-checked against the
        available bytes, the code-length table must satisfy the Kraft
        inequality (so the flat decode table cannot be indexed out of range),
        the lockstep loop runs a fixed number of steps over a zero-padded
        payload (cursors cannot index out of bounds or loop forever), and
        each block must land exactly on the next block's recorded bit
        offset.  Corrupt input raises
        :class:`~repro.errors.CorruptBlobError` /
        :class:`~repro.errors.TruncatedStreamError` in bounded time — never
        a hang, never a silently mis-shaped array.
        """
        parsed = _parse_container(data)
        if parsed is None:
            return np.empty(0, dtype=np.int64)
        return _decode_group([parsed], backend=self.backend)[0]

    def decode_many(self, datas: "list[bytes]") -> "list[np.ndarray]":
        """Decode several containers in one joint lockstep loop.

        Every container's blocks become lanes of a single cursor vector, so
        the Python-level loop cost is paid once for the whole batch instead
        of once per container — the win that makes decoding N slab streams
        of one volume as cheap as decoding the volume's own stream.  Output
        and error behaviour match ``decode`` applied to each container in
        order (the first corrupt member raises).
        """
        parsed = [_parse_container(d) for d in datas]
        live = [p for p in parsed if p is not None]
        decoded = (
            iter(_decode_group(live, backend=self.backend)) if live else iter(())
        )
        return [
            np.empty(0, dtype=np.int64) if p is None else next(decoded)
            for p in parsed
        ]


def _parse_container(data: bytes) -> "tuple | None":
    """Validate one container's header; None for the empty container.

    Returns ``(n, block_size, block_offsets, total_bits, payload, tables)``
    with every strict check from the original decoder applied: magic,
    truncation bounds, block-count consistency, offset monotonicity, code
    lengths in range, and (inside the memoized table build) Kraft.
    """
    # magic is judged first only when enough bytes exist to judge it; a
    # truncated prefix of a valid container must raise the truncation
    # error, not "not a Huffman container"
    if len(data) >= 4 and data[:4] != _MAGIC:
        raise CorruptBlobError("not a Huffman container")
    if len(data) < 20:
        raise TruncatedStreamError("Huffman container header truncated")
    off = 4
    n, block_size, n_present = struct.unpack_from("<QII", data, off)
    off += 16
    if n == 0:
        return None
    if block_size == 0:
        raise CorruptBlobError("Huffman container declares block size 0")
    if n_present == 0:
        raise CorruptBlobError(f"{n} symbols but an empty code table")
    if off + 5 * n_present + 16 > len(data):
        raise TruncatedStreamError("Huffman code table truncated")
    present = np.frombuffer(data, dtype=np.uint32, count=n_present, offset=off)
    off += 4 * n_present
    present_lens = np.frombuffer(data, dtype=np.uint8, count=n_present, offset=off)
    off += n_present
    n_blocks, total_bits = struct.unpack_from("<QQ", data, off)
    off += 16
    if n_blocks != (n + block_size - 1) // block_size:
        raise CorruptBlobError(
            f"{n_blocks} block offsets inconsistent with {n} symbols "
            f"in blocks of {block_size}"
        )
    if off + 8 * n_blocks > len(data):
        raise TruncatedStreamError("Huffman block-offset table truncated")
    block_offsets = np.frombuffer(data, dtype=np.uint64, count=n_blocks, offset=off)
    off += 8 * n_blocks
    if total_bits > 8 * (len(data) - off):
        raise TruncatedStreamError(
            f"Huffman payload declares {total_bits} bits, only "
            f"{8 * (len(data) - off)} present"
        )
    if n > max(total_bits, 1):
        raise CorruptBlobError(
            f"{n} symbols cannot fit in {total_bits} payload bits"
        )
    if (np.diff(block_offsets.astype(np.int64)) < 0).any() or (
        n_blocks and int(block_offsets[-1]) >= max(total_bits, 1)
    ):
        raise CorruptBlobError("Huffman block offsets out of order or range")
    if int(present_lens.min()) == 0 or int(present_lens.max()) > MAX_CODE_LEN:
        raise CorruptBlobError(
            f"Huffman code lengths outside [1, {MAX_CODE_LEN}]"
        )
    if n_present > 1 and (np.diff(present.astype(np.int64)) <= 0).any():
        raise CorruptBlobError("Huffman code table symbols not ascending")
    # Flat decode table: for every max_len-bit window, the symbol whose code
    # prefixes it and that code's length.  Memoized across decodes sharing
    # one code table; the Kraft check lives with the build.
    tables = _decode_tables(present, present_lens)
    payload = np.frombuffer(data, dtype=np.uint8, offset=off)
    return n, block_size, block_offsets.astype(np.int64), total_bits, payload, tables


def _decode_group(parsed: list, backend: str | None = None) -> "list[np.ndarray]":
    """Joint lockstep decode of one or more parsed containers.

    Every block of every container is one *lane*: a cursor advanced one
    symbol per Python-level step.  Lanes are sorted by their step count
    (descending), so the active set is always a prefix and the lockstep
    advance runs as one ``decode_lockstep`` kernel call (numpy reference or
    a compiled backend — see :mod:`repro.kernels`).  Windows are gathered
    from the concatenated zero-padded payload buffer and matched windows are
    stored row-major so the per-step store is contiguous.  The step count is
    fixed up front, so decode time stays bounded for corrupt input; each
    container's blocks are still checked to land exactly on the next block's
    recorded bit offset.
    """
    single = len(parsed) == 1
    if single:
        key, sym_flat, len_flat, M = parsed[0][5]
        norms = None
    else:
        len_flat, M, norms = _combined_tables([p[5] for p in parsed])

    # Concatenate payloads into one zero-padded buffer.  Padding bounds every
    # window gather: a cursor starts inside its container's payload (checked
    # during parse) and advances at most max_len bits per active step, so the
    # worst overrun past the final payload byte is steps * M bits.
    pay_sizes = [p[4].size for p in parsed]
    base_bytes = np.zeros(len(parsed) + 1, dtype=np.int64)
    np.cumsum(np.asarray(pay_sizes, dtype=np.int64), out=base_bytes[1:])
    max_steps = max(min(p[1], p[0]) for p in parsed)
    pad = (max_steps * M + 7) // 8 + 8
    buf = np.zeros(int(base_bytes[-1]) + pad, dtype=np.uint8)
    for p, lo, size in zip(parsed, base_bytes, pay_sizes):
        buf[int(lo):int(lo) + size] = p[4]

    # Lane tables: cursors (absolute bit positions in the concatenated
    # buffer), per-lane step counts, and — for multi-container groups — the
    # per-lane window normalization shift and table base offset.
    lane_cont: list[int] = []
    cur_parts: list[np.ndarray] = []
    stop_parts: list[np.ndarray] = []
    for k, p in enumerate(parsed):
        n, block_size, block_offsets, _, _, _ = p
        nb = block_offsets.size
        cur_parts.append(block_offsets + base_bytes[k] * 8)
        stops = np.full(nb, block_size, dtype=np.int64)
        stops[-1] = n - (nb - 1) * block_size
        stop_parts.append(stops)
        lane_cont.extend([k] * nb)
    cur = np.concatenate(cur_parts)
    stops = np.concatenate(stop_parts)
    cont_ids = np.asarray(lane_cont, dtype=np.int64)
    L = cur.size

    # Sort lanes so longer-running ones come first: the active set during any
    # step range is then a prefix slice.  (For a single container this is the
    # identity permutation — all blocks are full except the last.)
    perm = np.argsort(-stops, kind="stable")
    inv = np.empty(L, dtype=np.int64)
    inv[perm] = np.arange(L)
    cur = np.ascontiguousarray(cur[perm])
    stops_p = stops[perm]
    if single:
        # empty offset table = "single shared length table" in the kernel
        # contract (compiled backends cannot take None for an array argument)
        lane_off = np.empty(0, dtype=np.int64)
    else:
        # per-lane base offset into the width-expanded length table; the
        # expansion absorbs the per-container normalization shift, so the
        # advance is one add + one gather regardless of mixed table depths
        lane_off = np.ascontiguousarray(cont_ids[perm] << np.int64(M))

    wins = np.empty((max_steps, L), dtype=np.int64)
    kern = select_backend("huffman", backend)
    kern.ops["decode_lockstep"](buf, cur, stops_p, len_flat, lane_off, wins, M)

    # Validate and extract per container.  Each container's blocks must land
    # exactly where the next one starts — a decode that drifted out of code
    # alignment (flipped bits, truncated payload, a window matching no code
    # and stalling its cursor) cannot satisfy this.
    end_cur = cur[inv]
    results: list[np.ndarray] = []
    lane_lo = 0
    for k, p in enumerate(parsed):
        n, block_size, block_offsets, total_bits, _, _ = p
        nb = block_offsets.size
        rel = end_cur[lane_lo:lane_lo + nb] - base_bytes[k] * 8
        expected_ends = np.empty(nb, dtype=np.int64)
        expected_ends[:-1] = block_offsets[1:]
        expected_ends[-1] = total_bits
        if not np.array_equal(rel, expected_ends):
            if int(rel.max()) > total_bits:
                raise TruncatedStreamError("Huffman payload exhausted mid-block")
            raise CorruptBlobError("Huffman blocks misaligned after decode")
        cols = inv[lane_lo:lane_lo + nb]
        lane_lo += nb
        c0 = int(cols[0])
        if np.array_equal(cols, np.arange(c0, c0 + nb)):
            blk = wins[:, c0:c0 + nb]  # contiguous lanes: keep the view
        else:
            blk = wins[:, cols]
        flat = np.ascontiguousarray(blk.T[:, :block_size]).reshape(-1)[:n]
        if single:
            results.append(sym_flat[flat])
        else:
            # stored windows are full width: shift off the junk low bits to
            # index this container's own (native-width) symbol table
            nk = int(norms[k])
            results.append(p[5][1][flat >> nk if nk else flat])
    return results
