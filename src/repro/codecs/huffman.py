"""Canonical, length-limited Huffman coding for quantization indices.

This is the entropy stage shared by the SZ-family, MGARD, and SPERR ports.
Design constraints (see DESIGN.md section 7):

* **Encoding** is fully vectorized: per-symbol codes/lengths are gathered from
  lookup tables and expanded into a flat bit array with one pass per bit
  position of the longest code.
* **Decoding** avoids a per-symbol Python loop by encoding in fixed-size
  *blocks* whose starting bit offsets are stored in the header.  All blocks
  are then decoded in lockstep: a vector of per-block cursors advances one
  symbol per iteration, so the Python-level loop runs ``block_size`` times on
  vectors instead of ``n_symbols`` times on scalars.
* Code lengths are limited to ``MAX_CODE_LEN`` bits (via iterative frequency
  dampening) so a flat ``2**maxlen`` decode table stays small.
"""
from __future__ import annotations

import heapq
import struct

import numpy as np

from ..errors import CorruptBlobError, TruncatedStreamError

__all__ = ["HuffmanCodec", "huffman_code_lengths", "canonical_codes"]

MAX_CODE_LEN = 20
DEFAULT_BLOCK_SIZE = 4096
_MAGIC = b"HUF1"


def huffman_code_lengths(freqs: np.ndarray, max_len: int = MAX_CODE_LEN) -> np.ndarray:
    """Return per-symbol code lengths for the given frequency table.

    Zero-frequency symbols get length 0.  Lengths are limited to ``max_len``
    by repeatedly halving frequencies (the standard practical fallback; the
    loss versus package-merge is negligible for our skewed distributions).
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    if freqs.ndim != 1:
        raise ValueError("freqs must be 1-D")
    if (freqs < 0).any():
        raise ValueError("negative frequency")
    present = np.nonzero(freqs)[0]
    lengths = np.zeros(freqs.size, dtype=np.int64)
    if present.size == 0:
        return lengths
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths

    work = freqs.copy()
    while True:
        lens = _huffman_lengths_heap(work, present)
        if lens.max() <= max_len:
            lengths[present] = lens
            return lengths
        # Dampen: flattening the distribution shortens the deepest leaves.
        work[present] = np.maximum(work[present] >> 1, 1)


def _huffman_lengths_heap(freqs: np.ndarray, present: np.ndarray) -> np.ndarray:
    """Optimal (unlimited) Huffman code lengths for the present symbols."""
    # Heap items: (freq, tiebreak, node). Leaves are ints (position within
    # ``present``); internal nodes are [left, right] lists.
    heap: list[tuple[int, int, object]] = [
        (int(freqs[s]), i, i) for i, s in enumerate(present)
    ]
    heapq.heapify(heap)
    counter = present.size
    while len(heap) > 1:
        f1, _, n1 = heapq.heappop(heap)
        f2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (f1 + f2, counter, [n1, n2]))
        counter += 1
    lens = np.zeros(present.size, dtype=np.int64)
    # Iterative DFS assigning depth to each leaf.
    stack = [(heap[0][2], 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, list):
            stack.append((node[0], depth + 1))
            stack.append((node[1], depth + 1))
        else:
            lens[node] = depth
    return lens


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical code values given per-symbol code lengths.

    Symbols are ordered by (length, symbol id); codes increase sequentially,
    left-shifted when the length grows.  Returns a uint64 array parallel to
    ``lengths`` (entries with length 0 are unused).
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    codes = np.zeros(lengths.size, dtype=np.uint64)
    present = np.nonzero(lengths)[0]
    if present.size == 0:
        return codes
    order = present[np.argsort(lengths[present], kind="stable")]
    code = 0
    prev_len = int(lengths[order[0]])
    for sym in order:  # loop over *distinct* symbols only — small
        ln = int(lengths[sym])
        code <<= ln - prev_len
        codes[sym] = code
        code += 1
        prev_len = ln
    return codes


class HuffmanCodec:
    """Self-contained Huffman container: ``encode`` -> bytes -> ``decode``.

    The header stores the code-length table (sparse: only present symbols),
    the symbol count, and per-block bit offsets enabling lockstep decoding.
    """

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size

    # -- encoding ---------------------------------------------------------

    def encode(self, symbols: np.ndarray) -> bytes:
        symbols = np.ascontiguousarray(symbols).ravel()
        n = symbols.size
        if n == 0:
            return _MAGIC + struct.pack("<QII", 0, self.block_size, 0)
        if symbols.dtype != np.int64:
            symbols = symbols.astype(np.int64)
        # bincount scans the data once and rejects negatives as it goes, so
        # the frequency table, the alphabet bound and the sign guard all come
        # out of a single pass (no separate min()/max() sweeps).
        try:
            freqs = np.bincount(symbols)
        except ValueError:
            raise ValueError("symbols must be non-negative") from None
        lengths = huffman_code_lengths(freqs)
        codes = canonical_codes(lengths)

        sym_lengths = lengths[symbols]
        sym_codes = codes[symbols]
        bit_positions = np.empty(n + 1, dtype=np.int64)
        bit_positions[0] = 0
        np.cumsum(sym_lengths, out=bit_positions[1:])
        block_offsets = bit_positions[:-1:self.block_size].astype(np.uint64)
        total_bits = int(bit_positions[-1])

        from .bitstream import encode_codes_packed

        payload = encode_codes_packed(sym_codes, sym_lengths, bit_positions)

        present = np.nonzero(lengths)[0].astype(np.uint32)
        present_lens = lengths[present].astype(np.uint8)
        header = [
            _MAGIC,
            struct.pack("<QII", n, self.block_size, present.size),
            present.tobytes(),
            present_lens.tobytes(),
            struct.pack("<QQ", block_offsets.size, total_bits),
            block_offsets.tobytes(),
        ]
        return b"".join(header) + payload

    # -- decoding ---------------------------------------------------------

    def decode(self, data: bytes) -> np.ndarray:
        """Decode a Huffman container.

        Strict-validating: every header field is bounds-checked against the
        available bytes, the code-length table must satisfy the Kraft
        inequality (so the flat decode table cannot be indexed out of range),
        cursors are checked every lockstep step, and each block must land
        exactly on the next block's recorded bit offset.  Corrupt input
        raises :class:`~repro.errors.CorruptBlobError` /
        :class:`~repro.errors.TruncatedStreamError` in bounded time — never
        a hang, never a silently mis-shaped array.
        """
        if data[:4] != _MAGIC:
            raise CorruptBlobError("not a Huffman container")
        if len(data) < 20:
            raise TruncatedStreamError("Huffman container header truncated")
        off = 4
        n, block_size, n_present = struct.unpack_from("<QII", data, off)
        off += 16
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if block_size == 0:
            raise CorruptBlobError("Huffman container declares block size 0")
        if n_present == 0:
            raise CorruptBlobError(f"{n} symbols but an empty code table")
        if off + 5 * n_present + 16 > len(data):
            raise TruncatedStreamError("Huffman code table truncated")
        present = np.frombuffer(data, dtype=np.uint32, count=n_present, offset=off)
        off += 4 * n_present
        present_lens = np.frombuffer(data, dtype=np.uint8, count=n_present, offset=off)
        off += n_present
        n_blocks, total_bits = struct.unpack_from("<QQ", data, off)
        off += 16
        if n_blocks != (n + block_size - 1) // block_size:
            raise CorruptBlobError(
                f"{n_blocks} block offsets inconsistent with {n} symbols "
                f"in blocks of {block_size}"
            )
        if off + 8 * n_blocks > len(data):
            raise TruncatedStreamError("Huffman block-offset table truncated")
        block_offsets = np.frombuffer(data, dtype=np.uint64, count=n_blocks, offset=off)
        off += 8 * n_blocks
        if total_bits > 8 * (len(data) - off):
            raise TruncatedStreamError(
                f"Huffman payload declares {total_bits} bits, only "
                f"{8 * (len(data) - off)} present"
            )
        if n > max(total_bits, 1):
            raise CorruptBlobError(
                f"{n} symbols cannot fit in {total_bits} payload bits"
            )
        if (np.diff(block_offsets.astype(np.int64)) < 0).any() or (
            n_blocks and int(block_offsets[-1]) >= max(total_bits, 1)
        ):
            raise CorruptBlobError("Huffman block offsets out of order or range")

        if int(present_lens.min()) == 0 or int(present_lens.max()) > MAX_CODE_LEN:
            raise CorruptBlobError(
                f"Huffman code lengths outside [1, {MAX_CODE_LEN}]"
            )
        alphabet = int(present.max()) + 1
        lengths = np.zeros(alphabet, dtype=np.int64)
        lengths[present] = present_lens
        codes = canonical_codes(lengths)
        max_len = int(lengths.max())
        # Kraft inequality: an over-subscribed length table would assign
        # canonical codes past the table and corrupt the flat lookup
        if int((1 << (max_len - lengths[np.nonzero(lengths)[0]])).sum()) > (1 << max_len):
            raise CorruptBlobError("Huffman code-length table violates Kraft")

        # Flat decode table: for every max_len-bit window, the symbol whose
        # code prefixes it and that code's length.
        sym_table = np.zeros(1 << max_len, dtype=np.int64)
        len_table = np.zeros(1 << max_len, dtype=np.int64)
        psyms = np.nonzero(lengths)[0]
        for sym in psyms:  # loop over distinct symbols — small
            ln = int(lengths[sym])
            base = int(codes[sym]) << (max_len - ln)
            span = 1 << (max_len - ln)
            sym_table[base:base + span] = sym
            len_table[base:base + span] = ln

        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8, offset=off))
        bits = bits[:total_bits]
        # Pad so windows near the end stay in-bounds.
        bits = np.concatenate([bits, np.zeros(max_len, dtype=np.uint8)])

        # Window value at every bit position, built with one pass per bit.
        nbits = total_bits
        windows = np.zeros(nbits, dtype=np.uint32)
        for j in range(max_len):
            windows |= bits[j:j + nbits].astype(np.uint32) << np.uint32(max_len - 1 - j)
        sym_at = sym_table[windows]
        len_at = len_table[windows]

        # Lockstep block decode: one cursor per block, advanced together.
        out = np.empty(n, dtype=np.int64)
        cursors = block_offsets.astype(np.int64).copy()
        starts = np.arange(n_blocks, dtype=np.int64) * block_size
        sizes = np.minimum(block_size, n - starts)
        for step in range(int(sizes.max())):
            active = sizes > step
            cur = cursors[active]
            if cur.size and int(cur.max()) >= nbits:
                raise TruncatedStreamError(
                    "Huffman payload exhausted mid-block"
                )
            la = len_at[cur]
            if not la.all():
                raise CorruptBlobError(
                    "bit window matches no Huffman code (invalid prefix)"
                )
            out[starts[active] + step] = sym_at[cur]
            cursors[active] = cur + la
        # each block must land exactly where the next one starts — a decode
        # that drifted out of code alignment cannot satisfy this
        expected_ends = np.empty(n_blocks, dtype=np.int64)
        expected_ends[:-1] = block_offsets[1:].astype(np.int64)
        expected_ends[-1] = total_bits
        if not np.array_equal(cursors, expected_ends):
            raise CorruptBlobError("Huffman blocks misaligned after decode")
        return out
