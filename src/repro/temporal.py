"""Temporal compression for time-series volumes (RTM-style 4-D data).

Real SZ offers a time-dimension mode: each snapshot is predicted from the
*decoded* previous snapshot and only the residual is compressed, which pays
whenever consecutive snapshots are similar (a wavefront moves a few cells
per step).  Because the residual is formed against decoded data, errors do
not accumulate across time — every frame satisfies the point-wise bound
independently.

Frames are independent blobs inside one container, so any frame decodes
after decoding only its predecessors (or instantly for keyframes).
"""
from __future__ import annotations

import struct

import numpy as np

from .compressors import decompress_any, get_compressor, supports_qp
from .core.config import QPConfig
from .io.integrity import is_sealed, seal, unseal
from .obs import span

__all__ = ["TemporalCompressor"]

_MAGIC = b"RTMP"


class TemporalCompressor:
    """Compress a (time, *spatial) array with inter-frame prediction.

    ``keyframe_interval`` bounds random-access cost: every k-th frame is
    coded without temporal prediction.

    Satisfies the :class:`repro.compressors.Codec` protocol:
    ``compress(data, *, checksum=True)`` seals the frame container in the
    v1 integrity envelope, and ``decompress`` accepts both framings.
    """

    name = "temporal"

    def __init__(
        self,
        base: str,
        error_bound: float,
        keyframe_interval: int = 16,
        qp: QPConfig | None = None,
        **kwargs,
    ) -> None:
        if keyframe_interval < 1:
            raise ValueError("keyframe_interval must be >= 1")
        self.base = base
        self.error_bound = float(error_bound)
        self.keyframe_interval = keyframe_interval
        self.qp = qp or QPConfig.disabled()
        self.kwargs = kwargs

    def _compressor(self, adaptive=None):
        kwargs = dict(self.kwargs)
        if supports_qp(self.base):
            kwargs["qp"] = self.qp
        if adaptive is not None:
            from .compressors import constructor_accepts

            if not constructor_accepts(self.base, "adaptive"):
                raise ValueError(
                    f"compressor {self.base!r} does not support adaptive "
                    "quantization; drop the adaptive= argument"
                )
            kwargs["adaptive"] = adaptive
        return get_compressor(self.base, self.error_bound, **kwargs)

    def compress(
        self,
        data: np.ndarray,
        *,
        checksum: bool = False,
        auto: bool = False,
        adaptive=None,
    ) -> bytes:
        """Compress with the uniform Codec knob set.

        ``auto=True`` tunes the base compressor on the *first keyframe*
        and reuses that configuration for every subsequent frame —
        per-frame retuning would dominate the inter-frame savings.
        ``adaptive=`` forwards to the base compressor's constructor when
        its pipeline supports adaptive quantization.
        """
        data = np.asarray(data)
        if data.ndim < 2:
            raise ValueError("temporal compression needs a time axis plus space")
        comp = self._compressor(adaptive)
        if auto:
            comp = comp._tuned_for(np.ascontiguousarray(data[0]))
        blobs: list[bytes] = []
        prev_decoded: np.ndarray | None = None
        with span("temporal.compress", base=self.base, frames=data.shape[0]):
            for t in range(data.shape[0]):
                frame = np.ascontiguousarray(data[t])
                if prev_decoded is None or t % self.keyframe_interval == 0:
                    blob = comp.compress(frame)
                    decoded = decompress_any(blob)
                else:
                    residual = frame - prev_decoded
                    blob = comp.compress(residual)
                    decoded = prev_decoded + decompress_any(blob)
                blobs.append(blob)
                prev_decoded = decoded
        head = _MAGIC + struct.pack(
            "<IQ", self.keyframe_interval, data.shape[0]
        )
        body = b"".join(struct.pack("<Q", len(b)) + b for b in blobs)
        out = head + body
        return seal(out) if checksum else out

    def decompress(self, blob: bytes) -> np.ndarray:
        if is_sealed(blob):
            blob = unseal(blob)
        if blob[:4] != _MAGIC:
            raise ValueError("not a temporal container")
        key_int, n_frames = struct.unpack_from("<IQ", blob, 4)
        off = 16
        frames = []
        prev: np.ndarray | None = None
        with span("temporal.decompress", base=self.base, frames=n_frames):
            for t in range(n_frames):
                (size,) = struct.unpack_from("<Q", blob, off)
                off += 8
                part = decompress_any(blob[off:off + size])
                off += size
                if prev is None or t % key_int == 0:
                    decoded = part
                else:
                    decoded = prev + part
                frames.append(decoded)
                prev = decoded
        if off != len(blob):
            raise ValueError("temporal container corrupt")
        return np.stack(frames, axis=0)
