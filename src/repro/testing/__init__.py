"""Testing/fault-injection utilities shared by the test suite and the
``repro faults`` CLI subcommand."""
from .faults import (
    INJECTORS,
    FlakyLink,
    MatrixResult,
    flip_bits,
    inject,
    run_corruption_matrix,
    splice_garbage,
    tamper_header,
    truncate,
)

__all__ = [
    "INJECTORS",
    "FlakyLink",
    "MatrixResult",
    "flip_bits",
    "inject",
    "run_corruption_matrix",
    "splice_garbage",
    "tamper_header",
    "truncate",
]
