"""Seeded fault injectors and a flaky-link simulator.

Four injectors model the ways bytes actually go bad in a compress → write →
transfer → read → decompress pipeline:

``flip``      random bit flips (memory/link corruption);
``truncate``  the stream ends early (interrupted write, partial read);
``splice``    foreign bytes spliced into the middle (torn concurrent write,
              misdirected DMA);
``tamper``    the framing itself is scrambled (magic, version, length
              fields) — the header-attack case.

Each injector is a pure ``bytes -> bytes`` function driven by an explicit
seed, so every failure a test or the ``repro faults`` CLI reports is exactly
reproducible.  :func:`run_corruption_matrix` sweeps injectors × seeds over a
decode callable and records, per cell, whether the decoder raised a *typed*
:class:`repro.errors.ReproError` (the contract), raised something else, hung
past the deadline, or silently returned a value.

:class:`FlakyLink` is the seeded lossy channel the transfer-resilience tests
drive the retry pipeline with.
"""
from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..errors import ReproError, TransferFaultError

__all__ = [
    "flip_bits",
    "truncate",
    "splice_garbage",
    "tamper_header",
    "INJECTORS",
    "inject",
    "MatrixResult",
    "run_corruption_matrix",
    "FlakyLink",
]


def flip_bits(data: bytes, seed: int = 0, n_bits: int = 1) -> bytes:
    """Flip ``n_bits`` random bits (at least one byte changes)."""
    if not data:
        return data
    rng = np.random.default_rng(seed)
    buf = bytearray(data)
    for _ in range(max(1, n_bits)):
        pos = int(rng.integers(0, len(buf)))
        buf[pos] ^= 1 << int(rng.integers(0, 8))
    return bytes(buf)


def truncate(data: bytes, seed: int = 0, frac: float | None = None) -> bytes:
    """Drop the tail: keep a random (or ``frac``) prefix, always < full."""
    if not data:
        return data
    rng = np.random.default_rng(seed)
    if frac is None:
        keep = int(rng.integers(0, len(data)))
    else:
        keep = min(int(len(data) * frac), len(data) - 1)
    return data[:keep]


def splice_garbage(data: bytes, seed: int = 0, n_bytes: int = 16) -> bytes:
    """Insert random bytes at a random interior offset."""
    rng = np.random.default_rng(seed)
    pos = int(rng.integers(0, len(data) + 1)) if data else 0
    garbage = rng.integers(0, 256, size=max(1, n_bytes), dtype=np.uint8).tobytes()
    return data[:pos] + garbage + data[pos:]


def tamper_header(data: bytes, seed: int = 0, span: int = 24) -> bytes:
    """Scramble bytes inside the framing region (magic/version/length
    fields live in the first ~24 bytes of every repro container)."""
    if not data:
        return data
    rng = np.random.default_rng(seed)
    buf = bytearray(data)
    region = min(span, len(buf))
    n_hits = int(rng.integers(1, 5))
    for _ in range(n_hits):
        pos = int(rng.integers(0, region))
        buf[pos] = int(rng.integers(0, 256))
    if buf == bytearray(data):  # rolled the same values: force a change
        buf[0] ^= 0xFF
    return bytes(buf)


INJECTORS: dict[str, Callable[..., bytes]] = {
    "flip": flip_bits,
    "truncate": truncate,
    "splice": splice_garbage,
    "tamper": tamper_header,
}


def inject(data: bytes, kind: str, seed: int = 0, **kwargs: Any) -> bytes:
    """Apply the named injector; raises ``KeyError`` for unknown kinds."""
    if kind not in INJECTORS:
        raise KeyError(f"unknown injector {kind!r}; have {tuple(INJECTORS)}")
    return INJECTORS[kind](data, seed=seed, **kwargs)


# -- corruption matrix --------------------------------------------------------


@dataclass
class MatrixResult:
    """Outcome of one (injector, seed) cell of the corruption matrix.

    ``outcome`` is one of ``"typed"`` (decoder raised a
    :class:`~repro.errors.ReproError` — the contract), ``"untyped"`` (raised
    something else), ``"silent"`` (returned a value), or ``"unchanged"``
    (the injector produced identical bytes, nothing to test).
    """

    injector: str
    seed: int
    outcome: str
    elapsed_s: float
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome in ("typed", "unchanged")


def run_corruption_matrix(
    data: bytes,
    decode: Callable[[bytes], Any],
    injectors: dict[str, Callable[..., bytes]] | None = None,
    seeds: range | list[int] = range(3),
    deadline_s: float = 10.0,
) -> list[MatrixResult]:
    """Sweep every injector × seed over ``decode`` and classify outcomes.

    The deadline is checked *after* each decode returns — pure-Python
    decoders cannot be preempted — so a cell that overran is still reported
    (as ``detail="deadline exceeded"``) rather than aborting the sweep.
    """
    results = []
    for name, fn in (injectors or INJECTORS).items():
        for seed in seeds:
            corrupted = fn(data, seed=seed)
            if corrupted == data:
                results.append(MatrixResult(name, seed, "unchanged", 0.0))
                continue
            t0 = time.perf_counter()
            try:
                decode(corrupted)
            except ReproError as exc:
                outcome, detail = "typed", type(exc).__name__
            except Exception as exc:  # noqa: BLE001 — classification sweep
                outcome, detail = "untyped", f"{type(exc).__name__}: {exc}"
            else:
                outcome, detail = "silent", "decode returned a value"
            elapsed = time.perf_counter() - t0
            if elapsed > deadline_s:
                detail = (detail + "; deadline exceeded").lstrip("; ")
            results.append(MatrixResult(name, seed, outcome, elapsed, detail))
    return results


# -- flaky link ---------------------------------------------------------------


class FlakyLink:
    """Seeded lossy channel: ``link(name, payload) -> received bytes``.

    Each call either raises :class:`~repro.errors.TransferFaultError` (drop,
    probability ``fail_prob``), returns corrupted bytes (probability
    ``corrupt_prob``, using the seeded injectors), or returns the payload
    intact.  Per-slice attempt counts are recorded in ``attempts`` so tests
    can reconcile the pipeline's accounting against the faults actually
    injected.
    """

    def __init__(
        self,
        fail_prob: float = 0.2,
        corrupt_prob: float = 0.0,
        seed: int = 0,
        injector: str = "flip",
    ) -> None:
        if not 0.0 <= fail_prob <= 1.0 or not 0.0 <= corrupt_prob <= 1.0:
            raise ValueError("probabilities must be within [0, 1]")
        self.fail_prob = fail_prob
        self.corrupt_prob = corrupt_prob
        self.injector = injector
        self._rng = np.random.default_rng(seed)
        self.attempts: dict[str, int] = {}
        self.faults: dict[str, int] = {}

    def __call__(self, name: str, payload: bytes) -> bytes:
        self.attempts[name] = self.attempts.get(name, 0) + 1
        roll = float(self._rng.random())
        if roll < self.fail_prob:
            self.faults[name] = self.faults.get(name, 0) + 1
            raise TransferFaultError(f"link dropped slice {name!r}")
        if roll < self.fail_prob + self.corrupt_prob:
            self.faults[name] = self.faults.get(name, 0) + 1
            return inject(payload, self.injector, seed=int(self._rng.integers(2**31)))
        return payload
