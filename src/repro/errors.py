"""Typed exception hierarchy for corrupt, truncated, or unversioned streams.

Every decode path in the stack (blob container, entropy codecs, lossless
backends, archive reader, transfer pipeline) raises one of these instead of
a bare ``struct.error``/``ValueError``/``EOFError`` — callers can catch
:class:`ReproError` and know the input bytes, not the code, were at fault.

The hierarchy deliberately double-inherits from the builtin types older
callers already catch (``ValueError``, ``EOFError``, ``KeyError``), so
tightening a decoder never breaks an existing ``except ValueError`` site.

``CorruptBlobError``     payload bytes fail validation (bad magic, checksum
                         mismatch, inconsistent internal structure).
``TruncatedStreamError`` the stream ends before its declared content does.
``VersionError``         a valid container written by a format revision this
                         reader does not understand.
``IntegrityError``       a CRC/length check failed on otherwise well-formed
                         framing (a :class:`CorruptBlobError` refinement).
``CorruptArchiveError``  the ``RARC`` archive index/footer is unreadable.
``TransferError``        the resilient transfer pipeline's failures.
``PipelineSpecError``    a serialized pipeline spec fails validation.
``UnknownStageError``    a pipeline spec names a stage id no stage type claims.
``ServiceError``         the compression gateway's request failures; admission
                         rejections (rate limit, quota, queue full) are the
                         :class:`AdmissionError` refinements so clients can
                         back off on exactly those.
``TenantAccessError``    a request crossed a tenant's archive namespace.
"""
from __future__ import annotations

__all__ = [
    "ReproError",
    "CorruptBlobError",
    "TruncatedStreamError",
    "VersionError",
    "IntegrityError",
    "CorruptArchiveError",
    "TransferError",
    "TransferFaultError",
    "QuarantinedSliceError",
    "PipelineSpecError",
    "UnknownStageError",
    "ServiceError",
    "AdmissionError",
    "RateLimitedError",
    "QuotaExceededError",
    "QueueFullError",
    "ServiceClosedError",
    "ServiceRequestError",
    "TenantAccessError",
]


class ReproError(Exception):
    """Base class for every error raised on invalid repro-format input."""


class CorruptBlobError(ReproError, ValueError):
    """The bytes do not form a valid stream (bad magic, bad structure,
    checksum mismatch, impossible field values)."""


class TruncatedStreamError(CorruptBlobError, EOFError):
    """The stream is shorter than its own header/length fields declare."""


class VersionError(CorruptBlobError):
    """Well-formed container written by an unsupported format version."""


class IntegrityError(CorruptBlobError):
    """A CRC32 or declared-length check failed."""


class CorruptArchiveError(ReproError, ValueError):
    """The ``RARC`` archive footer/index cannot be read."""


class PipelineSpecError(CorruptBlobError):
    """A pipeline spec (in a header or built by hand) fails validation:
    wrong structure, malformed stage entries, or an unknown stage id."""


class UnknownStageError(PipelineSpecError, KeyError):
    """A pipeline spec names a stage id that no registered stage type
    claims.  Doubles as ``KeyError`` so registry-style callers can keep
    their existing ``except KeyError`` handling."""

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


class TransferError(ReproError):
    """Base class for resilient-transfer failures."""


class TransferFaultError(TransferError):
    """One transfer attempt failed (link fault, timeout, refused slice).

    Raised by channels to signal a retryable fault; the pipeline converts
    repeated faults into quarantine entries rather than propagating."""


class ServiceError(ReproError):
    """Base class for compression-gateway request failures.

    ``reason`` is a stable machine-readable tag (also the wire-format error
    code and the ``service.rejected{reason=...}`` metric label), so clients
    and dashboards never parse the human message."""

    reason = "service"


class AdmissionError(ServiceError):
    """The gateway refused to accept the request (backpressure).

    The request was never queued; retrying after a backoff is safe and
    side-effect free."""

    reason = "admission"


class RateLimitedError(AdmissionError):
    """The tenant's token bucket is empty (requests arriving faster than
    the provisioned rate)."""

    reason = "rate_limited"


class QuotaExceededError(AdmissionError):
    """The tenant already has ``max_inflight`` admitted requests."""

    reason = "quota"


class QueueFullError(AdmissionError):
    """The gateway's bounded dispatch queue is full (global backpressure)."""

    reason = "queue_full"


class ServiceClosedError(ServiceError):
    """The gateway is draining or stopped; no new work is accepted."""

    reason = "closed"


class ServiceRequestError(ServiceError, ValueError):
    """The request itself is invalid (unknown archive entry, malformed
    payload, unsupported spec) — retrying the same request cannot help."""

    reason = "bad_request"


class TenantAccessError(ServiceError):
    """The request would cross a tenant's archive namespace boundary
    (a name that escapes the tenant prefix, or a get for another
    tenant's entry).  Deliberately *not* an :class:`AdmissionError`:
    the request was understood and refused, so backoff-and-retry is
    pointless."""

    reason = "forbidden"


class QuarantinedSliceError(TransferError):
    """A slice exhausted its retry budget and was quarantined."""

    def __init__(self, name: str, attempts: int, last_error: str = "") -> None:
        self.name = name
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"slice {name!r} quarantined after {attempts} attempts"
            + (f": {last_error}" if last_error else "")
        )
