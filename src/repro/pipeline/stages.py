"""Concrete pipeline stages wrapping the existing kernels.

Every stage type satisfies the :class:`Stage` protocol —
``forward(ctx, payload)`` / ``inverse(ctx, payload)`` — and registers
itself under a stable id (:func:`repro.pipeline.spec.register_stage`), so
:class:`~repro.pipeline.spec.PipelineSpec` entries resolve to these
classes by name.  The payload types are stage-specific (arrays, byte
strings, ``(values, prediction)`` pairs); the :class:`StageContext`
carries the cross-cutting state a walk threads through the stages
(current level, quantizer sentinel, interpolation method, output dtype).

This module must stay importable without :mod:`repro.compressors` —
``compressors.base`` wires its entropy framing through the stage registry
here, so anything from that package is imported lazily inside methods.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

import numpy as np

from ..codecs import (
    HuffmanCodec,
    compress as lossless_compress,
    decompress as lossless_decompress,
)
from ..core.config import AdaptiveConfig, QPConfig
from ..core.qp import qp_forward, qp_inverse, qp_inverse_multi
from ..obs import metric_count, span as obs_span
from ..predictors.interpolation import predict_midpoints
from ..quantize.adaptive import AdaptiveLinearQuantizer
from ..quantize.linear import LinearQuantizer
from .spec import register_stage

__all__ = [
    "Stage",
    "StageContext",
    "InterpPredict",
    "LorenzoPredict",
    "RegressionPredict",
    "LinearQuantize",
    "AdaptiveLinearQuantize",
    "QPTransform",
    "HuffmanEncode",
    "RangeEncode",
    "ANSEncode",
    "LosslessBackend",
    "ZFPTransform",
    "TuckerFactorize",
    "CDF97Transform",
    "ENTROPY_STAGES",
    "STREAM_STAGE_GROUPS",
    "entropy_stage",
    "entropy_stage_for_wire_id",
]


@dataclass
class StageContext:
    """Mutable per-walk state shared across stage invocations."""

    level: int = 0
    sentinel: int = 0
    method: str = "linear"
    dtype: Any = None
    #: kernel backend name for compiled hot loops (None = env/auto; see
    #: :mod:`repro.kernels`) — per-stage ``backend`` params override it
    backend: str | None = None


@runtime_checkable
class Stage(Protocol):
    """The stage surface: a registered id plus a forward/inverse pair.

    ``inverse(ctx, forward(ctx, payload))`` round-trips the payload for
    transform-type stages; for lossy stages (quantize) the pair is the
    encode/decode relationship instead of exact inversion.
    """

    stage_id: str

    def forward(self, ctx: StageContext, payload: Any) -> Any:
        ...

    def inverse(self, ctx: StageContext, payload: Any) -> Any:
        ...


# -- prediction frontends -----------------------------------------------------


@register_stage("interp_predict")
class InterpPredict:
    """Multilevel interpolation prediction (SZ3/QoZ/HPEZ/MGARD frontend).

    ``forward(ctx, (arr, p))`` predicts pass ``p``'s target subgrid from
    the already-decoded neighbours in ``arr`` using ``ctx.method``; the
    engine driver owns the closed predict→quantize→overwrite loop, so
    prediction is its own inverse (the decoder sees identical inputs).
    """

    def __init__(
        self,
        interp: str = "auto",
        layout: str = "global",
        backend: str | None = None,
    ) -> None:
        self.interp = interp
        self.layout = layout
        self.backend = backend

    @staticmethod
    def pass_prediction(
        arr: np.ndarray, p: Any, method: str, backend: str | None = None
    ) -> np.ndarray:
        """Average of 1-D interpolations along each prediction axis, in the
        natural orientation of the pass's target subgrid."""
        shape = arr.shape
        pred_sum: np.ndarray | None = None
        for a in p.axes:
            known = arr[p.known_for(a)]
            n_targets = len(range(*p.target[a].indices(shape[a])))
            pred_a = predict_midpoints(
                np.moveaxis(known, a, 0), n_targets, method, backend
            )
            pred_a = np.moveaxis(pred_a, 0, a)
            pred_sum = pred_a if pred_sum is None else pred_sum + pred_a
        assert pred_sum is not None
        if len(p.axes) > 1:
            pred_sum = pred_sum / len(p.axes)
        return pred_sum

    @staticmethod
    def pass_prediction_stacked(
        arr_st: np.ndarray, p: Any, method: str, backend: str | None = None
    ) -> np.ndarray:
        """:meth:`pass_prediction` over a stack of volumes ``(N, *shape)``.

        The pass geometry addresses the per-volume axes, so every index is
        lifted by one; ``predict_midpoints`` treats all trailing axes as
        batch, which now includes the stack axis.
        """
        shape = arr_st.shape[1:]
        pred_sum: np.ndarray | None = None
        for a in p.axes:
            known = arr_st[(slice(None),) + p.known_for(a)]
            n_targets = len(range(*p.target[a].indices(shape[a])))
            pred_a = predict_midpoints(
                np.moveaxis(known, a + 1, 0), n_targets, method, backend
            )
            pred_a = np.moveaxis(pred_a, 0, a + 1)
            pred_sum = pred_a if pred_sum is None else pred_sum + pred_a
        assert pred_sum is not None
        if len(p.axes) > 1:
            pred_sum = pred_sum / len(p.axes)
        return pred_sum

    @classmethod
    def choose(cls, arr: np.ndarray, p: Any) -> tuple[str, np.ndarray]:
        """Auto interpolation selection: smaller L1 residual on this pass
        wins (SZ3's per-level linear-vs-cubic tuning).  Also returns the
        winning method's prediction for ``p`` so the caller can reuse it
        instead of recomputing the identical array."""
        actual = arr[p.target]
        best_method, best_err, best_pred = "linear", None, None
        for method in ("linear", "cubic"):
            pred = cls.pass_prediction(arr, p, method)
            err = float(np.abs(actual - pred).sum())
            if best_err is None or err < best_err:
                best_method, best_err, best_pred = method, err, pred
        assert best_pred is not None
        return best_method, best_pred

    def forward(self, ctx: StageContext, payload: Any) -> np.ndarray:
        arr, p = payload
        return self.pass_prediction(arr, p, ctx.method, self.backend or ctx.backend)

    inverse = forward


@register_stage("lorenzo_predict")
class LorenzoPredict:
    """Dual-quantization Lorenzo predictor (SZ3's alternate frontend)."""

    def __init__(
        self,
        error_bound: float = 0.0,
        radius: int = 32768,
        backend: str | None = None,
    ) -> None:
        self.error_bound = error_bound
        self.radius = radius
        self.backend = backend

    def forward(self, ctx: StageContext, data: np.ndarray) -> Any:
        from ..predictors.lorenzo import lorenzo_encode

        result, _ = lorenzo_encode(
            data, self.error_bound, self.radius, want_recon=False,
            backend=self.backend or ctx.backend,
        )
        return result

    def inverse(self, ctx: StageContext, result: Any) -> np.ndarray:
        from ..predictors.lorenzo import lorenzo_decode

        return lorenzo_decode(
            result, self.error_bound, ctx.dtype,
            backend=self.backend or ctx.backend,
        )


@register_stage("regression_predict")
class RegressionPredict:
    """SZ2-style per-block plane regression predictor."""

    def forward(self, ctx: StageContext, block: np.ndarray) -> Any:
        from ..predictors.regression import fit_plane, plane_prediction

        coeffs = fit_plane(block)
        return coeffs, plane_prediction(block.shape, coeffs).astype(block.dtype)

    def inverse(self, ctx: StageContext, payload: Any) -> np.ndarray:
        from ..predictors.regression import plane_prediction

        bshape, coeffs = payload
        return plane_prediction(bshape, coeffs).astype(ctx.dtype)


# -- quantization -------------------------------------------------------------


@register_stage("quantize")
class LinearQuantize:
    """Linear-scaling quantization with per-level error bounds.

    Owns the per-level :class:`~repro.quantize.linear.LinearQuantizer`
    construction every schedule walk used to duplicate: the quantizer for
    ``ctx.level`` uses ``error_bound * level_eb_factors.get(level, 1.0)``
    and is cached for the walk's lifetime.
    """

    def __init__(
        self,
        error_bound: float = 0.0,
        radius: int = 32768,
        level_eb_factors: dict[int, float] | None = None,
    ) -> None:
        self.error_bound = error_bound
        self.radius = radius
        self.level_eb_factors = dict(level_eb_factors or {})
        self._per_level: dict[int, LinearQuantizer] = {}

    @property
    def sentinel(self) -> int:
        """Unpredictable-value marker (level-independent: ``-radius``)."""
        return -self.radius

    def for_level(self, level: int) -> LinearQuantizer:
        q = self._per_level.get(level)
        if q is None:
            eb = self.error_bound * self.level_eb_factors.get(level, 1.0)
            q = LinearQuantizer(eb, self.radius)
            self._per_level[level] = q
        return q

    def forward(self, ctx: StageContext, payload: Any) -> Any:
        values, pred = payload
        return self.for_level(ctx.level).quantize(values, pred)

    def inverse(self, ctx: StageContext, payload: Any) -> np.ndarray:
        indices, pred, literals = payload
        return self.for_level(ctx.level).dequantize(indices, pred, literals)


@register_stage("adaptive_quantize")
class AdaptiveLinearQuantize:
    """Reserved-index adaptive quantization (tightened bound at hard points).

    Same shape as :class:`LinearQuantize` — per-level quantizer cache,
    ``(values, pred)`` forward / ``(indices, pred, literals)`` inverse —
    but the per-level quantizer is an
    :class:`~repro.quantize.adaptive.AdaptiveLinearQuantizer` that
    tightens the effective bound by ``2**adaptive_bits`` wherever the
    coarse index magnitude reaches ``threshold``, signalled in-band via
    the reserved index range (see :mod:`repro.quantize.adaptive` for the
    wire encoding).  A separate stage id keeps existing specs, headers,
    and golden digests byte-frozen: adaptivity is a new spec variant.
    """

    def __init__(
        self,
        error_bound: float = 0.0,
        radius: int = 32768,
        adaptive_bits: int = 2,
        threshold: int = 4,
        level_eb_factors: dict[int, float] | None = None,
        backend: str | None = None,
    ) -> None:
        # validate early — specs are built from untrusted headers
        AdaptiveConfig(bits=adaptive_bits, threshold=threshold)
        self.error_bound = error_bound
        self.radius = radius
        self.adaptive_bits = int(adaptive_bits)
        self.threshold = int(threshold)
        self.level_eb_factors = dict(level_eb_factors or {})
        self.backend = backend
        self._per_level: dict[int, AdaptiveLinearQuantizer] = {}

    @property
    def sentinel(self) -> int:
        return -self.radius

    def for_level(self, level: int) -> AdaptiveLinearQuantizer:
        q = self._per_level.get(level)
        if q is None:
            eb = self.error_bound * self.level_eb_factors.get(level, 1.0)
            q = AdaptiveLinearQuantizer(
                eb, self.radius, bits=self.adaptive_bits,
                threshold=self.threshold, backend=self.backend,
            )
            self._per_level[level] = q
        return q

    def forward(self, ctx: StageContext, payload: Any) -> Any:
        values, pred = payload
        quant = self.for_level(ctx.level)
        if quant.backend is None and ctx.backend is not None:
            quant.backend = ctx.backend
        result = quant.quantize(values, pred)
        metric_count("quantize.adaptive_points", quant.last_adaptive)
        metric_count("quantize.points", int(np.asarray(values).size))
        return result

    def inverse(self, ctx: StageContext, payload: Any) -> np.ndarray:
        indices, pred, literals = payload
        quant = self.for_level(ctx.level)
        if quant.backend is None and ctx.backend is not None:
            quant.backend = ctx.backend
        return quant.dequantize(indices, pred, literals)


# -- index-stream transforms --------------------------------------------------


@register_stage("qp")
class QPTransform:
    """Adaptive quantization index prediction (the paper's contribution).

    A pure transform on one pass's index array: the engine walks its
    index-transform stages without knowing any is QP.  The wrapped kernels
    already no-op outside the configured case/levels, so the stage is
    always present in QP-capable pipelines and its config decides
    activity.  ``inverse_multi`` batches the wavefront inverse across a
    stack of equal-schedule volumes (the slab-parallel decode path).
    """

    #: engine-meta key this transform round-trips its config through
    meta_key = "qp"

    def __init__(
        self,
        config: QPConfig | dict | None = None,
        backend: str | None = None,
    ) -> None:
        if isinstance(config, dict):
            config = QPConfig.from_dict(config)
        self.config = config or QPConfig.disabled()
        self.backend = backend

    def forward(self, ctx: StageContext, q: np.ndarray) -> np.ndarray:
        with obs_span("qp"):
            return qp_forward(q, ctx.sentinel, self.config, ctx.level)

    def inverse(self, ctx: StageContext, q: np.ndarray) -> np.ndarray:
        with obs_span("qp"):
            return qp_inverse(
                q, ctx.sentinel, self.config, ctx.level,
                self.backend or ctx.backend,
            )

    def inverse_multi(
        self, ctx: StageContext, qs: "list[np.ndarray]"
    ) -> np.ndarray:
        with obs_span("qp"):
            return qp_inverse_multi(
                qs, ctx.sentinel, self.config, ctx.level,
                self.backend or ctx.backend,
            )


# -- entropy coding -----------------------------------------------------------


@register_stage("huffman")
class HuffmanEncode:
    """Block-wise canonical Huffman over a bounded symbol alphabet.

    ``bounded_alphabet`` tells the index-stream framing to apply its
    median-centered offset window + escape mechanism before coding.
    Spans are owned by the framing layer (``compressors.base``), which
    times the whole entropy group — including the joint multi-stream
    lockstep decode — as one ``huffman`` stage.
    """

    wire_id = 0
    bounded_alphabet = True

    def __init__(
        self, block_size: int | None = None, backend: str | None = None
    ) -> None:
        self.block_size = block_size
        self.backend = backend

    def _codec(self) -> HuffmanCodec:
        if self.block_size:
            return HuffmanCodec(self.block_size, backend=self.backend)
        return HuffmanCodec(backend=self.backend)

    def forward(self, ctx: StageContext, codes: np.ndarray) -> bytes:
        return self._codec().encode(codes)

    def inverse(self, ctx: StageContext, payload: bytes) -> np.ndarray:
        return self._codec().decode_many([payload])[0]

    @staticmethod
    def decode_many(payloads: "list[bytes]") -> "list[np.ndarray]":
        """Joint lockstep decode: one Python-level block loop for the
        whole batch (headers carry each stream's own block size)."""
        return HuffmanCodec().decode_many(payloads)


@register_stage("range")
class RangeEncode:
    """Adaptive binary range coder (SZ3's arithmetic-coding option).

    Zigzag binarization handles signed values of any magnitude natively,
    so no alphabet window or escapes are needed (``bounded_alphabet``)."""

    wire_id = 1
    bounded_alphabet = False

    def __init__(self, block_size: int | None = None) -> None:
        # accepted for interface symmetry with HuffmanEncode; unused
        self.block_size = block_size

    def forward(self, ctx: StageContext, codes: np.ndarray) -> bytes:
        from ..codecs.rangecoder import RangeCodec

        return RangeCodec().encode(codes)

    def inverse(self, ctx: StageContext, payload: bytes) -> np.ndarray:
        from ..codecs.rangecoder import RangeCodec

        return RangeCodec().decode(payload)

    @staticmethod
    def decode_many(payloads: "list[bytes]") -> "list[np.ndarray]":
        from ..codecs.rangecoder import RangeCodec

        return [RangeCodec().decode(p) for p in payloads]


@register_stage("ans")
class ANSEncode:
    """Static rANS over a bounded symbol alphabet (see :mod:`..codecs.ans`).

    Table-driven like Huffman (so it shares the framing's offset-window +
    escape treatment via ``bounded_alphabet``) but with a one-gather decode
    step instead of a bit-serial code-length walk.  New wire id: existing
    Huffman/range containers are untouched, and decode dispatch is driven
    by the wire byte, so a spec variant selecting ``ans`` round-trips
    without any header version bump.
    """

    wire_id = 2
    bounded_alphabet = True

    def __init__(
        self, block_size: int | None = None, backend: str | None = None
    ) -> None:
        self.block_size = block_size
        # accepted for interface symmetry; the rANS loops are numpy-only
        self.backend = backend

    def _codec(self):
        from ..codecs.ans import ANSCodec

        return ANSCodec(self.block_size) if self.block_size else ANSCodec()

    def forward(self, ctx: StageContext, codes: np.ndarray) -> bytes:
        return self._codec().encode(codes)

    def inverse(self, ctx: StageContext, payload: bytes) -> np.ndarray:
        return self._codec().decode(payload)

    @staticmethod
    def decode_many(payloads: "list[bytes]") -> "list[np.ndarray]":
        from ..codecs.ans import ANSCodec

        return ANSCodec().decode_many(payloads)


#: entropy stages by name — the only stages with a wire id, i.e. valid for
#: the index-stream framing's leading dispatch byte
ENTROPY_STAGES: dict[str, type] = {
    "huffman": HuffmanEncode,
    "range": RangeEncode,
    "ans": ANSEncode,
}


def entropy_stage(name: str) -> type:
    """Entropy stage type by name; ``ValueError`` keeps the historical
    ``encode_index_stream`` contract for unknown names."""
    if name not in ENTROPY_STAGES:
        raise ValueError(f"entropy must be one of {tuple(ENTROPY_STAGES)}")
    return ENTROPY_STAGES[name]


def entropy_stage_for_wire_id(wire_id: int) -> type | None:
    for cls in ENTROPY_STAGES.values():
        if cls.wire_id == wire_id:
            return cls
    return None


#: how the fine-grained stage graph partitions onto the streaming thread
#: pipeline (``repro.streaming``): *front* stages run per slab in the
#: producer threads (predict + quantize + index transforms, i.e. everything
#: up to the engine's ``(stream, literals, anchors)`` seam), *entropy*
#: stages run in the dedicated coder thread that overlaps the next slab's
#: front work.  Every registered stage that appears in a compressor
#: pipeline must be claimed by exactly one group — the streaming-surface
#: lint (``tools/check_api.py::check_streaming``) enforces this, so adding
#: a stage forces a decision about where it executes in streaming mode.
STREAM_STAGE_GROUPS: dict[str, frozenset[str]] = {
    "front": frozenset(
        {
            "interp_predict",
            "lorenzo_predict",
            "regression_predict",
            "quantize",
            "adaptive_quantize",
            "qp",
            "zfp_transform",
            "tucker",
            "cdf97",
        }
    ),
    "entropy": frozenset({"huffman", "range", "ans", "lossless"}),
}


# -- byte-stream backend ------------------------------------------------------


@register_stage("lossless")
class LosslessBackend:
    """Named lossless byte-stream backend (zlib/lz77/raw/...)."""

    def __init__(self, backend: str = "zlib") -> None:
        self.backend = backend

    def forward(self, ctx: StageContext, data: bytes) -> bytes:
        return lossless_compress(data, self.backend)

    def inverse(self, ctx: StageContext, data: bytes) -> bytes:
        return lossless_decompress(data)


# -- transform-family frontends ----------------------------------------------
#
# The non-interpolation compressors decorrelate with a transform instead of
# a predictor; wrapping those kernels keeps every registered pipeline's
# stages resolvable (the ``tools/check_api.py`` pipeline lint) and gives
# new pipelines reusable building blocks.  Kernel imports are lazy — the
# kernels live in compressor modules that import ``compressors.base``,
# which imports this module.


@register_stage("zfp_transform")
class ZFPTransform:
    """ZFP's integer lifting transform over ``(nblocks, 4**ndim)`` blocks."""

    def forward(self, ctx: StageContext, payload: Any) -> np.ndarray:
        from ..compressors.zfp import _forward_transform

        blocks, ndim = payload
        return _forward_transform(blocks, ndim)

    def inverse(self, ctx: StageContext, payload: Any) -> np.ndarray:
        from ..compressors.zfp import _inverse_transform

        blocks, ndim = payload
        return _inverse_transform(blocks, ndim)


@register_stage("tucker")
class TuckerFactorize:
    """Tucker (HOSVD) mode products: core ↔ tensor against fixed factors."""

    def forward(self, ctx: StageContext, payload: Any) -> np.ndarray:
        from ..compressors.tthresh import _mode_multiply

        tensor, factors = payload
        for mode, u in enumerate(factors):
            tensor = _mode_multiply(tensor, u.T, mode)
        return tensor

    def inverse(self, ctx: StageContext, payload: Any) -> np.ndarray:
        from ..compressors.tthresh import _mode_multiply

        core, factors = payload
        for mode, u in enumerate(factors):
            core = _mode_multiply(core, u, mode)
        return core


@register_stage("cdf97")
class CDF97Transform:
    """Multi-level separable CDF 9/7 wavelet transform (SPERR frontend)."""

    def __init__(self, levels: int = 3) -> None:
        self.levels = levels

    def forward(self, ctx: StageContext, data: np.ndarray) -> np.ndarray:
        from ..compressors.sperr import cdf97_forward

        return cdf97_forward(data, self.levels)

    def inverse(self, ctx: StageContext, coeffs: np.ndarray) -> np.ndarray:
        from ..compressors.sperr import cdf97_inverse

        return cdf97_inverse(coeffs, self.levels)
