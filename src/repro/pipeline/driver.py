"""Spec-driven decode helpers shared by the interpolation compressors.

``spec_for_blob`` turns a parsed container header back into the
:class:`~repro.pipeline.spec.PipelineSpec` that produced it (the header
fields are the spec's canonical on-disk encoding — see
:mod:`repro.pipeline.spec`), so decoders dispatch by walking the spec's
stage ids instead of chains of per-compressor ``if`` tests.

``decode_engine_blob`` / ``engine_decode_item`` collapse the
literals/anchors section unpacking that SZ3, HPEZ and MGARD each used to
reimplement around :func:`~repro.compressors.interp_engine.decompress_volume`.
"""
from __future__ import annotations

from typing import Any

import numpy as np

from ..codecs import decompress as lossless_decompress
from ..utils.levels import anchor_slices
from .builders import pipeline
from .spec import PipelineSpec, StageSpec
from .stages import entropy_stage_for_wire_id

__all__ = [
    "spec_for_blob",
    "encode_engine_sections",
    "decode_engine_blob",
    "engine_decode_item",
]


def encode_engine_sections(
    stream: np.ndarray,
    literals: np.ndarray,
    anchors: np.ndarray,
    *,
    lossless_backend: str,
    entropy: str = "huffman",
    block_size: int | None = None,
) -> dict[str, bytes]:
    """Encode ``compress_volume`` output into the canonical engine blob
    sections (the inverse of :func:`_engine_sections`).

    One encode point shared by the in-memory ``_compress`` paths of SZ3,
    HPEZ and MGARD and by the streaming entropy stage
    (``Compressor._stream_entropy``), which is what makes streamed
    segments byte-identical to in-memory blobs.
    """
    from ..codecs import compress as lossless_compress
    from ..compressors.base import encode_index_stream

    return {
        "indices": encode_index_stream(
            stream, lossless_backend, entropy=entropy, block_size=block_size
        ),
        "literals": lossless_compress(literals.tobytes(), lossless_backend),
        "anchors": anchors.tobytes(),
    }


def spec_for_blob(
    header: dict[str, Any], sections: dict[str, bytes] | None = None
) -> PipelineSpec:
    """Derive the pipeline spec a blob was produced with from its header.

    The header's ``compressor`` name selects the registered pipeline and
    its ``derive`` hook maps the remaining fields (``predictor``,
    ``mode``, the engine meta's ``qp`` dict) onto stage params.  When
    ``sections`` are given, the entropy stage is refined from the wire id
    byte leading the index stream — the one spec datum that lives in a
    section rather than the header.
    """
    name = header.get("compressor")
    spec = pipeline(name).derive(header)
    if sections:
        keys = ["indices", "coeffs", "core"]
        # progressive blobs split the index stream per level; every level
        # uses the same entropy stage, so the first section is authoritative
        keys[:0] = (k for k in sections if k.startswith("indices:"))
        for key in keys:
            data = sections.get(key)
            if data:
                cls = entropy_stage_for_wire_id(data[0])
                if cls is not None and not spec.has_stage(cls.stage_id):
                    spec = _swap_entropy_stage(spec, cls.stage_id)
                break
    return spec


def _swap_entropy_stage(spec: PipelineSpec, stage_id: str) -> PipelineSpec:
    from .stages import ENTROPY_STAGES

    entropy_ids = {cls.stage_id for cls in ENTROPY_STAGES.values()}
    stages = tuple(
        StageSpec(stage_id, dict(s.params)) if s.stage in entropy_ids else s
        for s in spec.stages
    )
    return PipelineSpec(spec.name, stages)


# -- shared engine-blob decode ------------------------------------------------


def _engine_sections(
    blob: Any, stream: "np.ndarray | None"
) -> tuple[dict[str, Any], np.ndarray, np.ndarray, np.ndarray, tuple[int, ...], np.dtype]:
    """Unpack an engine-produced blob's sections into
    ``(meta, stream, literals, anchors, shape, dtype)``."""
    from ..compressors.base import decode_index_stream

    header = blob.header
    shape = tuple(header["shape"])
    dtype = np.dtype(header["dtype"])
    if stream is None:
        stream = decode_index_stream(blob.sections["indices"])
    literals = np.frombuffer(
        lossless_decompress(blob.sections["literals"]), dtype=dtype
    )
    a_shape = tuple(
        len(range(*sl.indices(n))) for sl, n in zip(anchor_slices(shape), shape)
    )
    anchors = np.frombuffer(blob.sections["anchors"], dtype=dtype).reshape(a_shape)
    return header["engine"], stream, literals, anchors, shape, dtype


def decode_engine_blob(
    blob: Any,
    stream: "np.ndarray | None" = None,
    stop_level: int = 0,
) -> np.ndarray:
    """Decode a blob whose payload came from ``compress_volume``.

    ``stream`` may carry an already entropy-decoded index stream (the
    batched path decodes all streams jointly first); ``stop_level``
    truncates the schedule for resolution reduction (MGARD).
    """
    from ..compressors.interp_engine import decompress_volume

    meta, stream, literals, anchors, shape, dtype = _engine_sections(blob, stream)
    return decompress_volume(
        meta, stream, literals, anchors, shape, dtype,
        blob.header["error_bound"], stop_level=stop_level,
    )


def engine_decode_item(
    blob: Any, stream: np.ndarray
) -> tuple[dict[str, Any], np.ndarray, np.ndarray, np.ndarray, tuple[int, ...], np.dtype, float]:
    """One ``decompress_volumes`` work item from a parsed blob + its
    pre-decoded index stream."""
    meta, stream, literals, anchors, shape, dtype = _engine_sections(blob, stream)
    return (
        meta, stream, literals, anchors, shape, dtype,
        blob.header["error_bound"],
    )
