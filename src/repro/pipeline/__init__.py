"""Composable stage-pipeline layer.

Compressors are *configurations of stages*: a declarative
:class:`~repro.pipeline.spec.PipelineSpec` names an ordered list of stage
ids (each resolvable to a concrete :class:`~repro.pipeline.stages.Stage`
type) with per-stage params, and the named builders in
:mod:`repro.pipeline.builders` express every registered compressor that
way.  ``compressors.registry`` derives its listings and capability
queries from these registrations; blob decode derives the producing spec
back out of the container header
(:func:`~repro.pipeline.driver.spec_for_blob`).

Import layering: ``spec`` and ``stages`` sit below
:mod:`repro.compressors` (the compressor framework wires its entropy
framing and engine walks through them); ``driver`` sits above it, so it
is re-exported lazily here.
"""
from __future__ import annotations

from .builders import (
    RegisteredPipeline,
    pipeline,
    pipeline_spec,
    register_pipeline,
    registered_pipelines,
)
from .spec import (
    SPEC_HEADER_VERSION,
    PipelineSpec,
    StageSpec,
    register_stage,
    registered_stage_ids,
    resolve_stage,
)
from .stages import Stage, StageContext

__all__ = [
    "SPEC_HEADER_VERSION",
    "PipelineSpec",
    "StageSpec",
    "Stage",
    "StageContext",
    "register_stage",
    "resolve_stage",
    "registered_stage_ids",
    "RegisteredPipeline",
    "register_pipeline",
    "registered_pipelines",
    "pipeline",
    "pipeline_spec",
    "spec_for_blob",
    "decode_engine_blob",
    "engine_decode_item",
]

_DRIVER_EXPORTS = ("spec_for_blob", "decode_engine_blob", "engine_decode_item")


def __getattr__(name: str):
    # driver imports repro.compressors, which imports .stages from this
    # package — resolve lazily to keep the package importable from below
    if name in _DRIVER_EXPORTS:
        from . import driver

        return getattr(driver, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
