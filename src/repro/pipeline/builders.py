"""Named pipeline builders: every registered compressor as a PipelineSpec.

This module is the single source of truth for *which* compressors exist:
``compressors.registry`` derives its ``COMPRESSORS`` /
``INTERP_COMPRESSORS`` tuples and its capability queries (``supports_qp``
= "does the pipeline contain a ``qp`` stage?") from the registrations
here, so a new pipeline cannot silently miss the registry lists.

Each registration carries

* a builder producing the compressor's default :class:`PipelineSpec`,
* ``cls_path`` (``module:Class``) so the registry can construct the
  implementation without this module importing :mod:`repro.compressors`
  (the compressors import the pipeline layer, not the reverse), and
* a ``derive`` hook mapping a blob *header* to the spec that produced it
  (see :func:`repro.pipeline.driver.spec_for_blob`), which is how decode
  dispatch walks the spec instead of per-compressor ``if`` ladders.

Registration order defines registry order (kept identical to the
pre-pipeline tuples so every user-visible listing is unchanged).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .spec import PipelineSpec, StageSpec

__all__ = [
    "RegisteredPipeline",
    "register_pipeline",
    "registered_pipelines",
    "pipeline",
    "pipeline_spec",
]


@dataclass(frozen=True)
class RegisteredPipeline:
    name: str
    cls_path: str
    build: Callable[..., PipelineSpec]
    derive: Callable[[dict], PipelineSpec]


_PIPELINES: dict[str, RegisteredPipeline] = {}


def register_pipeline(
    name: str,
    cls_path: str,
    derive: Callable[[dict], PipelineSpec] | None = None,
) -> Callable[[Callable[..., PipelineSpec]], Callable[..., PipelineSpec]]:
    """Decorator: register ``fn`` as the named pipeline's spec builder."""

    def deco(fn: Callable[..., PipelineSpec]) -> Callable[..., PipelineSpec]:
        if name in _PIPELINES:
            raise ValueError(f"pipeline {name!r} already registered")
        _PIPELINES[name] = RegisteredPipeline(
            name=name,
            cls_path=cls_path,
            build=fn,
            derive=derive if derive is not None else (lambda header: fn()),
        )
        return fn

    return deco


def registered_pipelines() -> tuple[str, ...]:
    """Registered pipeline names, in registration order."""
    return tuple(_PIPELINES)


def pipeline(name: str) -> RegisteredPipeline:
    if name not in _PIPELINES:
        raise KeyError(
            f"unknown pipeline {name!r}; available: {tuple(_PIPELINES)}"
        )
    return _PIPELINES[name]


def pipeline_spec(name: str, **kwargs: Any) -> PipelineSpec:
    """Build the named pipeline's spec (default params unless overridden)."""
    return pipeline(name).build(**kwargs)


# -- shared stage stacks ------------------------------------------------------


def _qp_params(qp: dict | None) -> dict[str, Any]:
    return {"config": dict(qp)} if qp else {}


def _quantize_spec(adaptive: dict | None) -> StageSpec:
    """The quantize link of the chain: the classic ``quantize`` stage, or
    the ``adaptive_quantize`` variant when an adaptive config is present.
    Stage-id change, never a silent param change — existing specs (and
    their headers/digests) are untouched when ``adaptive`` is None."""
    if not adaptive:
        return StageSpec("quantize", {})
    return StageSpec(
        "adaptive_quantize",
        {
            "adaptive_bits": adaptive["bits"],
            "threshold": adaptive["threshold"],
        },
    )


def _interp_stack(
    *,
    interp: str = "auto",
    layout: str = "global",
    qp: dict | None = None,
    adaptive: dict | None = None,
    entropy: str = "huffman",
    backend: str = "zlib",
) -> tuple[StageSpec, ...]:
    """The shared engine's stage chain: predict → quantize → index
    transforms → entropy → lossless (Algorithm 1's insertion point for QP
    is between quantization and entropy coding)."""
    return (
        StageSpec("interp_predict", {"interp": interp, "layout": layout}),
        _quantize_spec(adaptive),
        StageSpec("qp", _qp_params(qp)),
        StageSpec(entropy, {}),
        StageSpec("lossless", {"backend": backend}),
    )


def _engine_qp(header: dict) -> dict | None:
    engine = header.get("engine")
    if isinstance(engine, dict):
        qp = engine.get("qp")
        if isinstance(qp, dict):
            return qp
    return None


def _engine_adaptive(header: dict) -> dict | None:
    engine = header.get("engine")
    if isinstance(engine, dict):
        adaptive = engine.get("adaptive")
        if isinstance(adaptive, dict):
            # validates bits/threshold with typed errors before the values
            # reach stage construction
            from ..core.config import AdaptiveConfig

            return AdaptiveConfig.from_dict(adaptive).to_dict()
    return None


# -- the seven registered compressors (registration order = registry order) --


def _derive_mgard(header: dict) -> PipelineSpec:
    return mgard_pipeline(
        qp=_engine_qp(header), adaptive=_engine_adaptive(header)
    )


@register_pipeline("mgard", "repro.compressors.mgard:MGARD", derive=_derive_mgard)
def mgard_pipeline(
    qp: dict | None = None, adaptive: dict | None = None
) -> PipelineSpec:
    return PipelineSpec(
        "mgard",
        _interp_stack(
            interp="linear", layout="multidim", qp=qp, adaptive=adaptive
        ),
    )


def _derive_sz3(header: dict) -> PipelineSpec:
    return sz3_pipeline(
        predictor=header.get("predictor", "interp"),
        qp=_engine_qp(header),
        adaptive=_engine_adaptive(header),
        entropy=header.get("entropy", "huffman"),
    )


@register_pipeline("sz3", "repro.compressors.sz3:SZ3", derive=_derive_sz3)
def sz3_pipeline(
    predictor: str = "interp",
    interp: str = "auto",
    qp: dict | None = None,
    adaptive: dict | None = None,
    entropy: str = "huffman",
) -> PipelineSpec:
    """SZ3's three frontends are three stage chains over shared tails; the
    ``predictor`` header field selects which one a blob used."""
    if predictor == "lorenzo":
        stages = (
            StageSpec("lorenzo_predict", {}),
            StageSpec(entropy, {}),
            StageSpec("lossless", {}),
        )
    elif predictor == "regression":
        stages = (
            StageSpec("regression_predict", {}),
            StageSpec("quantize", {}),
            StageSpec(entropy, {}),
            StageSpec("lossless", {}),
        )
    else:
        stages = _interp_stack(
            interp=interp, qp=qp, adaptive=adaptive, entropy=entropy
        )
    return PipelineSpec("sz3", stages)


def _derive_qoz(header: dict) -> PipelineSpec:
    return qoz_pipeline(
        qp=_engine_qp(header), adaptive=_engine_adaptive(header)
    )


@register_pipeline("qoz", "repro.compressors.qoz:QoZ", derive=_derive_qoz)
def qoz_pipeline(
    qp: dict | None = None, adaptive: dict | None = None
) -> PipelineSpec:
    return PipelineSpec("qoz", _interp_stack(qp=qp, adaptive=adaptive))


def _derive_hpez(header: dict) -> PipelineSpec:
    return hpez_pipeline(
        layout=header.get("mode", "global"),
        qp=_engine_qp(header),
        adaptive=_engine_adaptive(header),
    )


@register_pipeline("hpez", "repro.compressors.hpez:HPEZ", derive=_derive_hpez)
def hpez_pipeline(
    layout: str = "global",
    qp: dict | None = None,
    adaptive: dict | None = None,
) -> PipelineSpec:
    return PipelineSpec(
        "hpez", _interp_stack(layout=layout, qp=qp, adaptive=adaptive)
    )


@register_pipeline("zfp", "repro.compressors.zfp:ZFP")
def zfp_pipeline() -> PipelineSpec:
    return PipelineSpec(
        "zfp",
        (
            StageSpec("zfp_transform", {}),
            StageSpec("huffman", {}),
            StageSpec("lossless", {}),
        ),
    )


@register_pipeline("tthresh", "repro.compressors.tthresh:TTHRESH")
def tthresh_pipeline() -> PipelineSpec:
    return PipelineSpec(
        "tthresh",
        (
            StageSpec("tucker", {}),
            StageSpec("quantize", {}),
            StageSpec("huffman", {}),
            StageSpec("lossless", {}),
        ),
    )


def _derive_sperr(header: dict) -> PipelineSpec:
    qp = header.get("qp")
    return sperr_pipeline(qp=qp if isinstance(qp, dict) else None)


@register_pipeline("sperr", "repro.compressors.sperr:SPERR", derive=_derive_sperr)
def sperr_pipeline(qp: dict | None = None) -> PipelineSpec:
    return PipelineSpec(
        "sperr",
        (
            StageSpec("cdf97", {}),
            StageSpec("quantize", {}),
            StageSpec("qp", _qp_params(qp)),
            StageSpec("huffman", {}),
            StageSpec("lossless", {}),
        ),
    )


def _derive_sz3_progressive(header: dict) -> PipelineSpec:
    return sz3_progressive_pipeline(
        qp=_engine_qp(header),
        adaptive=_engine_adaptive(header),
        entropy=header.get("entropy", "huffman"),
    )


@register_pipeline(
    "sz3_progressive",
    "repro.compressors.progressive:SZ3Progressive",
    derive=_derive_sz3_progressive,
)
def sz3_progressive_pipeline(
    interp: str = "auto",
    qp: dict | None = None,
    adaptive: dict | None = None,
    entropy: str = "huffman",
) -> PipelineSpec:
    """Level-ordered SZ3: same interp stage chain, but the entropy and
    lossless stages run once per interpolation level (coarse-first) so any
    level-aligned byte prefix decodes — see
    :mod:`repro.compressors.progressive`."""
    return PipelineSpec(
        "sz3_progressive",
        _interp_stack(interp=interp, qp=qp, adaptive=adaptive, entropy=entropy),
    )
