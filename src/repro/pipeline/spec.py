"""Declarative pipeline specs: ordered stage ids + per-stage params.

A :class:`PipelineSpec` describes a compressor as a *configuration of
stages* — ``[interp_predict, quantize, qp, huffman, lossless]`` — instead
of a forked code path.  Stage ids resolve to concrete stage types through
the registry in this module (stage types self-register via
:func:`register_stage` when :mod:`repro.pipeline.stages` is imported).

Serialization
-------------
Blobs are self-describing *without* a dedicated spec field: the container
header's existing fields (``compressor``, ``predictor``/``mode``, the
engine meta's ``qp`` dict, the entropy wire id leading each index stream)
are the canonical on-disk encoding of the pipeline, and
:func:`repro.pipeline.driver.spec_for_blob` derives the spec from them —
which is what keeps every golden container digest byte-identical across
the stage-pipeline refactor.  :meth:`PipelineSpec.to_header` /
:meth:`PipelineSpec.from_header` define the *explicit* versioned encoding
(used by tools, tests, and any future header revision that embeds it):
bump :data:`SPEC_HEADER_VERSION` whenever the encoded structure changes
shape, never for new stage types or params (those are additive).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..errors import PipelineSpecError, UnknownStageError, VersionError

__all__ = [
    "SPEC_HEADER_VERSION",
    "StageSpec",
    "PipelineSpec",
    "register_stage",
    "resolve_stage",
    "registered_stage_ids",
]

#: version of the explicit ``to_header``/``from_header`` encoding.  Bump on
#: structural change of the encoding (field renames, nesting changes), not
#: when adding stage types or stage params.
SPEC_HEADER_VERSION = 1

#: header key the explicit encoding lives under
SPEC_HEADER_KEY = "pipeline"


# -- stage-type registry ------------------------------------------------------

_STAGE_TYPES: dict[str, type] = {}


def register_stage(stage_id: str) -> Callable[[type], type]:
    """Class decorator: register a stage type under ``stage_id``.

    The id becomes the class's ``stage_id`` attribute and the key specs
    refer to it by.  Registration is idempotent for the same class and an
    error for two different classes claiming one id.
    """

    def deco(cls: type) -> type:
        prev = _STAGE_TYPES.get(stage_id)
        if prev is not None and prev is not cls:
            raise ValueError(
                f"stage id {stage_id!r} already registered to {prev.__name__}"
            )
        cls.stage_id = stage_id
        _STAGE_TYPES[stage_id] = cls
        return cls

    return deco


def _ensure_stages_loaded() -> None:
    # stage types live in .stages and self-register on import; importing
    # lazily keeps this module dependency-free for spec-only consumers
    from . import stages  # noqa: F401


def resolve_stage(stage_id: str) -> type:
    """Stage id -> registered stage type; :class:`UnknownStageError` if no
    stage type claims the id."""
    _ensure_stages_loaded()
    cls = _STAGE_TYPES.get(stage_id)
    if cls is None:
        raise UnknownStageError(
            f"unknown pipeline stage {stage_id!r}; "
            f"registered: {tuple(sorted(_STAGE_TYPES))}"
        )
    return cls


def registered_stage_ids() -> tuple[str, ...]:
    _ensure_stages_loaded()
    return tuple(sorted(_STAGE_TYPES))


# -- specs --------------------------------------------------------------------


@dataclass(frozen=True)
class StageSpec:
    """One stage in a pipeline: the stage-type id plus its parameters."""

    stage: str
    params: dict[str, Any] = field(default_factory=dict)

    def build(self) -> Any:
        """Instantiate the stage type with this spec's params."""
        return resolve_stage(self.stage)(**self.params)


@dataclass(frozen=True)
class PipelineSpec:
    """A compressor expressed as an ordered list of stage specs."""

    name: str
    stages: tuple[StageSpec, ...]

    def __iter__(self) -> Iterator[StageSpec]:
        return iter(self.stages)

    def stage_ids(self) -> tuple[str, ...]:
        return tuple(s.stage for s in self.stages)

    def has_stage(self, stage_id: str) -> bool:
        return any(s.stage == stage_id for s in self.stages)

    def stage(self, stage_id: str) -> StageSpec | None:
        """First stage spec with the given id, or ``None``."""
        for s in self.stages:
            if s.stage == stage_id:
                return s
        return None

    def validate(self) -> "PipelineSpec":
        """Check every stage id resolves; returns self for chaining."""
        for s in self.stages:
            resolve_stage(s.stage)
        return self

    # -- explicit serialization ----------------------------------------------

    def to_header(self) -> dict[str, Any]:
        """Versioned JSON-safe encoding (see module docs for when this is
        used versus the derived header-field encoding)."""
        return {
            "version": SPEC_HEADER_VERSION,
            "name": self.name,
            "stages": [[s.stage, dict(s.params)] for s in self.stages],
        }

    @classmethod
    def from_header(cls, encoded: Any) -> "PipelineSpec":
        """Parse and validate the :meth:`to_header` encoding.

        Raises :class:`~repro.errors.VersionError` for a structurally valid
        spec written by an unsupported encoding version,
        :class:`~repro.errors.UnknownStageError` for unregistered stage ids,
        and :class:`~repro.errors.PipelineSpecError` for anything malformed.
        """
        if not isinstance(encoded, dict):
            raise PipelineSpecError(
                f"pipeline spec must be a dict, got {type(encoded).__name__}"
            )
        version = encoded.get("version")
        if not isinstance(version, int):
            raise PipelineSpecError(
                f"pipeline spec has invalid version {version!r}"
            )
        if version != SPEC_HEADER_VERSION:
            raise VersionError(
                f"pipeline spec version {version} not supported "
                f"(this reader understands {SPEC_HEADER_VERSION})"
            )
        name = encoded.get("name")
        if not isinstance(name, str) or not name:
            raise PipelineSpecError(f"pipeline spec has invalid name {name!r}")
        raw_stages = encoded.get("stages")
        if not isinstance(raw_stages, list) or not raw_stages:
            raise PipelineSpecError("pipeline spec has no stages")
        stages = []
        for entry in raw_stages:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not isinstance(entry[0], str)
                or not isinstance(entry[1], dict)
            ):
                raise PipelineSpecError(f"malformed stage entry {entry!r}")
            stage_id, params = entry
            resolve_stage(stage_id)  # raises UnknownStageError
            stages.append(StageSpec(stage_id, dict(params)))
        return cls(name=name, stages=tuple(stages))
