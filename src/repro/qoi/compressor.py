"""QoI-preserving compression: spatially varying bounds over blocks.

The derived point-wise bound varies across the domain (e.g. ``SquareQoI``
allows large errors where ``|x|`` is small).  Error-bounded compressors take
one scalar bound, so the domain is tiled into blocks; each block is
compressed with the *minimum* derived bound inside it — conservative within
the block, adaptive across blocks, which is exactly the blockwise strategy
of the QoI literature the paper cites.  A verify-and-tighten loop guarantees
the QoI tolerance on the decoded output.
"""
from __future__ import annotations

import json
import struct
import warnings

import numpy as np

from ..compressors import decompress_any, get_compressor, supports_qp
from ..core.config import QPConfig
from ..errors import CorruptBlobError
from ..io.integrity import is_sealed, seal, unseal
from ..obs import span
from ..utils.blocks import iter_blocks
from .bounds import IsolineQoI, QoISpec

__all__ = ["QoIPreservingCompressor"]

#: legacy v1 container: bare block list, geometry supplied out of band
_MAGIC_V1 = b"RQOI"
#: v2 container: ``RQO2 | u32 hlen | JSON header | blocks`` — the header
#: carries shape/dtype/block geometry, so decompression is self-describing
_MAGIC = b"RQO2"


class QoIPreservingCompressor:
    """Wrap a base compressor with QoI-derived spatially varying bounds.

    Satisfies the :class:`repro.compressors.Codec` protocol: the v2
    container header carries the array geometry, so
    ``decompress(blob)`` needs no out-of-band ``shape`` (passing one is
    deprecated); ``compress(..., checksum=True)`` seals the container in
    the v1 integrity envelope.  The legacy shape-less ``RQOI`` format is
    retired: those bytes now raise a typed
    :class:`~repro.errors.CorruptBlobError` with a migration hint.

    Parameters
    ----------
    base:
        Registry name of the error-bounded compressor to use per block.
    qoi:
        The :class:`~repro.qoi.bounds.QoISpec` to preserve.
    tau:
        Tolerance on the QoI.
    block_side:
        Block size for the spatial adaptation.
    qp:
        Optional QP config forwarded to interpolation-based bases.
    """

    def __init__(
        self,
        base: str,
        qoi: QoISpec,
        tau: float,
        block_side: int = 32,
        qp: QPConfig | None = None,
    ) -> None:
        if tau <= 0:
            raise ValueError("tau must be positive")
        if block_side < 4:
            raise ValueError("block_side must be >= 4")
        self.base = base
        self.qoi = qoi
        self.tau = float(tau)
        self.block_side = block_side
        self.qp = qp

    @property
    def name(self) -> str:
        return f"qoi[{self.base}]"

    def _block_compressor(self, eb: float, adaptive=None):
        kwargs = {}
        if supports_qp(self.base):
            kwargs["qp"] = self.qp or QPConfig.disabled()
        if adaptive is not None:
            from ..compressors import constructor_accepts

            if not constructor_accepts(self.base, "adaptive"):
                raise ValueError(
                    f"compressor {self.base!r} does not support adaptive "
                    "quantization; drop the adaptive= argument"
                )
            kwargs["adaptive"] = adaptive
        return get_compressor(self.base, eb, **kwargs)

    def compress(
        self,
        data: np.ndarray,
        *,
        checksum: bool = False,
        auto: bool = False,
        adaptive=None,
    ) -> bytes:
        """Compress with the uniform Codec knob set.

        ``auto`` is accepted for conformance but is a no-op here: block
        bounds are already derived per block from the QoI, so there is no
        scalar configuration left for the sampling tuner to choose.
        ``adaptive=`` forwards to each block's base compressor when its
        pipeline supports adaptive quantization.
        """
        data = np.asarray(data)
        bounds = self.qoi.pointwise_bound(data, self.tau)
        blobs: list[bytes] = []
        recon = np.empty_like(data)
        with span("qoi.compress", base=self.base, block_side=self.block_side):
            for bslice in iter_blocks(data.shape, self.block_side):
                block = np.ascontiguousarray(data[bslice])
                eb = float(bounds[bslice].min())
                # verify-and-tighten: the derived bound is sufficient in exact
                # arithmetic; shrink on the rare violation from stacked
                # rounding
                for _ in range(8):
                    blob = self._block_compressor(eb, adaptive).compress(block)
                    out = decompress_any(blob)
                    if self._block_ok(block, out):
                        break
                    eb /= 2.0
                else:
                    raise RuntimeError("QoI bound could not be satisfied")
                blobs.append(blob)
                recon[bslice] = out
        qerr = self.qoi.error(data, recon)
        if isinstance(self.qoi, IsolineQoI):
            if not self.qoi.check(data, recon, self.tau):
                raise RuntimeError("isoline QoI violated after compression")
        elif qerr > self.tau * (1 + 1e-9):
            raise RuntimeError(f"QoI error {qerr} exceeds tau {self.tau}")
        header = json.dumps(
            {
                "shape": list(data.shape),
                "dtype": data.dtype.str,
                "block_side": self.block_side,
                "n_blocks": len(blobs),
            },
            separators=(",", ":"),
        ).encode()
        body = b"".join(struct.pack("<Q", len(b)) + b for b in blobs)
        out_bytes = _MAGIC + struct.pack("<I", len(header)) + header + body
        return seal(out_bytes) if checksum else out_bytes

    def _block_ok(self, block: np.ndarray, out: np.ndarray) -> bool:
        if isinstance(self.qoi, IsolineQoI):
            return self.qoi.check(block, out, self.tau)
        return self.qoi.error(block, out) <= self.tau * (1 + 1e-9)

    def decompress(
        self, blob: bytes, *, shape: tuple[int, ...] | None = None
    ) -> np.ndarray:
        if is_sealed(blob):
            blob = unseal(blob)
        if blob[:4] == _MAGIC:
            (hlen,) = struct.unpack_from("<I", blob, 4)
            header = json.loads(blob[8:8 + hlen].decode())
            if shape is not None:
                warnings.warn(
                    "QoIPreservingCompressor.decompress(blob, shape) is "
                    "deprecated for v2 containers: the shape is stored in "
                    "the blob header; drop the argument",
                    DeprecationWarning,
                    stacklevel=2,
                )
                if tuple(shape) != tuple(header["shape"]):
                    raise ValueError(
                        f"shape argument {tuple(shape)} contradicts the "
                        f"container header {tuple(header['shape'])}"
                    )
            out_shape = tuple(header["shape"])
            block_side = int(header["block_side"])
            n_blocks = int(header["n_blocks"])
            off = 8 + hlen
        elif blob[:4] == _MAGIC_V1:
            # the shape-less v1 path warned via DeprecationWarning for two
            # releases; it is now a typed rejection (see docs/api.md)
            raise CorruptBlobError(
                "the legacy shape-less RQOI container format has been "
                "retired; decode it with a pre-service release and "
                "re-compress to the self-describing RQO2 format"
            )
        else:
            raise CorruptBlobError("not a QoI container")
        out: np.ndarray | None = None
        with span("qoi.decompress", base=self.base, blocks=n_blocks):
            for i, bslice in enumerate(iter_blocks(out_shape, block_side)):
                if i >= n_blocks:
                    raise ValueError("block count mismatch")
                (size,) = struct.unpack_from("<Q", blob, off)
                off += 8
                block = decompress_any(blob[off:off + size])
                off += size
                if out is None:
                    out = np.empty(out_shape, dtype=block.dtype)
                out[bslice] = block
        if out is None or off != len(blob):
            raise ValueError("QoI container corrupt")
        return out
