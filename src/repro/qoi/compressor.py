"""QoI-preserving compression: spatially varying bounds over blocks.

The derived point-wise bound varies across the domain (e.g. ``SquareQoI``
allows large errors where ``|x|`` is small).  Error-bounded compressors take
one scalar bound, so the domain is tiled into blocks; each block is
compressed with the *minimum* derived bound inside it — conservative within
the block, adaptive across blocks, which is exactly the blockwise strategy
of the QoI literature the paper cites.  A verify-and-tighten loop guarantees
the QoI tolerance on the decoded output.
"""
from __future__ import annotations

import struct

import numpy as np

from ..compressors import decompress_any, get_compressor
from ..core.config import QPConfig
from ..utils.blocks import iter_blocks
from .bounds import IsolineQoI, QoISpec

__all__ = ["QoIPreservingCompressor"]

_MAGIC = b"RQOI"


class QoIPreservingCompressor:
    """Wrap a base compressor with QoI-derived spatially varying bounds.

    Parameters
    ----------
    base:
        Registry name of the error-bounded compressor to use per block.
    qoi:
        The :class:`~repro.qoi.bounds.QoISpec` to preserve.
    tau:
        Tolerance on the QoI.
    block_side:
        Block size for the spatial adaptation.
    qp:
        Optional QP config forwarded to interpolation-based bases.
    """

    def __init__(
        self,
        base: str,
        qoi: QoISpec,
        tau: float,
        block_side: int = 32,
        qp: QPConfig | None = None,
    ) -> None:
        if tau <= 0:
            raise ValueError("tau must be positive")
        if block_side < 4:
            raise ValueError("block_side must be >= 4")
        self.base = base
        self.qoi = qoi
        self.tau = float(tau)
        self.block_side = block_side
        self.qp = qp

    def _block_compressor(self, eb: float):
        kwargs = {}
        if self.base in ("mgard", "sz3", "qoz", "hpez", "sperr"):
            kwargs["qp"] = self.qp or QPConfig.disabled()
        return get_compressor(self.base, eb, **kwargs)

    def compress(self, data: np.ndarray) -> bytes:
        bounds = self.qoi.pointwise_bound(data, self.tau)
        blobs: list[bytes] = []
        recon = np.empty_like(data)
        for bslice in iter_blocks(data.shape, self.block_side):
            block = np.ascontiguousarray(data[bslice])
            eb = float(bounds[bslice].min())
            # verify-and-tighten: the derived bound is sufficient in exact
            # arithmetic; shrink on the rare violation from stacked rounding
            for _ in range(8):
                blob = self._block_compressor(eb).compress(block)
                out = decompress_any(blob)
                if self._block_ok(block, out):
                    break
                eb /= 2.0
            else:
                raise RuntimeError("QoI bound could not be satisfied")
            blobs.append(blob)
            recon[bslice] = out
        qerr = self.qoi.error(data, recon)
        if isinstance(self.qoi, IsolineQoI):
            if not self.qoi.check(data, recon, self.tau):
                raise RuntimeError("isoline QoI violated after compression")
        elif qerr > self.tau * (1 + 1e-9):
            raise RuntimeError(f"QoI error {qerr} exceeds tau {self.tau}")
        header = struct.pack("<I", len(blobs))
        body = b"".join(struct.pack("<Q", len(b)) + b for b in blobs)
        return _MAGIC + header + body

    def _block_ok(self, block: np.ndarray, out: np.ndarray) -> bool:
        if isinstance(self.qoi, IsolineQoI):
            return self.qoi.check(block, out, self.tau)
        return self.qoi.error(block, out) <= self.tau * (1 + 1e-9)

    def decompress(self, blob: bytes, shape: tuple[int, ...]) -> np.ndarray:
        if blob[:4] != _MAGIC:
            raise ValueError("not a QoI container")
        (n_blocks,) = struct.unpack_from("<I", blob, 4)
        off = 8
        out: np.ndarray | None = None
        for i, bslice in enumerate(iter_blocks(shape, self.block_side)):
            if i >= n_blocks:
                raise ValueError("block count mismatch")
            (size,) = struct.unpack_from("<Q", blob, off)
            off += 8
            block = decompress_any(blob[off:off + size])
            off += size
            if out is None:
                out = np.empty(shape, dtype=block.dtype)
            out[bslice] = block
        if out is None or off != len(blob):
            raise ValueError("QoI container corrupt")
        return out
