"""Quantity-of-interest (QoI) preservation via derived point-wise bounds.

Table I credits MGARD and SZ3 with QoI support; the mechanism (refs [16] and
[24] of the paper) converts a tolerance ``tau`` on a derived quantity
``f(x)`` into *point-wise* error bounds on the raw data that any
error-bounded compressor can enforce.  Each spec below derives the largest
point-wise bound that provably keeps ``|f(d) - f(d')| <= tau``.

Bounds are exact (not linearized) where a closed form exists:

* ``SquareQoI``    |d^2 - d'^2| <= tau  ⟺  |δ| <= sqrt(d^2 + tau) - |d|
* ``LogQoI``       |ln d - ln d'| <= tau ⟺ |δ| <= d (1 - e^-tau), d > 0
* ``IsolineQoI``   sign(d - c) preserved outside a tau-band around level c
* ``RegionalAverageQoI``  |avg(d) - avg(d')| <= tau via a uniform bound
"""
from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["QoISpec", "SquareQoI", "LogQoI", "IsolineQoI", "RegionalAverageQoI"]


class QoISpec(ABC):
    """A quantity of interest with a derivable point-wise bound."""

    #: registry/serialization key
    kind: str = ""

    @abstractmethod
    def pointwise_bound(self, data: np.ndarray, tau: float) -> np.ndarray:
        """Largest per-point error bound that keeps the QoI within ``tau``."""

    @abstractmethod
    def error(self, original: np.ndarray, decoded: np.ndarray) -> float:
        """Achieved QoI error (for verification)."""


class SquareQoI(QoISpec):
    """Preserve ``x**2`` (kinetic energy from velocity, etc.)."""

    kind = "square"

    def pointwise_bound(self, data: np.ndarray, tau: float) -> np.ndarray:
        if tau <= 0:
            raise ValueError("tau must be positive")
        a = np.abs(data.astype(np.float64))
        return np.sqrt(a * a + tau) - a

    def error(self, original: np.ndarray, decoded: np.ndarray) -> float:
        return float(
            np.abs(original.astype(np.float64) ** 2 - decoded.astype(np.float64) ** 2).max()
        )


class LogQoI(QoISpec):
    """Preserve ``ln(x)`` for strictly positive data."""

    kind = "log"

    def pointwise_bound(self, data: np.ndarray, tau: float) -> np.ndarray:
        if tau <= 0:
            raise ValueError("tau must be positive")
        d = data.astype(np.float64)
        if (d <= 0).any():
            raise ValueError("LogQoI requires strictly positive data")
        return d * (1.0 - np.exp(-tau))

    def error(self, original: np.ndarray, decoded: np.ndarray) -> float:
        a = original.astype(np.float64)
        b = decoded.astype(np.float64)
        if (b <= 0).any():
            return float("inf")
        return float(np.abs(np.log(a) - np.log(b)).max())


class IsolineQoI(QoISpec):
    """Preserve the isosurface/isoline of level ``c``: every point at distance
    more than ``tau`` from the level keeps its side; points inside the band
    get the tight bound ``tau`` (so they cannot jump across by more than the
    band width)."""

    kind = "isoline"

    def __init__(self, level: float) -> None:
        self.level = float(level)

    def pointwise_bound(self, data: np.ndarray, tau: float) -> np.ndarray:
        if tau <= 0:
            raise ValueError("tau must be positive")
        dist = np.abs(data.astype(np.float64) - self.level)
        return np.maximum(dist, tau)

    def error(self, original: np.ndarray, decoded: np.ndarray) -> float:
        """Fraction-weighted violation: points farther than tau from the
        level that flipped sides.  Returns 0.0 when the isoline is preserved
        (the compressor loop treats any nonzero as a violation)."""
        a = original.astype(np.float64) - self.level
        b = decoded.astype(np.float64) - self.level
        flipped = (np.sign(a) != np.sign(b)) & (np.abs(a) > 0)
        return float(flipped.mean())

    def check(self, original: np.ndarray, decoded: np.ndarray, tau: float) -> bool:
        a = original.astype(np.float64) - self.level
        b = decoded.astype(np.float64) - self.level
        outside = np.abs(a) > tau
        return bool((np.sign(a[outside]) == np.sign(b[outside])).all())


class RegionalAverageQoI(QoISpec):
    """Preserve the mean over the whole domain (or a region) to ``tau``.

    The mean of N point-wise errors each bounded by ``tau`` is itself bounded
    by ``tau``; a uniform point-wise bound of ``tau`` therefore suffices (and
    in practice quantization errors average out far below it).
    """

    kind = "regional-average"

    def __init__(self, region: tuple[slice, ...] | None = None) -> None:
        self.region = region

    def _view(self, data: np.ndarray) -> np.ndarray:
        return data[self.region] if self.region is not None else data

    def pointwise_bound(self, data: np.ndarray, tau: float) -> np.ndarray:
        if tau <= 0:
            raise ValueError("tau must be positive")
        return np.full(data.shape, tau, dtype=np.float64)

    def error(self, original: np.ndarray, decoded: np.ndarray) -> float:
        a = self._view(original).astype(np.float64)
        b = self._view(decoded).astype(np.float64)
        return float(abs(a.mean() - b.mean()))
