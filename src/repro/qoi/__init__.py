"""Quantity-of-interest preserving compression (Table I's QoI column)."""
from .bounds import IsolineQoI, LogQoI, QoISpec, RegionalAverageQoI, SquareQoI
from .compressor import QoIPreservingCompressor

__all__ = [
    "QoISpec",
    "SquareQoI",
    "LogQoI",
    "IsolineQoI",
    "RegionalAverageQoI",
    "QoIPreservingCompressor",
]
