"""End-to-end parallel data-transfer pipeline (Section VI-E).

The paper compresses 3600 RTM slices embarrassingly in parallel, writes the
compressed data, moves it over a Globus link (461.75 MB/s measured), reads it
back, and decompresses — on 225 to 1800 cores.  This module reproduces that
experiment as measurement + model:

* **measurement**: per-slice compression/decompression times and sizes are
  measured on the real substrate, optionally across worker processes
  (owner-computes slab decomposition, mpi4py-style);
* **model**: strong-scaling stage times for any core count — compute stages
  scale with cores, bandwidth stages (write / transfer / read) do not.

The model is what makes the paper's headline claim testable here: QP wins
end-to-end whenever the link is the bottleneck, and the win shrinks as
bandwidth grows (the paper's 16% -> 11% observation).
"""
from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

__all__ = [
    "LinkConfig",
    "SliceMeasurement",
    "measure_slices",
    "PipelineTimes",
    "simulate_pipeline",
]

#: bandwidth the paper measured on the MCC<->Anvil Globus link
PAPER_LINK_MBS = 461.75


@dataclass(frozen=True)
class LinkConfig:
    """Bandwidths of the pipeline's I/O stages, in MB/s (1e6 bytes)."""

    link_mbs: float = PAPER_LINK_MBS
    fs_write_mbs: float = 2000.0
    fs_read_mbs: float = 2000.0


@dataclass
class SliceMeasurement:
    """Aggregate measurement over the compressed slices."""

    n_slices: int
    raw_bytes: int
    compressed_bytes: int
    compress_seconds: float  # total CPU seconds across slices
    decompress_seconds: float

    @property
    def cr(self) -> float:
        return self.raw_bytes / self.compressed_bytes


def _work_one(args) -> tuple[int, float, float]:
    """Worker: compress+decompress one slice, return (size, t_comp, t_dec)."""
    data, name, error_bound, qp_dict, extra = args
    from ..compressors import get_compressor
    from ..core.config import QPConfig

    kwargs = dict(extra)
    if name in ("sz3", "qoz", "hpez", "mgard"):
        kwargs["qp"] = QPConfig.from_dict(qp_dict)
    comp = get_compressor(name, error_bound, **kwargs)
    t0 = time.perf_counter()
    blob = comp.compress(data)
    t1 = time.perf_counter()
    comp.decompress(blob)
    t2 = time.perf_counter()
    return len(blob), t1 - t0, t2 - t1


def measure_slices(
    slices: list[np.ndarray],
    compressor: str,
    error_bound: float,
    qp=None,
    workers: int = 0,
    **comp_kwargs,
) -> SliceMeasurement:
    """Compress every slice (serially or over ``workers`` processes) and
    aggregate sizes and CPU times.  Extra kwargs go to the compressor
    constructor (e.g. ``predictor="interp"``)."""
    from ..core.config import QPConfig

    qp_dict = (qp or QPConfig.disabled()).to_dict()
    jobs = [(s, compressor, error_bound, qp_dict, comp_kwargs) for s in slices]
    if workers and workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_work_one, jobs))
    else:
        results = [_work_one(j) for j in jobs]
    sizes, t_comp, t_dec = zip(*results)
    return SliceMeasurement(
        n_slices=len(slices),
        raw_bytes=int(sum(s.nbytes for s in slices)),
        compressed_bytes=int(sum(sizes)),
        compress_seconds=float(sum(t_comp)),
        decompress_seconds=float(sum(t_dec)),
    )


@dataclass
class PipelineTimes:
    """Stage times (seconds) of one end-to-end transfer configuration."""

    cores: int
    compress: float
    write: float
    transfer: float
    read: float
    decompress: float

    @property
    def total(self) -> float:
        return self.compress + self.write + self.transfer + self.read + self.decompress

    def row(self) -> dict[str, float]:
        return {
            "cores": self.cores,
            "compress": round(self.compress, 3),
            "write": round(self.write, 3),
            "transfer": round(self.transfer, 3),
            "read": round(self.read, 3),
            "decompress": round(self.decompress, 3),
            "total": round(self.total, 3),
        }


def simulate_pipeline(
    m: SliceMeasurement,
    cores: int,
    link: LinkConfig = LinkConfig(),
    scale_to_slices: int | None = None,
) -> PipelineTimes:
    """Strong-scaling pipeline model from measured per-slice costs.

    ``scale_to_slices`` linearly extrapolates the measured subset to the
    paper's full slice count (3600 for RTM); compute stages divide by the
    core count (embarrassingly parallel), bandwidth stages do not.
    """
    if cores <= 0:
        raise ValueError("cores must be positive")
    factor = 1.0 if scale_to_slices is None else scale_to_slices / m.n_slices
    comp_total = m.compress_seconds * factor
    dec_total = m.decompress_seconds * factor
    cbytes = m.compressed_bytes * factor
    return PipelineTimes(
        cores=cores,
        compress=comp_total / cores,
        write=cbytes / 1e6 / link.fs_write_mbs,
        transfer=cbytes / 1e6 / link.link_mbs,
        read=cbytes / 1e6 / link.fs_read_mbs,
        decompress=dec_total / cores,
    )


def vanilla_transfer_seconds(
    raw_bytes: int, link: LinkConfig = LinkConfig(), scale: float = 1.0
) -> float:
    """Time to move the uncompressed data over the link (the paper's
    23m29s baseline for RTM)."""
    return raw_bytes * scale / 1e6 / link.link_mbs
