"""End-to-end parallel data-transfer pipeline (Section VI-E).

The paper compresses 3600 RTM slices embarrassingly in parallel, writes the
compressed data, moves it over a Globus link (461.75 MB/s measured), reads it
back, and decompresses — on 225 to 1800 cores.  This module reproduces that
experiment as measurement + model:

* **measurement**: per-slice compression/decompression times and sizes are
  measured on the real substrate, optionally across worker processes
  (owner-computes slab decomposition, mpi4py-style);
* **model**: strong-scaling stage times for any core count — compute stages
  scale with cores, bandwidth stages (write / transfer / read) do not.

The model is what makes the paper's headline claim testable here: QP wins
end-to-end whenever the link is the bottleneck, and the win shrinks as
bandwidth grows (the paper's 16% -> 11% observation).
"""
from __future__ import annotations

import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ReproError, TransferFaultError
from ..obs import add_bytes, event, metric_count, metric_seconds, span as stage

__all__ = [
    "LinkConfig",
    "SliceMeasurement",
    "measure_slices",
    "PipelineTimes",
    "simulate_pipeline",
    "RetryPolicy",
    "SliceOutcome",
    "TransferReport",
    "transfer_slices",
]

#: bandwidth the paper measured on the MCC<->Anvil Globus link
PAPER_LINK_MBS = 461.75


@dataclass(frozen=True)
class LinkConfig:
    """Bandwidths of the pipeline's I/O stages, in MB/s (1e6 bytes)."""

    link_mbs: float = PAPER_LINK_MBS
    fs_write_mbs: float = 2000.0
    fs_read_mbs: float = 2000.0


@dataclass
class SliceMeasurement:
    """Aggregate measurement over the compressed slices."""

    n_slices: int
    raw_bytes: int
    compressed_bytes: int
    compress_seconds: float  # total CPU seconds across slices
    decompress_seconds: float

    @property
    def cr(self) -> float:
        return self.raw_bytes / self.compressed_bytes


def _work_one(args) -> tuple[int, float, float]:
    """Worker: compress+decompress one slice, return (size, t_comp, t_dec)."""
    data, name, error_bound, qp_dict, extra = args
    from ..compressors import get_compressor
    from ..core.config import QPConfig

    kwargs = dict(extra)
    if name in ("sz3", "qoz", "hpez", "mgard"):
        kwargs["qp"] = QPConfig.from_dict(qp_dict)
    comp = get_compressor(name, error_bound, **kwargs)
    t0 = time.perf_counter()
    blob = comp.compress(data)
    t1 = time.perf_counter()
    comp.decompress(blob)
    t2 = time.perf_counter()
    return len(blob), t1 - t0, t2 - t1


def measure_slices(
    slices: list[np.ndarray],
    compressor: str,
    error_bound: float,
    qp=None,
    workers: int = 0,
    **comp_kwargs,
) -> SliceMeasurement:
    """Compress every slice (serially or over ``workers`` processes) and
    aggregate sizes and CPU times.  Extra kwargs go to the compressor
    constructor (e.g. ``predictor="interp"``)."""
    from ..core.config import QPConfig

    qp_dict = (qp or QPConfig.disabled()).to_dict()
    jobs = [(s, compressor, error_bound, qp_dict, comp_kwargs) for s in slices]
    if workers and workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_work_one, jobs))
    else:
        results = [_work_one(j) for j in jobs]
    sizes, t_comp, t_dec = zip(*results)
    return SliceMeasurement(
        n_slices=len(slices),
        raw_bytes=int(sum(s.nbytes for s in slices)),
        compressed_bytes=int(sum(sizes)),
        compress_seconds=float(sum(t_comp)),
        decompress_seconds=float(sum(t_dec)),
    )


@dataclass
class PipelineTimes:
    """Stage times (seconds) of one end-to-end transfer configuration."""

    cores: int
    compress: float
    write: float
    transfer: float
    read: float
    decompress: float

    @property
    def total(self) -> float:
        return self.compress + self.write + self.transfer + self.read + self.decompress

    def row(self) -> dict[str, float]:
        return {
            "cores": self.cores,
            "compress": round(self.compress, 3),
            "write": round(self.write, 3),
            "transfer": round(self.transfer, 3),
            "read": round(self.read, 3),
            "decompress": round(self.decompress, 3),
            "total": round(self.total, 3),
        }


def simulate_pipeline(
    m: SliceMeasurement,
    cores: int,
    link: LinkConfig = LinkConfig(),
    scale_to_slices: int | None = None,
) -> PipelineTimes:
    """Strong-scaling pipeline model from measured per-slice costs.

    ``scale_to_slices`` linearly extrapolates the measured subset to the
    paper's full slice count (3600 for RTM); compute stages divide by the
    core count (embarrassingly parallel), bandwidth stages do not.
    """
    if cores <= 0:
        raise ValueError("cores must be positive")
    factor = 1.0 if scale_to_slices is None else scale_to_slices / m.n_slices
    comp_total = m.compress_seconds * factor
    dec_total = m.decompress_seconds * factor
    cbytes = m.compressed_bytes * factor
    return PipelineTimes(
        cores=cores,
        compress=comp_total / cores,
        write=cbytes / 1e6 / link.fs_write_mbs,
        transfer=cbytes / 1e6 / link.link_mbs,
        read=cbytes / 1e6 / link.fs_read_mbs,
        decompress=dec_total / cores,
    )


def vanilla_transfer_seconds(
    raw_bytes: int, link: LinkConfig = LinkConfig(), scale: float = 1.0
) -> float:
    """Time to move the uncompressed data over the link (the paper's
    23m29s baseline for RTM)."""
    return raw_bytes * scale / 1e6 / link.link_mbs


# -- resilient per-slice transfer ---------------------------------------------
#
# The measurement/model halves above assume a perfect link.  Real traffic
# does not: slices get dropped, corrupted, or stall.  ``transfer_slices``
# moves each slice through a caller-supplied channel with retry + exponential
# backoff + a per-attempt deadline, verifying every received payload's CRC32
# and quarantining slices that exhaust their budget — the pipeline degrades
# gracefully instead of silently shipping garbage or hanging on one slice.


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for the per-slice retry loop.

    ``max_attempts``      total tries per slice before quarantine.
    ``base_delay_s``      backoff before the first retry.
    ``backoff``           multiplier applied per failed attempt.
    ``max_delay_s``       backoff ceiling.
    ``attempt_timeout_s`` an attempt slower than this counts as failed even
                          if the channel eventually returned (synchronous
                          channels cannot be preempted, so the deadline is
                          enforced on completion).
    """

    max_attempts: int = 5
    base_delay_s: float = 0.01
    backoff: float = 2.0
    max_delay_s: float = 1.0
    attempt_timeout_s: float = 30.0

    def delay_s(self, failures: int) -> float:
        """Backoff after the ``failures``-th consecutive failure (1-based)."""
        return min(self.base_delay_s * self.backoff ** (failures - 1), self.max_delay_s)


@dataclass
class SliceOutcome:
    """Fate of one slice after the retry loop.

    ``full_nbytes`` is the slice's untruncated size; it equals ``nbytes``
    unless an early-abort run sent only a level prefix."""

    name: str
    attempts: int
    delivered: bool
    verified: bool
    nbytes: int
    error: str | None = None
    full_nbytes: int = 0


@dataclass
class TransferReport:
    """Graceful-degradation accounting for one resilient transfer run."""

    outcomes: list[SliceOutcome] = field(default_factory=list)

    @property
    def delivered(self) -> list[str]:
        return [o.name for o in self.outcomes if o.delivered]

    @property
    def degraded(self) -> list[str]:
        """Slices that arrived, but only after at least one retry."""
        return [o.name for o in self.outcomes if o.delivered and o.attempts > 1]

    @property
    def quarantined(self) -> list[str]:
        return [
            o.name for o in self.outcomes if not o.delivered and o.attempts > 0
        ]

    @property
    def verified_bytes(self) -> int:
        return sum(o.nbytes for o in self.outcomes if o.verified)

    @property
    def total_attempts(self) -> int:
        return sum(o.attempts for o in self.outcomes)

    @property
    def skipped(self) -> list[str]:
        """Slices never attempted because the byte budget ran out."""
        return [
            o.name for o in self.outcomes if not o.delivered and o.attempts == 0
        ]

    @property
    def full_bytes(self) -> int:
        """Untruncated size of everything delivered (what a non-progressive
        run would have moved for the same slices)."""
        return sum(o.full_nbytes for o in self.outcomes if o.delivered)

    def summary(self) -> dict:
        return {
            "slices": len(self.outcomes),
            "delivered": len(self.delivered),
            "degraded": len(self.degraded),
            "quarantined": len(self.quarantined),
            "skipped": len(self.skipped),
            "attempts": self.total_attempts,
            "verified_bytes": self.verified_bytes,
            "full_bytes": self.full_bytes,
        }


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _preview_payload(payload: bytes, target_level: int) -> bytes:
    """The prefix of ``payload`` that decodes through ``target_level``.

    Non-progressive blobs have no level-aligned prefixes, so they move in
    full; progressive blobs whose table stops above ``target_level`` send
    their deepest recorded prefix (never more than asked for)."""
    from ..compressors.progressive import level_table

    try:
        table = level_table(payload)
    except ReproError:
        return payload
    for entry in table:
        if entry["level"] <= target_level:
            return payload[: entry["end"]]
    return payload[: table[-1]["end"]] if table else payload


def transfer_slices(
    blobs: dict[str, bytes],
    channel: Callable[[str, bytes], bytes],
    policy: RetryPolicy = RetryPolicy(),
    sleep: Callable[[float], None] = time.sleep,
    received: dict[str, bytes] | None = None,
    *,
    target_level: int | None = None,
    byte_budget: int | None = None,
) -> TransferReport:
    """Move every blob through ``channel`` with retry/backoff/quarantine.

    ``channel(name, payload)`` models one transfer attempt: it returns the
    bytes as received on the far side (possibly corrupted) or raises
    :class:`~repro.errors.TransferFaultError` for a dropped slice.  Each
    received payload is CRC-verified against the sender's checksum — the
    same integrity data the v1 archive index carries — and a mismatch counts
    as a failed attempt.  Slices that exhaust ``policy.max_attempts`` land
    on the quarantine list instead of raising, so one bad slice cannot sink
    the run; the report carries delivered/degraded/quarantined accounting.

    Timings surface through :mod:`repro.obs` (and the ``repro.perf`` facade
    over it) under the ``transfer`` (channel attempts), ``verify`` (integrity
    checks), and ``retry`` (backoff waits) stages; delivered and verified
    byte counts are recorded via ``add_bytes`` under the same names.  When an
    observation is active the loop additionally records structured events
    (``transfer.retry``, ``transfer.quarantine``), per-attempt latency in the
    ``transfer.attempt_seconds`` histogram, and the
    ``transfer.slices{outcome=...}`` / ``transfer.attempts`` counters.

    ``received`` (optional) collects the verified payloads by name.

    **Early abort** (progressive retrieval): ``target_level=k`` sends each
    progressive slice's level-``k`` byte prefix instead of the full blob —
    the receiver previews it with
    :func:`repro.compressors.progressive.decompress_prefix` — while
    non-progressive slices still move in full.  ``byte_budget`` caps the
    payload bytes admitted to the channel across the run (retries of an
    admitted slice are not re-charged); slices that no longer fit are
    reported as ``skipped`` (attempts=0, not quarantined)
    so the caller knows the preview is partial.  The CRC travels over the
    bytes actually sent, and ``stage.bytes`` under ``transfer.prefix`` /
    ``transfer.full`` record served-prefix vs untruncated sizes for the
    savings ratio.
    """
    if policy.max_attempts < 1:
        raise ValueError("RetryPolicy.max_attempts must be >= 1")
    if byte_budget is not None and byte_budget < 0:
        raise ValueError("byte_budget must be >= 0")
    report = TransferReport()
    budget_left = byte_budget
    for name, full_payload in blobs.items():
        payload = (
            _preview_payload(full_payload, target_level)
            if target_level is not None
            else full_payload
        )
        if budget_left is not None and len(payload) > budget_left:
            event(
                "transfer.skip", slice=name,
                needed=len(payload), budget_left=budget_left,
            )
            metric_count("transfer.slices", outcome="skipped")
            report.outcomes.append(
                SliceOutcome(
                    name=name, attempts=0, delivered=False, verified=False,
                    nbytes=0, full_nbytes=len(full_payload),
                    error=(
                        f"skipped: needs {len(payload)} bytes, "
                        f"{budget_left} left in budget"
                    ),
                )
            )
            continue
        want_crc = _crc32(payload)
        attempts = 0
        last_error: str | None = None
        delivered = False
        while attempts < policy.max_attempts and not delivered:
            attempts += 1
            t0 = time.perf_counter()
            metric_count("transfer.attempts")
            try:
                with stage("transfer"):
                    got = channel(name, payload)
            except TransferFaultError as exc:
                last_error = str(exc)
                metric_seconds(
                    "transfer.attempt_seconds", time.perf_counter() - t0
                )
            else:
                elapsed = time.perf_counter() - t0
                metric_seconds("transfer.attempt_seconds", elapsed)
                if elapsed > policy.attempt_timeout_s:
                    last_error = (
                        f"attempt took {elapsed:.3f}s "
                        f"(> {policy.attempt_timeout_s}s deadline)"
                    )
                else:
                    with stage("verify"):
                        ok = _crc32(got) == want_crc
                    if ok:
                        delivered = True
                        add_bytes("transfer", len(got))
                        add_bytes("verify", len(got))
                        if target_level is not None or byte_budget is not None:
                            add_bytes("transfer.prefix", len(got))
                            add_bytes("transfer.full", len(full_payload))
                        if received is not None:
                            received[name] = got
                    else:
                        last_error = "received payload failed CRC32 verification"
            if attempts == 1 and budget_left is not None:
                budget_left -= len(payload)
            if not delivered and attempts < policy.max_attempts:
                event("transfer.retry", slice=name, attempt=attempts, error=last_error)
                with stage("retry"):
                    sleep(policy.delay_s(attempts))
        if delivered:
            outcome = "degraded" if attempts > 1 else "delivered"
        else:
            outcome = "quarantined"
            event(
                "transfer.quarantine", slice=name, attempts=attempts, error=last_error
            )
        metric_count("transfer.slices", outcome=outcome)
        report.outcomes.append(
            SliceOutcome(
                name=name,
                attempts=attempts,
                delivered=delivered,
                verified=delivered,
                nbytes=len(payload) if delivered else 0,
                error=None if delivered else last_error,
                full_nbytes=len(full_payload) if delivered else 0,
            )
        )
    return report
