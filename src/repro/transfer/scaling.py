"""Strong-scaling comparison helpers for the Fig. 18 experiment."""
from __future__ import annotations

from dataclasses import dataclass

from .pipeline import LinkConfig, PipelineTimes, SliceMeasurement, simulate_pipeline

__all__ = ["ScalingComparison", "compare_strong_scaling", "gain_vs_bandwidth"]

PAPER_CORE_COUNTS = (225, 450, 900, 1800)


@dataclass
class ScalingComparison:
    """Base vs +QP pipeline times across core counts."""

    base: list[PipelineTimes]
    qp: list[PipelineTimes]

    def gains(self) -> list[float]:
        """End-to-end speedup of +QP over the base, per core count."""
        return [b.total / q.total for b, q in zip(self.base, self.qp)]


def compare_strong_scaling(
    base_m: SliceMeasurement,
    qp_m: SliceMeasurement,
    cores: tuple[int, ...] = PAPER_CORE_COUNTS,
    link: LinkConfig = LinkConfig(),
    scale_to_slices: int | None = None,
) -> ScalingComparison:
    return ScalingComparison(
        base=[simulate_pipeline(base_m, c, link, scale_to_slices) for c in cores],
        qp=[simulate_pipeline(qp_m, c, link, scale_to_slices) for c in cores],
    )


def gain_vs_bandwidth(
    base_m: SliceMeasurement,
    qp_m: SliceMeasurement,
    cores: int,
    multipliers: tuple[float, ...] = (1.0, 2.0, 4.0),
    scale_to_slices: int | None = None,
) -> list[tuple[float, float]]:
    """The paper's sensitivity argument: doubling the link bandwidth shrinks
    QP's end-to-end gain (16% -> 11%).  Returns (multiplier, gain) pairs."""
    out = []
    for mult in multipliers:
        link = LinkConfig(link_mbs=LinkConfig().link_mbs * mult)
        b = simulate_pipeline(base_m, cores, link, scale_to_slices)
        q = simulate_pipeline(qp_m, cores, link, scale_to_slices)
        out.append((mult, b.total / q.total))
    return out
