"""Disk-backed end-to-end pipeline: real archive writes and reads.

Where :mod:`repro.transfer.pipeline` *models* the filesystem stages from
bandwidth parameters, this module actually executes them: compress slices
into an :class:`~repro.io.Archive` on disk, measure the real write, read the
archive back, decompress, verify.  The transfer stage remains modelled
(there is no second site), using the measured archive size — unless a
``channel`` is supplied, in which case every slice is pushed through it via
:func:`~repro.transfer.pipeline.transfer_slices` with retry/backoff/
quarantine, and the result carries graceful-degradation accounting
(delivered / degraded / quarantined slices, integrity-verified bytes).
"""
from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..compressors import decompress_any, get_compressor
from ..core.config import QPConfig
from ..io import Archive
from ..obs import add_bytes, span
from .pipeline import LinkConfig, RetryPolicy, transfer_slices

__all__ = ["DiskPipelineResult", "run_disk_pipeline"]


@dataclass
class DiskPipelineResult:
    """Measured stage times (seconds) of one disk-backed run."""

    n_slices: int
    raw_bytes: int
    archive_bytes: int
    compress_seconds: float
    write_seconds: float
    transfer_seconds: float  # modelled from the link bandwidth
    read_seconds: float
    decompress_seconds: float
    max_abs_error: float
    # graceful-degradation accounting (populated when a channel is used;
    # on the modelled/perfect path every slice counts as delivered+verified)
    delivered_slices: int = 0
    degraded_slices: int = 0
    quarantined_slices: int = 0
    verified_bytes: int = 0
    quarantined: list[str] = field(default_factory=list)

    @property
    def total(self) -> float:
        return (
            self.compress_seconds
            + self.write_seconds
            + self.transfer_seconds
            + self.read_seconds
            + self.decompress_seconds
        )

    @property
    def cr(self) -> float:
        return self.raw_bytes / self.archive_bytes


def run_disk_pipeline(
    slices: list[np.ndarray],
    workdir: str | pathlib.Path,
    compressor: str = "sz3",
    error_bound: float = 1e-3,
    qp: QPConfig | None = None,
    link: LinkConfig = LinkConfig(),
    checksum: bool = True,
    channel: Callable[[str, bytes], bytes] | None = None,
    retry: RetryPolicy | None = None,
    sleep: Callable[[float], None] = time.sleep,
    **comp_kwargs,
) -> DiskPipelineResult:
    """Compress → write archive → transfer → read → decompress.

    ``checksum=True`` (the default) seals each blob in the v1 integrity
    envelope before it is archived, so both the per-entry archive CRC and
    the blob CRC protect the bytes end to end.  When ``channel`` is given,
    the transfer stage is *executed*, not modelled: every archived slice is
    pushed through the channel by
    :func:`~repro.transfer.pipeline.transfer_slices` under ``retry``
    (default :class:`~repro.transfer.pipeline.RetryPolicy`), slices that
    exhaust their retries are quarantined (skipped downstream, listed in
    ``result.quarantined``) and the run degrades gracefully instead of
    failing.
    """
    workdir = pathlib.Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    path = workdir / "transfer.rarc"
    if path.exists():
        path.unlink()

    kwargs = dict(comp_kwargs)
    if compressor in ("mgard", "sz3", "qoz", "hpez", "sperr"):
        kwargs["qp"] = qp or QPConfig.disabled()
    comp = get_compressor(compressor, error_bound, **kwargs)

    t0 = time.perf_counter()
    blobs = {
        f"slice{i:05d}": comp.compress(s, checksum=checksum)
        for i, s in enumerate(slices)
    }
    t1 = time.perf_counter()
    with span("archive.write", path=str(path)):
        arch = Archive.create(path)
        arch.append_many(blobs)
    t2 = time.perf_counter()

    archive_bytes = arch.total_bytes()
    add_bytes("archive.write", archive_bytes)

    t3 = time.perf_counter()
    with span("archive.read", path=str(path)):
        read_blobs = {name: arch.read(name) for name in arch.names()}
    t4 = time.perf_counter()
    add_bytes("archive.read", sum(len(b) for b in read_blobs.values()))

    if channel is not None:
        tx0 = time.perf_counter()
        delivered: dict[str, bytes] = {}
        report = transfer_slices(
            read_blobs,
            channel,
            policy=retry or RetryPolicy(),
            sleep=sleep,
            received=delivered,
        )
        transfer_seconds = time.perf_counter() - tx0
        read_blobs = delivered
        delivered_n = len(report.delivered)
        degraded_n = len(report.degraded)
        quarantined = report.quarantined
        verified_bytes = report.verified_bytes
    else:
        transfer_seconds = archive_bytes / 1e6 / link.link_mbs
        delivered_n = len(read_blobs)
        degraded_n = 0
        quarantined = []
        verified_bytes = sum(len(b) for b in read_blobs.values())

    max_err = 0.0
    t5a = time.perf_counter()
    for i, s in enumerate(slices):
        name = f"slice{i:05d}"
        if name not in read_blobs:  # quarantined: degrade, don't fail
            continue
        out = decompress_any(read_blobs[name])
        max_err = max(
            max_err,
            float(np.abs(out.astype(np.float64) - s.astype(np.float64)).max()),
        )
    t5 = time.perf_counter()

    return DiskPipelineResult(
        n_slices=len(slices),
        raw_bytes=int(sum(s.nbytes for s in slices)),
        archive_bytes=archive_bytes,
        compress_seconds=t1 - t0,
        write_seconds=t2 - t1,
        transfer_seconds=transfer_seconds,
        read_seconds=t4 - t3,
        decompress_seconds=t5 - t5a,
        max_abs_error=max_err,
        delivered_slices=delivered_n,
        degraded_slices=degraded_n,
        quarantined_slices=len(quarantined),
        verified_bytes=verified_bytes,
        quarantined=list(quarantined),
    )
