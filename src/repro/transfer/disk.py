"""Disk-backed end-to-end pipeline: real archive writes and reads.

Where :mod:`repro.transfer.pipeline` *models* the filesystem stages from
bandwidth parameters, this module actually executes them: compress slices
into an :class:`~repro.io.Archive` on disk, measure the real write, read the
archive back, decompress, verify.  The transfer stage remains modelled
(there is no second site), using the measured archive size.
"""
from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass

import numpy as np

from ..compressors import decompress_any, get_compressor
from ..core.config import QPConfig
from ..io import Archive
from .pipeline import LinkConfig

__all__ = ["DiskPipelineResult", "run_disk_pipeline"]


@dataclass
class DiskPipelineResult:
    """Measured stage times (seconds) of one disk-backed run."""

    n_slices: int
    raw_bytes: int
    archive_bytes: int
    compress_seconds: float
    write_seconds: float
    transfer_seconds: float  # modelled from the link bandwidth
    read_seconds: float
    decompress_seconds: float
    max_abs_error: float

    @property
    def total(self) -> float:
        return (
            self.compress_seconds
            + self.write_seconds
            + self.transfer_seconds
            + self.read_seconds
            + self.decompress_seconds
        )

    @property
    def cr(self) -> float:
        return self.raw_bytes / self.archive_bytes


def run_disk_pipeline(
    slices: list[np.ndarray],
    workdir: str | pathlib.Path,
    compressor: str = "sz3",
    error_bound: float = 1e-3,
    qp: QPConfig | None = None,
    link: LinkConfig = LinkConfig(),
    **comp_kwargs,
) -> DiskPipelineResult:
    """Compress → write archive → (modelled transfer) → read → decompress."""
    workdir = pathlib.Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    path = workdir / "transfer.rarc"
    if path.exists():
        path.unlink()

    kwargs = dict(comp_kwargs)
    if compressor in ("mgard", "sz3", "qoz", "hpez", "sperr"):
        kwargs["qp"] = qp or QPConfig.disabled()
    comp = get_compressor(compressor, error_bound, **kwargs)

    t0 = time.perf_counter()
    blobs = {f"slice{i:05d}": comp.compress(s) for i, s in enumerate(slices)}
    t1 = time.perf_counter()
    arch = Archive.create(path)
    arch.append_many(blobs)
    t2 = time.perf_counter()

    archive_bytes = arch.total_bytes()
    transfer_seconds = archive_bytes / 1e6 / link.link_mbs

    t3 = time.perf_counter()
    read_blobs = {name: arch.read(name) for name in arch.names()}
    t4 = time.perf_counter()
    max_err = 0.0
    for i, s in enumerate(slices):
        out = decompress_any(read_blobs[f"slice{i:05d}"])
        max_err = max(
            max_err,
            float(np.abs(out.astype(np.float64) - s.astype(np.float64)).max()),
        )
    t5 = time.perf_counter()

    return DiskPipelineResult(
        n_slices=len(slices),
        raw_bytes=int(sum(s.nbytes for s in slices)),
        archive_bytes=archive_bytes,
        compress_seconds=t1 - t0,
        write_seconds=t2 - t1,
        transfer_seconds=transfer_seconds,
        read_seconds=t4 - t3,
        decompress_seconds=t5 - t4,
        max_abs_error=max_err,
    )
