"""Parallel end-to-end data-transfer pipeline (measurement + scaling model)."""
from .disk import DiskPipelineResult, run_disk_pipeline
from .pipeline import (
    PAPER_LINK_MBS,
    LinkConfig,
    PipelineTimes,
    RetryPolicy,
    SliceMeasurement,
    SliceOutcome,
    TransferReport,
    measure_slices,
    simulate_pipeline,
    transfer_slices,
    vanilla_transfer_seconds,
)
from .scaling import (
    PAPER_CORE_COUNTS,
    ScalingComparison,
    compare_strong_scaling,
    gain_vs_bandwidth,
)

__all__ = [
    "DiskPipelineResult",
    "run_disk_pipeline",
    "PAPER_LINK_MBS",
    "LinkConfig",
    "PipelineTimes",
    "SliceMeasurement",
    "RetryPolicy",
    "SliceOutcome",
    "TransferReport",
    "measure_slices",
    "simulate_pipeline",
    "transfer_slices",
    "vanilla_transfer_seconds",
    "PAPER_CORE_COUNTS",
    "ScalingComparison",
    "compare_strong_scaling",
    "gain_vs_bandwidth",
]
