"""SPERR-like compressor: CDF 9/7 wavelet + quantization + outlier pass.

SPERR (Li, Lindstrom, Clyne 2023) runs a multi-level CDF 9/7 wavelet
transform, codes the coefficients, and then — its signature feature —
enforces the *point-wise* bound with an outlier-correction pass.  This port
keeps that architecture but replaces the SPECK set-partitioning coder with
uniform coefficient quantization + Huffman (documented substitution in
DESIGN.md); the wavelet decorrelation and the outlier mechanism, which give
SPERR its "high ratio, moderate speed" profile, are preserved.

The encoder reconstructs internally with exactly the operations the decoder
will run, so corrections computed at encode time apply bit-identically.
"""
from __future__ import annotations

from typing import Any

import numpy as np

from ..codecs import compress as lossless_compress, decompress as lossless_decompress
from ..codecs.fixed import decode_fixed, encode_fixed
from ..pipeline.stages import CDF97Transform, StageContext
from .base import (
    Blob,
    CompressionState,
    Compressor,
    decode_index_stream,
    encode_index_stream,
)

__all__ = ["SPERR", "cdf97_forward", "cdf97_inverse"]

# CDF 9/7 lifting constants
_ALPHA = -1.586134342059924
_BETA = -0.052980118572961
_GAMMA = 0.882911075530934
_DELTA = 0.443506852043971
_KAPPA = 1.230174104914001

_LEVELS = 3

#: wavelet stage contexts are unused (the stage carries its level count)
_CTX = StageContext()


def _lift_1d(arr: np.ndarray, inverse: bool) -> np.ndarray:
    """CDF 9/7 lifting along axis 0 (length must be even >= 4), vectorized
    over remaining axes.  Uses symmetric boundary extension."""
    n = arr.shape[0]
    x = arr.astype(np.float64, copy=True)
    even, odd = x[0::2], x[1::2]

    def predict(coef):
        # odd[i] += coef * (even[i] + even[i+1]), mirrored at the end
        right = np.concatenate([even[1:], even[-1:]], axis=0)
        odd[...] += coef * (even + right)

    def update(coef):
        # even[i] += coef * (odd[i-1] + odd[i]), mirrored at the start
        left = np.concatenate([odd[:1], odd[:-1]], axis=0)
        even[...] += coef * (left + odd)

    if not inverse:
        predict(_ALPHA)
        update(_BETA)
        predict(_GAMMA)
        update(_DELTA)
        even /= _KAPPA
        odd *= _KAPPA
        return np.concatenate([even, odd], axis=0)

    # inverse: arr holds [approx | detail]
    half = n // 2
    even = x[:half] * _KAPPA
    odd = x[half:] / _KAPPA
    update(-_DELTA)
    predict(-_GAMMA)
    update(-_BETA)
    predict(-_ALPHA)
    out = np.empty_like(x)
    out[0::2] = even
    out[1::2] = odd
    return out


def cdf97_forward(data: np.ndarray, levels: int = _LEVELS) -> np.ndarray:
    """Multi-level separable CDF 9/7 transform (shape must be divisible by
    ``2**levels`` on every axis)."""
    out = data.astype(np.float64, copy=True)
    region = list(data.shape)
    for _ in range(levels):
        sub = out[tuple(slice(0, r) for r in region)]
        for axis in range(data.ndim):
            moved = np.moveaxis(sub, axis, 0)
            moved[...] = _lift_1d(moved, inverse=False)
        region = [r // 2 for r in region]
    return out


def cdf97_inverse(coeffs: np.ndarray, levels: int = _LEVELS) -> np.ndarray:
    out = coeffs.astype(np.float64, copy=True)
    regions = [list(coeffs.shape)]
    for _ in range(levels - 1):
        regions.append([r // 2 for r in regions[-1]])
    for region in reversed(regions):
        sub = out[tuple(slice(0, r) for r in region)]
        for axis in range(coeffs.ndim - 1, -1, -1):
            moved = np.moveaxis(sub, axis, 0)
            moved[...] = _lift_1d(moved, inverse=True)
    return out


def subband_regions(
    shape: tuple[int, ...], levels: int
) -> list[tuple[int, tuple[slice, ...]]]:
    """Mallat-layout subband regions as ``(wavelet_level, slices)`` pairs,
    finest level first; the final approximation band is ``(levels, ...)``.

    Used by the QP extension below: within a subband, neighbouring detail
    coefficients are spatially correlated just like interpolation indices.
    """
    from itertools import combinations

    ndim = len(shape)
    out: list[tuple[int, tuple[slice, ...]]] = []
    for lvl in range(1, levels + 1):
        for size in range(1, ndim + 1):
            for axes in combinations(range(ndim), size):
                region = tuple(
                    slice(n >> lvl, n >> (lvl - 1)) if a in axes else slice(0, n >> lvl)
                    for a, n in enumerate(shape)
                )
                out.append((lvl, region))
    out.append((levels, tuple(slice(0, n >> levels) for n in shape)))
    return out


#: sentinel for the wavelet-domain QP: a value quantized indices never take
_QP_SENTINEL = -(1 << 40)


class SPERR(Compressor):
    """SPERR-like wavelet compressor with point-wise outlier correction.

    The optional ``qp`` argument applies the paper's quantization index
    prediction to the wavelet-domain indices, per subband — this implements
    the paper's *future work* item 1 ("a more generalized design for
    compressors besides interpolation-based ones").  The subband's wavelet
    level maps onto QP's interpolation level, so the default config predicts
    only in the two finest (largest) subband groups.
    """

    name = "sperr"
    supports_qp = True
    traits = {"speed": "medium", "ratio": "very high", "transform": True}

    def __init__(
        self,
        error_bound: float,
        levels: int = _LEVELS,
        qp=None,
        coder: str = "quant",
        lossless_backend: str = "zlib",
        **_: Any,
    ) -> None:
        from ..core.config import QPConfig

        super().__init__(error_bound, lossless_backend)
        if coder not in ("quant", "speck"):
            raise ValueError("coder must be 'quant' or 'speck'")
        self.levels = levels
        self.coder = coder
        self.qp = qp or QPConfig.disabled()

    def _qp_transform(self, q: np.ndarray, inverse: bool) -> np.ndarray:
        """Apply (or invert) per-subband QP on the quantized coefficients."""
        if not self.qp.enabled:
            return q
        from ..core.qp import qp_forward, qp_inverse

        fn = qp_inverse if inverse else qp_forward
        out = q.copy()
        for lvl, region in subband_regions(q.shape, self.levels):
            sub = out[region]
            if sub.size == 0:
                continue
            out[region] = fn(sub, _QP_SENTINEL, self.qp, lvl)
        return out

    def _compress(
        self, data: np.ndarray, state: CompressionState | None
    ) -> tuple[dict[str, Any], dict[str, bytes]]:
        mult = 1 << self.levels
        pads = [(0, (-n) % mult) for n in data.shape]
        padded = np.pad(data.astype(np.float64), pads, mode="edge")
        wavelet = CDF97Transform(self.levels)
        coeffs = wavelet.forward(_CTX, padded)
        core = tuple(slice(0, n) for n in data.shape)
        if self.coder == "speck":
            return self._compress_speck(data, coeffs, core)

        # Pick the quantization step minimizing estimated size = coefficient
        # entropy + outlier cost (SPERR balances its coder against the
        # correction pass the same way).  Outliers store the *exact* original
        # value, so the point-wise bound holds in the output dtype.
        from ..core.characterize import shannon_entropy

        best = None
        for factor in (1.0, 0.5, 0.25, 0.125):
            step = factor * self.error_bound
            q = np.rint(coeffs / step).astype(np.int64)
            recon = wavelet.inverse(_CTX, q.astype(np.float64) * step)
            rec_cast = recon[core].astype(data.dtype).astype(np.float64)
            viol = np.abs(rec_cast - data.astype(np.float64)) > self.error_bound
            n_out = int(viol.sum())
            bits = shannon_entropy(q) * q.size + n_out * (64 + 8 * data.itemsize)
            if best is None or bits < best[0]:
                best = (bits, step, q, viol)
        _, step, q, viol = best
        positions = np.nonzero(viol.ravel())[0]
        literals = data.ravel()[positions]

        q = self._qp_transform(q, inverse=False)
        header = {
            "levels": self.levels,
            "padded_shape": list(padded.shape),
            "step": step,
            "qp": self.qp.to_dict(),
        }
        sections = {
            "coeffs": encode_index_stream(
                q.ravel(), self.lossless_backend, entropy=self.entropy
            ),
            "outlier_pos": lossless_compress(
                encode_fixed(positions), self.lossless_backend
            ),
            "outlier_val": lossless_compress(literals.tobytes(), self.lossless_backend),
        }
        if state is not None:
            state.extras["outliers"] = int(positions.size)
        return header, sections

    def _compress_speck(self, data, coeffs, core):
        """SPECK-coded coefficient path (SPERR's native coder)."""
        from ..codecs.speck import speck_encode

        threshold = self.error_bound  # per-coefficient accuracy target
        blob = speck_encode(coeffs, threshold)
        # internal reconstruction mirrors the decoder's mid-tread dequant
        imag = (np.abs(coeffs) / threshold).astype(np.int64)
        mags = np.where(imag > 0, (imag + 0.5) * threshold, 0.0)
        rq = np.where(coeffs < 0, -mags, mags)
        recon = CDF97Transform(self.levels).inverse(_CTX, rq)
        rec_cast = recon[core].astype(data.dtype).astype(np.float64)
        viol = np.abs(rec_cast - data.astype(np.float64)) > self.error_bound
        positions = np.nonzero(viol.ravel())[0]
        literals = data.ravel()[positions]
        header = {
            "levels": self.levels,
            "padded_shape": list(coeffs.shape),
            "coder": "speck",
        }
        sections = {
            "coeffs": lossless_compress(blob, self.lossless_backend),
            "outlier_pos": lossless_compress(
                encode_fixed(positions), self.lossless_backend
            ),
            "outlier_val": lossless_compress(literals.tobytes(), self.lossless_backend),
        }
        return header, sections

    def _decompress(self, blob: Blob) -> np.ndarray:
        header = blob.header
        padded_shape = tuple(header["padded_shape"])
        if header.get("coder") == "speck":
            from ..codecs.speck import speck_decode

            rq = speck_decode(lossless_decompress(blob.sections["coeffs"]))
            recon = CDF97Transform(int(header["levels"])).inverse(_CTX, rq)
            dtype = np.dtype(header["dtype"])
            out = recon[tuple(slice(0, n) for n in header["shape"])].astype(dtype)
            positions = decode_fixed(lossless_decompress(blob.sections["outlier_pos"]))
            if positions.size:
                literals = np.frombuffer(
                    lossless_decompress(blob.sections["outlier_val"]), dtype=dtype
                )
                out.ravel()[positions] = literals
            return out
        q = decode_index_stream(blob.sections["coeffs"]).reshape(padded_shape)
        if "qp" in header:
            from ..core.config import QPConfig

            self.qp = QPConfig.from_dict(header["qp"])
            self.levels = int(header["levels"])
            q = self._qp_transform(q, inverse=True)
        recon = CDF97Transform(int(header["levels"])).inverse(
            _CTX, q.astype(np.float64) * header["step"]
        )
        dtype = np.dtype(header["dtype"])
        out = recon[tuple(slice(0, n) for n in header["shape"])].astype(dtype)
        positions = decode_fixed(lossless_decompress(blob.sections["outlier_pos"]))
        if positions.size:
            literals = np.frombuffer(
                lossless_decompress(blob.sections["outlier_val"]), dtype=dtype
            )
            out.ravel()[positions] = literals
        return out
