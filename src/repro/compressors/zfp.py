"""ZFP-like compressor: 4^d blocks, lifted transform, bit-plane truncation.

Faithful pipeline pieces (Lindstrom 2014): the data is tiled into 4^d blocks;
each block is aligned to a common exponent, promoted to fixed point, and
decorrelated with ZFP's integer lifting transform; low bit-planes below the
accuracy target are dropped.  This port replaces ZFP's embedded group-testing
coder with a Huffman stage over the truncated coefficients (documented
substitution in DESIGN.md) — the transform and truncation, which determine
the CR/PSNR *shape* (low ratios, PSNR well above the request, very fast),
are preserved.

All block math is vectorized across blocks (arrays shaped ``(nblocks, 4^d)``).
"""
from __future__ import annotations

from typing import Any

import numpy as np

from ..codecs import compress as lossless_compress, decompress as lossless_decompress
from ..codecs.fixed import decode_fixed, encode_fixed
from ..pipeline.stages import StageContext, ZFPTransform
from .base import (
    Blob,
    CompressionState,
    Compressor,
    decode_index_stream,
    encode_index_stream,
)

__all__ = ["ZFP"]

#: the decorrelation stage of the registered "zfp" pipeline (wraps the
#: lifting kernels below); the transform is context-free
_TRANSFORM = ZFPTransform()
_CTX = StageContext()

_BLOCK = 4
# fixed-point fraction bits; transforms grow magnitudes by < 2**ndim so keep
# headroom inside int64
_PRECISION = 40


class ZFP(Compressor):
    """ZFP-like transform compressor (fixed-accuracy mode)."""

    name = "zfp"
    traits = {"speed": "very high", "ratio": "low", "transform": True}

    def __init__(self, error_bound: float, lossless_backend: str = "zlib", **_: Any) -> None:
        super().__init__(error_bound, lossless_backend)

    # -- compression -------------------------------------------------------

    def _compress(
        self, data: np.ndarray, state: CompressionState | None
    ) -> tuple[dict[str, Any], dict[str, bytes]]:
        ndim = data.ndim
        padded, orig_shape = _pad_blocks(data)
        blocks = _to_blocks(padded)  # (nblocks, 4**ndim) float64
        absmax = np.abs(blocks).max(axis=1)
        # per-block exponent: 2**e >= absmax
        e = np.zeros(blocks.shape[0], dtype=np.int64)
        nz = absmax > 0
        e[nz] = np.ceil(np.log2(absmax[nz])).astype(np.int64)
        scale = np.ldexp(1.0, (_PRECISION - e).astype(np.int32))
        fixed = np.rint(blocks * scale[:, None]).astype(np.int64)
        coeffs = _TRANSFORM.forward(_CTX, (fixed, ndim))
        # Keep bit-planes down to the accuracy target plus guard bits that
        # absorb the lifted transform's gain.  The guard is verified at encode
        # time: reconstruct (cheap, vectorized) and widen until the point-wise
        # bound holds — mirroring fixed-accuracy mode's conservatism.
        scale_back = np.ldexp(1.0, (e - _PRECISION).astype(np.int32))
        core = tuple(slice(0, n) for n in orig_shape)
        for guard in range(1 + ndim, 16):
            drop = np.floor(np.log2(self.error_bound)) - guard + _PRECISION - e
            drop = np.clip(drop, 0, _PRECISION + 8).astype(np.int64)
            truncated = coeffs >> drop[:, None]
            rec_fixed = _TRANSFORM.inverse(_CTX, (truncated << drop[:, None], ndim))
            rec = _from_blocks(rec_fixed.astype(np.float64) * scale_back[:, None], padded.shape)
            rec_cast = rec[core].astype(data.dtype).astype(np.float64)
            if np.abs(rec_cast - data).max() <= self.error_bound:
                break
        else:
            raise RuntimeError("zfp: could not satisfy the error bound")
        header = {
            "orig_shape": list(orig_shape),
            "padded_shape": list(padded.shape),
            "guard": guard,
        }
        sections = {
            "coeffs": encode_index_stream(
                truncated.ravel(), self.lossless_backend, entropy=self.entropy
            ),
            "exponents": lossless_compress(
                encode_fixed(e - e.min()), self.lossless_backend
            ),
        }
        header["e_min"] = int(e.min())
        if state is not None:
            state.extras["bitplanes_dropped"] = drop
        return header, sections

    # -- decompression -------------------------------------------------------

    def _decompress(self, blob: Blob) -> np.ndarray:
        header = blob.header
        ndim = len(header["orig_shape"])
        truncated = decode_index_stream(blob.sections["coeffs"])
        e = (
            decode_fixed(lossless_decompress(blob.sections["exponents"]))
            + header["e_min"]
        )
        nblocks = e.size
        coeffs = truncated.reshape(nblocks, _BLOCK**ndim)
        guard = int(header["guard"])
        drop = np.floor(np.log2(header["error_bound"])) - guard + _PRECISION - e
        drop = np.clip(drop, 0, _PRECISION + 8).astype(np.int64)
        fixed = _TRANSFORM.inverse(_CTX, (coeffs << drop[:, None], ndim))
        scale = np.ldexp(1.0, (e - _PRECISION).astype(np.int32))
        blocks = fixed.astype(np.float64) * scale[:, None]
        padded = _from_blocks(blocks, tuple(header["padded_shape"]))
        out = padded[tuple(slice(0, n) for n in header["orig_shape"])]
        return np.ascontiguousarray(out)


# -- block tiling -------------------------------------------------------------


def _pad_blocks(data: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
    pads = [(0, (-n) % _BLOCK) for n in data.shape]
    padded = np.pad(data.astype(np.float64), pads, mode="edge")
    return padded, data.shape


def _to_blocks(padded: np.ndarray) -> np.ndarray:
    ndim = padded.ndim
    grid = tuple(n // _BLOCK for n in padded.shape)
    # split each axis into (grid, 4), move the grid axes first
    shape = []
    for g in grid:
        shape.extend([g, _BLOCK])
    arr = padded.reshape(shape)
    order = list(range(0, 2 * ndim, 2)) + list(range(1, 2 * ndim, 2))
    return arr.transpose(order).reshape(int(np.prod(grid)), _BLOCK**ndim)


def _from_blocks(blocks: np.ndarray, padded_shape: tuple[int, ...]) -> np.ndarray:
    ndim = len(padded_shape)
    grid = tuple(n // _BLOCK for n in padded_shape)
    arr = blocks.reshape(grid + (_BLOCK,) * ndim)
    order = []
    for i in range(ndim):
        order.extend([i, ndim + i])
    return arr.transpose(order).reshape(padded_shape)


# -- ZFP lifted transform -----------------------------------------------------
#
# The 1-D forward lift on (x, y, z, w), applied along each axis of the block
# (Lindstrom 2014, integer version):


def _lift_forward(v: np.ndarray) -> None:
    """In-place forward lift along the last axis (length 4)."""
    x, y, z, w = (v[..., 0].copy(), v[..., 1].copy(), v[..., 2].copy(), v[..., 3].copy())
    x += w
    x >>= 1
    w -= x
    z += y
    z >>= 1
    y -= z
    x += z
    x >>= 1
    z -= x
    w += y
    w >>= 1
    y -= w
    w += y >> 1
    y -= w >> 1
    v[..., 0], v[..., 1], v[..., 2], v[..., 3] = x, y, z, w


def _lift_inverse(v: np.ndarray) -> None:
    x, y, z, w = (v[..., 0].copy(), v[..., 1].copy(), v[..., 2].copy(), v[..., 3].copy())
    y += w >> 1
    w -= y >> 1
    y += w
    w <<= 1
    w -= y
    z += x
    x <<= 1
    x -= z
    y += z
    z <<= 1
    z -= y
    w += x
    x <<= 1
    x -= w
    v[..., 0], v[..., 1], v[..., 2], v[..., 3] = x, y, z, w


def _forward_transform(blocks: np.ndarray, ndim: int) -> np.ndarray:
    v = blocks.reshape((-1,) + (_BLOCK,) * ndim).copy()
    for axis in range(1, ndim + 1):
        moved = np.moveaxis(v, axis, -1)
        _lift_forward(moved)
    return v.reshape(blocks.shape)


def _inverse_transform(blocks: np.ndarray, ndim: int) -> np.ndarray:
    v = blocks.reshape((-1,) + (_BLOCK,) * ndim).copy()
    for axis in range(ndim, 0, -1):
        moved = np.moveaxis(v, axis, -1)
        _lift_inverse(moved)
    return v.reshape(blocks.shape)
