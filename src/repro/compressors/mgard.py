"""MGARD-like compressor: hierarchical multilinear decomposition.

MGARD decorrelates with multilinear interpolation between grid levels and
quantizes nodal coefficients level by level.  This port expresses that as the
shared engine's *multidim* level structure with linear interpolation — each
level's coefficients are exactly "value − multilinear interpolant from the
coarser grid" — plus MGARD's conservative level-dependent error allocation
(coarser levels quantized ``2**((l-1)/2)`` times more finely, mirroring the
L2-norm level weights).  The full ``L²`` projection correction is omitted
(documented substitution in DESIGN.md): QP only interacts with the
quantization-index structure, which is preserved.

MGARD's signature feature — resolution reduction — is supported:
:meth:`MGARD.decompress_resolution` reconstructs the stride-``2**k`` subgrid
without decoding finer levels.
"""
from __future__ import annotations

from typing import Any

import numpy as np

from ..codecs import compress as lossless_compress, decompress as lossless_decompress
from ..core.config import QPConfig
from ..errors import CorruptBlobError, ReproError
from ..utils.levels import anchor_slices, num_levels
from .base import (
    Blob,
    CompressionState,
    Compressor,
    decode_index_stream,
    encode_index_stream,
)
from .interp_engine import EngineConfig, compress_volume, decompress_volume

__all__ = ["MGARD"]


class MGARD(Compressor):
    """MGARD-like multilevel compressor with optional QP."""

    name = "mgard"
    supports_qp = True
    traits = {
        "speed": "low",
        "ratio": "low",
        "resolution_reduction": True,
        "gpu": True,
        "qoi": True,
        "quality_oriented": False,
    }

    def __init__(
        self,
        error_bound: float,
        qp: QPConfig | None = None,
        radius: int = 32768,
        lossless_backend: str = "zlib",
    ) -> None:
        super().__init__(error_bound, lossless_backend)
        self.qp = qp or QPConfig.disabled()
        self.radius = radius

    def _engine_config(self, shape: tuple[int, ...]) -> EngineConfig:
        levels = num_levels(shape)
        # L2-weight-style allocation: level l quantized 2**((l-1)/2) finer
        factors = {l: 2.0 ** (-(l - 1) / 2.0) for l in range(1, levels + 1)}
        return EngineConfig(
            error_bound=self.error_bound,
            radius=self.radius,
            interp="linear",  # multilinear basis
            structure="multidim",
            level_eb_factors=factors,
            qp=self.qp,
        )

    def _compress(
        self, data: np.ndarray, state: CompressionState | None
    ) -> tuple[dict[str, Any], dict[str, bytes]]:
        cfg = self._engine_config(data.shape)
        meta, stream, literals, anchors = compress_volume(data, cfg, state)
        sections = {
            "indices": encode_index_stream(stream, self.lossless_backend),
            "literals": lossless_compress(literals.tobytes(), self.lossless_backend),
            "anchors": anchors.tobytes(),
        }
        return {"engine": meta}, sections

    def _decompress(self, blob: Blob) -> np.ndarray:
        return self._reconstruct(blob, stop_level=0)

    def decompress_resolution(self, blob: bytes, level: int) -> np.ndarray:
        """Reconstruct only down to interpolation level ``level`` (resolution
        reduction): returns the stride-``2**level`` subgrid of the data.
        ``level=0`` is full resolution.

        Routes through the same envelope/CRC unwrap, header validation, and
        typed-fault conversion as :meth:`decompress`, so sealed (v1 RPR1)
        blobs and corrupted bytes behave identically on both entry points.
        """
        from .base import _DECODE_FAULTS

        b, _shape, _dtype = self._parse_own_blob(blob)
        try:
            return self._reconstruct(b, stop_level=level)
        except ReproError:
            raise
        except _DECODE_FAULTS as exc:
            raise CorruptBlobError(
                f"{self.name} blob failed to decode: {type(exc).__name__}: {exc}"
            ) from exc

    def _reconstruct(self, blob: Blob, stop_level: int) -> np.ndarray:
        header = blob.header
        shape = tuple(header["shape"])
        dtype = np.dtype(header["dtype"])
        stream = decode_index_stream(blob.sections["indices"])
        literals = np.frombuffer(
            lossless_decompress(blob.sections["literals"]), dtype=dtype
        )
        a_shape = tuple(
            len(range(*sl.indices(n))) for sl, n in zip(anchor_slices(shape), shape)
        )
        anchors = np.frombuffer(blob.sections["anchors"], dtype=dtype).reshape(a_shape)
        if stop_level == 0:
            return decompress_volume(
                header["engine"], stream, literals, anchors, shape, dtype,
                header["error_bound"],
            )
        arr, _, _ = _decode_until(
            header, stream, literals, anchors, shape, dtype, stop_level
        )
        s = 1 << stop_level
        return arr[tuple(slice(0, None, s) for _ in shape)].copy()


def _decode_until(header, stream, literals, anchors, shape, dtype, stop_level):
    """Replay the schedule, stopping before level ``stop_level`` (the finer
    levels' streams are simply left unread)."""
    from ..quantize.linear import LinearQuantizer
    from ..core.qp import qp_inverse
    from ..utils.levels import level_passes_multidim, pass_sizes

    meta = header["engine"]
    eb = header["error_bound"]
    factors = {int(k): float(v) for k, v in meta["level_eb_factors"].items()}
    qp_cfg = QPConfig.from_dict(meta["qp"])
    methods = {int(k): v for k, v in meta["methods"].items()}
    levels = int(meta["levels"])

    arr = np.zeros(shape, dtype=dtype)
    arr[anchor_slices(shape)] = anchors
    spos = lpos = 0
    from .interp_engine import _pass_prediction, _moved_axes

    for level in range(levels, stop_level, -1):
        quantizer = LinearQuantizer(eb * factors.get(level, 1.0), int(meta["radius"]))
        for p in level_passes_multidim(shape, level):
            psize = pass_sizes(shape, p)
            n = int(np.prod(psize))
            moved = tuple(psize[a] for a in _moved_axes(len(shape), p.axis))
            q_out = stream[spos:spos + n].reshape(moved)
            spos += n
            q = qp_inverse(q_out, quantizer.sentinel, qp_cfg, level)
            indices = np.moveaxis(q, 0, p.axis)
            n_lit = int((indices == quantizer.sentinel).sum())
            lits = literals[lpos:lpos + n_lit]
            lpos += n_lit
            pred = _pass_prediction(arr, p, methods[level])
            arr[p.target] = quantizer.dequantize(indices, pred, lits)
    return arr, spos, lpos
