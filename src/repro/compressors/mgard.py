"""MGARD-like compressor: hierarchical multilinear decomposition.

MGARD decorrelates with multilinear interpolation between grid levels and
quantizes nodal coefficients level by level.  This port expresses that as the
shared engine's *multidim* level structure with linear interpolation — each
level's coefficients are exactly "value − multilinear interpolant from the
coarser grid" — plus MGARD's conservative level-dependent error allocation
(coarser levels quantized ``2**((l-1)/2)`` times more finely, mirroring the
L2-norm level weights).  The full ``L²`` projection correction is omitted
(documented substitution in DESIGN.md): QP only interacts with the
quantization-index structure, which is preserved.

MGARD's signature feature — resolution reduction — is supported:
:meth:`MGARD.decompress_resolution` reconstructs the stride-``2**k`` subgrid
without decoding finer levels.
"""
from __future__ import annotations

from typing import Any

import numpy as np

from ..core.config import AdaptiveConfig, QPConfig
from ..errors import CorruptBlobError, ReproError
from ..pipeline.driver import decode_engine_blob, encode_engine_sections
from ..utils.levels import num_levels
from ..utils.validation import check_ndarray
from .base import Blob, CompressionState, Compressor, EngineFront
from .interp_engine import EngineConfig, compress_volume

__all__ = ["MGARD"]


class MGARD(Compressor):
    """MGARD-like multilevel compressor with optional QP."""

    name = "mgard"
    supports_qp = True
    traits = {
        "speed": "low",
        "ratio": "low",
        "resolution_reduction": True,
        "gpu": True,
        "qoi": True,
        "quality_oriented": False,
    }

    def __init__(
        self,
        error_bound: float,
        qp: QPConfig | None = None,
        radius: int = 32768,
        lossless_backend: str = "zlib",
        adaptive: AdaptiveConfig | None = None,
    ) -> None:
        super().__init__(error_bound, lossless_backend)
        self.qp = qp or QPConfig.disabled()
        self.radius = radius
        if isinstance(adaptive, dict):
            adaptive = AdaptiveConfig.from_dict(adaptive)
        self.adaptive = adaptive

    @staticmethod
    def _level_factors(levels: int) -> dict[int, float]:
        # L2-weight-style allocation: level l quantized 2**((l-1)/2) finer
        return {l: 2.0 ** (-(l - 1) / 2.0) for l in range(1, levels + 1)}

    def _engine_config(self, shape: tuple[int, ...]) -> EngineConfig:
        return EngineConfig(
            error_bound=self.error_bound,
            radius=self.radius,
            interp="linear",  # multilinear basis
            structure="multidim",
            level_eb_factors=self._level_factors(num_levels(shape)),
            qp=self.qp,
            adaptive=self.adaptive,
        )

    def _tuned_for(self, data: np.ndarray) -> "MGARD":
        """Sampling tuner with MGARD's basis pinned: the multilinear
        interpolant, multidim structure, and L2-weight level allocation are
        part of the format, so only QP and adaptivity are searched."""
        import copy

        from ..core.autotune import autotune

        decision = autotune(
            data, self.error_bound, radius=self.radius,
            fixed={
                "interp": "linear",
                "structure": "multidim",
                "axis_order": None,
                "level_eb_factors": self._level_factors,
            },
        )
        tuned = copy.copy(self)
        tuned.qp = decision.qp_config()
        tuned.adaptive = decision.adaptive_config()
        tuned.tuning_decision = decision
        return tuned

    def _compress(
        self, data: np.ndarray, state: CompressionState | None
    ) -> tuple[dict[str, Any], dict[str, bytes]]:
        cfg = self._engine_config(data.shape)
        meta, stream, literals, anchors = compress_volume(data, cfg, state)
        sections = encode_engine_sections(
            stream, literals, anchors,
            lossless_backend=self.lossless_backend, entropy=self.entropy,
        )
        return {"engine": meta}, sections

    def _stream_front(self, slab: np.ndarray):
        """Streaming front split: the multilevel walk always has the
        engine's entropy seam, so every slab streams through it."""
        slab = check_ndarray(slab)
        cfg = self._engine_config(slab.shape)
        meta, stream, literals, anchors = compress_volume(slab, cfg, None)
        return EngineFront(
            slab.shape, slab.dtype, {"engine": meta}, stream, literals, anchors
        )

    def _decompress(self, blob: Blob) -> np.ndarray:
        return self._reconstruct(blob, stop_level=0)

    def decompress_resolution(self, blob: bytes, level: int) -> np.ndarray:
        """Reconstruct only down to interpolation level ``level`` (resolution
        reduction): returns the stride-``2**level`` subgrid of the data.
        ``level=0`` is full resolution.

        Routes through the same envelope/CRC unwrap, header validation, and
        typed-fault conversion as :meth:`decompress`, so sealed (v1 RPR1)
        blobs and corrupted bytes behave identically on both entry points.
        """
        from .base import _DECODE_FAULTS

        b, _shape, _dtype = self._parse_own_blob(blob)
        try:
            return self._reconstruct(b, stop_level=level)
        except ReproError:
            raise
        except _DECODE_FAULTS as exc:
            raise CorruptBlobError(
                f"{self.name} blob failed to decode: {type(exc).__name__}: {exc}"
            ) from exc

    def _reconstruct(self, blob: Blob, stop_level: int) -> np.ndarray:
        # the engine's schedule replay handles partial decode natively: with
        # stop_level > 0 the finer levels' streams are simply left unread
        arr = decode_engine_blob(blob, stop_level=stop_level)
        if stop_level == 0:
            return arr
        s = 1 << stop_level
        return arr[tuple(slice(0, None, s) for _ in blob.header["shape"])].copy()
