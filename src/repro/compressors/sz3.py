"""SZ3-like compressor: multilevel spline interpolation with Lorenzo switch.

Pipeline (Section IV-A): multilevel linear/cubic interpolation (level by
level, axis by axis), linear-scaling quantization, Huffman + lossless
encoding.  Like the real SZ3, a sampling-based estimator may switch the whole
field to the (dual-quantization) Lorenzo predictor when that decorrelates
better — the behaviour the paper leans on to explain SegSalt/SCALE results at
small error bounds.  QP integrates per Algorithm 1 and is automatically
inactive on the Lorenzo path.
"""
from __future__ import annotations

from typing import Any

import numpy as np

from ..codecs import compress as lossless_compress, decompress as lossless_decompress
from ..codecs.fixed import decode_fixed, encode_fixed
from ..core.characterize import shannon_entropy
from ..core.config import AdaptiveConfig, QPConfig
from ..pipeline.driver import (
    decode_engine_blob,
    encode_engine_sections,
    engine_decode_item,
    spec_for_blob,
)
from ..predictors.lorenzo import LorenzoResult, lorenzo_decode, lorenzo_encode
from ..utils.validation import check_ndarray
from .base import (
    Blob,
    CompressionState,
    Compressor,
    EngineFront,
    decode_index_stream,
    decode_index_streams,
    encode_index_stream,
)
from .interp_engine import (
    EngineConfig,
    _pass_prediction as _engine_pass_prediction,
    compress_volume,
    decompress_volumes,
)

__all__ = ["SZ3"]

_SAMPLE_SIDE = 32


def _zigzag(v: np.ndarray) -> np.ndarray:
    return np.where(v >= 0, 2 * v, -2 * v - 1).astype(np.uint64)


def _unzigzag(u: np.ndarray) -> np.ndarray:
    u = u.astype(np.int64)
    return np.where(u % 2 == 0, u // 2, -(u + 1) // 2)


class SZ3(Compressor):
    """SZ3-like interpolation compressor with optional QP.

    Parameters
    ----------
    error_bound:
        Absolute point-wise error bound.
    qp:
        :class:`~repro.core.QPConfig` controlling quantization index
        prediction; ``None`` disables it (vanilla SZ3).
    predictor:
        ``"auto"`` (sampling-based selection), ``"interp"`` or ``"lorenzo"``.
    interp:
        ``"auto"`` per-level linear/cubic selection, or a fixed method.
    """

    name = "sz3"
    supports_qp = True
    traits = {
        "speed": "high",
        "ratio": "medium",
        "resolution_reduction": False,
        "gpu": False,
        "qoi": True,
        "quality_oriented": False,
    }

    def __init__(
        self,
        error_bound: float,
        qp: QPConfig | None = None,
        predictor: str = "auto",
        interp: str = "auto",
        radius: int = 32768,
        lossless_backend: str = "zlib",
        huffman_block_size: int | None = None,
        entropy: str = "huffman",
        adaptive: AdaptiveConfig | None = None,
    ) -> None:
        super().__init__(error_bound, lossless_backend)
        if predictor not in ("auto", "interp", "lorenzo", "regression"):
            raise ValueError("predictor must be auto|interp|lorenzo|regression")
        self.qp = qp or QPConfig.disabled()
        self.predictor = predictor
        self.interp = interp
        self.radius = radius
        if huffman_block_size is not None and huffman_block_size <= 0:
            raise ValueError("huffman_block_size must be positive")
        self.huffman_block_size = huffman_block_size
        from ..pipeline.stages import entropy_stage

        entropy_stage(entropy)  # raises on unknown name
        self.entropy = entropy
        if isinstance(adaptive, dict):
            adaptive = AdaptiveConfig.from_dict(adaptive)
        self.adaptive = adaptive
        #: interpolation axis order; only the auto-tuner sets this
        self.axis_order: tuple[int, ...] | None = None

    # -- engine configuration (overridden by QoZ/HPEZ subclasses) ----------

    def _engine_config(self, data: np.ndarray) -> EngineConfig:
        return EngineConfig(
            error_bound=self.error_bound,
            radius=self.radius,
            interp=self.interp,
            axis_order=self.axis_order,
            qp=self.qp,
            adaptive=self.adaptive,
        )

    # -- sampling auto-tuner (compress(auto=True)) --------------------------

    def _tuned_for(self, data: np.ndarray) -> "SZ3":
        """Joint sampling tuner: interp / axis order / per-level eb /
        adaptive_bits / QP on a few strided blocks (see
        :func:`repro.core.autotune.autotune`).  Returns a tuned copy; the
        original instance keeps its configuration."""
        import copy

        from ..core.autotune import autotune

        decision = autotune(data, self.error_bound, radius=self.radius)
        tuned = copy.copy(self)
        tuned.predictor = "interp"  # the tuner searches the interp engine
        tuned.interp = decision.interp
        tuned.axis_order = decision.axis_order
        tuned.qp = decision.qp_config()
        tuned.adaptive = decision.adaptive_config()
        if hasattr(tuned, "alpha"):  # QoZ/HPEZ level-eb scaling
            tuned.alpha = decision.alpha
            tuned.beta = decision.beta
        tuned.tuning_decision = decision
        return tuned

    # -- predictor selection -------------------------------------------------

    def _select_predictor(self, data: np.ndarray) -> str:
        return self._select_predictor_with_trial(data)[0]

    def _select_predictor_with_trial(self, data: np.ndarray):
        """Pick the predictor; also return the Lorenzo trial encoding when it
        won, so the compression path reuses it instead of encoding twice."""
        if self.predictor != "auto":
            return self.predictor, None
        if self.adaptive is not None:
            # reserved-index adaptivity lives in the interp engine's
            # quantizer only; an explicit adaptive config would be silently
            # dropped on the Lorenzo/regression paths, so pin the engine
            return "interp", None
        try:
            lres, _ = lorenzo_encode(
                data, self.error_bound, self.radius, want_recon=False
            )
        except ValueError:  # eb too small for dual quantization
            return "interp", None
        lorenzo_bpp = shannon_entropy(lres.indices) + (
            64.0 * lres.escapes.size / data.size
        )
        interp_bpp = self._estimate_interp_bpp(data)
        if lorenzo_bpp < interp_bpp:
            return "lorenzo", lres
        return "interp", None

    def _estimate_interp_bpp(self, data: np.ndarray) -> float:
        """Estimated bits/point of the interpolation path, computed on the
        finest two levels (>98% of points) with original values standing in
        for decoded neighbours — cheap, vectorized, no crop bias."""
        from ..utils.levels import level_passes, num_levels

        two_eb = 2.0 * self.error_bound
        bits = 0.0
        count = 0
        method = "cubic" if self.interp in ("auto", "cubic") else "linear"
        for level in (1, 2):
            if level > num_levels(data.shape):
                break
            for p in level_passes(data.shape, level):
                pred = _engine_pass_prediction(data, p, method)
                q = np.rint((data[p.target] - pred) / two_eb)
                np.clip(q, -self.radius, self.radius, out=q)
                bits += shannon_entropy(q.astype(np.int64)) * q.size
                count += q.size
        return bits / max(count, 1)

    # -- compression ----------------------------------------------------------

    def _compress(
        self, data: np.ndarray, state: CompressionState | None
    ) -> tuple[dict[str, Any], dict[str, bytes]]:
        predictor, trial = self._select_predictor_with_trial(data)
        if predictor == "lorenzo":
            return self._compress_lorenzo(data, state, trial)
        if predictor == "regression":
            return self._compress_regression(data, state)
        return self._compress_interp(data, state)

    def _compress_interp(
        self, data: np.ndarray, state: CompressionState | None
    ) -> tuple[dict[str, Any], dict[str, bytes]]:
        cfg = self._engine_config(data)
        meta, stream, literals, anchors = compress_volume(data, cfg, state)
        sections = encode_engine_sections(
            stream, literals, anchors,
            lossless_backend=self.lossless_backend, entropy=self.entropy,
            block_size=self.huffman_block_size,
        )
        header: dict[str, Any] = {"predictor": "interp", "engine": meta}
        if self.entropy != "huffman":  # default stays off-header: bytes frozen
            header["entropy"] = self.entropy
        return header, sections

    def _stream_front(self, slab: np.ndarray):
        """Streaming front split: interp slabs stop before entropy coding.

        Lorenzo/regression wins have no separable entropy seam, so those
        slabs fall back to the whole-blob default (still byte-identical
        to ``compress(slab)``)."""
        slab = check_ndarray(slab)
        predictor, _trial = self._select_predictor_with_trial(slab)
        if predictor != "interp":
            return self.compress(slab)
        cfg = self._engine_config(slab)
        meta, stream, literals, anchors = compress_volume(slab, cfg, None)
        header: dict[str, Any] = {"predictor": "interp", "engine": meta}
        if self.entropy != "huffman":
            header["entropy"] = self.entropy
        return EngineFront(slab.shape, slab.dtype, header, stream, literals, anchors)

    def _compress_lorenzo(
        self, data: np.ndarray, state: CompressionState | None, trial=None
    ) -> tuple[dict[str, Any], dict[str, bytes]]:
        if trial is not None:
            result = trial  # auto-selection already encoded this exact input
        else:
            result, _ = lorenzo_encode(
                data, self.error_bound, self.radius, want_recon=False
            )
        if state is not None:
            state.index_volume = result.indices.copy()
            state.extras["predictor"] = "lorenzo"
        sections = {
            "indices": encode_index_stream(
                result.indices, self.lossless_backend, entropy=self.entropy,
                block_size=self.huffman_block_size,
            ),
            "escapes": lossless_compress(
                encode_fixed(_zigzag(result.escapes)), self.lossless_backend
            ),
        }
        return {
            "predictor": "lorenzo",
            "sentinel": result.sentinel,
            "step": result.step,
        }, sections

    def _compress_regression(
        self, data: np.ndarray, state: CompressionState | None
    ) -> tuple[dict[str, Any], dict[str, bytes]]:
        """SZ2-style block-regression path (paper ref [5])."""
        from ..predictors.regression import REGRESSION_BLOCK, fit_plane, plane_prediction
        from ..quantize.linear import LinearQuantizer
        from ..utils.blocks import iter_blocks

        quantizer = LinearQuantizer(self.error_bound, self.radius)
        coeff_parts: list[np.ndarray] = []
        index_parts: list[np.ndarray] = []
        literal_parts: list[np.ndarray] = []
        if state is not None:
            state.index_volume = np.zeros(data.shape, dtype=np.int64)
            state.extras["predictor"] = "regression"
        for bslice in iter_blocks(data.shape, REGRESSION_BLOCK):
            block = data[bslice]
            coeffs = fit_plane(block)
            pred = plane_prediction(block.shape, coeffs).astype(data.dtype)
            res = quantizer.quantize(block, pred)
            coeff_parts.append(coeffs)
            index_parts.append(res.indices.ravel())
            literal_parts.append(res.literals)
            if state is not None:
                state.index_volume[bslice] = res.indices
        sections = {
            "indices": encode_index_stream(
                np.concatenate(index_parts), self.lossless_backend, entropy=self.entropy,
                block_size=self.huffman_block_size,
            ),
            "literals": lossless_compress(
                np.concatenate(literal_parts).tobytes() if literal_parts else b"",
                self.lossless_backend,
            ),
            "coeffs": lossless_compress(
                np.concatenate(coeff_parts).tobytes(), self.lossless_backend
            ),
        }
        return {"predictor": "regression", "radius": self.radius}, sections

    def _decompress_regression(self, blob: Blob, stream: np.ndarray) -> np.ndarray:
        from ..predictors.regression import REGRESSION_BLOCK, plane_prediction
        from ..quantize.linear import LinearQuantizer
        from ..utils.blocks import iter_blocks

        header = blob.header
        shape = tuple(header["shape"])
        dtype = np.dtype(header["dtype"])
        quantizer = LinearQuantizer(
            header["error_bound"], int(header.get("radius", self.radius))
        )
        literals = np.frombuffer(
            lossless_decompress(blob.sections["literals"]), dtype=dtype
        )
        coeffs = np.frombuffer(
            lossless_decompress(blob.sections["coeffs"]), dtype=np.float32
        ).reshape(-1, len(shape) + 1)
        out = np.empty(shape, dtype=dtype)
        spos = lpos = 0
        for bi, bslice in enumerate(iter_blocks(shape, REGRESSION_BLOCK)):
            bshape = tuple(sl.stop - sl.start for sl in bslice)
            count = int(np.prod(bshape))
            indices = stream[spos:spos + count].reshape(bshape)
            spos += count
            n_lit = int((indices == quantizer.sentinel).sum())
            lits = literals[lpos:lpos + n_lit]
            lpos += n_lit
            pred = plane_prediction(bshape, coeffs[bi]).astype(dtype)
            out[bslice] = quantizer.dequantize(indices, pred, lits)
        return out

    # -- decompression ----------------------------------------------------------

    #: decode finisher per pipeline frontend stage id — ``_finish_decompress``
    #: walks the blob's derived spec instead of testing header fields
    _FRONTEND_DECODERS = {
        "interp_predict": "_decompress_interp",
        "lorenzo_predict": "_decompress_lorenzo_one",
        "regression_predict": "_decompress_regression",
    }

    def _decompress(self, blob: Blob) -> np.ndarray:
        return self._finish_decompress(
            blob, decode_index_stream(blob.sections["indices"])
        )

    def _finish_decompress(self, blob: Blob, stream: np.ndarray) -> np.ndarray:
        """Spec-driven decode of one blob whose index stream is already
        entropy-decoded (shared by the serial path and the batched path,
        which decodes all streams in one joint Huffman pass): the blob's
        header derives the producing :class:`PipelineSpec`, whose frontend
        stage selects the finisher."""
        spec = spec_for_blob(blob.header)
        finish = getattr(self, self._FRONTEND_DECODERS[spec.stages[0].stage])
        return finish(blob, stream)

    def _decompress_interp(self, blob: Blob, stream: np.ndarray) -> np.ndarray:
        return decode_engine_blob(blob, stream)

    def _decompress_lorenzo_one(self, blob: Blob, stream: np.ndarray) -> np.ndarray:
        header = blob.header
        indices = stream.reshape(tuple(header["shape"]))
        escapes = _unzigzag(
            decode_fixed(lossless_decompress(blob.sections["escapes"]))
        )
        result = LorenzoResult(
            indices=indices,
            escapes=escapes,
            sentinel=int(header["sentinel"]),
            step=float(header.get("step", 0.0)),
        )
        return lorenzo_decode(
            result, header["error_bound"], np.dtype(header["dtype"])
        )

    def _decompress_many(self, blobs: "list[Blob]") -> "list[np.ndarray]":
        """Batch decode: every blob's index stream — whatever its predictor —
        goes through one joint Huffman lockstep pass (the per-container cost
        of the block-synchronous decoder is a fixed ``block_size`` steps, so
        N separate decodes cost ~N× one joint decode).  Interpolation-path
        blobs additionally share a stacked QP inverse / predict / dequantize
        via :func:`decompress_volumes`; regression and Lorenzo blobs finish
        per-blob on their pre-decoded streams."""
        if len(blobs) <= 1:
            return [self._decompress(b) for b in blobs]
        streams = decode_index_streams([b.sections["indices"] for b in blobs])
        fronts = [spec_for_blob(b.header).stages[0].stage for b in blobs]
        interp = [i for i, f in enumerate(fronts) if f == "interp_predict"]
        outs: "list[np.ndarray | None]" = [None] * len(blobs)
        if len(interp) > 1:
            items = [engine_decode_item(blobs[i], streams[i]) for i in interp]
            for i, arr in zip(interp, decompress_volumes(items)):
                outs[i] = arr
        lorenzo = [
            i for i, f in enumerate(fronts)
            if outs[i] is None and f == "lorenzo_predict"
        ]
        if len(lorenzo) > 1:
            batched = self._decompress_lorenzo_many(
                [blobs[i] for i in lorenzo], [streams[i] for i in lorenzo]
            )
            if batched is not None:
                for i, arr in zip(lorenzo, batched):
                    outs[i] = arr
        for i, b in enumerate(blobs):
            if outs[i] is None:
                outs[i] = self._finish_decompress(b, streams[i])
        return outs

    def _decompress_lorenzo_many(
        self, blobs: "list[Blob]", streams: "list[np.ndarray]"
    ) -> "list[np.ndarray] | None":
        """Stacked Lorenzo inverse for equal-geometry blobs.

        The prefix-sum inverse treats leading axes as batch, so N slabs
        integrate in one set of cumsums instead of N; escapes reinstate with
        a single slab-major scatter (C order matches the per-slab streams
        concatenated), and the per-slab quantization steps broadcast over
        the stack, so values are bit-identical to per-blob
        :func:`lorenzo_decode`.  Returns views of one contiguous stacked
        array — slab reassembly upstream can then skip its copy.  ``None``
        when geometries differ (caller falls back to the per-blob path).
        """
        from ..obs import span as stage

        h0 = blobs[0].header
        shape = tuple(h0["shape"])
        dtype = np.dtype(h0["dtype"])
        sentinel = int(h0["sentinel"])
        for b in blobs[1:]:
            h = b.header
            if (
                tuple(h["shape"]) != shape
                or np.dtype(h["dtype"]) != dtype
                or int(h["sentinel"]) != sentinel
            ):
                return None
        q = np.empty((len(blobs),) + shape, dtype=np.int64)
        esc_parts = []
        for row, (b, stream) in enumerate(zip(blobs, streams)):
            q[row] = stream.reshape(shape)
            esc_parts.append(
                _unzigzag(decode_fixed(lossless_decompress(b.sections["escapes"])))
            )
        mask = q == sentinel
        counts = mask.sum(axis=tuple(range(1, q.ndim)))
        for row, esc in enumerate(esc_parts):
            if int(counts[row]) != esc.size:
                raise ValueError("escape count mismatch")
        if any(esc.size for esc in esc_parts):
            q[mask] = np.concatenate(esc_parts)
        with stage("predict"):
            for ax in range(1, q.ndim):
                q = np.cumsum(q, axis=ax)
        steps = np.asarray([
            float(b.header.get("step", 0.0)) or 2.0 * float(b.header["error_bound"])
            for b in blobs
        ])
        with stage("quantize"):
            out = (q * steps.reshape((-1,) + (1,) * len(shape))).astype(dtype)
        return [out[row] for row in range(len(blobs))]


def _center_sample(data: np.ndarray, side: int) -> np.ndarray:
    """Central sub-block used by sampling-based estimators."""
    slices = []
    for n in data.shape:
        take = min(n, side)
        start = (n - take) // 2
        slices.append(slice(start, start + take))
    return np.ascontiguousarray(data[tuple(slices)])
