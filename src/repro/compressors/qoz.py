"""QoZ-like compressor: SZ3 plus quality-oriented auto-tuning.

QoZ extends SZ3 with (a) exact anchor-point storage (inherited from the shared
engine), (b) per-level error bounds ``eb_l = eb / min(alpha**(l-1), beta)`` so
coarse levels — whose values seed every interpolation below them — are coded
more precisely, and (c) sampling-based auto-tuning of ``(alpha, beta)``
against a rate–distortion score.  QoZ never switches to Lorenzo, which the
paper uses to explain its steadier QP overhead.
"""
from __future__ import annotations

import numpy as np

from ..core.config import AdaptiveConfig, QPConfig
from ..metrics_light import psnr_estimate
from .interp_engine import EngineConfig, compress_volume, level_error_bounds
from .sz3 import SZ3, _center_sample

__all__ = ["QoZ"]

_ALPHA_CANDIDATES = (1.0, 1.25, 1.5, 2.0)
_BETA_CANDIDATES = (1.5, 2.0, 3.0, 4.0)
# equal-slope rate-distortion weight: ~6.02 dB of PSNR per bit/point
_RD_SLOPE = 6.02


class QoZ(SZ3):
    """QoZ-like compressor (quality-oriented SZ3 successor)."""

    name = "qoz"
    traits = {
        "speed": "high",
        "ratio": "medium",
        "resolution_reduction": False,
        "gpu": True,
        "qoi": False,
        "quality_oriented": True,
    }

    def __init__(
        self,
        error_bound: float,
        qp: QPConfig | None = None,
        alpha: float | str = "auto",
        beta: float | str = "auto",
        interp: str = "auto",
        radius: int = 32768,
        lossless_backend: str = "zlib",
        adaptive: AdaptiveConfig | None = None,
    ) -> None:
        super().__init__(
            error_bound,
            qp=qp,
            predictor="interp",  # QoZ does not make the Lorenzo switch
            interp=interp,
            radius=radius,
            lossless_backend=lossless_backend,
            adaptive=adaptive,
        )
        self.alpha = alpha
        self.beta = beta

    def _engine_config(self, data: np.ndarray) -> EngineConfig:
        from ..utils.levels import num_levels

        levels = num_levels(data.shape)
        alpha, beta = self._tune(data, levels)
        return EngineConfig(
            error_bound=self.error_bound,
            radius=self.radius,
            interp=self.interp,
            axis_order=self.axis_order,
            level_eb_factors=level_error_bounds(self.error_bound, levels, alpha, beta),
            qp=self.qp,
            adaptive=self.adaptive,
        )

    def _tune(self, data: np.ndarray, levels: int) -> tuple[float, float]:
        return tune_level_eb(
            data,
            self.error_bound,
            levels,
            alpha=self.alpha,
            beta=self.beta,
            interp=self.interp,
            radius=self.radius,
        )


def tune_level_eb(
    data: np.ndarray,
    error_bound: float,
    levels: int,
    alpha: float | str = "auto",
    beta: float | str = "auto",
    interp: str = "auto",
    radius: int = 32768,
) -> tuple[float, float]:
    """Pick (alpha, beta) maximizing ``psnr - 6.02 * bits_per_point`` on a
    central sample (QoZ's quality-metric-oriented auto-tuner, also inherited
    by HPEZ)."""
    if alpha != "auto" and beta != "auto":
        return float(alpha), float(beta)
    alphas = _ALPHA_CANDIDATES if alpha == "auto" else (float(alpha),)
    betas = _BETA_CANDIDATES if beta == "auto" else (float(beta),)
    sample = _center_sample(data, 32)
    value_range = float(sample.max() - sample.min()) or 1.0
    best, best_score = (alphas[0], betas[0]), -np.inf
    for a in alphas:
        for b in betas:
            if a == 1.0 and b != betas[0]:
                continue  # alpha=1 makes beta irrelevant
            cfg = EngineConfig(
                error_bound=error_bound,
                radius=radius,
                interp=interp,
                level_eb_factors=level_error_bounds(error_bound, levels, a, b),
                qp=QPConfig.disabled(),
            )
            from ..core.characterize import shannon_entropy
            from .base import CompressionState

            st = CompressionState()
            _, stream, literals, _ = compress_volume(sample, cfg, st)
            bpp = (
                shannon_entropy(stream) * stream.size + 32.0 * literals.size
            ) / sample.size
            psnr = psnr_estimate(sample, st.extras["decoded"], value_range)
            score = psnr - _RD_SLOPE * bpp
            if score > best_score:
                best, best_score = (a, b), score
    return best
