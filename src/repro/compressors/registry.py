"""Compressor registry: name-based construction and blob dispatch."""
from __future__ import annotations

from typing import Any

import numpy as np

from .base import Blob, Compressor

__all__ = [
    "COMPRESSORS",
    "get_compressor",
    "decompress_any",
    "decompress_many",
    "available_compressors",
    "supports_qp",
    "traits_table",
]


def _registry() -> dict[str, type[Compressor]]:
    from .hpez import HPEZ
    from .mgard import MGARD
    from .sperr import SPERR
    from .sz3 import SZ3
    from .tthresh import TTHRESH
    from .qoz import QoZ
    from .zfp import ZFP

    return {
        c.name: c for c in (MGARD, SZ3, QoZ, HPEZ, ZFP, TTHRESH, SPERR)
    }


COMPRESSORS = ("mgard", "sz3", "qoz", "hpez", "zfp", "tthresh", "sperr")
#: the four interpolation-based compressors QP integrates with
INTERP_COMPRESSORS = ("mgard", "sz3", "qoz", "hpez")


def available_compressors() -> tuple[str, ...]:
    return tuple(_registry())


def supports_qp(name: str) -> bool:
    """Whether the named compressor honors a ``qp=`` config.

    Reads the class-level capability flag, so wrappers (e.g. the parallel
    slab compressor) can route QP by what the class declares instead of
    keeping their own hardcoded name lists in sync.
    """
    reg = _registry()
    if name not in reg:
        raise KeyError(f"unknown compressor {name!r}; available: {tuple(reg)}")
    return reg[name].supports_qp


def constructor_accepts(name: str, param: str) -> bool:
    """Whether the named compressor's constructor accepts ``param``.

    Lets wrappers (e.g. the parallel slab compressor) offer tuning kwargs
    only to bases that understand them, without hardcoded name lists.
    """
    import inspect

    reg = _registry()
    if name not in reg:
        raise KeyError(f"unknown compressor {name!r}; available: {tuple(reg)}")
    return param in inspect.signature(reg[name].__init__).parameters


def get_compressor(name: str, error_bound: float, **kwargs: Any) -> Compressor:
    """Construct a compressor by registry name."""
    reg = _registry()
    if name not in reg:
        raise KeyError(f"unknown compressor {name!r}; available: {tuple(reg)}")
    return reg[name](error_bound, **kwargs)


def decompress_any(blob: bytes, **kwargs: Any) -> np.ndarray:
    """Decompress any repro blob (v0 or sealed v1) by header dispatch.

    A tampered header — unknown compressor name, missing or non-numeric
    error bound — raises :class:`~repro.errors.CorruptBlobError` rather
    than ``KeyError``/``TypeError``, so archive readers can treat every
    bad-bytes failure uniformly.
    """
    from ..errors import CorruptBlobError

    b = Blob.from_bytes(blob)
    name = b.header.get("compressor")
    reg = _registry()
    if name not in reg:
        raise CorruptBlobError(f"blob names unknown compressor {name!r}")
    eb = b.header.get("error_bound")
    if not isinstance(eb, (int, float)) or not eb > 0:
        raise CorruptBlobError(f"blob has invalid error bound {eb!r}")
    comp = reg[name](eb, **kwargs)
    return comp.decompress(blob)


def decompress_many(blobs: "list[bytes]", **kwargs: Any) -> "list[np.ndarray]":
    """Batched :func:`decompress_any` — same validation and output, but
    runs of consecutive blobs sharing one (compressor, error bound) go
    through ``Compressor.decompress_many`` so shared decode stages
    (Huffman tables, QP wavefronts) are amortized across the batch."""
    from ..errors import CorruptBlobError

    reg = _registry()
    keys = []
    for blob in blobs:
        b = Blob.from_bytes(blob)
        name = b.header.get("compressor")
        if name not in reg:
            raise CorruptBlobError(f"blob names unknown compressor {name!r}")
        eb = b.header.get("error_bound")
        if not isinstance(eb, (int, float)) or not eb > 0:
            raise CorruptBlobError(f"blob has invalid error bound {eb!r}")
        keys.append((name, eb))
    out: "list[np.ndarray]" = []
    i = 0
    while i < len(blobs):
        j = i
        while j < len(blobs) and keys[j] == keys[i]:
            j += 1
        name, eb = keys[i]
        comp = reg[name](eb, **kwargs)
        out.extend(comp.decompress_many(blobs[i:j]))
        i = j
    return out


def traits_table() -> list[dict[str, Any]]:
    """Qualitative characteristics of the compressors (paper Table I)."""
    reg = _registry()
    rows = []
    for name in ("mgard", "sz3", "qoz", "hpez"):
        row = {"compressor": name.upper()}
        row.update(reg[name].traits)
        rows.append(row)
    return rows
