"""Compressor registry: name-based construction and blob dispatch.

The registry is a *view over the pipeline registrations*
(:mod:`repro.pipeline.builders`): the listed names, their order, the
implementation classes, and the capability queries are all derived from
the registered :class:`~repro.pipeline.spec.PipelineSpec` builders, so a
compressor cannot be registered without declaring its stage chain — and
the listings below can never drift from it.
"""
from __future__ import annotations

from importlib import import_module
from typing import Any

import numpy as np

from ..pipeline import pipeline, pipeline_spec, registered_pipelines
from .base import Blob, Compressor

__all__ = [
    "COMPRESSORS",
    "get_compressor",
    "decompress_any",
    "decompress_many",
    "available_compressors",
    "supports_qp",
    "traits_table",
]


def _resolve_class(name: str) -> type[Compressor]:
    """Import the implementation class from the pipeline's ``cls_path``."""
    module_name, _, cls_name = pipeline(name).cls_path.partition(":")
    return getattr(import_module(module_name), cls_name)


#: every registered compressor, in pipeline registration order
COMPRESSORS = registered_pipelines()
#: the four interpolation-based compressors QP integrates with — i.e. the
#: pipelines whose spec starts from the interpolation prediction stage
INTERP_COMPRESSORS = tuple(
    name for name in COMPRESSORS if pipeline_spec(name).has_stage("interp_predict")
)


def available_compressors() -> tuple[str, ...]:
    return registered_pipelines()


def _lookup(name: str) -> type[Compressor]:
    """Resolve a registry name to its class — the single place the
    unknown-name error is raised, shared by every registry entry point."""
    reg = registered_pipelines()
    if name not in reg:
        raise KeyError(f"unknown compressor {name!r}; available: {tuple(reg)}")
    return _resolve_class(name)


def supports_qp(name: str) -> bool:
    """Whether the named compressor honors a ``qp=`` config.

    Spec introspection — "does the registered pipeline contain a ``qp``
    stage?" — so wrappers (parallel slabs, temporal, QoI) route QP by what
    the pipeline declares instead of keeping hardcoded name lists in sync.
    """
    _lookup(name)  # keep the unknown-name contract
    return pipeline_spec(name).has_stage("qp")


def constructor_accepts(name: str, param: str) -> bool:
    """Whether the named compressor's constructor accepts ``param``.

    Lets wrappers (e.g. the parallel slab compressor) offer tuning kwargs
    only to bases that understand them, without hardcoded name lists.
    """
    import inspect

    return param in inspect.signature(_lookup(name).__init__).parameters


def get_compressor(name: str, error_bound: float, **kwargs: Any) -> Compressor:
    """Construct a compressor by registry name."""
    return _lookup(name)(error_bound, **kwargs)


def _decoder(
    name: str,
    error_bound: float,
    lossless_backend: str | None,
    huffman_block_size: int | None,
    predictor: str | None,
) -> Compressor:
    """Build the decode-side compressor instance for header dispatch.

    Each knob is forwarded only when it is not ``None`` *and* the target
    constructor accepts it (:func:`constructor_accepts`), so one call
    works across a mixed batch of compressor families.
    """
    kwargs: dict[str, Any] = {}
    for key, val in (
        ("lossless_backend", lossless_backend),
        ("huffman_block_size", huffman_block_size),
        ("predictor", predictor),
    ):
        if val is not None and constructor_accepts(name, key):
            kwargs[key] = val
    return _lookup(name)(error_bound, **kwargs)


def _dispatch_key(blob: bytes) -> tuple[str, float]:
    """Validated ``(compressor, error_bound)`` from a blob header.

    A tampered header — unknown compressor name, missing or non-numeric
    error bound — raises :class:`~repro.errors.CorruptBlobError` rather
    than ``KeyError``/``TypeError``, so archive readers can treat every
    bad-bytes failure uniformly.
    """
    from ..errors import CorruptBlobError

    b = Blob.from_bytes(blob)
    name = b.header.get("compressor")
    if name not in registered_pipelines():
        raise CorruptBlobError(f"blob names unknown compressor {name!r}")
    eb = b.header.get("error_bound")
    if not isinstance(eb, (int, float)) or not eb > 0:
        raise CorruptBlobError(f"blob has invalid error bound {eb!r}")
    return name, float(eb)


def decompress_any(
    blob: bytes,
    *,
    lossless_backend: str | None = None,
    huffman_block_size: int | None = None,
    predictor: str | None = None,
) -> np.ndarray:
    """Decompress any repro blob (v0 or sealed v1) by header dispatch.

    The blob is self-describing; the keyword knobs only tune the decoder
    instance that is constructed for dispatch (``None`` keeps each
    compressor's default) and are forwarded per compressor via
    :func:`constructor_accepts` filtering:

    ``lossless_backend``     byte-stream backend name (``zlib``/``lz77``/...)
    ``huffman_block_size``   entropy-stage block length override
    ``predictor``            predictor choice for SZ3-family decoders

    Header validation matches :func:`_dispatch_key`: tampered headers
    raise :class:`~repro.errors.CorruptBlobError`.
    """
    name, eb = _dispatch_key(blob)
    comp = _decoder(name, eb, lossless_backend, huffman_block_size, predictor)
    return comp.decompress(blob)


def decompress_many(
    blobs: "list[bytes]",
    *,
    lossless_backend: str | None = None,
    huffman_block_size: int | None = None,
    predictor: str | None = None,
) -> "list[np.ndarray]":
    """Batched :func:`decompress_any` — same validation, knobs, and output,
    but runs of consecutive blobs sharing one (compressor, error bound) go
    through ``Compressor.decompress_many`` so shared decode stages
    (Huffman tables, QP wavefronts) are amortized across the batch."""
    keys = [_dispatch_key(blob) for blob in blobs]
    out: "list[np.ndarray]" = []
    i = 0
    while i < len(blobs):
        j = i
        while j < len(blobs) and keys[j] == keys[i]:
            j += 1
        name, eb = keys[i]
        comp = _decoder(name, eb, lossless_backend, huffman_block_size, predictor)
        out.extend(comp.decompress_many(blobs[i:j]))
        i = j
    return out


def traits_table() -> list[dict[str, Any]]:
    """Qualitative characteristics of the compressors (paper Table I)."""
    rows = []
    for name in INTERP_COMPRESSORS:
        traits = _resolve_class(name).traits
        if not traits:
            continue  # re-framed variants (sz3_progressive) share a row above
        row = {"compressor": name.upper()}
        row.update(traits)
        rows.append(row)
    return rows
