"""Compressor registry: name-based construction and blob dispatch."""
from __future__ import annotations

from typing import Any

import numpy as np

from .base import Blob, Compressor

__all__ = [
    "COMPRESSORS",
    "get_compressor",
    "decompress_any",
    "available_compressors",
    "supports_qp",
    "traits_table",
]


def _registry() -> dict[str, type[Compressor]]:
    from .hpez import HPEZ
    from .mgard import MGARD
    from .sperr import SPERR
    from .sz3 import SZ3
    from .tthresh import TTHRESH
    from .qoz import QoZ
    from .zfp import ZFP

    return {
        c.name: c for c in (MGARD, SZ3, QoZ, HPEZ, ZFP, TTHRESH, SPERR)
    }


COMPRESSORS = ("mgard", "sz3", "qoz", "hpez", "zfp", "tthresh", "sperr")
#: the four interpolation-based compressors QP integrates with
INTERP_COMPRESSORS = ("mgard", "sz3", "qoz", "hpez")


def available_compressors() -> tuple[str, ...]:
    return tuple(_registry())


def supports_qp(name: str) -> bool:
    """Whether the named compressor honors a ``qp=`` config.

    Reads the class-level capability flag, so wrappers (e.g. the parallel
    slab compressor) can route QP by what the class declares instead of
    keeping their own hardcoded name lists in sync.
    """
    reg = _registry()
    if name not in reg:
        raise KeyError(f"unknown compressor {name!r}; available: {tuple(reg)}")
    return reg[name].supports_qp


def get_compressor(name: str, error_bound: float, **kwargs: Any) -> Compressor:
    """Construct a compressor by registry name."""
    reg = _registry()
    if name not in reg:
        raise KeyError(f"unknown compressor {name!r}; available: {tuple(reg)}")
    return reg[name](error_bound, **kwargs)


def decompress_any(blob: bytes, **kwargs: Any) -> np.ndarray:
    """Decompress any repro blob (v0 or sealed v1) by header dispatch.

    A tampered header — unknown compressor name, missing or non-numeric
    error bound — raises :class:`~repro.errors.CorruptBlobError` rather
    than ``KeyError``/``TypeError``, so archive readers can treat every
    bad-bytes failure uniformly.
    """
    from ..errors import CorruptBlobError

    b = Blob.from_bytes(blob)
    name = b.header.get("compressor")
    reg = _registry()
    if name not in reg:
        raise CorruptBlobError(f"blob names unknown compressor {name!r}")
    eb = b.header.get("error_bound")
    if not isinstance(eb, (int, float)) or not eb > 0:
        raise CorruptBlobError(f"blob has invalid error bound {eb!r}")
    comp = reg[name](eb, **kwargs)
    return comp.decompress(blob)


def traits_table() -> list[dict[str, Any]]:
    """Qualitative characteristics of the compressors (paper Table I)."""
    reg = _registry()
    rows = []
    for name in ("mgard", "sz3", "qoz", "hpez"):
        row = {"compressor": name.upper()}
        row.update(reg[name].traits)
        rows.append(row)
    return rows
