"""Shared multilevel interpolation compression engine.

SZ3, QoZ and HPEZ are thin wrappers over this engine; they differ only in the
:class:`EngineConfig` they construct (level structure, per-level error bounds,
interpolation method selection, axis order, QP settings).  MGARD expresses its
hierarchical decomposition as the *multidim* structure of the same engine.

The engine is the driver for the stage objects in
:mod:`repro.pipeline.stages`: per pass it invokes the prediction stage,
the quantization stage, overwrites the working array with decoded values
(so later passes predict from what the decompressor will see), walks the
config's index-transform stages over the pass's index array (QP's
Algorithm 1 insertion point — the engine itself no longer special-cases
any transform), and appends the result to the index stream.  Decompression
replays the identical pass schedule with each stage inverted.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.config import AdaptiveConfig, QPConfig
from ..obs import span as stage
from ..pipeline.stages import (
    AdaptiveLinearQuantize,
    InterpPredict,
    LinearQuantize,
    QPTransform,
    StageContext,
)
from ..quantize.linear import LinearQuantizer
from ..utils.levels import (
    MDPass,
    Pass,
    anchor_slices,
    level_passes,
    level_passes_multidim,
    num_levels,
    pass_sizes,
)
from .base import CompressionState

__all__ = [
    "EngineConfig",
    "compress_volume",
    "decompress_volume",
    "decompress_volumes",
    "level_error_bounds",
    "predict_fill",
]

# thin aliases: the prediction kernels moved into the InterpPredict stage
# (repro.pipeline.stages); these names remain the engine's public surface
_pass_prediction = InterpPredict.pass_prediction
_pass_prediction_stacked = InterpPredict.pass_prediction_stacked
_choose_method_pred = InterpPredict.choose


def _choose_method(arr: np.ndarray, p: Pass | MDPass) -> str:
    return InterpPredict.choose(arr, p)[0]


@dataclass
class EngineConfig:
    """Parameters of one engine run (serialized into the blob header)."""

    error_bound: float
    radius: int = 32768
    interp: str = "auto"  # "linear" | "cubic" | "auto" (choose per level)
    structure: str = "sequential"  # or "multidim" (HPEZ)
    axis_order: tuple[int, ...] | None = None
    level_eb_factors: dict[int, float] = field(default_factory=dict)  # QoZ tuning
    qp: QPConfig = field(default_factory=QPConfig.disabled)
    #: reserved-index adaptive quantization; ``None`` keeps the classic
    #: quantize stage (and the existing wire bytes) exactly as before
    adaptive: AdaptiveConfig | None = None
    #: optional per-level scheme auto-tuner (HPEZ): called with
    #: (arr, level, cfg), returns {"structure": ..., "axis_order": ...};
    #: not serialized — the chosen schemes are recorded in the blob meta.
    scheme_selector: Any = None
    #: per-level schemes fixed up-front (populated from the blob meta on
    #: decompression, or by the selector during compression)
    level_schemes: dict[int, dict] = field(default_factory=dict)

    def eb_for_level(self, level: int) -> float:
        return self.error_bound * self.level_eb_factors.get(level, 1.0)

    def scheme_for_level(self, level: int) -> tuple[str, tuple[int, ...] | None]:
        scheme = self.level_schemes.get(level)
        if scheme is None:
            return self.structure, self.axis_order
        order = scheme.get("axis_order")
        return scheme["structure"], tuple(order) if order else None

    # -- stage construction --------------------------------------------------

    def predict_stage(self) -> InterpPredict:
        return InterpPredict(self.interp)

    def quantize_stage(self) -> "LinearQuantize | AdaptiveLinearQuantize":
        if self.adaptive is not None:
            return AdaptiveLinearQuantize(
                self.error_bound,
                self.radius,
                adaptive_bits=self.adaptive.bits,
                threshold=self.adaptive.threshold,
                level_eb_factors=self.level_eb_factors,
            )
        return LinearQuantize(self.error_bound, self.radius, self.level_eb_factors)

    def index_transforms(self) -> tuple:
        """Index-stream transform stages applied between quantization and
        entropy coding, in forward order.  The engine walks these
        generically; QP is currently the only registered index transform
        (each wrapped kernel no-ops outside its configured case/levels)."""
        return (QPTransform(self.qp),)

    @classmethod
    def from_meta(cls, meta: dict[str, Any], error_bound: float) -> "EngineConfig":
        """Rebuild the decode-side config from the blob's engine meta."""
        return cls(
            error_bound=error_bound,
            radius=int(meta["radius"]),
            structure=meta["structure"],
            axis_order=tuple(meta["axis_order"]) if meta["axis_order"] else None,
            level_schemes={
                int(k): v for k, v in meta.get("level_schemes", {}).items()
            },
            level_eb_factors={
                int(k): float(v) for k, v in meta["level_eb_factors"].items()
            },
            qp=QPConfig.from_dict(meta["qp"]),
            adaptive=(
                AdaptiveConfig.from_dict(meta["adaptive"])
                if meta.get("adaptive") is not None
                else None
            ),
        )


def level_error_bounds(eb: float, levels: int, alpha: float, beta: float) -> dict[int, float]:
    """QoZ-style per-level error-bound factors: level ``l`` uses
    ``eb / min(alpha**(l-1), beta)`` so coarse levels are encoded more
    precisely (their errors propagate through the interpolation)."""
    if alpha < 1 or beta < 1:
        raise ValueError("alpha and beta must be >= 1")
    return {l: 1.0 / min(alpha ** (l - 1), beta) for l in range(1, levels + 1)}


def _passes_for_level(
    shape: tuple[int, ...], level: int, cfg: EngineConfig
) -> list[Pass | MDPass]:
    structure, axis_order = cfg.scheme_for_level(level)
    if structure == "multidim":
        return level_passes_multidim(shape, level)
    return level_passes(shape, level, axis_order)


def trial_level_bits(
    arr: np.ndarray, level: int, cfg: EngineConfig, scheme: dict
) -> float:
    """Estimated coded size (entropy bits + literal penalty) of one level
    under a candidate scheme, evaluated on a scratch copy of the working
    array.  Used by HPEZ's per-level scheme auto-tuner."""
    from dataclasses import replace

    from ..core.characterize import shannon_entropy

    # A level at stride s only ever touches the stride-s subgrid, and its
    # passes are exactly the level-1 passes of that subgrid (same values,
    # same schedule, same quantizer) — so the scratch copy can shrink from
    # the full array to the affected region, an 8x memory/copy saving per
    # trial in 3-D at level 2 and more above.
    s = 1 << (level - 1)
    if s > 1:
        work = arr[tuple(slice(None, None, s) for _ in arr.shape)].copy()
        pass_level = 1
    else:
        work = arr.copy()
        pass_level = level
    probe = replace(
        cfg,
        structure=scheme["structure"],
        axis_order=scheme.get("axis_order"),
        level_schemes={},
        scheme_selector=None,
    )
    quantizer = LinearQuantizer(probe.eb_for_level(level), probe.radius)
    passes = _passes_for_level(work.shape, pass_level, probe)
    if not passes:
        return 0.0
    method = _choose_method(work, passes[0]) if probe.interp == "auto" else probe.interp
    bits = 0.0
    for p in passes:
        pred = _pass_prediction(work, p, method)
        view = work[p.target]
        res = quantizer.quantize(view, pred)
        view[...] = res.decoded
        bits += shannon_entropy(res.indices) * res.indices.size
        bits += 8.0 * work.dtype.itemsize * res.literals.size
    return bits


def compress_volume(
    data: np.ndarray,
    cfg: EngineConfig,
    state: CompressionState | None = None,
    level_stats: "list[dict] | None" = None,
) -> tuple[dict[str, Any], np.ndarray, np.ndarray, np.ndarray]:
    """Run the interpolation pipeline over ``data``.

    Returns ``(meta, index_stream, literals, anchors)``: ``meta`` holds
    everything the decompressor needs (levels, chosen methods, transform
    configs), ``index_stream`` is the concatenated (transform-applied)
    quantization indices of every pass in schedule order, ``literals`` the
    unpredictable values in the same order, and ``anchors`` the exact
    coarsest-grid values.

    ``level_stats``, when a list, collects one dict per pass in schedule
    order — ``{"level", "indices", "literals", "max_residual"}`` — where
    ``max_residual`` is the largest |original - prediction| of the pass in
    float64.  The progressive compressor uses these to split the streams
    at level boundaries and to derive per-level achievable error bounds;
    the wire bytes are unaffected.
    """
    arr = data.copy()
    shape = arr.shape
    levels = num_levels(shape)
    anchors = arr[anchor_slices(shape)].copy()

    predictor = cfg.predict_stage()
    quantize = cfg.quantize_stage()
    transforms = cfg.index_transforms()
    ctx = StageContext(sentinel=quantize.sentinel, dtype=data.dtype)

    if state is not None:
        state.index_volume = np.zeros(shape, dtype=np.int64)
        state.extras["index_volume_qp"] = np.zeros(shape, dtype=np.int64)
        state.extras["pass_levels"] = np.zeros(shape, dtype=np.int8)

    streams: list[np.ndarray] = []
    literal_parts: list[np.ndarray] = []
    methods: dict[int, str] = {}

    for level in range(levels, 0, -1):
        ctx.level = level
        if cfg.scheme_selector is not None and level not in cfg.level_schemes:
            cfg.level_schemes[level] = cfg.scheme_selector(arr, level, cfg)
        passes = _passes_for_level(shape, level, cfg)
        if not passes:
            continue
        first_pred: np.ndarray | None = None
        if cfg.interp == "auto":
            with stage("predict"):
                # the selection already computed the winning method's
                # prediction for the first pass — reuse it below
                methods[level], first_pred = InterpPredict.choose(arr, passes[0])
        else:
            methods[level] = cfg.interp
        ctx.method = methods[level]
        for p in passes:
            with stage("predict"):
                pred = first_pred if p is passes[0] and first_pred is not None \
                    else predictor.forward(ctx, (arr, p))
            target_view = arr[p.target]
            with stage("quantize"):
                res = quantize.forward(ctx, (target_view, pred))
            if level_stats is not None:
                # measured before the overwrite below: target_view still
                # holds the working values the prediction was scored against
                diff = np.abs(
                    target_view.astype(np.float64)
                    - np.asarray(pred, dtype=np.float64)
                )
                level_stats.append({
                    "level": level,
                    "indices": int(res.indices.size),
                    "literals": int(res.literals.size),
                    "max_residual": float(diff.max()) if diff.size else 0.0,
                })
            target_view[...] = res.decoded  # future passes see decoded values
            q_out = np.moveaxis(res.indices, p.axis, 0)
            for t in transforms:
                q_out = t.forward(ctx, q_out)
            streams.append(np.ascontiguousarray(q_out).ravel())
            literal_parts.append(res.literals)
            if state is not None:
                state.index_volume[p.target] = res.indices
                state.extras["index_volume_qp"][p.target] = np.moveaxis(q_out, 0, p.axis)
                state.extras["pass_levels"][p.target] = level

    index_stream = (
        np.concatenate(streams) if streams else np.empty(0, dtype=np.int64)
    )
    literals = (
        np.concatenate(literal_parts) if literal_parts else np.empty(0, dtype=data.dtype)
    )
    meta = {
        "levels": levels,
        "methods": {str(k): v for k, v in methods.items()},
        "structure": cfg.structure,
        "axis_order": list(cfg.axis_order) if cfg.axis_order else None,
        "level_schemes": {
            str(k): {
                "structure": v["structure"],
                "axis_order": list(v["axis_order"]) if v.get("axis_order") else None,
            }
            for k, v in cfg.level_schemes.items()
        },
        "radius": cfg.radius,
        "level_eb_factors": {str(k): v for k, v in cfg.level_eb_factors.items()},
    }
    for t in transforms:
        meta[t.meta_key] = t.config.to_dict()
    if cfg.adaptive is not None:
        # only written when enabled: absence keeps every pre-adaptive blob
        # byte-identical (golden digests stay frozen)
        meta["adaptive"] = cfg.adaptive.to_dict()
    if state is not None:
        state.extras["decoded"] = arr
    return meta, index_stream, literals, anchors


def decompress_volume(
    meta: dict[str, Any],
    index_stream: np.ndarray,
    literals: np.ndarray,
    anchors: np.ndarray,
    shape: tuple[int, ...],
    dtype: np.dtype,
    error_bound: float,
    exact_streams: bool = True,
    stop_level: int = 0,
) -> "np.ndarray | tuple[np.ndarray, int, int]":
    """Replay the pass schedule and invert every stage.

    With ``exact_streams`` (the default) the streams must be consumed fully
    and the array alone is returned.  With ``exact_streams=False`` the caller
    passes shared streams that may extend past this volume (HPEZ blocks) and
    receives ``(array, indices_consumed, literals_consumed)``.
    ``stop_level > 0`` stops before the finer levels (MGARD's resolution
    reduction) — their streams are simply left unread, so exactness checks
    are skipped.
    """
    cfg = EngineConfig.from_meta(meta, error_bound)
    methods = {int(k): v for k, v in meta["methods"].items()}
    levels = int(meta["levels"])

    predictor = cfg.predict_stage()
    quantize = cfg.quantize_stage()
    transforms = cfg.index_transforms()
    ctx = StageContext(sentinel=quantize.sentinel, dtype=dtype)

    arr = np.zeros(shape, dtype=dtype)
    arr[anchor_slices(shape)] = anchors.reshape(arr[anchor_slices(shape)].shape)

    spos = 0
    lpos = 0
    for level in range(levels, stop_level, -1):
        ctx.level = level
        passes = _passes_for_level(shape, level, cfg)
        if not passes:
            continue
        ctx.method = methods[level]
        for p in passes:
            psize = pass_sizes(shape, p)
            count = int(np.prod(psize))
            moved_shape = tuple(
                psize[a] for a in _moved_axes(len(shape), p.axis)
            )
            q = index_stream[spos:spos + count].reshape(moved_shape)
            spos += count
            for t in reversed(transforms):
                q = t.inverse(ctx, q)
            indices = np.moveaxis(q, 0, p.axis)
            n_lit = int((indices == quantize.sentinel).sum())
            lits = literals[lpos:lpos + n_lit]
            lpos += n_lit
            with stage("predict"):
                pred = predictor.forward(ctx, (arr, p))
            with stage("quantize"):
                arr[p.target] = quantize.inverse(ctx, (indices, pred, lits))
    if stop_level or not exact_streams:
        if exact_streams:
            return arr
        return arr, spos, lpos
    if spos != index_stream.size:
        raise ValueError("index stream size mismatch")
    if lpos != literals.size:
        raise ValueError("literal stream size mismatch")
    return arr


def predict_fill(
    arr: np.ndarray, meta: dict[str, Any], stop_level: int
) -> np.ndarray:
    """Fill levels ``stop_level .. 1`` of ``arr`` with predictions only.

    The prediction-only counterpart of the decode loop: after a prefix
    decode reconstructed levels above ``stop_level``
    (``decompress_volume(..., stop_level=stop_level)``), this replays the
    remaining pass schedule applying each pass's interpolation *without*
    corrections — exactly what a progressive preview shows for the levels
    whose streams have not arrived yet.  The first finer pass predicts
    from decoded values only, so its predictions are bit-identical to the
    full decoder's.  Mutates and returns ``arr``.
    """
    cfg = EngineConfig.from_meta(meta, error_bound=1.0)
    methods = {int(k): v for k, v in meta["methods"].items()}
    for level in range(stop_level, 0, -1):
        for p in _passes_for_level(arr.shape, level, cfg):
            with stage("predict"):
                arr[p.target] = _pass_prediction(arr, p, methods[level])
    return arr


def _moved_axes(ndim: int, primary: int) -> list[int]:
    axes = list(range(ndim))
    axes.remove(primary)
    return [primary] + axes


# -- batched decompression ---------------------------------------------------

#: meta keys that must match across volumes for them to share one pass
#: schedule (methods and level_eb_factors may differ — they are only used
#: per-volume, never inside the batched transform inverse).
_SCHEDULE_KEYS = (
    "levels", "structure", "axis_order", "level_schemes", "radius", "qp",
    "adaptive",
)


def _inverse_transforms_multi(
    ctx: StageContext, transforms: tuple, q_views: "list[np.ndarray]"
) -> np.ndarray:
    """Invert the index-transform chain across a batch of equal-schedule
    pass views; returns the results stacked along a new leading axis.
    Transforms exposing ``inverse_multi`` (QP's wavefront inverse) handle
    the whole batch in one call; others fall back to per-view inversion."""
    if not transforms:
        return np.stack(q_views)
    stacked: np.ndarray | None = None
    for t in reversed(transforms):
        if stacked is None:
            multi = getattr(t, "inverse_multi", None)
            if multi is not None:
                stacked = multi(ctx, q_views)
            else:
                stacked = np.stack([t.inverse(ctx, q) for q in q_views])
        else:
            stacked = np.stack([
                t.inverse(ctx, stacked[i]) for i in range(stacked.shape[0])
            ])
    return stacked


def decompress_volumes(
    items: "list[tuple[dict[str, Any], np.ndarray, np.ndarray, np.ndarray, tuple[int, ...], np.dtype, float]]",
) -> "list[np.ndarray]":
    """Decompress several volumes, batching the transform inverse across
    them.

    ``items`` holds ``(meta, index_stream, literals, anchors, shape, dtype,
    error_bound)`` per volume — the :func:`decompress_volume` signature.
    When every volume shares one geometry and pass schedule (the
    slab-parallel case), the per-pass index-transform inverse runs *once*
    over all volumes stacked along a new batch axis instead of once per
    volume, collapsing N Python diagonal walks into one.  Output is
    bit-identical to calling :func:`decompress_volume` per item;
    mixed-geometry inputs silently fall back to the per-volume path.
    """
    if not items:
        return []

    def _single(it):
        meta, stream, lits, anchors, shp, dt, eb = it
        return decompress_volume(meta, stream, lits, anchors, tuple(shp), dt, eb)

    if len(items) == 1:
        return [_single(items[0])]
    meta0, _, _, _, shape0, dtype0, _ = items[0]
    shape = tuple(shape0)
    batchable = all(
        tuple(it[4]) == shape
        and np.dtype(it[5]) == np.dtype(dtype0)
        and all(it[0].get(k) == meta0.get(k) for k in _SCHEDULE_KEYS)
        for it in items[1:]
    )
    if not batchable:
        return [_single(it) for it in items]

    n = len(items)
    cfgs: list[EngineConfig] = []
    methods_list: list[dict[int, str]] = []
    arrs: list[np.ndarray] = []
    for meta, _, _, anchors, _, dt, eb in items:
        cfg = EngineConfig.from_meta(meta, eb)
        cfgs.append(cfg)
        methods_list.append({int(k): v for k, v in meta["methods"].items()})
        arr = np.zeros(shape, dtype=dt)
        arr[anchor_slices(shape)] = anchors.reshape(arr[anchor_slices(shape)].shape)
        arrs.append(arr)

    levels = int(meta0["levels"])
    spos = [0] * n
    lpos = [0] * n
    ndim = len(shape)
    transforms = cfgs[0].index_transforms()  # schedule keys include configs
    ctx = StageContext(sentinel=-cfgs[0].radius, dtype=dtype0)
    # With identical error bounds too (methods may still differ — they only
    # steer prediction, handled per level below), every per-pass stage
    # (transform inverse, prediction, dequantization) runs once over all
    # volumes stacked along a leading batch axis — one set of Python
    # dispatches for the whole group instead of one per volume.
    full_stack = all(
        it[6] == items[0][6]
        and it[0].get("level_eb_factors") == meta0.get("level_eb_factors")
        for it in items[1:]
    )
    if full_stack:
        cfg0 = cfgs[0]
        quantize = cfg0.quantize_stage()
        arr_st = np.stack(arrs)
        for level in range(levels, 0, -1):
            ctx.level = level
            passes = _passes_for_level(shape, level, cfg0)
            if not passes:
                continue
            level_methods = [m[level] for m in methods_list]
            method = level_methods[0] if len(set(level_methods)) == 1 else None
            for p in passes:
                psize = pass_sizes(shape, p)
                count = int(np.prod(psize))
                moved_shape = tuple(
                    psize[a] for a in _moved_axes(ndim, p.axis)
                )
                q_views = []
                for i, it in enumerate(items):
                    q_views.append(
                        it[1][spos[i]:spos[i] + count].reshape(moved_shape)
                    )
                    spos[i] += count
                q = _inverse_transforms_multi(ctx, transforms, q_views)
                indices = np.moveaxis(q, 1, p.axis + 1)
                unpred = indices == quantize.sentinel
                lit_counts = unpred.sum(axis=tuple(range(1, ndim + 1)))
                lit_parts = []
                for i in range(n):
                    c = int(lit_counts[i])
                    lit_parts.append(items[i][2][lpos[i]:lpos[i] + c])
                    lpos[i] += c
                # dequantize places literals in C order of the stacked
                # indices, i.e. volume-major — exactly this concatenation
                lits = np.concatenate(lit_parts)
                with stage("predict"):
                    if method is not None:
                        pred = _pass_prediction_stacked(arr_st, p, method)
                    else:  # methods diverge at this level: predict per volume
                        pred = np.stack([
                            _pass_prediction(arr_st[i], p, level_methods[i])
                            for i in range(n)
                        ])
                with stage("quantize"):
                    ctx.level = level
                    arr_st[(slice(None),) + p.target] = quantize.inverse(
                        ctx, (indices, pred, lits)
                    )
        for i, it in enumerate(items):
            if spos[i] != it[1].size:
                raise ValueError("index stream size mismatch")
            if lpos[i] != it[2].size:
                raise ValueError("literal stream size mismatch")
        return [arr_st[i] for i in range(n)]
    quants = [cfg.quantize_stage() for cfg in cfgs]
    for level in range(levels, 0, -1):
        ctx.level = level
        passes = _passes_for_level(shape, level, cfgs[0])
        if not passes:
            continue
        for p in passes:
            psize = pass_sizes(shape, p)
            count = int(np.prod(psize))
            moved_shape = tuple(
                psize[a] for a in _moved_axes(len(shape), p.axis)
            )
            q_outs = []
            for i, it in enumerate(items):
                q_outs.append(it[1][spos[i]:spos[i] + count].reshape(moved_shape))
                spos[i] += count
            # sentinel depends only on the (shared) radius
            qs = _inverse_transforms_multi(ctx, transforms, q_outs)
            for i in range(n):
                indices = np.moveaxis(qs[i], 0, p.axis)
                n_lit = int((indices == quants[i].sentinel).sum())
                lits = items[i][2][lpos[i]:lpos[i] + n_lit]
                lpos[i] += n_lit
                with stage("predict"):
                    pred = _pass_prediction(arrs[i], p, methods_list[i][level])
                with stage("quantize"):
                    arrs[i][p.target] = quants[i].inverse(
                        ctx, (indices, pred, lits)
                    )
    for i, it in enumerate(items):
        if spos[i] != it[1].size:
            raise ValueError("index stream size mismatch")
        if lpos[i] != it[2].size:
            raise ValueError("literal stream size mismatch")
    return arrs
