"""Progressive SZ3 variant: level-ordered sections with prefix decode.

``sz3_progressive`` emits the interpolation engine's entropy payload *per
level, coarse-first* — the IPComp/PSZ reordering — instead of one
monolithic index stream:

``RPRC | u32 hlen | header JSON | anchors | indices:L literals:L | ... | indices:1 literals:1``

The header carries a versioned ``progressive`` extension::

    {"version": 1,
     "levels": [{"level": L, "end": <payload-relative prefix end>,
                 "eb": <achievable max error of that prefix>}, ...]}

so any level-aligned byte prefix is decodable on its own: the levels whose
sections arrived decode exactly as the full decoder would (the schedule is
strictly coarse-to-fine, so their values are bit-identical), and the finer
levels are filled with predictions only
(:func:`~repro.compressors.interp_engine.predict_fill`).  ``eb`` is a
*guaranteed* bound on ``max|preview - original|``, derived at compress
time from the measured per-pass prediction residuals and the
interpolation kernels' Lipschitz constants — see :func:`_level_bounds`.

Full decode (all sections present) concatenates the per-level streams
back into the monolithic schedule-order stream, so the reconstruction is
bit-identical to what a plain ``sz3`` blob of the same data decodes to.

Module-level entry points (they need no compressor instance):

``decompress_prefix(prefix)``   decode any level-aligned byte prefix
``decode_to_level(blob, k)``    decode a full blob to a coarser preview
``level_table(blob)``           absolute per-level byte spans + bounds
``prefix_length(blob, k)``      bytes needed to decode through level ``k``
"""
from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..codecs import compress as lossless_compress, decompress as lossless_decompress
from ..errors import CorruptBlobError, TruncatedStreamError, VersionError
from ..io.integrity import is_sealed, unseal
from ..utils.levels import anchor_slices
from .base import (
    Blob,
    CompressionState,
    _validated_geometry,
    decode_index_streams,
    encode_index_stream,
)
from .interp_engine import compress_volume, decompress_volume, predict_fill
from .sz3 import SZ3

__all__ = [
    "PROGRESSIVE_VERSION",
    "PrefixDecode",
    "SZ3Progressive",
    "decode_to_level",
    "decompress_prefix",
    "level_table",
    "prefix_length",
]

#: revision of the ``progressive`` header extension; readers reject
#: anything newer with a typed :class:`~repro.errors.VersionError`
PROGRESSIVE_VERSION = 1

#: max |coefficient| sum of the interpolation kernels per method — how much
#: a deviation in the source points can grow through one prediction.
#: linear: (a+b)/2 -> 1.0; cubic: (9(b+c)-(a+d))/16 -> 20/16 = 1.25 (its
#: boundary fallbacks — linear and nearest-copy — are both <= 1.0).
_LIPSCHITZ = {"cubic": 1.25}


def _lipschitz(method: str) -> float:
    return _LIPSCHITZ.get(method, 1.0)


def _level_bounds(
    meta: dict[str, Any],
    stats: "list[dict]",
    error_bound: float,
    slack: float,
) -> dict[int, float]:
    """Guaranteed max-error bound of the preview at each level.

    The preview that includes level ``k`` holds decoded values at levels
    ``>= k`` (within each level's quantizer bound) and prediction-only
    values below.  Walking the remaining passes in schedule order:

    * a pass's preview prediction differs from the full decoder's by at
      most ``C * M`` where ``C`` is the kernel's Lipschitz constant and
      ``M`` the worst deviation of any already-filled point from its fully
      decoded value, so its preview error is ``<= R + C * M`` with ``R``
      the measured max |original - prediction| of the pass;
    * those points then deviate from their decoded values by at most
      their preview error plus the level's quantizer bound, growing ``M``.

    ``slack`` absorbs float rounding (the recursion is exact-arithmetic).
    """
    methods = {int(k): v for k, v in meta["methods"].items()}
    factors = {int(k): float(v) for k, v in meta["level_eb_factors"].items()}

    def q(level: int) -> float:
        return error_bound * factors.get(level, 1.0)

    present = sorted({s["level"] for s in stats}, reverse=True)
    bounds: dict[int, float] = {}
    for k in present:
        err = max(q(m) for m in present if m >= k)
        deviation = 0.0
        for s in stats:  # schedule order: coarse levels first
            if s["level"] >= k:
                continue
            pass_err = s["max_residual"] + _lipschitz(methods[s["level"]]) * deviation
            err = max(err, pass_err)
            deviation = max(deviation, pass_err + q(s["level"]))
        bounds[k] = err * (1.0 + 1e-6) + slack
    return bounds


def _rounding_slack(data: np.ndarray) -> float:
    """Absolute float-rounding allowance added to every recorded bound."""
    if np.issubdtype(data.dtype, np.floating):
        eps = float(np.finfo(data.dtype).eps)
        extra = 0.0
    else:
        eps = float(np.finfo(np.float64).eps)
        extra = 1.0  # integer previews truncate the prediction cast
    absmax = float(np.abs(data).max()) if data.size else 0.0
    return 32.0 * eps * absmax + extra


class SZ3Progressive(SZ3):
    """SZ3 with level-ordered sections and a prefix-decode guarantee.

    Same engine, same reconstruction (bit-identical to ``sz3`` with
    ``predictor="interp"``), different wire layout: one entropy segment
    per interpolation level, coarse-first, plus the ``progressive``
    header extension mapping byte prefixes to achievable error bounds.
    The Lorenzo/regression frontends are not level-separable, so the
    predictor is pinned to the interpolation engine.
    """

    name = "sz3_progressive"
    #: shares SZ3's paper-table row; empty traits keep it out of Table I
    traits: dict[str, Any] = {}

    def __init__(
        self,
        error_bound: float,
        qp=None,
        predictor: str = "interp",
        interp: str = "auto",
        radius: int = 32768,
        lossless_backend: str = "zlib",
        huffman_block_size: int | None = None,
        entropy: str = "huffman",
        adaptive=None,
    ) -> None:
        if predictor != "interp":
            raise ValueError(
                "sz3_progressive is interpolation-only: level-ordered "
                f"sections need the level schedule (got predictor={predictor!r})"
            )
        super().__init__(
            error_bound,
            qp=qp,
            predictor="interp",
            interp=interp,
            radius=radius,
            lossless_backend=lossless_backend,
            huffman_block_size=huffman_block_size,
            entropy=entropy,
            adaptive=adaptive,
        )

    def _tuned_for(self, data: np.ndarray) -> "SZ3Progressive":
        tuned = super()._tuned_for(data)
        tuned.predictor = "interp"  # the tuner may not unpin the frontend
        return tuned

    # -- compression --------------------------------------------------------

    def _compress(
        self, data: np.ndarray, state: CompressionState | None
    ) -> tuple[dict[str, Any], dict[str, bytes]]:
        cfg = self._engine_config(data)
        stats: list[dict] = []
        meta, stream, literals, anchors = compress_volume(
            data, cfg, state, level_stats=stats
        )
        order: list[int] = []
        for s in stats:
            if not order or order[-1] != s["level"]:
                order.append(s["level"])
        bounds = _level_bounds(
            meta, stats, self.error_bound, _rounding_slack(data)
        )
        sections: dict[str, bytes] = {"anchors": anchors.tobytes()}
        table: list[dict] = []
        end = len(sections["anchors"])
        spos = lpos = 0
        for lvl in order:
            n_idx = sum(s["indices"] for s in stats if s["level"] == lvl)
            n_lit = sum(s["literals"] for s in stats if s["level"] == lvl)
            idx_sec = encode_index_stream(
                stream[spos:spos + n_idx], self.lossless_backend,
                entropy=self.entropy, block_size=self.huffman_block_size,
            )
            lit_sec = lossless_compress(
                literals[lpos:lpos + n_lit].tobytes(), self.lossless_backend
            )
            spos += n_idx
            lpos += n_lit
            sections[f"indices:{lvl}"] = idx_sec
            sections[f"literals:{lvl}"] = lit_sec
            end += len(idx_sec) + len(lit_sec)
            table.append({"level": lvl, "end": end, "eb": bounds[lvl]})
        header: dict[str, Any] = {
            "predictor": "interp",
            "engine": meta,
            "progressive": {"version": PROGRESSIVE_VERSION, "levels": table},
        }
        if self.entropy != "huffman":
            header["entropy"] = self.entropy
        return header, sections

    def _stream_front(self, slab: np.ndarray):
        """Streamed segments must stay level-ordered blobs byte-identical
        to ``compress(slab)``; the monolithic EngineFront seam does not
        apply, so the whole encode happens in the front stage."""
        return self.compress(slab)

    # -- decompression ------------------------------------------------------

    def _decompress(self, blob: Blob) -> np.ndarray:
        lvls = _section_levels(blob)
        return _decode_blob_to_level(blob, min(lvls) if lvls else 1)

    def _decompress_many(self, blobs: "list[Blob]") -> "list[np.ndarray]":
        # per-level sections do not fit the monolithic joint-Huffman path;
        # decode_index_streams still batches the levels inside each blob
        return [self._decompress(b) for b in blobs]

    def decompress_prefix(self, prefix: bytes) -> "PrefixDecode":
        """Instance-method convenience over :func:`decompress_prefix`."""
        return decompress_prefix(prefix)

    def decode_to_level(self, blob: bytes, level: int) -> np.ndarray:
        """Instance-method convenience over :func:`decode_to_level`."""
        return decode_to_level(blob, level)


# -- prefix parsing and decode ------------------------------------------------


@dataclass
class PrefixDecode:
    """Result of decoding a level-aligned byte prefix.

    ``array``     the error-bounded preview volume
    ``level``     the deepest level whose sections were fully present
    ``eb``        the recorded achievable bound of that preview
    ``consumed``  absolute bytes of the prefix actually used (the level's
                  recorded prefix length; trailing partial bytes ignored)
    """

    array: np.ndarray
    level: int
    eb: float
    consumed: int


def _parse_header(data: bytes) -> tuple[dict, list, int]:
    """Lenient header parse: ``(header, section_table, payload_start)``.

    Unlike :meth:`Blob.from_bytes` this only needs the header bytes to be
    present — sections may be truncated (that is the point of a prefix).
    """
    if data[:4] != b"RPRC":
        raise CorruptBlobError("not a repro compressed blob")
    if len(data) < 8:
        raise TruncatedStreamError("blob prefix shorter than its fixed header")
    (hlen,) = struct.unpack_from("<I", data, 4)
    if 8 + hlen > len(data):
        raise TruncatedStreamError(
            f"blob prefix holds {len(data) - 8} header bytes of {hlen}"
        )
    try:
        header = json.loads(data[8:8 + hlen].decode())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorruptBlobError(f"blob header is not valid JSON: {exc}") from None
    if not isinstance(header, dict) or "sections" not in header:
        raise CorruptBlobError("blob header missing its section table")
    section_table = header.pop("sections")
    if not isinstance(section_table, list):
        raise CorruptBlobError("blob section table is not a list")
    return header, section_table, 8 + hlen


def _progressive_ext(header: dict) -> dict:
    """Validate and return the ``progressive`` header extension."""
    ext = header.get("progressive")
    if not isinstance(ext, dict):
        raise CorruptBlobError(
            f"blob from {header.get('compressor')!r} carries no progressive "
            "level table; only sz3_progressive blobs support prefix decode"
        )
    version = ext.get("version")
    if version != PROGRESSIVE_VERSION:
        raise VersionError(
            f"progressive extension version {version!r} is not supported "
            f"(this reader speaks {PROGRESSIVE_VERSION})"
        )
    levels = ext.get("levels")
    if not isinstance(levels, list):
        raise CorruptBlobError("progressive extension has no level list")
    prev_end = -1
    prev_level = None
    for e in levels:
        if (
            not isinstance(e, dict)
            or not isinstance(e.get("level"), int)
            or not isinstance(e.get("end"), int)
            or not isinstance(e.get("eb"), (int, float))
        ):
            raise CorruptBlobError(f"malformed progressive level entry {e!r}")
        if e["end"] <= prev_end:
            raise CorruptBlobError(
                f"progressive level offsets are not increasing at {e!r}"
            )
        if prev_level is not None and e["level"] >= prev_level:
            raise CorruptBlobError(
                f"progressive levels are not coarse-first at {e!r}"
            )
        prev_end = e["end"]
        prev_level = e["level"]
    return ext


def _section_levels(blob: Blob) -> "list[int]":
    """Levels with sections present, in section (coarse-first) order."""
    out = []
    for name in blob.sections:
        if name.startswith("indices:"):
            try:
                out.append(int(name.split(":", 1)[1]))
            except ValueError:
                raise CorruptBlobError(f"malformed level section {name!r}") from None
    return out


def _decode_blob_to_level(blob: Blob, level: int) -> np.ndarray:
    """Decode levels ``>= level`` exactly, prediction-fill the rest."""
    header = blob.header
    shape, dtype = _validated_geometry(header)
    meta = header["engine"]
    lvls = [l for l in _section_levels(blob) if l >= level]
    idx_secs = [blob.sections[f"indices:{l}"] for l in lvls]
    streams = decode_index_streams(idx_secs) if idx_secs else []
    stream = (
        np.concatenate(streams) if streams else np.empty(0, dtype=np.int64)
    )
    lits = [
        np.frombuffer(
            lossless_decompress(blob.sections[f"literals:{l}"]), dtype=dtype
        )
        for l in lvls
    ]
    literals = np.concatenate(lits) if lits else np.empty(0, dtype=dtype)
    a_shape = tuple(
        len(range(*sl.indices(n)))
        for sl, n in zip(anchor_slices(shape), shape)
    )
    anchors = np.frombuffer(blob.sections["anchors"], dtype=dtype).reshape(a_shape)
    stop = level - 1 if level > 1 else 0
    arr = decompress_volume(
        meta, stream, literals, anchors, shape, dtype,
        float(header["error_bound"]), stop_level=stop,
    )
    if stop:
        predict_fill(arr, meta, stop)
    return arr


def level_table(blob: bytes) -> "list[dict]":
    """Absolute per-level byte spans of a progressive blob.

    Returns ``[{"level": k, "eb": bound, "end": absolute prefix length
    that makes level k decodable}, ...]`` coarse-first.  Works from the
    header alone, so callers holding only the first bytes of a blob (a
    range-serving gateway, the transfer planner) can compute spans
    without the payload.
    """
    data = bytes(blob)
    if is_sealed(data):
        data = unseal(data)
    header, _sections, payload_start = _parse_header(data)
    ext = _progressive_ext(header)
    return [
        {
            "level": int(e["level"]),
            "eb": float(e["eb"]),
            "end": payload_start + int(e["end"]),
        }
        for e in ext["levels"]
    ]


def prefix_length(blob: bytes, level: int) -> int:
    """Bytes of ``blob`` needed to decode through ``level``."""
    for e in level_table(blob):
        if e["level"] == level:
            return e["end"]
    raise ValueError(f"level {level} is not in the progressive level table")


def decompress_prefix(prefix: bytes) -> PrefixDecode:
    """Decode any level-aligned byte prefix of a progressive blob.

    The deepest level whose sections are fully contained in ``prefix``
    decodes exactly (bit-identical to the full decoder at those points);
    finer levels are prediction-filled.  The returned ``eb`` is the
    compress-time guarantee on ``max|array - original|``.  A prefix too
    short for even the coarsest level raises
    :class:`~repro.errors.TruncatedStreamError`.  Sealed (v1 checksum)
    blobs verify over their full bytes, so only a *complete* sealed blob
    can be prefix-decoded — serve ranges from the canonical framing.
    """
    data = bytes(prefix)
    if is_sealed(data):
        data = unseal(data)
    header, section_table, payload_start = _parse_header(data)
    ext = _progressive_ext(header)
    avail = len(data) - payload_start
    entries = [e for e in ext["levels"] if int(e["end"]) <= avail]
    if not entries:
        need = int(ext["levels"][0]["end"]) if ext["levels"] else 0
        raise TruncatedStreamError(
            f"prefix holds {avail} payload bytes; the coarsest level needs {need}"
        )
    entry = entries[-1]
    sections: dict[str, bytes] = {}
    off = payload_start
    for item in section_table:
        if (
            not isinstance(item, (list, tuple)) or len(item) != 2
            or not isinstance(item[0], str) or not isinstance(item[1], int)
            or item[1] < 0
        ):
            raise CorruptBlobError(f"malformed section entry {item!r}")
        name, size = item
        if off + size > len(data):
            break  # truncated section: not part of the decodable prefix
        sections[name] = data[off:off + size]
        off += size
    blob = Blob(dict(header), sections)
    arr = _decode_blob_to_level(blob, int(entry["level"]))
    return PrefixDecode(
        array=arr,
        level=int(entry["level"]),
        eb=float(entry["eb"]),
        consumed=payload_start + int(entry["end"]),
    )


def decode_to_level(blob: bytes, level: int) -> np.ndarray:
    """Decode a complete progressive blob to a coarser preview.

    Levels ``>= level`` reconstruct exactly as the full decoder would;
    finer levels are prediction-filled.  ``decode_to_level(blob, 1)`` is
    bit-identical to ``decompress(blob)``.
    """
    data = bytes(blob)
    if is_sealed(data):
        data = unseal(data)
    b = Blob.from_bytes(data)
    ext = _progressive_ext(b.header)
    if not any(int(e["level"]) == level for e in ext["levels"]):
        raise ValueError(
            f"level {level} is not in the progressive level table "
            f"({[int(e['level']) for e in ext['levels']]})"
        )
    return _decode_blob_to_level(b, int(level))
