"""TTHRESH-like compressor: Tucker (HOSVD) core quantization.

Pipeline (Ballester-Ripoll et al. 2019): higher-order SVD via per-mode
unfoldings, then lossy coding of the (highly compactable) core tensor, with
the orthogonal factor matrices stored losslessly.  This port replaces
TTHRESH's bit-plane core coder with uniform core quantization whose step is
chosen by a verified-at-encode search so the *point-wise* error bound of this
library's interface holds (real TTHRESH only targets norm-based error).  The
expensive SVDs reproduce TTHRESH's "high ratio, low throughput" profile from
Table IV.
"""
from __future__ import annotations

from typing import Any

import numpy as np

from ..codecs import compress as lossless_compress, decompress as lossless_decompress
from ..codecs.fixed import decode_fixed, encode_fixed
from ..pipeline.stages import StageContext, TuckerFactorize
from .base import (
    Blob,
    CompressionState,
    Compressor,
    decode_index_stream,
    encode_index_stream,
)

__all__ = ["TTHRESH"]

#: the core↔tensor stage of the registered "tthresh" pipeline (wraps
#: ``_mode_multiply``); the mode products are context-free
_TUCKER = TuckerFactorize()
_CTX = StageContext()


def _zigzag(v: np.ndarray) -> np.ndarray:
    return np.where(v >= 0, 2 * v, -2 * v - 1).astype(np.uint64)


def _unzigzag(u: np.ndarray) -> np.ndarray:
    u = u.astype(np.int64)
    return np.where(u % 2 == 0, u // 2, -(u + 1) // 2)


def _unfold(t: np.ndarray, mode: int) -> np.ndarray:
    return np.moveaxis(t, mode, 0).reshape(t.shape[mode], -1)


def _mode_multiply(t: np.ndarray, m: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` product of tensor ``t`` with matrix ``m``."""
    moved = np.moveaxis(t, mode, 0)
    res = np.tensordot(m, moved, axes=(1, 0))
    return np.moveaxis(res, 0, mode)


class TTHRESH(Compressor):
    """TTHRESH-like Tucker-decomposition compressor."""

    name = "tthresh"
    traits = {"speed": "low", "ratio": "high", "transform": True}

    def __init__(self, error_bound: float, lossless_backend: str = "zlib", **_: Any) -> None:
        super().__init__(error_bound, lossless_backend)

    def _compress(
        self, data: np.ndarray, state: CompressionState | None
    ) -> tuple[dict[str, Any], dict[str, bytes]]:
        # Center the data: quantized factors make U^T U deviate from identity
        # by ~2^-bits, which multiplies the data *magnitude* — removing a
        # large mean offset (e.g. absolute pressures) eliminates the dominant
        # term, and the precision below handles the rest.
        mean = float(data.astype(np.float64).mean())
        work = data.astype(np.float64) - mean
        absmax = float(np.abs(work).max()) or 1.0
        # Factor entries live in [-1, 1]; quantize them just finely enough
        # that their error stays far below the requested bound.
        factor_bits = int(
            np.clip(np.ceil(np.log2(absmax / self.error_bound)) + 10, 12, 48)
        )
        fscale = float((1 << (factor_bits - 1)) - 1)
        factors: list[np.ndarray] = []
        fq_list: list[np.ndarray] = []
        core = work
        for mode in range(work.ndim):
            unf = _unfold(core, mode)
            # economical SVD of the unfolding; U spans the mode's column space
            u, _, _ = np.linalg.svd(unf, full_matrices=False)
            # the core is computed against the *quantized* factors so the
            # verified step search sees exactly what the decoder will use
            uq = np.rint(u * fscale).astype(np.int64)
            u = uq.astype(np.float64) / fscale
            factors.append(u)
            fq_list.append(uq)
            core = _mode_multiply(core, u.T, mode)

        # Verified quantization-step search.  Because the factors are
        # orthonormal and the basis functions delocalized, the point-wise
        # reconstruction error is far below the core quantization step; start
        # coarse, use one probe to extrapolate (error scales ~linearly with
        # the step), then verify/halve.  Verification is done in the output
        # dtype so float32 rounding cannot break the bound.
        value_range = float(work.max() - work.min()) or 1.0
        step = value_range / 2.0

        def reconstruct(s: float) -> np.ndarray:
            rec = _TUCKER.inverse(_CTX, (np.rint(core / s) * s, factors))
            # mirror the decoder exactly: mean re-added *before* the output
            # cast (the cast ulp scales with the absolute values)
            return (rec + mean).astype(data.dtype)

        def max_err(s: float) -> float:
            return float(
                np.abs(reconstruct(s).astype(np.float64) - data.astype(np.float64)).max()
            )

        probe_err = max_err(step)
        if probe_err > self.error_bound and probe_err > 0:
            step *= 0.5 * self.error_bound / probe_err
        for _ in range(60):
            if max_err(step) <= self.error_bound:
                break
            step /= 2.0
        else:
            raise RuntimeError("tthresh: could not satisfy the error bound")
        # grow back toward the largest step that still satisfies the bound
        for _ in range(8):
            if max_err(step * 1.6) <= self.error_bound:
                step *= 1.6
            else:
                break
        q = np.rint(core / step).astype(np.int64)

        header = {
            "step": step,
            "mean": mean,
            "core_shape": list(core.shape),
            "factor_shapes": [list(f.shape) for f in factors],
            "factor_bits": factor_bits,
        }
        fact_q = np.concatenate([f.ravel() for f in fq_list])
        fact_blob = encode_fixed(_zigzag(fact_q))
        sections = {
            "core": encode_index_stream(
                q.ravel(), self.lossless_backend, entropy=self.entropy
            ),
            "factors": lossless_compress(fact_blob, self.lossless_backend),
        }
        if state is not None:
            state.extras["core_nonzero"] = int((q != 0).sum())
        return header, sections

    def _decompress(self, blob: Blob) -> np.ndarray:
        header = blob.header
        q = decode_index_stream(blob.sections["core"]).reshape(header["core_shape"])
        fscale = float((1 << (int(header["factor_bits"]) - 1)) - 1)
        fact_q = _unzigzag(
            decode_fixed(lossless_decompress(blob.sections["factors"]))
        )
        factors = []
        off = 0
        for rows, cols in header["factor_shapes"]:
            count = rows * cols
            factors.append(
                fact_q[off:off + count].reshape(rows, cols).astype(np.float64) / fscale
            )
            off += count
        recon = _TUCKER.inverse(
            _CTX, (q.astype(np.float64) * header["step"], factors)
        )
        return recon + float(header.get("mean", 0.0))
