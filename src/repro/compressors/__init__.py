"""Error-bounded lossy compressors: the four interpolation-based bases the
paper integrates QP with (MGARD, SZ3, QoZ, HPEZ) and the three
transform-based comparators (ZFP, TTHRESH, SPERR)."""
from .base import Blob, Codec, CompressionState, Compressor
from .hpez import HPEZ
from .mgard import MGARD
from .qoz import QoZ
from .registry import (
    COMPRESSORS,
    INTERP_COMPRESSORS,
    available_compressors,
    constructor_accepts,
    decompress_any,
    decompress_many,
    get_compressor,
    supports_qp,
    traits_table,
)
from .sz3 import SZ3

__all__ = [
    "Blob",
    "Codec",
    "Compressor",
    "CompressionState",
    "SZ3",
    "QoZ",
    "HPEZ",
    "MGARD",
    "COMPRESSORS",
    "INTERP_COMPRESSORS",
    "available_compressors",
    "constructor_accepts",
    "get_compressor",
    "decompress_any",
    "decompress_many",
    "supports_qp",
    "traits_table",
]
