"""Compressor framework: blob container, shared encode stages, base class.

Every compressor serializes to a self-describing blob:

``RPRC | u32 header_len | header JSON | section bytes...``

The JSON header carries dtype/shape/parameters plus the ordered list of
``(section name, size)`` pairs; sections hold the binary payloads (entropy
stream, literals, anchors, ...).  ``decompress`` on the registry dispatches on
the header's ``compressor`` field, so any blob can be decoded without knowing
which compressor produced it.
"""
from __future__ import annotations

import json
import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

import numpy as np

from ..codecs import compress as lossless_compress, decompress as lossless_decompress
from ..errors import CorruptBlobError, ReproError, TruncatedStreamError
from ..io.integrity import is_sealed, seal, unseal
from ..obs import add_bytes, span as stage
from ..pipeline.stages import (
    ENTROPY_STAGES,
    StageContext,
    entropy_stage,
    entropy_stage_for_wire_id,
)
from ..utils.validation import check_error_bound, check_ndarray

__all__ = [
    "Blob",
    "Codec",
    "Compressor",
    "CompressionState",
    "EngineFront",
    "encode_index_stream",
    "decode_index_stream",
]

_MAGIC = b"RPRC"

#: exception types a corrupted byte stream can surface from the decode stack
#: before the strict validators catch it; ``decompress`` converts these to
#: :class:`~repro.errors.CorruptBlobError` so callers see one typed family
_DECODE_FAULTS = (
    ValueError,
    KeyError,
    IndexError,
    OverflowError,
    TypeError,
    EOFError,
    struct.error,
    UnicodeDecodeError,
    json.JSONDecodeError,
)


@runtime_checkable
class Codec(Protocol):
    """The unified compressor surface of the repo.

    Every compressing object — registry compressors, the slab-parallel /
    temporal / PW_REL / QoI wrappers — satisfies this protocol:

    * ``compress(data, *, checksum=False, auto=False, adaptive=None)
      -> bytes`` returns a self-describing container.  The three knobs
      are the *uniform keyword-only set* every implementation accepts
      with the same defaults: ``checksum=True`` seals the canonical
      bytes in the v1 CRC32 integrity envelope
      (:mod:`repro.io.integrity`); ``auto=True`` runs the sampling
      auto-tuner where one exists (a no-op elsewhere); ``adaptive=``
      applies an :class:`~repro.core.AdaptiveConfig` (or its dict
      encoding) for this call on codecs whose pipeline supports adaptive
      quantization — codecs that cannot honor it raise ``ValueError``
      rather than silently ignoring the request.
    * ``decompress(blob) -> np.ndarray`` accepts both the canonical and
      the sealed framing of its own containers and round-trips the
      geometry without out-of-band arguments.
    * ``name`` identifies the codec (registry key or wrapper kind).

    ``isinstance(obj, Codec)`` checks attribute presence (the runtime
    protocol semantics); ``tools/check_api.py`` additionally lints the
    signatures of everything registered (keyword-only knobs, consistent
    defaults, no stray positional parameters).
    """

    name: str

    def compress(
        self,
        data: np.ndarray,
        *,
        checksum: bool = False,
        auto: bool = False,
        adaptive: Any = None,
    ) -> bytes:
        ...

    def decompress(self, blob: bytes) -> np.ndarray:
        ...


@dataclass
class CompressionState:
    """Optional debugging/characterization output of a compression run.

    ``index_volume``  per-point quantization index scattered back to the data
                      grid (anchors hold 0) — the array Figures 3-5 visualize.
    ``pred_volume``   per-point prediction (same layout), when collected.
    ``extras``        free-form per-compressor diagnostics.
    """

    index_volume: np.ndarray | None = None
    pred_volume: np.ndarray | None = None
    extras: dict[str, Any] = field(default_factory=dict)


class Blob:
    """Named-section container with a JSON header."""

    def __init__(self, header: dict[str, Any], sections: dict[str, bytes]) -> None:
        self.header = header
        self.sections = sections

    def to_bytes(self, checksum: bool = False) -> bytes:
        """Serialize; ``checksum=True`` wraps the canonical v0 bytes in the
        CRC32-carrying v1 envelope (see :mod:`repro.io.integrity`)."""
        names = list(self.sections)
        header = dict(self.header)
        header["sections"] = [[n, len(self.sections[n])] for n in names]
        hjson = json.dumps(header, separators=(",", ":")).encode()
        parts = [_MAGIC, struct.pack("<I", len(hjson)), hjson]
        parts.extend(self.sections[n] for n in names)
        raw = b"".join(parts)
        return seal(raw) if checksum else raw

    @staticmethod
    def from_bytes(data: bytes) -> "Blob":
        """Parse a blob, accepting both the v0 and the sealed v1 framing.

        Every structural defect raises a typed :mod:`repro.errors` exception;
        sealed blobs additionally get CRC32 verification before parsing.
        """
        if is_sealed(data):
            data = unseal(data)
        if data[:4] != _MAGIC:
            raise CorruptBlobError("not a repro compressed blob")
        if len(data) < 8:
            raise TruncatedStreamError("blob shorter than its fixed header")
        (hlen,) = struct.unpack_from("<I", data, 4)
        if 8 + hlen > len(data):
            raise TruncatedStreamError(
                f"blob header declares {hlen} bytes, only {len(data) - 8} present"
            )
        try:
            header = json.loads(data[8:8 + hlen].decode())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CorruptBlobError(f"blob header is not valid JSON: {exc}") from None
        if not isinstance(header, dict) or "sections" not in header:
            raise CorruptBlobError("blob header missing its section table")
        section_table = header.pop("sections")
        if not isinstance(section_table, list):
            raise CorruptBlobError("blob section table is not a list")
        off = 8 + hlen
        sections = {}
        for entry in section_table:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not isinstance(entry[0], str)
                or not isinstance(entry[1], int)
                or entry[1] < 0
            ):
                raise CorruptBlobError(f"malformed section entry {entry!r}")
            name, size = entry
            if off + size > len(data):
                raise TruncatedStreamError(
                    f"section {name!r} declares {size} bytes past end of blob"
                )
            sections[name] = data[off:off + size]
            off += size
        if off != len(data):
            raise CorruptBlobError("trailing bytes in blob")
        return Blob(header, sections)


# ceiling on header-declared element counts: a tampered shape field must not
# drive a multi-terabyte allocation before the size cross-check can run
_MAX_DECODE_ELEMENTS = 1 << 34


def _validated_geometry(header: dict[str, Any]) -> tuple[tuple[int, ...], np.dtype]:
    """Strictly validate a blob header's shape/dtype before trusting them."""
    shape = header.get("shape")
    if (
        not isinstance(shape, list)
        or not shape
        or not all(isinstance(d, int) and d > 0 for d in shape)
    ):
        raise CorruptBlobError(f"blob header has invalid shape {shape!r}")
    total = 1
    for d in shape:
        total *= d
    if total > _MAX_DECODE_ELEMENTS:
        raise CorruptBlobError(
            f"blob header declares {total} elements (> {_MAX_DECODE_ELEMENTS} cap)"
        )
    try:
        dtype = np.dtype(header.get("dtype"))
    except (TypeError, ValueError) as exc:
        raise CorruptBlobError(f"blob header has invalid dtype: {exc}") from None
    if dtype.kind not in "fiu":
        raise CorruptBlobError(f"blob header dtype {dtype} is not numeric")
    return tuple(shape), dtype


@dataclass
class EngineFront:
    """Front-stage output of the streaming pipeline for engine compressors.

    Everything ``compress_volume`` produced for one slab — the quantization
    index stream after the QP/adaptive transforms, plus literals/anchors —
    before any entropy coding.  ``_stream_entropy`` turns it into a framed
    blob byte-identical to ``compress(slab)``.  ``anchors`` may be a view
    into the slab's scratch buffer, so the buffer must not be recycled
    until the entropy stage has sealed the segment.
    """

    shape: tuple[int, ...]
    dtype: np.dtype
    header: dict
    stream: np.ndarray
    literals: np.ndarray
    anchors: np.ndarray


class Compressor(ABC):
    """Error-bounded lossy compressor interface.

    Subclasses implement ``_compress``/``_decompress``; the public methods
    handle validation and blob framing.  ``name`` keys the registry and the
    header dispatch.
    """

    #: registry key, e.g. "sz3"
    name: str = ""
    #: qualitative traits for Table I
    traits: dict[str, Any] = {}
    #: whether the compressor honors a ``qp=`` config (quantization index
    #: prediction integrates with the quantization-index structure, so only
    #: prediction+quantization compressors can support it)
    supports_qp: bool = False
    #: Huffman block size for the index-stream entropy stage; ``None`` keeps
    #: the codec default.  Block-synchronous decode costs ``block_size``
    #: Python-level steps however many lanes run in lockstep, so short slab
    #: streams decode far faster with smaller blocks (at ~8 bytes of stored
    #: offset per extra block) — the slab-parallel wrapper tunes this down
    huffman_block_size: int | None = None
    #: entropy stage for the index streams — any key of
    #: :data:`repro.pipeline.stages.ENTROPY_STAGES` ("huffman", "range",
    #: "ans").  The default keeps all serial container bytes frozen;
    #: assigning e.g. ``comp.entropy = "ans"`` switches every index stream
    #: to the static rANS coder (decode dispatches on the wire id, so no
    #: header change is needed)
    entropy: str = "huffman"
    #: :class:`~repro.core.autotune.TuningDecision` carried by instances
    #: returned from ``_tuned_for`` (None on untuned compressors)
    tuning_decision: Any = None
    #: decision of the most recent ``compress(auto=True)`` call (None when
    #: the last call was untuned or the compressor has no tuner)
    last_tuning: Any = None

    def __init__(self, error_bound: float, lossless_backend: str = "zlib") -> None:
        self.error_bound = check_error_bound(error_bound)
        self.lossless_backend = lossless_backend

    # -- public API ---------------------------------------------------------

    def compress(
        self,
        data: np.ndarray,
        *,
        state: CompressionState | None = None,
        checksum: bool = False,
        auto: bool = False,
        adaptive: Any = None,
    ) -> bytes:
        """Compress ``data`` to a self-describing blob (bytes).

        ``checksum=True`` seals the canonical bytes in the v1 integrity
        envelope; the payload is byte-identical either way.  ``state``
        optionally collects characterization output
        (:class:`CompressionState`).  ``auto=True`` runs the sampling
        auto-tuner first (:func:`repro.core.autotune.autotune`) and
        compresses with the tuned configuration; compressors without a
        tuner accept the knob as a no-op.  The chosen
        :class:`~repro.core.autotune.TuningDecision` is left in
        ``self.last_tuning``.  ``adaptive=`` overrides the adaptive
        quantization config for this call (a per-call counterpart of the
        constructor argument); compressors whose pipeline has no
        adaptive stage raise ``ValueError``.  All knobs are
        keyword-only — the :class:`Codec` protocol's surface.
        """
        data = check_ndarray(data)
        if adaptive is not None:
            return self._with_adaptive(adaptive).compress(
                data, state=state, checksum=checksum, auto=auto
            )
        if auto:
            tuned = self._tuned_for(data)
            self.last_tuning = getattr(tuned, "tuning_decision", None)
            if tuned is not self:
                return tuned.compress(data, state=state, checksum=checksum)
        else:
            self.last_tuning = None
        sp = stage("compress", compressor=self.name)
        with sp:
            header, sections = self._compress(data, state)
            out = self._frame_blob(
                data.shape, data.dtype, header, sections, checksum=checksum
            )
            sp.label(bytes_in=data.nbytes, bytes_out=len(out))
        return out

    def _frame_blob(
        self,
        shape: "tuple[int, ...]",
        dtype: Any,
        header: dict,
        sections: "dict[str, bytes]",
        checksum: bool = False,
    ) -> bytes:
        """Finalize a header/sections pair into self-describing blob bytes.

        The single framing point shared by ``compress`` and the streaming
        entropy stage, so a streamed segment is byte-identical to
        ``compress(slab)`` (golden-digest enforced)."""
        header.setdefault("compressor", self.name)
        header["dtype"] = np.dtype(dtype).str
        header["shape"] = list(shape)
        header["error_bound"] = self.error_bound
        return Blob(header, sections).to_bytes(checksum=checksum)

    def decompress(self, blob: bytes) -> np.ndarray:
        b, shape, dtype = self._parse_own_blob(blob)
        sp = stage("decompress", compressor=self.name)
        with sp:
            try:
                out = self._decompress(b)
            except ReproError:
                raise
            except _DECODE_FAULTS as exc:
                raise CorruptBlobError(
                    f"{self.name} blob failed to decode: {type(exc).__name__}: {exc}"
                ) from exc
            out = self._check_decoded_geometry(out, shape, dtype)
            sp.label(bytes_in=len(blob), bytes_out=out.nbytes)
        return out

    def _parse_own_blob(self, blob: bytes) -> "tuple[Blob, tuple[int, ...], np.dtype]":
        """Shared decode entry: unwrap the (possibly sealed) envelope, check
        the producing compressor, and strictly validate the geometry.

        Every public decode path — ``decompress``, ``decompress_many``, and
        per-compressor extras like MGARD's ``decompress_resolution`` — must
        come through here so sealed v1 blobs, tampered headers, and
        wrong-compressor dispatch behave identically everywhere.
        """
        b = Blob.from_bytes(blob)
        if b.header.get("compressor") != self.name:
            raise ValueError(
                f"blob was produced by {b.header.get('compressor')!r}, not {self.name!r}"
            )
        shape, dtype = _validated_geometry(b.header)
        return b, shape, dtype

    def _check_decoded_geometry(
        self, out: np.ndarray, shape: tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        if out.size != int(np.prod(shape)):
            raise CorruptBlobError(
                f"decoded {out.size} values, header shape {shape} needs "
                f"{int(np.prod(shape))}"
            )
        return out.reshape(shape).astype(dtype, copy=False)

    def decompress_many(self, blobs: "list[bytes]") -> "list[np.ndarray]":
        """Decompress several blobs with shared decode stages batched.

        Output is identical to ``[self.decompress(b) for b in blobs]``, but
        subclasses may override ``_decompress_many`` to amortize per-blob
        Python dispatch (joint Huffman lockstep decode, stacked QP inverse)
        — the hot path for slab-parallel containers.
        """
        parsed = [self._parse_own_blob(blob) for blob in blobs]
        with stage("decompress", compressor=self.name, batch=len(blobs)):
            try:
                outs = self._decompress_many([b for b, _, _ in parsed])
            except ReproError:
                raise
            except _DECODE_FAULTS as exc:
                raise CorruptBlobError(
                    f"{self.name} blob failed to decode: {type(exc).__name__}: {exc}"
                ) from exc
            results = [
                self._check_decoded_geometry(out, shape, dtype)
                for out, (_, shape, dtype) in zip(outs, parsed)
            ]
        return results

    # -- streaming API --------------------------------------------------------

    def compress_stream(
        self,
        data: np.ndarray,
        sink: Any,
        *,
        slab_bytes: int | None = None,
        workers: int | None = None,
        depth: int | None = None,
        checksum: bool = False,
    ):
        """Compress ``data`` (array or ``np.memmap``) into ``sink`` slab by
        slab with bounded memory.

        The volume is walked along the leading axis in ~``slab_bytes``
        tiles through the three-stage thread pipeline of
        :mod:`repro.streaming`; finished segments are flushed to ``sink``
        incrementally through a
        :class:`~repro.io.container.ContainerWriter`.  Every segment is
        byte-identical to ``compress(data[slab], checksum=checksum)``.
        Returns a :class:`~repro.streaming.StreamResult`.
        """
        from ..streaming import stream_compress

        return stream_compress(
            self,
            data,
            sink,
            slab_bytes=slab_bytes,
            workers=workers,
            depth=depth,
            checksum=checksum,
        )

    def decompress_stream(self, source: Any, *, batch: int = 8) -> np.ndarray:
        """Decode a streamed container (bytes, path, or seekable file)
        written by :meth:`compress_stream` back into one array."""
        from ..streaming import stream_decompress

        return stream_decompress(source, compressor=self, batch=batch)

    def _stream_front(self, slab: np.ndarray):
        """Streaming stage 1+2: predict + quantize + index transforms for
        one slab.

        Engine compressors override this to return an :class:`EngineFront`
        (stopping before entropy coding, so the entropy thread can overlap
        the next slab's prediction).  The default covers compressors
        without a separable entropy stage: the whole encode happens here
        and the entropy stage passes the bytes through.
        """
        return self.compress(slab)

    def _stream_entropy(self, front: Any, checksum: bool = False) -> bytes:
        """Streaming stage 3: entropy + lossless coding and blob framing.

        Must produce bytes identical to ``compress(slab,
        checksum=checksum)`` for the slab that produced ``front``.
        """
        if isinstance(front, (bytes, bytearray)):
            return seal(bytes(front)) if checksum else bytes(front)
        if isinstance(front, EngineFront):
            from ..pipeline.driver import encode_engine_sections

            sections = encode_engine_sections(
                front.stream,
                front.literals,
                front.anchors,
                lossless_backend=self.lossless_backend,
                entropy=self.entropy,
                block_size=self.huffman_block_size,
            )
            return self._frame_blob(
                front.shape, front.dtype, dict(front.header), sections, checksum
            )
        raise TypeError(
            f"unrecognized stream front payload {type(front).__name__!r}"
        )

    # -- subclass hooks -------------------------------------------------------

    def _with_adaptive(self, adaptive: Any) -> "Compressor":
        """Clone this compressor with ``adaptive`` applied (per-call knob).

        Only compressors whose constructor takes ``adaptive`` (i.e. whose
        pipeline contains the adaptive quantization stage) can honor the
        request; everything else rejects it loudly — silently compressing
        without the asked-for transform would corrupt an accuracy study.
        """
        import copy
        import inspect

        if "adaptive" not in inspect.signature(type(self).__init__).parameters:
            raise ValueError(
                f"compressor {self.name!r} does not support adaptive "
                "quantization; drop the adaptive= argument"
            )
        if isinstance(adaptive, dict):
            from ..core import AdaptiveConfig

            adaptive = AdaptiveConfig.from_dict(adaptive)
        clone = copy.copy(self)
        clone.adaptive = adaptive
        return clone

    def _tuned_for(self, data: np.ndarray) -> "Compressor":
        """Return a compressor tuned for ``data`` (``compress(auto=True)``).

        The default is the identity — every compressor accepts the ``auto``
        knob, and those without a sampling tuner simply run their fixed
        configuration.  Overrides return a *copy* carrying a
        ``tuning_decision`` so the original instance's settings survive.
        """
        return self

    @abstractmethod
    def _compress(
        self, data: np.ndarray, state: CompressionState | None
    ) -> tuple[dict[str, Any], dict[str, bytes]]:
        """Return (header fields, named sections)."""

    @abstractmethod
    def _decompress(self, blob: Blob) -> np.ndarray:
        """Reconstruct the array from a parsed blob."""

    def _decompress_many(self, blobs: "list[Blob]") -> "list[np.ndarray]":
        """Batched counterpart of ``_decompress``; default is the plain loop."""
        return [self._decompress(b) for b in blobs]


# -- shared encode stages -----------------------------------------------------


_STREAM_ALPHABET_CAP = 1 << 16
#: wire ids are owned by the entropy stage classes; this view keeps the
#: historical name for callers/tests that key on it
_ENTROPY_IDS = {name: cls.wire_id for name, cls in ENTROPY_STAGES.items()}

#: entropy stages never read the walk context in the framing below
_FRAMING_CTX = StageContext()

# range guard for the histogram median below: beyond this the bincount would
# cost more than the partition it replaces
_MEDIAN_RANGE_CAP = 1 << 21


def _int_median(values: np.ndarray, lo: int, hi: int) -> float:
    """Exact median of an integer array, histogram-based.

    Produces bit-identical results to ``np.median`` (the mean of the two
    middle order statistics, in float64) but via one bincount pass instead of
    a partial sort — index streams are radius-bounded, so the histogram is
    tiny next to the data.  Falls back to ``np.median`` for wide ranges.
    ``lo``/``hi`` are the array's min/max, computed once by the caller.
    """
    if hi - lo > _MEDIAN_RANGE_CAP:
        return float(np.median(values))
    counts = np.cumsum(np.bincount(values - lo))
    n = values.size
    v_lo = lo + int(np.searchsorted(counts, (n - 1) // 2 + 1))
    v_hi = lo + int(np.searchsorted(counts, n // 2 + 1))
    return (v_lo + v_hi) / 2.0


def encode_index_stream(
    indices: np.ndarray,
    backend: str = "zlib",
    entropy: str = "huffman",
    block_size: int | None = None,
) -> bytes:
    """Entropy stage shared by the SZ-family ports: offset-shift the signed
    index stream to non-negative codes, entropy-code, then apply the
    lossless backend (the paper's Huffman + ZSTD pipeline; ``entropy="range"``
    selects the adaptive range coder, mirroring SZ3's arithmetic option).

    Codes beyond a 2^16 alphabet (possible for extreme outlier indices) are
    replaced by an escape symbol and stored fixed-width on the side — the
    same alphabet cap real SZ applies via its quantizer capacity — so the
    Huffman frequency table stays bounded regardless of the value range.

    ``block_size`` overrides the Huffman codec's block length; it is stored
    in the container header, so decoders adapt automatically.
    """
    from ..codecs.fixed import encode_fixed

    coder = entropy_stage(entropy)(block_size)
    indices = np.ascontiguousarray(indices).ravel().astype(np.int64, copy=False)
    if coder.bounded_alphabet:
        # center the alphabet window on the median so heavy-tailed streams
        # keep their bulk in-alphabet; only genuine outliers escape
        # (two-sided, zigzag fixed-width)
        if indices.size:
            lo = int(indices.min())
            hi = int(indices.max())
            offset = int(_int_median(indices, lo, hi)) - (_STREAM_ALPHABET_CAP // 2 - 1)
        else:
            lo = hi = 0
            offset = 0
        codes = indices - offset
        esc = _STREAM_ALPHABET_CAP - 1
        if lo - offset >= 0 and hi - offset < esc:
            # whole stream fits the alphabet window: no escape scan needed
            esc_vals = np.empty(0, dtype=np.int64)
            esc_mask = None
        else:
            esc_mask = (codes < 0) | (codes >= esc)
            esc_vals = codes[esc_mask]
        escapes = encode_fixed(
            np.where(esc_vals >= 0, 2 * esc_vals, -2 * esc_vals - 1).astype(np.uint64)
        )
        if esc_mask is not None and esc_mask.any():
            codes = np.where(esc_mask, esc, codes)
    else:
        # unbounded-alphabet coders take the signed stream as-is: no window,
        # no escapes (zigzag of an empty stream is the empty escape block)
        offset = 0
        codes = indices
        escapes = encode_fixed(np.empty(0, np.uint64))
    with stage("huffman"):
        coded = coder.forward(_FRAMING_CTX, codes)
    with stage("lossless"):
        payload = lossless_compress(coded, backend)
    add_bytes("huffman", len(coded))
    add_bytes("lossless", len(payload))
    return (
        struct.pack("<BqQ", coder.wire_id, offset, len(payload))
        + payload
        + lossless_compress(escapes, backend)
    )


def decode_index_stream(data: bytes) -> np.ndarray:
    return decode_index_streams([data])[0]


def decode_index_streams(datas: "list[bytes]") -> "list[np.ndarray]":
    """Decode several index streams, batching the Huffman stage.

    All Huffman-coded members are decoded in one joint lockstep loop
    (:meth:`HuffmanCodec.decode_many`), so the Python-level decode cost is
    paid once for the whole batch — the hot path for slab-parallel
    containers, where N short streams would otherwise cost far more than
    one long one.  Validation and output match ``decode_index_stream``
    applied per stream.
    """
    from ..codecs.fixed import decode_fixed

    head = struct.calcsize("<BqQ")
    parsed = []
    for data in datas:
        if len(data) < head:
            raise TruncatedStreamError(
                f"index stream header needs {head} bytes, have {len(data)}"
            )
        entropy_id, offset, plen = struct.unpack_from("<BqQ", data, 0)
        if head + plen > len(data):
            raise TruncatedStreamError(
                f"index stream declares {plen} payload bytes, only "
                f"{len(data) - head} present"
            )
        parsed.append((entropy_id, offset, plen, data))
    with stage("lossless"):
        payloads = [
            lossless_decompress(data[head:head + plen])
            for (_, _, plen, data) in parsed
        ]
    for (_, _, plen, _) in parsed:
        add_bytes("lossless", plen)
    codes_list: "list[np.ndarray | None]" = [None] * len(parsed)
    with stage("huffman"):
        # group by wire id and hand each group to its stage's batched decode
        # (Huffman runs one joint lockstep loop over its whole group)
        by_wire_id: dict[int, list[int]] = {}
        for i, (eid, _, _, _) in enumerate(parsed):
            by_wire_id.setdefault(eid, []).append(i)
        for eid, members in by_wire_id.items():
            coder = entropy_stage_for_wire_id(eid)
            if coder is None:
                raise CorruptBlobError(f"unknown entropy stage id {eid}")
            decoded = coder.decode_many([payloads[i] for i in members])
            for i, codes in zip(members, decoded):
                codes_list[i] = codes
    for payload in payloads:
        add_bytes("huffman", len(payload))
    out = []
    esc = _STREAM_ALPHABET_CAP - 1
    for (eid, offset, plen, data), codes in zip(parsed, codes_list):
        escapes = decode_fixed(lossless_decompress(data[head + plen:]))
        esc_mask = codes == esc
        if int(esc_mask.sum()) != escapes.size:
            raise CorruptBlobError("index stream escape count mismatch")
        if escapes.size:
            u = escapes.astype(np.int64)
            codes[esc_mask] = np.where(u % 2 == 0, u // 2, -(u + 1) // 2)
        out.append(codes + offset)
    return out
