"""HPEZ-like compressor: auto-tuned multi-component interpolation.

HPEZ improves on QoZ by *tuning the interpolation scheme itself*: per region
it selects the interpolation dimension order and may switch to the
multi-dimensional (parity-class) level structure, in which each point is
predicted by averaging 1-D interpolations along every axis whose neighbours
are already decoded (``utils.levels.level_passes_multidim``).  The paper's
Section IV-B observes exactly this: all HPEZ blocks but one chose an x-first
order on SegSalt, which is why its indices cluster least and QP gains least —
a property this port reproduces.

Two operating modes:

* **global** (default): per interpolation *level*, candidate schemes
  (sequential z-y-x, sequential x-y-z, multidim) are trialed on a scratch
  copy and the cheapest is committed — the paper's block-wise tuning
  collapsed to level granularity, appropriate at this reproduction's scaled
  dimensions (a 32^3 HPEZ block scales to ~8^3 here, all overhead).
* **block-wise** (``block_side=N``): the paper's original layout — every
  ``N^d`` block independently compressed with its own best scheme.

Both modes inherit QoZ's level-wise error-bound scaling.  The trial pass
makes HPEZ the slowest SZ-family member, matching its "Medium" speed class
in Table I.
"""
from __future__ import annotations

from typing import Any

import numpy as np

from ..codecs import decompress as lossless_decompress
from ..core.config import AdaptiveConfig, QPConfig
from ..pipeline.driver import decode_engine_blob, encode_engine_sections, spec_for_blob
from ..utils.blocks import iter_blocks
from ..utils.levels import num_levels
from ..utils.validation import check_ndarray
from .base import (
    Blob,
    CompressionState,
    Compressor,
    EngineFront,
    decode_index_stream,
)
from .interp_engine import (
    EngineConfig,
    compress_volume,
    decompress_volume,
    level_error_bounds,
    trial_level_bits,
)

__all__ = ["HPEZ"]


def _candidate_schemes(ndim: int) -> list[dict]:
    schemes: list[dict] = [
        {"structure": "sequential", "axis_order": None},
        {"structure": "sequential", "axis_order": tuple(reversed(range(ndim)))},
    ]
    if ndim >= 2:
        schemes.append({"structure": "multidim", "axis_order": None})
    return schemes


class HPEZ(Compressor):
    """HPEZ-like compressor (auto-tuned multi-component interpolation)."""

    name = "hpez"
    supports_qp = True
    traits = {
        "speed": "medium",
        "ratio": "high",
        "resolution_reduction": False,
        "gpu": False,
        "qoi": False,
        "quality_oriented": True,
    }

    def __init__(
        self,
        error_bound: float,
        qp: QPConfig | None = None,
        alpha: float | str = "auto",
        beta: float | str = "auto",
        interp: str = "auto",
        radius: int = 32768,
        block_side: int | None = None,
        lossless_backend: str = "zlib",
        adaptive: AdaptiveConfig | None = None,
    ) -> None:
        super().__init__(error_bound, lossless_backend)
        self.qp = qp or QPConfig.disabled()
        self.alpha = alpha
        self.beta = beta
        self.interp = interp
        self.radius = radius
        self.block_side = block_side
        if isinstance(adaptive, dict):
            adaptive = AdaptiveConfig.from_dict(adaptive)
        self.adaptive = adaptive

    def _tuned_for(self, data: np.ndarray) -> "HPEZ":
        """Sampling tuner for the knobs HPEZ does not already self-tune:
        per-level eb scaling (alpha/beta), adaptive_bits, and QP.  The
        per-level scheme selector (HPEZ's own structure tuning) stays in
        charge of structure/axis order, so those are pinned here."""
        import copy

        from ..core.autotune import autotune

        decision = autotune(
            data, self.error_bound, radius=self.radius,
            fixed={"structure": "sequential", "axis_order": None},
        )
        tuned = copy.copy(self)
        tuned.interp = decision.interp
        tuned.alpha = decision.alpha
        tuned.beta = decision.beta
        tuned.qp = decision.qp_config()
        tuned.adaptive = decision.adaptive_config()
        tuned.tuning_decision = decision
        return tuned

    # -- engine configuration -------------------------------------------------

    def _engine_config(
        self, data_or_shape, with_selector: bool
    ) -> EngineConfig:
        if isinstance(data_or_shape, np.ndarray):
            data, shape = data_or_shape, data_or_shape.shape
        else:
            data, shape = None, tuple(data_or_shape)
        levels = num_levels(shape)
        if data is not None and (self.alpha == "auto" or self.beta == "auto"):
            from .qoz import tune_level_eb

            alpha, beta = tune_level_eb(
                data, self.error_bound, levels,
                alpha=self.alpha, beta=self.beta,
                interp=self.interp, radius=self.radius,
            )
        else:
            alpha = 1.5 if self.alpha == "auto" else float(self.alpha)
            beta = 3.0 if self.beta == "auto" else float(self.beta)
        cfg = EngineConfig(
            error_bound=self.error_bound,
            radius=self.radius,
            interp=self.interp,
            level_eb_factors=level_error_bounds(self.error_bound, levels, alpha, beta),
            qp=self.qp,
            adaptive=self.adaptive,
        )
        if with_selector:
            candidates = _candidate_schemes(len(shape))

            def selector(arr: np.ndarray, level: int, c: EngineConfig) -> dict:
                costs = [trial_level_bits(arr, level, c, s) for s in candidates]
                return dict(candidates[int(np.argmin(costs))])

            cfg.scheme_selector = selector
        return cfg

    # -- compression ----------------------------------------------------------

    def _compress(
        self, data: np.ndarray, state: CompressionState | None
    ) -> tuple[dict[str, Any], dict[str, bytes]]:
        if self.block_side is None:
            return self._compress_global(data, state)
        return self._compress_blocks(data, state)

    def _compress_global(
        self, data: np.ndarray, state: CompressionState | None
    ) -> tuple[dict[str, Any], dict[str, bytes]]:
        cfg = self._engine_config(data, with_selector=True)
        meta, stream, literals, anchors = compress_volume(data, cfg, state)
        if state is not None:
            state.extras["level_schemes"] = dict(cfg.level_schemes)
        sections = encode_engine_sections(
            stream, literals, anchors,
            lossless_backend=self.lossless_backend, entropy=self.entropy,
        )
        return {"mode": "global", "engine": meta}, sections

    def _stream_front(self, slab: np.ndarray):
        """Streaming front split for the global mode; block-wise layouts
        concatenate per-block streams with no clean entropy seam, so they
        fall back to the whole-blob default."""
        if self.block_side is not None:
            return self.compress(slab)
        slab = check_ndarray(slab)
        cfg = self._engine_config(slab, with_selector=True)
        meta, stream, literals, anchors = compress_volume(slab, cfg, None)
        return EngineFront(
            slab.shape,
            slab.dtype,
            {"mode": "global", "engine": meta},
            stream,
            literals,
            anchors,
        )

    def _compress_blocks(
        self, data: np.ndarray, state: CompressionState | None
    ) -> tuple[dict[str, Any], dict[str, bytes]]:
        streams: list[np.ndarray] = []
        literal_parts: list[np.ndarray] = []
        anchor_parts: list[np.ndarray] = []
        metas: list[dict[str, Any]] = []
        if state is not None:
            state.index_volume = np.zeros(data.shape, dtype=np.int64)
            state.extras["index_volume_qp"] = np.zeros(data.shape, dtype=np.int64)
            state.extras["block_choices"] = []
        for bslice in iter_blocks(data.shape, self.block_side):
            block = np.ascontiguousarray(data[bslice])
            cfg = self._engine_config(block, with_selector=True)
            bstate = CompressionState() if state is not None else None
            meta, stream, literals, anchors = compress_volume(block, cfg, bstate)
            metas.append(meta)
            streams.append(stream)
            literal_parts.append(literals)
            anchor_parts.append(anchors.ravel())
            if state is not None and bstate is not None:
                state.index_volume[bslice] = bstate.index_volume
                state.extras["index_volume_qp"][bslice] = bstate.extras["index_volume_qp"]
                state.extras["block_choices"].append(dict(cfg.level_schemes))
        index_stream = np.concatenate(streams) if streams else np.empty(0, np.int64)
        literals = (
            np.concatenate(literal_parts) if literal_parts else np.empty(0, data.dtype)
        )
        anchors = (
            np.concatenate(anchor_parts) if anchor_parts else np.empty(0, data.dtype)
        )
        header = {
            "mode": "blocks",
            "block_side": self.block_side,
            "block_metas": metas,
        }
        sections = encode_engine_sections(
            index_stream, literals, anchors,
            lossless_backend=self.lossless_backend, entropy=self.entropy,
        )
        return header, sections

    # -- decompression ----------------------------------------------------------

    def _decompress(self, blob: Blob) -> np.ndarray:
        # the frontend stage's layout param (derived from the header) picks
        # the decode walk: one engine replay, or the per-block schedule
        spec = spec_for_blob(blob.header)
        layout = spec.stage("interp_predict").params["layout"]
        if layout == "global":
            return decode_engine_blob(blob)
        return self._decompress_blocks(blob)

    def _decompress_blocks(self, blob: Blob) -> np.ndarray:
        from ..utils.levels import anchor_slices

        header = blob.header
        shape = tuple(header["shape"])
        dtype = np.dtype(header["dtype"])
        stream = decode_index_stream(blob.sections["indices"])
        literals = np.frombuffer(
            lossless_decompress(blob.sections["literals"]), dtype=dtype
        )
        anchors = np.frombuffer(blob.sections["anchors"], dtype=dtype)
        out = np.empty(shape, dtype=dtype)
        spos = lpos = apos = 0
        for bslice, meta in zip(
            iter_blocks(shape, int(header["block_side"])), header["block_metas"]
        ):
            bshape = tuple(sl.stop - sl.start for sl in bslice)
            a_shape = tuple(
                len(range(*sl.indices(n)))
                for sl, n in zip(anchor_slices(bshape), bshape)
            )
            n_anchor = int(np.prod(a_shape))
            b_anchors = anchors[apos:apos + n_anchor].reshape(a_shape)
            apos += n_anchor
            block, s_used, l_used = decompress_volume(
                meta, stream[spos:], literals[lpos:], b_anchors, bshape, dtype,
                header["error_bound"], exact_streams=False,
            )
            spos += s_used
            lpos += l_used
            out[bslice] = block
        if spos != stream.size or lpos != literals.size:
            raise ValueError("block stream size mismatch")
        return out
