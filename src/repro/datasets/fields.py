"""Low-level synthetic field primitives.

The real benchmark datasets (Table III) are multi-GB archives we cannot ship;
these primitives synthesize fields with the *statistical structure* each
dataset contributes to the evaluation — power-law turbulence spectra, layered
media with embedded salt bodies, oscillatory wavefields, sharp reaction
fronts, large-scale climate gradients — because QP's behaviour depends on
local index correlation, not on absolute data identity (DESIGN.md §2).

All generators are deterministic given a seed and fully vectorized (FFT-based
spectral synthesis, closed-form geometry).
"""
from __future__ import annotations

import numpy as np

__all__ = [
    "spectral_field",
    "layered_model",
    "salt_body",
    "point_source_wavefield",
    "vortex_field",
    "front_field",
    "lat_lon_climate",
]


def spectral_field(
    shape: tuple[int, ...],
    slope: float,
    rng: np.random.Generator,
    kmin: float = 1.0,
    cutoff_frac: float = 0.25,
) -> np.ndarray:
    """Gaussian random field with isotropic per-mode power ``k**-slope`` and
    a Gaussian dissipation-range cutoff, normalized to zero mean / unit
    variance.

    The cutoff at ``cutoff_frac`` of the Nyquist wavenumber mimics the
    resolved-scale rolloff of real simulation output (real solver fields are
    smooth at the grid scale); without it a power law keeps unphysical
    energy at the grid scale and nothing compresses.  Per-mode slope 11/3
    corresponds to a Kolmogorov k^-5/3 shell spectrum in 3-D.
    """
    k2 = np.zeros(shape)
    for ax, n in enumerate(shape):
        freq = np.fft.fftfreq(n) * n
        sl = [None] * len(shape)
        sl[ax] = slice(None)
        k2 = k2 + freq[tuple(sl)] ** 2
    k = np.sqrt(k2)
    amp = np.zeros_like(k)
    mask = k >= kmin
    amp[mask] = k[mask] ** (-slope / 2.0)
    kcut = cutoff_frac * max(shape) / 2.0
    amp *= np.exp(-((k / kcut) ** 2))
    phase = rng.uniform(0, 2 * np.pi, shape)
    spec = amp * np.exp(1j * phase)
    field = np.fft.ifftn(spec).real
    std = field.std()
    if std > 0:
        field = field / std
    return field - field.mean()


def layered_model(
    shape: tuple[int, int, int],
    rng: np.random.Generator,
    n_layers: int = 14,
    v_range: tuple[float, float] = (1.5, 4.5),
    tilt: float = 0.15,
) -> np.ndarray:
    """Layered velocity model (SEG-style): piecewise-constant values over
    depth with gently tilted, undulating interfaces."""
    nz, ny, nx = shape
    bounds = np.sort(rng.uniform(0.05, 0.95, n_layers - 1))
    vals = np.sort(rng.uniform(*v_range, n_layers))
    y, x = np.meshgrid(np.linspace(0, 1, ny), np.linspace(0, 1, nx), indexing="ij")
    undulation = tilt * (np.sin(2 * np.pi * x * rng.uniform(0.5, 2)) * y
                         + 0.3 * np.sin(4 * np.pi * y))
    depth = np.linspace(0, 1, nz)[:, None, None] + undulation[None, :, :]
    idx = np.clip(np.searchsorted(bounds, depth.ravel()), 0, n_layers - 1)
    return vals[idx].reshape(shape)


def salt_body(
    shape: tuple[int, int, int],
    rng: np.random.Generator,
    value: float = 4.8,
) -> np.ndarray:
    """Ellipsoidal high-velocity intrusion with a rough boundary (the salt
    dome of the SEG/EAGE models); returns a {0, value} mask field."""
    nz, ny, nx = shape
    z, y, x = np.meshgrid(
        np.linspace(0, 1, nz), np.linspace(0, 1, ny), np.linspace(0, 1, nx),
        indexing="ij",
    )
    cz, cy, cx = rng.uniform(0.35, 0.6, 3)
    rz, ry, rx = rng.uniform(0.12, 0.3, 3)
    r = ((z - cz) / rz) ** 2 + ((y - cy) / ry) ** 2 + ((x - cx) / rx) ** 2
    rough = 0.15 * spectral_field(shape, 4.0, rng, cutoff_frac=0.12)
    return np.where(r + rough < 1.0, value, 0.0)


def point_source_wavefield(
    shape: tuple[int, int, int],
    rng: np.random.Generator,
    wavelength: float = 0.08,
    t: float = 0.7,
    center: tuple[float, float, float] | None = None,
) -> np.ndarray:
    """Expanding spherical wavefield snapshot (RTM/SegSalt pressure style):
    a Ricker-modulated shell plus reflected ringing behind the front."""
    nz, ny, nx = shape
    z, y, x = np.meshgrid(
        np.linspace(0, 1, nz), np.linspace(0, 1, ny), np.linspace(0, 1, nx),
        indexing="ij",
    )
    cz, cy, cx = center if center is not None else rng.uniform(0.3, 0.7, 3)
    r = np.sqrt((z - cz) ** 2 + (y - cy) ** 2 + (x - cx) ** 2)
    # primary front at radius t plus trailing oscillations
    arg = (r - t) / wavelength
    front = (1 - 2 * arg**2) * np.exp(-(arg**2))
    ringing = 0.3 * np.sin(2 * np.pi * r / wavelength) * np.exp(-3 * r) * (r < t)
    atten = 1.0 / (1.0 + 8 * r**2)
    return (front + ringing) * atten


def vortex_field(
    shape: tuple[int, int, int],
    rng: np.random.Generator,
    component: str = "u",
) -> np.ndarray:
    """Hurricane-style rotating vortex velocity/pressure component with an
    eye, a radial decay, and turbulent perturbations."""
    nz, ny, nx = shape
    z, y, x = np.meshgrid(
        np.linspace(0, 1, nz), np.linspace(-1, 1, ny), np.linspace(-1, 1, nx),
        indexing="ij",
    )
    cy, cx = rng.uniform(-0.2, 0.2, 2)
    ry, rx = y - cy, x - cx
    rr = np.sqrt(ry**2 + rx**2) + 1e-9
    # Rankine-like tangential speed profile with altitude decay
    r_eye = 0.12
    vt = np.where(rr < r_eye, rr / r_eye, np.exp(-(rr - r_eye) / 0.45))
    vt = vt * (1.0 - 0.5 * z)
    if component == "u":
        base = -vt * ry / rr
    elif component == "v":
        base = vt * rx / rr
    elif component == "w":
        base = 0.2 * vt * np.exp(-rr / 0.3)
    else:  # pressure/temperature-like scalar
        base = 1.0 - 0.8 * np.exp(-rr / 0.2) * (1.0 - 0.4 * z)
    turb = 0.03 * spectral_field(shape, 3.5, rng, cutoff_frac=0.15)
    return base + turb


def front_field(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    sharpness: float = 25.0,
) -> np.ndarray:
    """Reaction-front field (S3D style): tanh of a smooth level-set, giving
    thin, sharp interfaces between near-constant regions."""
    level = spectral_field(shape, 4.0, rng, cutoff_frac=0.12)
    return 0.5 * (1.0 + np.tanh(sharpness * level))


def lat_lon_climate(
    shape: tuple[int, int, int],
    rng: np.random.Generator,
) -> np.ndarray:
    """Climate model output (CESM-ATM style): strong zonal (latitude)
    gradient, vertical stratification, and synoptic-scale eddies."""
    nlev, nlat, nlon = shape
    lev = np.linspace(0, 1, nlev)[:, None, None]
    lat = np.linspace(-np.pi / 2, np.pi / 2, nlat)[None, :, None]
    zonal = np.cos(lat) ** 2 * (1.0 - 0.6 * lev)
    eddies = 0.12 * spectral_field(shape, 3.6, rng, cutoff_frac=0.15)
    waves = 0.1 * np.sin(np.linspace(0, 6 * np.pi, nlon))[None, None, :] * np.cos(lat)
    return zonal + eddies + waves
