"""Benchmark dataset registry (paper Table III), with scaled synthetic dims.

Each entry records the paper's real dataset (field count, dimensions, size,
dtype) *and* the scaled dimensions this reproduction synthesizes by default —
the aspect ratios are preserved, the absolute sizes shrunk so the pure-Python
substrate runs in seconds per field.
"""
from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DatasetInfo", "DATASETS", "dataset_names", "table3_rows"]


@dataclass(frozen=True)
class DatasetInfo:
    name: str
    domain: str
    n_fields: int
    paper_dims: tuple[int, ...]
    paper_size: str
    dtype: str  # "f4" or "f8"
    default_dims: tuple[int, ...]
    fields: tuple[str, ...]


DATASETS: dict[str, DatasetInfo] = {
    "miranda": DatasetInfo(
        name="Miranda",
        domain="hydrodynamics",
        n_fields=7,
        paper_dims=(256, 384, 384),
        paper_size="0.98GB",
        dtype="f4",
        default_dims=(64, 96, 96),
        fields=(
            "density", "velocityx", "velocityy", "velocityz",
            "pressure", "diffusivity", "viscocity",
        ),
    ),
    "hurricane": DatasetInfo(
        name="Hurricane",
        domain="weather",
        n_fields=13,
        paper_dims=(100, 500, 500),
        paper_size="1.21GB",
        dtype="f4",
        default_dims=(25, 125, 125),
        fields=(
            "U", "V", "W", "P", "TC", "QV", "QC", "QR",
            "QI", "QS", "QG", "CLOUD", "PRECIP",
        ),
    ),
    "segsalt": DatasetInfo(
        name="SegSalt",
        domain="geology",
        n_fields=3,
        paper_dims=(1008, 1008, 352),
        paper_size="3.99GB",
        dtype="f4",
        default_dims=(126, 126, 44),
        fields=("Pressure2000", "Pressure4000", "Velocity"),
    ),
    "scale": DatasetInfo(
        name="SCALE",
        domain="weather",
        n_fields=12,
        paper_dims=(98, 1200, 1200),
        paper_size="6.31GB",
        dtype="f4",
        default_dims=(24, 150, 150),
        fields=(
            "U", "V", "W", "T", "PRES", "QV", "QC", "QR",
            "QI", "QS", "QG", "RH",
        ),
    ),
    "s3d": DatasetInfo(
        name="S3D",
        domain="chemistry",
        n_fields=11,
        paper_dims=(500, 500, 500),
        paper_size="10.24GB",
        dtype="f8",
        default_dims=(62, 62, 62),
        fields=(
            "temperature", "pressure", "velocityx", "velocityy", "velocityz",
            "Y_CH4", "Y_O2", "Y_CO2", "Y_H2O", "Y_CO", "Y_OH",
        ),
    ),
    "cesm": DatasetInfo(
        name="CESM-3D",
        domain="climate",
        n_fields=33,
        paper_dims=(26, 1800, 3600),
        paper_size="20.71GB",
        dtype="f4",
        default_dims=(13, 112, 225),
        fields=tuple(f"VAR{i:02d}" for i in range(33)),
    ),
    "rtm": DatasetInfo(
        name="RTM",
        domain="seismic",
        n_fields=1,
        paper_dims=(3600, 449, 449, 235),
        paper_size="635.36GB",
        dtype="f4",
        default_dims=(32, 56, 56, 30),
        fields=("snapshot",),
    ),
}


def dataset_names() -> tuple[str, ...]:
    return tuple(DATASETS)


def table3_rows() -> list[dict[str, object]]:
    """Rows of the paper's Table III plus this repo's scaled dims."""
    rows = []
    for info in DATASETS.values():
        rows.append(
            {
                "Dataset": info.name,
                "#Field": info.n_fields,
                "Dimension (paper)": "x".join(map(str, info.paper_dims)),
                "Size": info.paper_size,
                "Type": "Float" if info.dtype == "f4" else "Double",
                "Dimension (repro)": "x".join(map(str, info.default_dims)),
            }
        )
    return rows
