"""Synthetic stand-ins for the paper's seven benchmark datasets."""
from .registry import DATASETS, DatasetInfo, dataset_names, table3_rows
from .synthetic import generate, generate_all

__all__ = [
    "DATASETS",
    "DatasetInfo",
    "dataset_names",
    "table3_rows",
    "generate",
    "generate_all",
]
