"""Per-dataset synthetic generators.

``generate(dataset, field, shape=None, seed=0)`` returns one named field of
one benchmark dataset, deterministic in (dataset, field, shape, seed).  The
structural recipes per dataset are documented in ``fields.py`` and DESIGN.md.
"""
from __future__ import annotations

import numpy as np

from .fields import (
    front_field,
    lat_lon_climate,
    layered_model,
    point_source_wavefield,
    salt_body,
    spectral_field,
    vortex_field,
)
from .registry import DATASETS

__all__ = ["generate", "generate_all"]


def _rng(dataset: str, field: str, seed: int) -> np.random.Generator:
    # zlib.crc32 is stable across processes (unlike built-in str hashing)
    import zlib

    key = zlib.crc32(f"{dataset}/{field}/{seed}".encode())
    return np.random.default_rng(key)


def generate(
    dataset: str,
    field: str | None = None,
    shape: tuple[int, ...] | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Synthesize one field of a benchmark dataset.

    ``field=None`` picks the dataset's first (headline) field.  ``shape``
    overrides the registry's scaled default.
    """
    if dataset not in DATASETS:
        raise KeyError(f"unknown dataset {dataset!r}; available: {tuple(DATASETS)}")
    info = DATASETS[dataset]
    if field is None:
        field = info.fields[0]
    if field not in info.fields:
        raise KeyError(f"dataset {dataset!r} has no field {field!r}")
    shape = tuple(shape) if shape is not None else info.default_dims
    rng = _rng(dataset, field, seed)
    data = _DISPATCH[dataset](field, shape, rng)
    return data.astype(np.dtype(info.dtype))


def generate_all(
    dataset: str, shape: tuple[int, ...] | None = None, seed: int = 0
) -> dict[str, np.ndarray]:
    """All fields of a dataset, keyed by field name."""
    info = DATASETS[dataset]
    return {f: generate(dataset, f, shape, seed) for f in info.fields}


# -- per-dataset recipes ------------------------------------------------------


def _miranda(field: str, shape, rng) -> np.ndarray:
    # large-turbulence simulation: Kolmogorov-like spectra; density and
    # diffusivity carry mixing-layer structure
    if field == "density":
        return 1.0 + 0.3 * np.tanh(3 * spectral_field(shape, 4.0, rng, cutoff_frac=0.12)) \
            + 0.02 * spectral_field(shape, 3.67, rng, cutoff_frac=0.15)
    if field.startswith("velocity"):
        # per-mode slope 11/3 = Kolmogorov k^-5/3 shell spectrum in 3-D
        return spectral_field(shape, 11.0 / 3.0, rng, cutoff_frac=0.15)
    if field == "pressure":
        return spectral_field(shape, 13.0 / 3.0, rng, cutoff_frac=0.15)
    # diffusivity / viscocity: positive, smoother
    return np.exp(0.5 * spectral_field(shape, 4.0, rng, cutoff_frac=0.12))


def _hurricane(field: str, shape, rng) -> np.ndarray:
    comp = {"U": "u", "V": "v", "W": "w"}.get(field)
    if comp is not None:
        return vortex_field(shape, rng, comp)
    if field in ("P", "TC"):
        return vortex_field(shape, rng, "scalar")
    # moisture/precip species: non-negative, patchy
    base = front_field(shape, rng, sharpness=8.0)
    return base * np.exp(0.3 * spectral_field(shape, 2.5, rng))


def _segsalt(field: str, shape, rng) -> np.ndarray:
    if field == "Velocity":
        model = layered_model(shape, rng)
        salt = salt_body(shape, rng)
        return np.where(salt > 0, salt, model)
    # pressure wavefield snapshots at two times
    t = 0.45 if field == "Pressure2000" else 0.8
    return point_source_wavefield(shape, rng, t=t)


def _scale(field: str, shape, rng) -> np.ndarray:
    if field in ("U", "V", "W"):
        return spectral_field(shape, 3.6, rng, cutoff_frac=0.15) * (
            1.0 - 0.5 * np.linspace(0, 1, shape[0])[:, None, None]
        )
    if field in ("T", "PRES", "RH"):
        strat = np.linspace(1, 0, shape[0])[:, None, None]
        return strat + 0.1 * spectral_field(shape, 3.8, rng, cutoff_frac=0.15)
    # hydrometeor species: sparse non-negative cells
    cells = front_field(shape, rng, sharpness=12.0)
    return np.maximum(cells - 0.6, 0.0) * 2.5


def _s3d(field: str, shape, rng) -> np.ndarray:
    if field == "temperature":
        return 300.0 + 1500.0 * front_field(shape, rng)
    if field == "pressure":
        return 1.0e5 * (1.0 + 0.02 * spectral_field(shape, 4.2, rng, cutoff_frac=0.15))
    if field.startswith("velocity"):
        return 10.0 * spectral_field(shape, 3.67, rng, cutoff_frac=0.15)
    # species mass fractions: fronts, partially consumed
    f = front_field(shape, rng)
    if field in ("Y_CH4", "Y_O2"):
        return 0.2 * (1.0 - f)
    return 0.15 * f * np.exp(0.2 * spectral_field(shape, 4.0, rng, cutoff_frac=0.12))


def _cesm(field: str, shape, rng) -> np.ndarray:
    return lat_lon_climate(shape, rng)


def _rtm(field: str, shape, rng) -> np.ndarray:
    # 4-D (t, z, y, x): expanding wavefront over time steps
    nt = shape[0]
    vol_shape = shape[1:]
    out = np.empty(shape)
    center = tuple(rng.uniform(0.3, 0.7, 3))
    for i, t in enumerate(np.linspace(0.15, 0.9, nt)):
        out[i] = point_source_wavefield(vol_shape, rng, t=t, center=center)
    return out


_DISPATCH = {
    "miranda": _miranda,
    "hurricane": _hurricane,
    "segsalt": _segsalt,
    "scale": _scale,
    "s3d": _s3d,
    "cesm": _cesm,
    "rtm": _rtm,
}
