"""The QP transform: adaptive quantization index prediction (Algorithms 1-2).

``qp_forward`` maps a pass's quantization-index array ``Q`` to the
lower-entropy ``Q' = Q - c`` where the compensation ``c`` comes from a
conditional Lorenzo prediction over *previously processed* indices of the same
pass.  ``qp_inverse`` recovers ``Q`` exactly — the transform is reversible by
construction, so QP never changes decompressed data (the paper's key
invariant).

Array convention: a *pass array* holds the quantization indices of one
interpolation pass, with the interpolation axis first and the orthogonal
plane axes last.  The 2-D Lorenzo of the paper acts on the last two axes
(the plane perpendicular to the interpolation direction); all leading axes
are batch axes.

Vectorization strategy (DESIGN.md §7): the forward direction is a handful of
whole-array shifts; the inverse walks anti-diagonal wavefronts so each Python
iteration recovers a whole diagonal (1-D variants walk lines; the 3-D variant
walks i+j+k wavefronts).
"""
from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..kernels import select_backend
from ..obs import span
from .conditions import compensation
from .config import QPConfig

__all__ = ["qp_forward", "qp_inverse", "qp_inverse_multi", "effective_dimension"]

#: wavefront-kernel condition codes (0 = plain sentinel-validity)
_COND_CODES = {"III": 3, "IV": 4}


def effective_dimension(dimension: str, ndim: int) -> str | None:
    """Degrade the configured predictor to what the pass array supports.

    Returns ``None`` when QP cannot act at all (no usable neighbour axis).
    """
    if ndim >= 3:
        return dimension
    if ndim == 2:
        # only one plane axis exists; in-plane Lorenzo degenerates to 1-D
        return {
            "2d": "1d-left",
            "3d": "2d",  # (back, left) become the two Lorenzo axes
            "1d-top": None,
        }.get(dimension, dimension)
    # ndim == 1: only the interpolation axis exists
    return dimension if dimension == "1d-back" else None


def _shift(a: np.ndarray, axis: int) -> np.ndarray:
    """Previous element along ``axis``; missing neighbours read as 0."""
    out = np.empty_like(a)
    src = [slice(None)] * a.ndim
    dst = [slice(None)] * a.ndim
    src[axis] = slice(0, a.shape[axis] - 1)
    dst[axis] = slice(1, None)
    out[tuple(dst)] = a[tuple(src)]
    dst[axis] = slice(0, 1)
    out[tuple(dst)] = 0
    return out


def _plane_axes(ndim: int, dim: str) -> tuple[int | None, int | None, int | None]:
    """(back, top, left) axes for a pass array of the given rank."""
    back = 0
    left = ndim - 1 if ndim >= 2 else None
    top = ndim - 2 if ndim >= 3 else None
    if ndim == 2 and dim == "2d":
        # degraded 3d: treat (back, left) as the Lorenzo plane
        top = 0
        back = None
    return back, top, left


def qp_forward(q: np.ndarray, sentinel: int, config: QPConfig, level: int) -> np.ndarray:
    """Apply QP to one pass array; returns ``Q'`` (input is not modified)."""
    if not config.applies_to_level(level):
        return q
    dim = effective_dimension(config.dimension, q.ndim)
    if dim is None:
        return q
    back_ax, top_ax, left_ax = _plane_axes(q.ndim, dim)

    with span("qp.forward", dim=dim, level=level):
        # only allocate the all-zero stand-in when some neighbour axis is
        # missing
        zeros = (
            np.zeros_like(q) if (left_ax is None or top_ax is None) else None
        )
        left = _shift(q, left_ax) if left_ax is not None else zeros
        top = _shift(q, top_ax) if top_ax is not None else zeros
        lt = (
            _shift(_shift(q, left_ax), top_ax)
            if (left_ax is not None and top_ax is not None)
            else zeros
        )
        kwargs = {}
        if dim in ("1d-back", "3d"):
            back = _shift(q, back_ax)
            kwargs["back"] = back
            if dim == "3d":
                kwargs["lb"] = _shift(left, back_ax)
                kwargs["tb"] = _shift(top, back_ax)
                kwargs["ltb"] = _shift(lt, back_ax)
        c = compensation(dim, config.condition, sentinel, left, top, lt, **kwargs)
        return q - c


def qp_inverse(
    qp: np.ndarray,
    sentinel: int,
    config: QPConfig,
    level: int,
    backend: str | None = None,
) -> np.ndarray:
    """Invert :func:`qp_forward`, recovering the original pass array.

    ``backend`` picks the wavefront kernel implementation (see
    :mod:`repro.kernels`); ``None`` resolves via environment/auto.
    """
    if not config.applies_to_level(level):
        return qp
    dim = effective_dimension(config.dimension, qp.ndim)
    if dim is None:
        return qp
    with span("qp.inverse", dim=dim, level=level):
        if dim in ("1d-back", "1d-top", "1d-left"):
            return _inverse_1d(qp, sentinel, config.condition, dim)
        if dim == "2d":
            return _inverse_2d(qp, sentinel, config.condition, backend)
        return _inverse_3d(qp, sentinel, config.condition, backend)


def qp_inverse_multi(
    parts: "list[np.ndarray]",
    sentinel: int,
    config: QPConfig,
    level: int,
    backend: str | None = None,
) -> np.ndarray:
    """Invert :func:`qp_forward` for N equal-shape pass arrays at once.

    Returns the per-part results stacked along a new leading axis — always
    bit-identical to ``np.stack([qp_inverse(p, ...) for p in parts])``, but
    the Lorenzo wavefront walk runs *once* over all parts: each part is
    scattered straight into the shared zero-padded work plane (a copy the
    kernel performs anyway), so batching adds no extra passes over the data.
    Dimensions whose kernel involves the parts' leading axis (``1d-back``,
    and ``3d`` on rank > 3 arrays) cannot share a walk and fall back to the
    per-part loop.
    """
    shape = parts[0].shape
    if any(p.shape != shape for p in parts[1:]):
        raise ValueError("qp_inverse_multi requires equal-shape parts")
    if len(parts) == 1:
        return qp_inverse(parts[0], sentinel, config, level, backend)[None]
    if not config.applies_to_level(level):
        return np.stack(parts)
    ndim = len(shape)
    dim = effective_dimension(config.dimension, ndim)
    if dim is None:
        return np.stack(parts)
    if dim == "2d":
        with span("qp.inverse", dim=dim, level=level, batch=len(parts)):
            return _inverse_2d_multi(parts, sentinel, config.condition, backend)
    if dim == "3d" and ndim == 3:
        with span("qp.inverse", dim=dim, level=level, batch=len(parts)):
            return _inverse_3d_multi(parts, sentinel, config.condition, backend)
    if dim in ("1d-left", "1d-top"):
        # scan axis is a trailing axis (these dims only survive
        # ``effective_dimension`` at ranks where it is), so the stack is a
        # pure batch; call the kernel directly with the resolved dim — the
        # public entry would re-resolve against the stacked rank
        with span("qp.inverse", dim=dim, level=level, batch=len(parts)):
            return _inverse_1d(np.stack(parts), sentinel, config.condition, dim)
    return np.stack([qp_inverse(p, sentinel, config, level, backend) for p in parts])


# -- inverse kernels ---------------------------------------------------------


def _inverse_1d(qp: np.ndarray, sentinel: int, cond: str, dim: str) -> np.ndarray:
    axis = {"1d-back": 0, "1d-top": qp.ndim - 2, "1d-left": qp.ndim - 1}[dim]
    if cond == "I":
        # Unconditional 1-D Lorenzo is a first difference along ``axis``; its
        # inverse is a prefix sum — O(N) fully vectorized, no line walk
        # (same fast path _inverse_2d has for the separable 2-D case).
        return np.cumsum(qp, axis=axis)
    q = np.moveaxis(qp.copy(), axis, -1)  # view into the copy; scan last axis
    n = q.shape[-1]
    zeros = np.zeros(q.shape[:-1], dtype=q.dtype)
    for j in range(1, n):
        nb = q[..., j - 1]
        if dim == "1d-back":
            c = compensation(dim, cond, sentinel, zeros, zeros, zeros, back=nb)
        elif dim == "1d-top":
            c = compensation(dim, cond, sentinel, zeros, nb, zeros)
        else:
            c = compensation(dim, cond, sentinel, nb, zeros, zeros)
        q[..., j] += c
    return np.moveaxis(q, -1, axis)


@lru_cache(maxsize=32)
def _diag_indices_2d(na: int, nb: int):
    """Flat per-anti-diagonal gather/scatter tables for the 2-D inverse.

    Indices address a zero-padded ``(na+1, nb+1)`` plane (one ghost row and
    column of zeros in front), so border neighbours read the padding instead
    of needing per-diagonal ``has_top``/``has_left`` clamp masks — the
    padding zeros are exactly the "missing neighbour reads as 0" convention
    of the forward transform.  Each diagonal carries one scatter table
    (``ctr``) and one *concatenated* gather table (``nbr`` = left|top|lt),
    so the whole wavefront step is a single fancy-index gather.  Built once
    per pass-array shape (shapes repeat across levels, passes and volumes)
    and reused read-only.
    """
    width = nb + 1
    diags = []
    for k in range(1, na + nb - 1):
        i = np.arange(max(0, k - nb + 1), min(na - 1, k) + 1) + 1
        j = (k + 2) - i  # padded coordinates: i + j == k + 2
        ctr = i * width + j
        nbr = np.concatenate([
            i * width + (j - 1),        # left
            (i - 1) * width + j,        # top
            (i - 1) * width + (j - 1),  # lt
        ])
        ctr.setflags(write=False)
        nbr.setflags(write=False)
        diags.append((ctr, nbr, i.size))
    interior = (
        (np.arange(na)[:, None] + 1) * width + np.arange(nb)[None, :] + 1
    ).ravel()
    interior.setflags(write=False)
    return tuple(diags), interior


def _inverse_2d(
    qp: np.ndarray, sentinel: int, cond: str, backend: str | None = None
) -> np.ndarray:
    if cond == "I":
        # Unconditional 2-D Lorenzo is a separable finite difference, so its
        # inverse is two prefix sums — O(N) fully vectorized, no wavefront.
        # (This implements the paper's future-work item on reducing QP's
        # computational overhead for the unconditional case.)
        q = np.cumsum(qp, axis=-1)
        return np.cumsum(q, axis=-2)
    shape = qp.shape
    na, nb = shape[-2], shape[-1]
    batch = int(np.prod(shape[:-2], dtype=np.int64)) if qp.ndim > 2 else 1
    _, interior = _diag_indices_2d(na, nb)
    q = np.zeros((batch, (na + 1) * (nb + 1)), dtype=qp.dtype)
    q[:, interior] = qp.reshape(batch, na * nb)
    kern = select_backend("qp", backend)
    kern.ops["walk_2d"](q, na, nb, sentinel, _COND_CODES.get(cond, 0))
    return q[:, interior].reshape(shape)


def _walk_2d(q, diags, sentinel: int, cond: str) -> None:
    """Run the 2-D anti-diagonal wavefront over a padded plane batch."""
    for ctr, nbr, m in diags:
        g = q[:, nbr]  # one gather: [left | top | lt], each m wide
        left, top, lt = g[:, :m], g[:, m:2 * m], g[:, 2 * m:]
        pred = left + top
        pred -= lt
        ok = g != sentinel
        valid = ok[:, :m] & ok[:, m:2 * m]
        valid &= ok[:, 2 * m:]
        if cond == "III":
            pos = g[:, :2 * m] > 0
            neg = g[:, :2 * m] < 0
            valid &= (pos[:, :m] & pos[:, m:]) | (neg[:, :m] & neg[:, m:])
        elif cond == "IV":
            pos = g > 0
            neg = g < 0
            valid &= (pos[:, :m] & pos[:, m:2 * m] & pos[:, 2 * m:]) | (
                neg[:, :m] & neg[:, m:2 * m] & neg[:, 2 * m:]
            )
        pred *= valid
        q[:, ctr] += pred


def _inverse_2d_multi(
    parts: "list[np.ndarray]",
    sentinel: int,
    cond: str,
    backend: str | None = None,
) -> np.ndarray:
    """N equal-shape parts through one 2-D wavefront; stacked result.

    Each part scatters into its own row block of the shared padded plane
    batch, so the diagonal walk (the Python-level cost) is paid once for
    all parts instead of once per part.
    """
    shape = parts[0].shape
    if cond == "I":
        q = np.cumsum(np.stack(parts), axis=-1)
        return np.cumsum(q, axis=-2)
    na, nb = shape[-2], shape[-1]
    b = int(np.prod(shape[:-2], dtype=np.int64)) if len(shape) > 2 else 1
    _, interior = _diag_indices_2d(na, nb)
    q = np.zeros((len(parts) * b, (na + 1) * (nb + 1)), dtype=parts[0].dtype)
    for i, part in enumerate(parts):
        q[i * b:(i + 1) * b, interior] = part.reshape(b, na * nb)
    kern = select_backend("qp", backend)
    kern.ops["walk_2d"](q, na, nb, sentinel, _COND_CODES.get(cond, 0))
    return q[:, interior].reshape((len(parts),) + shape)


@lru_cache(maxsize=8)
def _diag_indices_3d(na: int, nb: int, nc: int):
    """Flat i+j+k wavefront gather/scatter tables for the 3-D inverse.

    Same padded-volume scheme as :func:`_diag_indices_2d`: indices address a
    zero-padded ``(na+1, nb+1, nc+1)`` volume, each diagonal stores its
    scatter table and one concatenated 7-neighbour gather table
    (left|top|back|lt|lb|tb|ltb), built once per pass-array shape.
    """
    w1 = (nb + 1) * (nc + 1)
    w2 = nc + 1
    I, J, K = np.indices((na, nb, nc)).reshape(3, -1)
    diag = I + J + K
    order = np.argsort(diag, kind="stable")
    I, J, K, diag = I[order] + 1, J[order] + 1, K[order] + 1, diag[order]
    bounds = np.searchsorted(diag, np.arange(diag[-1] + 2))
    diags = []
    for d in range(1, int(diag[-1]) + 1):
        sl = slice(bounds[d], bounds[d + 1])
        i, j, k = I[sl], J[sl], K[sl]
        ctr = i * w1 + j * w2 + k
        nbr = np.concatenate([
            i * w1 + j * w2 + (k - 1),              # left
            i * w1 + (j - 1) * w2 + k,              # top
            (i - 1) * w1 + j * w2 + k,              # back
            i * w1 + (j - 1) * w2 + (k - 1),        # lt
            (i - 1) * w1 + j * w2 + (k - 1),        # lb
            (i - 1) * w1 + (j - 1) * w2 + k,        # tb
            (i - 1) * w1 + (j - 1) * w2 + (k - 1),  # ltb
        ])
        ctr.setflags(write=False)
        nbr.setflags(write=False)
        diags.append((ctr, nbr, i.size))
    interior = (
        (np.arange(na)[:, None, None] + 1) * w1
        + (np.arange(nb)[None, :, None] + 1) * w2
        + np.arange(nc)[None, None, :] + 1
    ).ravel()
    interior.setflags(write=False)
    return tuple(diags), interior


def _inverse_3d(
    qp: np.ndarray, sentinel: int, cond: str, backend: str | None = None
) -> np.ndarray:
    if qp.ndim < 3:
        raise ValueError("3d QP requires a rank >= 3 pass array")
    if cond == "I":
        # The unconditional 3-D Lorenzo difference is separable too: its
        # inverse is one prefix sum per axis.
        q = np.cumsum(qp, axis=-1)
        q = np.cumsum(q, axis=-2)
        return np.cumsum(q, axis=-3)
    shape = qp.shape
    na, nb, nc = shape[-3], shape[-2], shape[-1]
    batch = int(np.prod(shape[:-3], dtype=np.int64)) if qp.ndim > 3 else 1
    _, interior = _diag_indices_3d(na, nb, nc)
    q = np.zeros((batch, (na + 1) * (nb + 1) * (nc + 1)), dtype=qp.dtype)
    q[:, interior] = qp.reshape(batch, na * nb * nc)
    kern = select_backend("qp", backend)
    kern.ops["walk_3d"](q, na, nb, nc, sentinel, _COND_CODES.get(cond, 0))
    return q[:, interior].reshape(shape)


def _walk_3d(q, diags, sentinel: int, cond: str) -> None:
    """Run the i+j+k wavefront over a padded volume batch."""
    for ctr, nbr, m in diags:
        g = q[:, nbr]  # one gather: [left|top|back|lt|lb|tb|ltb], each m wide
        left, top, back = g[:, :m], g[:, m:2 * m], g[:, 2 * m:3 * m]
        lt, lb = g[:, 3 * m:4 * m], g[:, 4 * m:5 * m]
        tb, ltb = g[:, 5 * m:6 * m], g[:, 6 * m:]
        pred = left + top
        pred += back
        pred -= lt
        pred -= lb
        pred -= tb
        pred += ltb
        ok = g != sentinel
        valid = ok[:, :m] & ok[:, m:2 * m]
        valid &= ok[:, 2 * m:3 * m]
        valid &= ok[:, 3 * m:4 * m]
        valid &= ok[:, 4 * m:5 * m]
        valid &= ok[:, 5 * m:6 * m]
        valid &= ok[:, 6 * m:]
        if cond == "III":
            pos = g[:, :2 * m] > 0
            neg = g[:, :2 * m] < 0
            valid &= (pos[:, :m] & pos[:, m:]) | (neg[:, :m] & neg[:, m:])
        elif cond == "IV":
            # Case IV in 3-D tests the first-order neighbours (left, top, back)
            pos = g[:, :3 * m] > 0
            neg = g[:, :3 * m] < 0
            valid &= (pos[:, :m] & pos[:, m:2 * m] & pos[:, 2 * m:]) | (
                neg[:, :m] & neg[:, m:2 * m] & neg[:, 2 * m:]
            )
        pred *= valid
        q[:, ctr] += pred


def _inverse_3d_multi(
    parts: "list[np.ndarray]",
    sentinel: int,
    cond: str,
    backend: str | None = None,
) -> np.ndarray:
    """N equal-shape rank-3 parts through one i+j+k wavefront; stacked."""
    shape = parts[0].shape
    if cond == "I":
        q = np.cumsum(np.stack(parts), axis=-1)
        q = np.cumsum(q, axis=-2)
        return np.cumsum(q, axis=-3)
    na, nb, nc = shape[-3], shape[-2], shape[-1]
    _, interior = _diag_indices_3d(na, nb, nc)
    q = np.zeros((len(parts), (na + 1) * (nb + 1) * (nc + 1)), dtype=parts[0].dtype)
    for i, part in enumerate(parts):
        q[i, interior] = part.reshape(-1)
    kern = select_backend("qp", backend)
    kern.ops["walk_3d"](q, na, nb, nc, sentinel, _COND_CODES.get(cond, 0))
    return q[:, interior].reshape((len(parts),) + shape)
