"""The QP transform: adaptive quantization index prediction (Algorithms 1-2).

``qp_forward`` maps a pass's quantization-index array ``Q`` to the
lower-entropy ``Q' = Q - c`` where the compensation ``c`` comes from a
conditional Lorenzo prediction over *previously processed* indices of the same
pass.  ``qp_inverse`` recovers ``Q`` exactly — the transform is reversible by
construction, so QP never changes decompressed data (the paper's key
invariant).

Array convention: a *pass array* holds the quantization indices of one
interpolation pass, with the interpolation axis first and the orthogonal
plane axes last.  The 2-D Lorenzo of the paper acts on the last two axes
(the plane perpendicular to the interpolation direction); all leading axes
are batch axes.

Vectorization strategy (DESIGN.md §7): the forward direction is a handful of
whole-array shifts; the inverse walks anti-diagonal wavefronts so each Python
iteration recovers a whole diagonal (1-D variants walk lines; the 3-D variant
walks i+j+k wavefronts).
"""
from __future__ import annotations

from functools import lru_cache

import numpy as np

from .conditions import compensation
from .config import QPConfig

__all__ = ["qp_forward", "qp_inverse", "effective_dimension"]


def effective_dimension(dimension: str, ndim: int) -> str | None:
    """Degrade the configured predictor to what the pass array supports.

    Returns ``None`` when QP cannot act at all (no usable neighbour axis).
    """
    if ndim >= 3:
        return dimension
    if ndim == 2:
        # only one plane axis exists; in-plane Lorenzo degenerates to 1-D
        return {
            "2d": "1d-left",
            "3d": "2d",  # (back, left) become the two Lorenzo axes
            "1d-top": None,
        }.get(dimension, dimension)
    # ndim == 1: only the interpolation axis exists
    return dimension if dimension == "1d-back" else None


def _shift(a: np.ndarray, axis: int) -> np.ndarray:
    """Previous element along ``axis``; missing neighbours read as 0."""
    out = np.empty_like(a)
    src = [slice(None)] * a.ndim
    dst = [slice(None)] * a.ndim
    src[axis] = slice(0, a.shape[axis] - 1)
    dst[axis] = slice(1, None)
    out[tuple(dst)] = a[tuple(src)]
    dst[axis] = slice(0, 1)
    out[tuple(dst)] = 0
    return out


def _plane_axes(ndim: int, dim: str) -> tuple[int | None, int | None, int | None]:
    """(back, top, left) axes for a pass array of the given rank."""
    back = 0
    left = ndim - 1 if ndim >= 2 else None
    top = ndim - 2 if ndim >= 3 else None
    if ndim == 2 and dim == "2d":
        # degraded 3d: treat (back, left) as the Lorenzo plane
        top = 0
        back = None
    return back, top, left


def qp_forward(q: np.ndarray, sentinel: int, config: QPConfig, level: int) -> np.ndarray:
    """Apply QP to one pass array; returns ``Q'`` (input is not modified)."""
    if not config.applies_to_level(level):
        return q
    dim = effective_dimension(config.dimension, q.ndim)
    if dim is None:
        return q
    back_ax, top_ax, left_ax = _plane_axes(q.ndim, dim)

    # only allocate the all-zero stand-in when some neighbour axis is missing
    zeros = (
        np.zeros_like(q) if (left_ax is None or top_ax is None) else None
    )
    left = _shift(q, left_ax) if left_ax is not None else zeros
    top = _shift(q, top_ax) if top_ax is not None else zeros
    lt = (
        _shift(_shift(q, left_ax), top_ax)
        if (left_ax is not None and top_ax is not None)
        else zeros
    )
    kwargs = {}
    if dim in ("1d-back", "3d"):
        back = _shift(q, back_ax)
        kwargs["back"] = back
        if dim == "3d":
            kwargs["lb"] = _shift(left, back_ax)
            kwargs["tb"] = _shift(top, back_ax)
            kwargs["ltb"] = _shift(lt, back_ax)
    c = compensation(dim, config.condition, sentinel, left, top, lt, **kwargs)
    return q - c


def qp_inverse(qp: np.ndarray, sentinel: int, config: QPConfig, level: int) -> np.ndarray:
    """Invert :func:`qp_forward`, recovering the original pass array."""
    if not config.applies_to_level(level):
        return qp
    dim = effective_dimension(config.dimension, qp.ndim)
    if dim is None:
        return qp
    if dim in ("1d-back", "1d-top", "1d-left"):
        return _inverse_1d(qp, sentinel, config.condition, dim)
    if dim == "2d":
        return _inverse_2d(qp, sentinel, config.condition)
    return _inverse_3d(qp, sentinel, config.condition)


# -- inverse kernels ---------------------------------------------------------


def _inverse_1d(qp: np.ndarray, sentinel: int, cond: str, dim: str) -> np.ndarray:
    axis = {"1d-back": 0, "1d-top": qp.ndim - 2, "1d-left": qp.ndim - 1}[dim]
    if cond == "I":
        # Unconditional 1-D Lorenzo is a first difference along ``axis``; its
        # inverse is a prefix sum — O(N) fully vectorized, no line walk
        # (same fast path _inverse_2d has for the separable 2-D case).
        return np.cumsum(qp, axis=axis)
    q = np.moveaxis(qp.copy(), axis, -1)  # view into the copy; scan last axis
    n = q.shape[-1]
    zeros = np.zeros(q.shape[:-1], dtype=q.dtype)
    for j in range(1, n):
        nb = q[..., j - 1]
        if dim == "1d-back":
            c = compensation(dim, cond, sentinel, zeros, zeros, zeros, back=nb)
        elif dim == "1d-top":
            c = compensation(dim, cond, sentinel, zeros, nb, zeros)
        else:
            c = compensation(dim, cond, sentinel, nb, zeros, zeros)
        q[..., j] += c
    return np.moveaxis(q, -1, axis)


@lru_cache(maxsize=32)
def _diag_indices_2d(na: int, nb: int):
    """Per-anti-diagonal gather indices for the 2-D wavefront inverse.

    The index arithmetic (aranges, neighbour clamping, border masks) depends
    only on the pass-array shape, which repeats across levels, passes and
    volumes — so it is built once per shape and the read-only arrays reused.
    """
    diags = []
    for k in range(1, na + nb - 1):
        i = np.arange(max(0, k - nb + 1), min(na - 1, k) + 1)
        j = k - i
        has_top = i > 0
        has_left = j > 0
        i_t = np.where(has_top, i - 1, 0)
        j_l = np.where(has_left, j - 1, 0)
        entry = (i, j, has_top[None, :], has_left[None, :],
                 (has_top & has_left)[None, :], i_t, j_l)
        for a in entry:
            a.setflags(write=False)
        diags.append(entry)
    return tuple(diags)


def _inverse_2d(qp: np.ndarray, sentinel: int, cond: str) -> np.ndarray:
    if cond == "I":
        # Unconditional 2-D Lorenzo is a separable finite difference, so its
        # inverse is two prefix sums — O(N) fully vectorized, no wavefront.
        # (This implements the paper's future-work item on reducing QP's
        # computational overhead for the unconditional case.)
        q = np.cumsum(qp, axis=-1)
        return np.cumsum(q, axis=-2)
    shape = qp.shape
    na, nb = shape[-2], shape[-1]
    batch = int(np.prod(shape[:-2], dtype=np.int64)) if qp.ndim > 2 else 1
    q = qp.reshape(batch, na, nb).copy()
    for i, j, has_top, has_left, has_lt, i_t, j_l in _diag_indices_2d(na, nb):
        top = np.where(has_top, q[:, i_t, j], 0)
        left = np.where(has_left, q[:, i, j_l], 0)
        lt = np.where(has_lt, q[:, i_t, j_l], 0)
        c = compensation("2d", cond, sentinel, left, top, lt)
        q[:, i, j] += c
    return q.reshape(shape)


@lru_cache(maxsize=8)
def _diag_indices_3d(na: int, nb: int, nc: int):
    """Sorted i+j+k wavefront gather indices for the 3-D inverse, built once
    per pass-array shape (the np.indices/argsort work dominates small passes)."""
    I, J, K = np.indices((na, nb, nc)).reshape(3, -1)
    diag = I + J + K
    order = np.argsort(diag, kind="stable")
    I, J, K, diag = I[order], J[order], K[order], diag[order]
    bounds = np.searchsorted(diag, np.arange(diag[-1] + 2))
    for a in (I, J, K, bounds):
        a.setflags(write=False)
    return I, J, K, int(diag[-1]), bounds


def _inverse_3d(qp: np.ndarray, sentinel: int, cond: str) -> np.ndarray:
    if qp.ndim < 3:
        raise ValueError("3d QP requires a rank >= 3 pass array")
    if cond == "I":
        # The unconditional 3-D Lorenzo difference is separable too: its
        # inverse is one prefix sum per axis.
        q = np.cumsum(qp, axis=-1)
        q = np.cumsum(q, axis=-2)
        return np.cumsum(q, axis=-3)
    shape = qp.shape
    na, nb, nc = shape[-3], shape[-2], shape[-1]
    batch = int(np.prod(shape[:-3], dtype=np.int64)) if qp.ndim > 3 else 1
    q = qp.reshape(batch, na, nb, nc).copy()
    I, J, K, max_diag, bounds = _diag_indices_3d(na, nb, nc)
    for d in range(1, max_diag + 1):
        sl = slice(bounds[d], bounds[d + 1])
        i, j, k = I[sl], J[sl], K[sl]
        hb, ht, hl = i > 0, j > 0, k > 0
        ib, jt, kl = np.where(hb, i - 1, 0), np.where(ht, j - 1, 0), np.where(hl, k - 1, 0)

        def g(ii, jj, kk, m):
            return np.where(m[None, :], q[:, ii, jj, kk], 0)

        back = g(ib, j, k, hb)
        top = g(i, jt, k, ht)
        left = g(i, j, kl, hl)
        tb = g(ib, jt, k, hb & ht)
        lb = g(ib, j, kl, hb & hl)
        lt = g(i, jt, kl, ht & hl)
        ltb = g(ib, jt, kl, hb & ht & hl)
        c = compensation("3d", cond, sentinel, left, top, lt, back=back, lb=lb, tb=tb, ltb=ltb)
        q[:, i, j, k] += c
    return q.reshape(shape)
