"""QP core — the paper's contribution: config, conditions, transform,
characterization."""
from .characterize import (
    ClusteringStats,
    clustering_stats,
    plane_slice,
    regional_entropy,
    shannon_entropy,
    slice_entropy,
)
from .conditions import compensation
from .config import ADAPTIVE_MAX_BITS, QP_CONDITIONS, QP_DIMENSIONS, AdaptiveConfig, QPConfig
from .qp import effective_dimension, qp_forward, qp_inverse

__all__ = [
    "AdaptiveConfig",
    "ADAPTIVE_MAX_BITS",
    "QPConfig",
    "QP_DIMENSIONS",
    "QP_CONDITIONS",
    "compensation",
    "qp_forward",
    "qp_inverse",
    "effective_dimension",
    "shannon_entropy",
    "slice_entropy",
    "plane_slice",
    "regional_entropy",
    "clustering_stats",
    "ClusteringStats",
]
