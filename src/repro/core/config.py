"""Configuration of the quantization index prediction (QP) stage."""
from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QPConfig", "QP_DIMENSIONS", "QP_CONDITIONS"]

QP_DIMENSIONS = ("1d-back", "1d-top", "1d-left", "2d", "3d")
QP_CONDITIONS = ("I", "II", "III", "IV")


@dataclass(frozen=True)
class QPConfig:
    """Settings for adaptive quantization index prediction (Section V).

    ``dimension``
        Which Lorenzo variant predicts the current index:
        ``1d-back`` along the interpolation direction, ``1d-top``/``1d-left``
        along the orthogonal plane axes, ``2d`` the in-plane Lorenzo (paper's
        best fit), ``3d`` the full Lorenzo over all pass axes.
    ``condition``
        Prediction condition, Cases I-IV of Section V-C2.  The paper's best
        fit is Case III: skip if any involved neighbour is unpredictable, and
        require the left/top neighbours to share a (nonzero) sign.
    ``max_level``
        Apply QP only at interpolation levels ``<= max_level`` (Section V-C3:
        levels 1 and 2 hold >98% of points; higher levels can even hurt).
    ``enabled``
        Master switch; a disabled config makes the transform the identity.
    """

    enabled: bool = True
    dimension: str = "2d"
    condition: str = "III"
    max_level: int = 2

    def __post_init__(self) -> None:
        if self.dimension not in QP_DIMENSIONS:
            raise ValueError(f"dimension must be one of {QP_DIMENSIONS}")
        if self.condition not in QP_CONDITIONS:
            raise ValueError(f"condition must be one of {QP_CONDITIONS}")
        if self.max_level < 0:
            raise ValueError("max_level must be >= 0")

    def applies_to_level(self, level: int) -> bool:
        return self.enabled and level <= self.max_level

    @staticmethod
    def disabled() -> "QPConfig":
        return QPConfig(enabled=False)

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "dimension": self.dimension,
            "condition": self.condition,
            "max_level": self.max_level,
        }

    @staticmethod
    def from_dict(d: dict) -> "QPConfig":
        return QPConfig(**d)
