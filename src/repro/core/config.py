"""Configuration of the quantization index prediction (QP) stage and the
adaptive (reserved-index) quantizer."""
from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "QPConfig",
    "QP_DIMENSIONS",
    "QP_CONDITIONS",
    "AdaptiveConfig",
    "ADAPTIVE_MAX_BITS",
]

QP_DIMENSIONS = ("1d-back", "1d-top", "1d-left", "2d", "3d")
QP_CONDITIONS = ("I", "II", "III", "IV")

#: cap on ``adaptive_bits`` — tightening by 2^12 already exceeds the dynamic
#: range any float32 bound survives, and the cap bounds wire-index growth.
ADAPTIVE_MAX_BITS = 12


@dataclass(frozen=True)
class QPConfig:
    """Settings for adaptive quantization index prediction (Section V).

    ``dimension``
        Which Lorenzo variant predicts the current index:
        ``1d-back`` along the interpolation direction, ``1d-top``/``1d-left``
        along the orthogonal plane axes, ``2d`` the in-plane Lorenzo (paper's
        best fit), ``3d`` the full Lorenzo over all pass axes.
    ``condition``
        Prediction condition, Cases I-IV of Section V-C2.  The paper's best
        fit is Case III: skip if any involved neighbour is unpredictable, and
        require the left/top neighbours to share a (nonzero) sign.
    ``max_level``
        Apply QP only at interpolation levels ``<= max_level`` (Section V-C3:
        levels 1 and 2 hold >98% of points; higher levels can even hurt).
    ``enabled``
        Master switch; a disabled config makes the transform the identity.
    """

    enabled: bool = True
    dimension: str = "2d"
    condition: str = "III"
    max_level: int = 2

    def __post_init__(self) -> None:
        if self.dimension not in QP_DIMENSIONS:
            raise ValueError(f"dimension must be one of {QP_DIMENSIONS}")
        if self.condition not in QP_CONDITIONS:
            raise ValueError(f"condition must be one of {QP_CONDITIONS}")
        if self.max_level < 0:
            raise ValueError("max_level must be >= 0")

    def applies_to_level(self, level: int) -> bool:
        return self.enabled and level <= self.max_level

    @staticmethod
    def disabled() -> "QPConfig":
        return QPConfig(enabled=False)

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "dimension": self.dimension,
            "condition": self.condition,
            "max_level": self.max_level,
        }

    @staticmethod
    def from_dict(d: dict) -> "QPConfig":
        return QPConfig(**d)


@dataclass(frozen=True)
class AdaptiveConfig:
    """Settings for the in-band adaptive quantizer (reserved-index scheme).

    ``bits``
        Hard-to-predict points are re-quantized against the tightened bound
        ``eb / 2**bits`` (SZ3's ``AdaptiveLinearQuantizer`` mechanism).
    ``threshold``
        A point is *hard* when its coarse index magnitude reaches this value;
        wire indices with ``|w| >= threshold`` are reserved to signal the
        tightened bound in-band, so decode needs no side channel.
    """

    bits: int = 2
    threshold: int = 4

    def __post_init__(self) -> None:
        if not isinstance(self.bits, int) or isinstance(self.bits, bool):
            raise ValueError("bits must be an int")
        if not isinstance(self.threshold, int) or isinstance(self.threshold, bool):
            raise ValueError("threshold must be an int")
        if not 1 <= self.bits <= ADAPTIVE_MAX_BITS:
            raise ValueError(f"bits must be in [1, {ADAPTIVE_MAX_BITS}]")
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")

    def to_dict(self) -> dict:
        return {"bits": self.bits, "threshold": self.threshold}

    @staticmethod
    def from_dict(d: dict) -> "AdaptiveConfig":
        """Rebuild from an untrusted header dict; raises a typed error.

        Decode paths call this on attacker-controllable bytes, so range and
        type violations must surface as :class:`CorruptBlobError`, not as
        bare ``ValueError``/``TypeError``.
        """
        from ..errors import CorruptBlobError

        if not isinstance(d, dict):
            raise CorruptBlobError(f"adaptive config must be a dict, got {type(d).__name__}")
        extra = set(d) - {"bits", "threshold"}
        if extra:
            raise CorruptBlobError(f"unknown adaptive config keys: {sorted(extra)}")
        try:
            return AdaptiveConfig(
                bits=d.get("bits", 2), threshold=d.get("threshold", 4)
            )
        except (ValueError, TypeError) as exc:
            raise CorruptBlobError(f"invalid adaptive config: {exc}") from exc
