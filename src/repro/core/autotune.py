"""Sampling-based QP auto-tuning.

The paper fixes QP's best configuration offline (2-D, Case III, levels 1-2)
by exploring Figures 7-9 once.  This module makes that exploration *online*
and per-field: candidate configs are scored on a sampled sub-volume by the
entropy reduction they achieve on the actual index arrays, and the winner is
returned — including the option of disabling QP where it would hurt (the
paper's Hurricane/HPEZ cases).  This is the natural completion of the
"adaptive" in the paper's title.
"""
from __future__ import annotations

import numpy as np

from ..core.characterize import shannon_entropy
from ..core.config import QPConfig

__all__ = ["autotune_qp", "DEFAULT_CANDIDATES"]

DEFAULT_CANDIDATES: tuple[QPConfig, ...] = (
    QPConfig.disabled(),
    QPConfig(dimension="2d", condition="III", max_level=2),
    QPConfig(dimension="2d", condition="II", max_level=2),
    QPConfig(dimension="1d-top", condition="III", max_level=2),
    QPConfig(dimension="1d-left", condition="III", max_level=2),
    QPConfig(dimension="2d", condition="III", max_level=1),
)


def autotune_qp(
    data: np.ndarray,
    error_bound: float,
    candidates: tuple[QPConfig, ...] = DEFAULT_CANDIDATES,
    sample_side: int = 48,
    radius: int = 32768,
) -> QPConfig:
    """Pick the candidate QP config with the lowest estimated coded size on
    a central sample of ``data`` (compressed with the plain engine).

    The score is the Shannon entropy of the QP-transformed index stream —
    the quantity QP minimizes by design (Section V-A) — so one engine run
    produces the index arrays and every candidate is scored by pure integer
    transforms on them.
    """
    from ..compressors.interp_engine import EngineConfig, compress_volume
    from ..compressors.sz3 import _center_sample
    from ..core.qp import qp_forward
    from ..utils.levels import level_passes, num_levels, pass_sizes

    sample = _center_sample(data, sample_side)
    cfg = EngineConfig(error_bound=error_bound, radius=radius)
    _, stream, _, _ = compress_volume(sample, cfg)

    # rebuild the per-pass structure of the stream to re-apply each candidate
    shape = sample.shape
    sentinel = -radius
    passes = []
    pos = 0
    for level in range(num_levels(shape), 0, -1):
        for p in level_passes(shape, level):
            psize = pass_sizes(shape, p)
            n = int(np.prod(psize))
            moved = [psize[a] for a in _moved_axes(len(shape), p.axis)]
            passes.append((level, stream[pos:pos + n].reshape(moved)))
            pos += n

    best_cfg, best_bits = candidates[0], np.inf
    for cand in candidates:
        parts = [
            np.ascontiguousarray(qp_forward(q, sentinel, cand, level)).ravel()
            for level, q in passes
        ]
        merged = np.concatenate(parts) if parts else np.empty(0, np.int64)
        bits = shannon_entropy(merged) * max(merged.size, 1)
        if bits < best_bits:
            best_cfg, best_bits = cand, bits
    return best_cfg


def _moved_axes(ndim: int, primary: int) -> list[int]:
    axes = list(range(ndim))
    axes.remove(primary)
    return [primary] + axes
