"""Sampling-based auto-tuning: QP configs and the joint compressor tuner.

The paper fixes QP's best configuration offline (2-D, Case III, levels 1-2)
by exploring Figures 7-9 once.  :func:`autotune_qp` makes that exploration
*online* and per-field: candidate configs are scored on a sampled sub-volume
by the entropy reduction they achieve on the actual index arrays, and the
winner is returned — including the option of disabling QP where it would
hurt (the paper's Hurricane/HPEZ cases).

:func:`autotune` generalizes this into the HPEZ-style joint sampling tuner
(arXiv:2311.12133): it compresses a few strided blocks of the dataset and
runs a coordinate-descent search over interpolation method, axis order,
per-level error-bound scaling (QoZ's alpha/beta), the adaptive-quantizer
``adaptive_bits``, and the QP config, scoring every trial with the same
rate–distortion objective QoZ uses (``psnr - 6.02 * bits_per_point``).
The winner is returned as a :class:`TuningDecision`; compressors apply it
via their ``auto=True`` compress knob.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.characterize import shannon_entropy
from ..core.config import AdaptiveConfig, QPConfig
from ..obs import metric_count, span as obs_span

__all__ = [
    "autotune",
    "autotune_qp",
    "sample_blocks",
    "TuningDecision",
    "DEFAULT_CANDIDATES",
]

DEFAULT_CANDIDATES: tuple[QPConfig, ...] = (
    QPConfig.disabled(),
    QPConfig(dimension="2d", condition="III", max_level=2),
    QPConfig(dimension="2d", condition="II", max_level=2),
    QPConfig(dimension="1d-top", condition="III", max_level=2),
    QPConfig(dimension="1d-left", condition="III", max_level=2),
    QPConfig(dimension="2d", condition="III", max_level=1),
)


def autotune_qp(
    data: np.ndarray,
    error_bound: float,
    candidates: tuple[QPConfig, ...] = DEFAULT_CANDIDATES,
    sample_side: int = 48,
    radius: int = 32768,
) -> QPConfig:
    """Pick the candidate QP config with the lowest estimated coded size on
    a central sample of ``data`` (compressed with the plain engine).

    The score is the Shannon entropy of the QP-transformed index stream —
    the quantity QP minimizes by design (Section V-A) — so one engine run
    produces the index arrays and every candidate is scored by pure integer
    transforms on them.
    """
    from ..compressors.interp_engine import EngineConfig, compress_volume
    from ..compressors.sz3 import _center_sample
    from ..core.qp import qp_forward
    from ..utils.levels import level_passes, num_levels, pass_sizes

    sample = _center_sample(data, sample_side)
    cfg = EngineConfig(error_bound=error_bound, radius=radius)
    _, stream, _, _ = compress_volume(sample, cfg)

    # rebuild the per-pass structure of the stream to re-apply each candidate
    shape = sample.shape
    sentinel = -radius
    passes = []
    pos = 0
    for level in range(num_levels(shape), 0, -1):
        for p in level_passes(shape, level):
            psize = pass_sizes(shape, p)
            n = int(np.prod(psize))
            moved = [psize[a] for a in _moved_axes(len(shape), p.axis)]
            passes.append((level, stream[pos:pos + n].reshape(moved)))
            pos += n

    best_cfg, best_bits = candidates[0], np.inf
    for cand in candidates:
        parts = [
            np.ascontiguousarray(qp_forward(q, sentinel, cand, level)).ravel()
            for level, q in passes
        ]
        merged = np.concatenate(parts) if parts else np.empty(0, np.int64)
        bits = shannon_entropy(merged) * max(merged.size, 1)
        if bits < best_bits:
            best_cfg, best_bits = cand, bits
    return best_cfg


def _moved_axes(ndim: int, primary: int) -> list[int]:
    axes = list(range(ndim))
    axes.remove(primary)
    return [primary] + axes


# -- joint sampling tuner -----------------------------------------------------

# the RD slope QoZ's tuner uses: ~6.02 dB of PSNR per bit/point
_RD_SLOPE = 6.02
#: coordinate-descent grids (kept small: the tuner's cost model is
#: ``trials x blocks`` engine runs over ``block_side**ndim`` points)
_INTERP_GRID = ("linear", "cubic")
_ALPHA_GRID = (1.0, 1.25, 1.5, 2.0)
_BETA_GRID = (2.0, 3.0)
_ADAPTIVE_BITS_GRID = (0, 1, 2, 3)


@dataclass(frozen=True)
class TuningDecision:
    """Outcome of one :func:`autotune` run (serializable via ``to_dict``)."""

    interp: str
    structure: str
    axis_order: tuple[int, ...] | None
    alpha: float
    beta: float
    adaptive_bits: int
    adaptive_threshold: int
    qp: dict | None
    score: float
    adaptive_fraction: float
    n_blocks: int
    block_side: int

    def adaptive_config(self) -> AdaptiveConfig | None:
        if not self.adaptive_bits:
            return None
        return AdaptiveConfig(
            bits=self.adaptive_bits, threshold=self.adaptive_threshold
        )

    def qp_config(self) -> QPConfig:
        return QPConfig.from_dict(self.qp) if self.qp else QPConfig.disabled()

    def to_dict(self) -> dict:
        return {
            "interp": self.interp,
            "structure": self.structure,
            "axis_order": list(self.axis_order) if self.axis_order else None,
            "alpha": self.alpha,
            "beta": self.beta,
            "adaptive_bits": self.adaptive_bits,
            "adaptive_threshold": self.adaptive_threshold,
            "qp": self.qp,
            "score": self.score,
            "adaptive_fraction": self.adaptive_fraction,
            "n_blocks": self.n_blocks,
            "block_side": self.block_side,
        }


def sample_blocks(
    data: np.ndarray,
    block_side: int = 32,
    max_blocks: int = 3,
    rng: np.random.Generator | None = None,
) -> "list[np.ndarray]":
    """Strided sample blocks spanning the volume's main diagonal.

    Block starts are evenly spaced per axis with a small seeded jitter so
    repeated runs with one ``rng`` are reproducible (tests seed it from
    ``conftest``'s deterministic RNG); duplicates collapse.  Always returns
    at least one block; tiny inputs yield the whole array.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    take = tuple(min(n, block_side) for n in data.shape)
    spans = tuple(n - t for n, t in zip(data.shape, take))
    if not any(spans):
        return [np.ascontiguousarray(data[tuple(slice(0, t) for t in take)])]
    blocks: list[np.ndarray] = []
    seen: set[tuple[int, ...]] = set()
    for i in range(max_blocks):
        frac = i / max(max_blocks - 1, 1)
        start = []
        for span, t in zip(spans, take):
            jitter = int(rng.integers(0, max(t // 4, 1)))
            start.append(min(span, max(0, int(frac * span) - jitter)))
        key = tuple(start)
        if key in seen:
            continue
        seen.add(key)
        blocks.append(np.ascontiguousarray(
            data[tuple(slice(s, s + t) for s, t in zip(key, take))]
        ))
    return blocks


def autotune(
    data: np.ndarray,
    error_bound: float,
    *,
    radius: int = 32768,
    block_side: int = 32,
    max_blocks: int = 3,
    rng: np.random.Generator | None = None,
    fixed: dict | None = None,
    qp_candidates: tuple[QPConfig, ...] = DEFAULT_CANDIDATES,
    adaptive_threshold: int = 4,
) -> TuningDecision:
    """Jointly tune interp / axis order / per-level eb / adaptive_bits / QP.

    Coordinate descent over one knob at a time, each trial a full engine
    compression of every sample block scored by ``psnr - 6.02 * bpp``
    (bits from the index-stream entropy plus a 32-bit literal penalty).
    ``fixed`` pins knobs a compressor does not expose — e.g. MGARD pins
    ``{"interp": "linear", "structure": "multidim", "level_eb_factors":
    <its allocation>}`` and only QP + adaptivity are searched.
    """
    from ..compressors.base import CompressionState
    from ..compressors.interp_engine import (
        EngineConfig,
        compress_volume,
        level_error_bounds,
    )
    from ..metrics_light import psnr_estimate
    from ..utils.levels import num_levels

    fixed = dict(fixed or {})
    blocks = sample_blocks(data, block_side, max_blocks, rng)
    metric_count("autotune.blocks", len(blocks))
    value_range = float(data.max() - data.min()) or 1.0
    factors_fn = fixed.get("level_eb_factors")

    current = {
        "interp": fixed.get("interp", "linear"),
        "structure": fixed.get("structure", "sequential"),
        "axis_order": fixed.get("axis_order"),
        "alpha": float(fixed.get("alpha", 1.0)),
        "beta": float(fixed.get("beta", 1.0)),
        "adaptive_bits": int(fixed.get("adaptive_bits", 0)),
        "qp": fixed.get("qp", QPConfig.disabled()),
    }

    def _trial(params: dict) -> tuple[float, float]:
        """RD score of one parameter set over all blocks, plus the fraction
        of points the adaptive quantizer tightened."""
        metric_count("autotune.trials")
        score = 0.0
        adaptive_pts = 0
        total_pts = 0
        bits = int(params["adaptive_bits"])
        for block in blocks:
            levels = num_levels(block.shape)
            if factors_fn is not None:
                factors = factors_fn(levels)
            else:
                factors = level_error_bounds(
                    error_bound, levels, params["alpha"], params["beta"]
                )
            cfg = EngineConfig(
                error_bound=error_bound,
                radius=radius,
                interp=params["interp"],
                structure=params["structure"],
                axis_order=params["axis_order"],
                level_eb_factors=factors,
                qp=params["qp"],
                adaptive=(
                    AdaptiveConfig(bits=bits, threshold=adaptive_threshold)
                    if bits else None
                ),
            )
            st = CompressionState()
            _, stream, literals, _ = compress_volume(block, cfg, st)
            bpp = (
                shannon_entropy(stream) * stream.size + 32.0 * literals.size
            ) / block.size
            psnr = psnr_estimate(block, st.extras["decoded"], value_range)
            score += psnr - _RD_SLOPE * bpp
            if bits:
                idx = st.index_volume
                adaptive_pts += int(np.count_nonzero(
                    (np.abs(idx) >= adaptive_threshold) & (idx != -radius)
                ))
            total_pts += block.size
        return score, (adaptive_pts / total_pts if total_pts else 0.0)

    with obs_span("autotune"):
        best_score, best_fraction = _trial(current)

        def _descend(key: str, candidates) -> None:
            nonlocal best_score, best_fraction
            for cand in candidates:
                if cand == current[key]:
                    continue
                trial = dict(current)
                trial[key] = cand
                score, fraction = _trial(trial)
                if score > best_score:
                    best_score, best_fraction = score, fraction
                    current[key] = cand

        ndim = data.ndim
        if "interp" not in fixed:
            _descend("interp", _INTERP_GRID)
        if "axis_order" not in fixed and "structure" not in fixed and ndim > 1:
            _descend("axis_order", (None, tuple(reversed(range(ndim)))))
        if factors_fn is None and "alpha" not in fixed:
            pairs = [
                (a, b)
                for a in _ALPHA_GRID
                for b in (_BETA_GRID if a != 1.0 else _BETA_GRID[:1])
            ]
            best_pair = (current["alpha"], current["beta"])
            for a, b in pairs:
                if (a, b) == best_pair:
                    continue
                trial = dict(current)
                trial["alpha"], trial["beta"] = a, b
                score, fraction = _trial(trial)
                if score > best_score:
                    best_score, best_fraction = score, fraction
                    best_pair = (a, b)
            current["alpha"], current["beta"] = best_pair
        if "adaptive_bits" not in fixed:
            _descend("adaptive_bits", _ADAPTIVE_BITS_GRID)
        if "qp" not in fixed:
            _descend("qp", qp_candidates)

    qp_cfg: QPConfig = current["qp"]
    return TuningDecision(
        interp=current["interp"],
        structure=current["structure"],
        axis_order=(
            tuple(current["axis_order"]) if current["axis_order"] else None
        ),
        alpha=current["alpha"],
        beta=current["beta"],
        adaptive_bits=int(current["adaptive_bits"]),
        adaptive_threshold=int(adaptive_threshold),
        qp=qp_cfg.to_dict() if qp_cfg.enabled else None,
        score=float(best_score),
        adaptive_fraction=float(best_fraction),
        n_blocks=len(blocks),
        block_side=int(block_side),
    )
