"""Prediction conditions and compensation formulas (Algorithm 2).

The same elementwise functions serve the vectorized forward transform (whole
neighbour arrays) and the wavefront inverse (gathered neighbour vectors), so
encoder and decoder share one code path by construction.

Neighbour naming, for a pass array with the interpolation axis first:

* ``back``  previous element along the interpolation axis (axis 0)
* ``top``   previous element along the second-to-last (in-plane row) axis
* ``left``  previous element along the last (in-plane column) axis

Missing neighbours (plane borders) read as value 0 and are treated as
predictable; with Cases II-IV a zero value fails the sign test, so border
points are simply left unpredicted — identically in both directions.
"""
from __future__ import annotations

import numpy as np

__all__ = ["compensation"]


def compensation(
    dimension: str,
    condition: str,
    sentinel: int,
    left: np.ndarray,
    top: np.ndarray,
    lt: np.ndarray,
    back: np.ndarray | None = None,
    lb: np.ndarray | None = None,
    tb: np.ndarray | None = None,
    ltb: np.ndarray | None = None,
) -> np.ndarray:
    """Return the compensation ``c`` (0 where prediction is skipped).

    All neighbour arrays must be broadcast-compatible int64 arrays.
    """
    if dimension == "1d-left":
        pred = left
        involved = (left,)
        sign_pair = (left,)
    elif dimension == "1d-top":
        pred = top
        involved = (top,)
        sign_pair = (top,)
    elif dimension == "1d-back":
        if back is None:
            raise ValueError("1d-back requires the back neighbour")
        pred = back
        involved = (back,)
        sign_pair = (back,)
    elif dimension == "2d":
        pred = left + top - lt
        involved = (left, top, lt)
        sign_pair = (left, top)
    elif dimension == "3d":
        if back is None or lb is None or tb is None or ltb is None:
            raise ValueError("3d requires all seven neighbours")
        pred = left + top + back - lt - lb - tb + ltb
        involved = (left, top, back, lt, lb, tb, ltb)
        sign_pair = (left, top)
    else:
        raise ValueError(f"unknown dimension {dimension!r}")

    pred = np.asarray(pred)
    if condition == "I":
        # unconditional: the compensation is the prediction everywhere
        return pred
    else:
        mask = involved[0] != sentinel
        for nb in involved[1:]:
            mask &= nb != sentinel
        if condition == "III":
            mask &= _same_nonzero_sign(sign_pair)
        elif condition == "IV":
            # Case IV: "the signs of the three involved neighbours are the
            # same" — for 2d that is (left, top, lt); lower dimensions reduce
            # to their single neighbour, 3d to its first-order neighbours.
            if dimension == "2d":
                mask &= _same_nonzero_sign((left, top, lt))
            elif dimension == "3d":
                mask &= _same_nonzero_sign((left, top, back))
            else:
                mask &= _same_nonzero_sign(sign_pair)
        elif condition != "II":
            raise ValueError(f"unknown condition {condition!r}")
    return np.where(mask, pred, 0)


def _same_nonzero_sign(arrays: tuple[np.ndarray, ...]) -> np.ndarray:
    all_pos = arrays[0] > 0
    all_neg = arrays[0] < 0
    for a in arrays[1:]:
        all_pos &= a > 0
        all_neg &= a < 0
    all_pos |= all_neg
    return all_pos
