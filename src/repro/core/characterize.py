"""Characterization of quantization-index arrays (Section IV).

These tools reproduce the paper's analysis pipeline: per-slice entropy along
the three coordinate planes (Fig. 4), regional entropy of zoomed windows
(Figs. 3 and 5), and summary clustering statistics that quantify the
"clustering effect" QP exploits.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "shannon_entropy",
    "slice_entropy",
    "plane_slice",
    "regional_entropy",
    "clustering_stats",
    "ClusteringStats",
]

_PLANES = {"xy": 0, "xz": 1, "yz": 2}  # plane -> normal axis (z,y,x) = (0,1,2)


# histogram fast-path guard: beyond this range the bincount table would cost
# more than the sort it replaces
_ENTROPY_RANGE_CAP = 1 << 21


def shannon_entropy(values: np.ndarray) -> float:
    """Shannon entropy (bits/symbol) of an integer array (Section III-A)."""
    values = np.asarray(values).ravel()
    if values.size == 0:
        return 0.0
    if np.issubdtype(values.dtype, np.integer):
        lo = int(values.min())
        hi = int(values.max())
        if hi - lo <= _ENTROPY_RANGE_CAP:
            # bincount replaces np.unique's sort; dropping the zero bins
            # leaves the exact count sequence unique would produce (ascending
            # value order), so the float result is bit-identical
            counts = np.bincount(values - lo)
            counts = counts[counts > 0]
            p = counts / values.size
            return float(-(p * np.log2(p)).sum())
    _, counts = np.unique(values, return_counts=True)
    p = counts / values.size
    return float(-(p * np.log2(p)).sum())


def plane_slice(volume: np.ndarray, plane: str, index: int, stride: int = 1) -> np.ndarray:
    """Extract one slice of a 3-D index volume along a named plane.

    Axis convention follows the paper: axis 0 = z (first interpolation
    direction), axis 1 = y, axis 2 = x.  ``stride`` subsamples the in-plane
    grid — stride 2 isolates the indices written by the last level of
    interpolation, as in Fig. 4.
    """
    if volume.ndim != 3:
        raise ValueError("plane_slice expects a 3-D volume")
    if plane not in _PLANES:
        raise ValueError(f"plane must be one of {tuple(_PLANES)}")
    normal = _PLANES[plane]
    sl: list[slice | int] = [slice(None, None, stride)] * 3
    sl[normal] = index
    return volume[tuple(sl)]


def slice_entropy(volume: np.ndarray, plane: str, stride: int = 1) -> np.ndarray:
    """Entropy of every slice along ``plane`` (Fig. 4's curves)."""
    normal = _PLANES[plane]
    n = volume.shape[normal]
    return np.array(
        [shannon_entropy(plane_slice(volume, plane, i, stride)) for i in range(n)]
    )


def regional_entropy(
    volume: np.ndarray,
    plane: str,
    index: int,
    rows: tuple[int, int],
    cols: tuple[int, int],
    stride: int | tuple[int, int] = 1,
) -> float:
    """Entropy of a zoom window within one slice (the numbers atop Fig. 5)."""
    sl = plane_slice(volume, plane, index)
    if isinstance(stride, int):
        stride = (stride, stride)
    window = sl[rows[0]:rows[1]:stride[0], cols[0]:cols[1]:stride[1]]
    return shannon_entropy(window)


@dataclass
class ClusteringStats:
    """Summary of the clustering effect in an index array.

    ``nonzero_fraction``      share of nonzero indices
    ``same_sign_neighbour``   P(adjacent in-plane neighbours share a nonzero
                              sign) — the quantity Case III keys on
    ``neighbour_equal``       P(adjacent in-plane neighbours are equal)
    ``entropy``               global Shannon entropy
    """

    nonzero_fraction: float
    same_sign_neighbour: float
    neighbour_equal: float
    entropy: float


def clustering_stats(indices: np.ndarray) -> ClusteringStats:
    """Quantify index clustering over the last two axes of ``indices``."""
    q = np.asarray(indices)
    if q.ndim < 2:
        raise ValueError("need at least 2-D indices")
    a = q[..., :-1]
    b = q[..., 1:]
    same_sign = ((a > 0) & (b > 0)) | ((a < 0) & (b < 0))
    return ClusteringStats(
        nonzero_fraction=float((q != 0).mean()),
        same_sign_neighbour=float(same_sign.mean()),
        neighbour_equal=float((a == b).mean()),
        entropy=shannon_entropy(q),
    )
