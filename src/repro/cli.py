"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``compress``      compress a ``.npy`` array to a ``.rz`` blob
``decompress``    reconstruct the array from a blob
``info``          dump a blob's header (compressor, shape, parameters)
``evaluate``      one-shot CR/PSNR/speed report for a compressor on a dataset
``dataset``       generate a synthetic benchmark field to ``.npy``
``characterize``  quantization-index statistics (Section IV analysis)
``sweep``         rate-distortion sweep across error bounds
``faults``        seeded fault injection / corruption-matrix sweep on a blob
``stats``         per-stage span/metric report for one observed
                  compress → transfer → decompress run (repro.obs)
``serve``         run the compression gateway over TCP (repro.service):
                  async multi-tenant front end with batching, admission
                  control, streamed oversized inputs, archive persistence
"""
from __future__ import annotations

import argparse
import json
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _add_qp_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--qp", action="store_true", help="enable quantization index prediction")
    p.add_argument("--qp-dimension", default="2d",
                   choices=["1d-back", "1d-top", "1d-left", "2d", "3d"])
    p.add_argument("--qp-condition", default="III", choices=["I", "II", "III", "IV"])
    p.add_argument("--qp-max-level", type=int, default=2)


def _qp_from_args(args) -> "object":
    from .core.config import QPConfig

    if not getattr(args, "qp", False):
        return QPConfig.disabled()
    return QPConfig(
        dimension=args.qp_dimension,
        condition=args.qp_condition,
        max_level=args.qp_max_level,
    )


def _add_adaptive_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--auto", action="store_true",
                   help="sampling auto-tuner: pick interp/axis-order/"
                        "per-level-eb/adaptive-bits/QP on strided blocks")
    p.add_argument("--adaptive-bits", type=int, default=0,
                   help="tighten the bound by 2^BITS at hard-to-predict "
                        "points (0 = off; in-band reserved-index signalling)")
    p.add_argument("--adaptive-threshold", type=int, default=4,
                   help="coarse-index magnitude that marks a point as hard")


def _adaptive_from_args(args) -> "object | None":
    from .core.config import AdaptiveConfig

    bits = getattr(args, "adaptive_bits", 0)
    if not bits:
        return None
    return AdaptiveConfig(bits=bits, threshold=args.adaptive_threshold)


def _make_compressor(args, data: np.ndarray):
    from .compressors import constructor_accepts, get_compressor, supports_qp

    eb = args.eb
    if args.rel:
        eb = eb * float(data.max() - data.min())
    kwargs = {}
    if supports_qp(args.compressor):
        kwargs["qp"] = _qp_from_args(args)
    adaptive = _adaptive_from_args(args)
    if adaptive is not None:
        if not constructor_accepts(args.compressor, "adaptive"):
            raise SystemExit(
                f"{args.compressor} does not support adaptive quantization"
            )
        kwargs["adaptive"] = adaptive
    return get_compressor(args.compressor, eb, **kwargs)


def build_parser() -> argparse.ArgumentParser:
    from .compressors import COMPRESSORS
    from .datasets import DATASETS

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Error-bounded lossy compression with adaptive "
                    "quantization index prediction (IPDPS 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="compress a .npy array")
    p.add_argument("input", help="input .npy file")
    p.add_argument("output", help="output blob file")
    p.add_argument("--compressor", "-c", default="sz3", choices=COMPRESSORS)
    p.add_argument("--eb", type=float, required=True, help="absolute error bound")
    p.add_argument("--rel", action="store_true",
                   help="interpret --eb relative to the value range")
    p.add_argument("--checksum", action="store_true",
                   help="seal the blob in the v1 integrity envelope (CRC32)")
    p.add_argument("--stream", action="store_true",
                   help="streaming out-of-core mode: memory-map the input, "
                        "walk it in bounded slabs, and flush per-slab "
                        "segments to the output incrementally (peak memory "
                        "O(slab), not O(volume))")
    p.add_argument("--slab-mb", type=float, default=None,
                   help="streaming slab budget in MiB (default ~12)")
    _add_qp_args(p)
    _add_adaptive_args(p)

    p = sub.add_parser("decompress", help="decompress a blob to .npy")
    p.add_argument("input", help="input blob file")
    p.add_argument("output", help="output .npy file")

    p = sub.add_parser("info", help="dump a blob header")
    p.add_argument("input", help="blob file")

    p = sub.add_parser("evaluate", help="evaluate a compressor on a dataset")
    p.add_argument("--dataset", "-d", required=True, choices=tuple(DATASETS))
    p.add_argument("--field", "-f", default=None)
    p.add_argument("--compressor", "-c", default="sz3", choices=COMPRESSORS)
    p.add_argument("--eb", type=float, required=True)
    p.add_argument("--rel", action="store_true")
    _add_qp_args(p)
    _add_adaptive_args(p)

    p = sub.add_parser("dataset", help="generate a synthetic benchmark field")
    p.add_argument("name", choices=tuple(DATASETS))
    p.add_argument("field", nargs="?", default=None)
    p.add_argument("--output", "-o", required=True, help="output .npy file")
    p.add_argument("--shape", default=None, help="comma-separated dims")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("characterize", help="quantization-index statistics")
    p.add_argument("--dataset", "-d", required=True, choices=tuple(DATASETS))
    p.add_argument("--field", "-f", default=None)
    p.add_argument("--compressor", "-c", default="sz3",
                   choices=("mgard", "sz3", "qoz", "hpez"))
    p.add_argument("--eb", type=float, required=True)
    p.add_argument("--rel", action="store_true")

    p = sub.add_parser("archive", help="compress a whole dataset into one archive")
    p.add_argument("name", choices=tuple(DATASETS))
    p.add_argument("--output", "-o", required=True, help="output .rarc archive")
    p.add_argument("--compressor", "-c", default="sz3", choices=COMPRESSORS)
    p.add_argument("--eb", type=float, required=True)
    p.add_argument("--rel", action="store_true")
    p.add_argument("--shape", default=None, help="comma-separated dims override")
    p.add_argument("--checksum", action="store_true",
                   help="seal each blob in the v1 integrity envelope (CRC32)")
    _add_qp_args(p)

    p = sub.add_parser("extract", help="extract one field from an archive")
    p.add_argument("archive", help=".rarc archive file")
    p.add_argument("field", help="field name (or 'list' to list entries)")
    p.add_argument("--output", "-o", default=None, help="output .npy file")

    p = sub.add_parser("sweep", help="rate-distortion sweep")
    p.add_argument("--dataset", "-d", required=True, choices=tuple(DATASETS))
    p.add_argument("--field", "-f", default=None)
    p.add_argument("--compressors", "-c", default="sz3",
                   help="comma-separated compressor names")
    p.add_argument("--bounds", default="1e-2,1e-3,1e-4",
                   help="comma-separated relative error bounds")
    p.add_argument("--qp", action="store_true",
                   help="also evaluate each compressor with QP")

    p = sub.add_parser(
        "faults", help="seeded fault injection on a blob (inject or matrix)"
    )
    p.add_argument("input", help="blob file to corrupt")
    p.add_argument("--injector", default=None, choices=("flip", "truncate",
                   "splice", "tamper"),
                   help="apply one injector and write the result (needs -o); "
                        "omit to run the full corruption matrix")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--seeds", type=int, default=3,
                   help="seeds per injector in matrix mode")
    p.add_argument("--output", "-o", default=None,
                   help="output file for single-injector mode")
    p.add_argument("--deadline", type=float, default=10.0,
                   help="per-decode deadline (seconds) in matrix mode")

    p = sub.add_parser(
        "stats",
        help="observability report for a compress -> transfer -> decompress run",
    )
    p.add_argument("--dataset", "-d", default="miranda", choices=tuple(DATASETS))
    p.add_argument("--field", "-f", default=None)
    p.add_argument("--shape", default="32,48,48", help="comma-separated dims")
    p.add_argument("--compressor", "-c", default="sz3", choices=COMPRESSORS)
    p.add_argument("--eb", type=float, default=1e-3, help="error bound")
    p.add_argument("--rel", action="store_true", default=True,
                   help="interpret --eb relative to the value range (default)")
    p.add_argument("--abs", dest="rel", action="store_false",
                   help="interpret --eb as an absolute bound")
    p.add_argument("--slices", type=int, default=4,
                   help="transfer slices (split along axis 0)")
    p.add_argument("--fail-prob", type=float, default=0.0,
                   help="per-attempt drop probability of the demo channel")
    p.add_argument("--corrupt-prob", type=float, default=0.0,
                   help="per-attempt corruption probability of the demo channel")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jsonl", default=None,
                   help="also export the observation as JSON-lines to this path")
    _add_qp_args(p)
    p.add_argument("--no-qp", dest="qp", action="store_false",
                   help="disable quantization index prediction")
    p.set_defaults(qp=True)

    p = sub.add_parser(
        "serve", help="run the compression gateway over TCP (blocking)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9753)
    p.add_argument("--workers", type=int, default=2,
                   help="fork-pool worker processes for batched jobs")
    p.add_argument("--queue-depth", type=int, default=256,
                   help="bounded dispatch queue (global backpressure)")
    p.add_argument("--rate", type=float, default=None,
                   help="default per-tenant sustained requests/second "
                        "(unlimited when omitted)")
    p.add_argument("--burst", type=int, default=64,
                   help="default per-tenant token-bucket burst")
    p.add_argument("--max-inflight", type=int, default=32,
                   help="default per-tenant inflight request quota")
    p.add_argument("--stream-threshold-mb", type=float, default=32.0,
                   help="inputs at or above this size take the streamed "
                        "RSTR route instead of the fork pool")
    p.add_argument("--archive", default=None,
                   help="crash-safe RAR1 archive path backing "
                        "archive-put/archive-get requests")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


# -- command implementations ---------------------------------------------------


def _cmd_compress(args) -> int:
    if getattr(args, "stream", False):
        return _cmd_compress_stream(args)
    data = np.load(args.input)
    comp = _make_compressor(args, data)
    blob = comp.compress(
        data,
        checksum=getattr(args, "checksum", False),
        auto=getattr(args, "auto", False),
    )
    with open(args.output, "wb") as f:
        f.write(blob)
    print(f"{args.input}: {data.nbytes} -> {len(blob)} bytes "
          f"(CR {data.nbytes / len(blob):.2f}) with {comp.name}"
          f"{'+QP' if getattr(args, 'qp', False) else ''}")
    if comp.last_tuning is not None:
        print(f"auto-tuned: {json.dumps(comp.last_tuning.to_dict())}")
    return 0


def _cmd_compress_stream(args) -> int:
    if getattr(args, "auto", False):
        raise SystemExit("--auto samples the full volume; not available "
                         "with --stream")
    # memory-map the source: slabs page in as the pipeline reaches them,
    # so a volume much larger than RAM still compresses
    data = np.load(args.input, mmap_mode="r")
    comp = _make_compressor(args, data)
    slab_mb = getattr(args, "slab_mb", None)
    slab_bytes = int(slab_mb * (1 << 20)) if slab_mb else None
    with open(args.output, "wb") as f:
        res = comp.compress_stream(
            data, f,
            slab_bytes=slab_bytes,
            checksum=getattr(args, "checksum", False),
        )
    print(f"{args.input}: {res.input_bytes} -> {res.total_bytes} bytes "
          f"(CR {res.ratio:.2f}) with {comp.name}"
          f"{'+QP' if getattr(args, 'qp', False) else ''} "
          f"[streamed: {res.segments} slabs]")
    return 0


def _cmd_decompress(args) -> int:
    from .compressors import decompress_any
    from .io.container import is_streamed_container

    with open(args.input, "rb") as f:
        head = f.read(4)
    if is_streamed_container(head):
        from .streaming import stream_decompress

        out = stream_decompress(args.input)
    else:
        with open(args.input, "rb") as f:
            blob = f.read()
        out = decompress_any(blob)
    np.save(args.output, out)
    print(f"{args.input} -> {args.output}: {out.shape} {out.dtype}")
    return 0


def _cmd_info(args) -> int:
    from .compressors.base import Blob
    from .io import integrity

    with open(args.input, "rb") as f:
        raw = f.read()
    blob = Blob.from_bytes(raw)
    header = dict(blob.header)
    header["section_sizes"] = {k: len(v) for k, v in blob.sections.items()}
    header["envelope"] = integrity.envelope_info(raw)
    print(json.dumps(header, indent=2, default=str))
    return 0


def _cmd_evaluate(args) -> int:
    from .analysis import print_table
    from .datasets import generate
    from .metrics import evaluate

    data = generate(args.dataset, args.field)
    comp = _make_compressor(args, data)
    label = comp.name + ("+QP" if getattr(args, "qp", False) else "")
    if getattr(args, "auto", False):
        comp = comp._tuned_for(data)
        label += "+auto"
    res = evaluate(comp, data, label=label)
    print_table([res.row()], f"{args.dataset}/{args.field or 'default'}")
    return 0


def _cmd_dataset(args) -> int:
    from .datasets import generate

    shape = tuple(int(x) for x in args.shape.split(",")) if args.shape else None
    data = generate(args.name, args.field, shape=shape, seed=args.seed)
    np.save(args.output, data)
    print(f"{args.name}/{args.field or 'default'} -> {args.output}: "
          f"{data.shape} {data.dtype}")
    return 0


def _cmd_characterize(args) -> int:
    from .analysis import print_table
    from .compressors import CompressionState, get_compressor
    from .core import QPConfig, clustering_stats, shannon_entropy
    from .datasets import generate

    data = generate(args.dataset, args.field)
    eb = args.eb * (float(data.max() - data.min()) if args.rel else 1.0)
    st = CompressionState()
    kwargs = {"predictor": "interp"} if args.compressor == "sz3" else {}
    get_compressor(args.compressor, eb, qp=QPConfig(), **kwargs).compress(
        data, state=st
    )
    cs = clustering_stats(st.index_volume)
    print_table(
        [{
            "H(Q)": round(shannon_entropy(st.index_volume), 3),
            "H(Q') after QP": round(
                shannon_entropy(st.extras["index_volume_qp"]), 3
            ),
            "nonzero frac": round(cs.nonzero_fraction, 3),
            "same-sign nbrs": round(cs.same_sign_neighbour, 3),
            "equal nbrs": round(cs.neighbour_equal, 3),
        }],
        f"index statistics: {args.compressor} on {args.dataset}",
    )
    return 0


def _cmd_sweep(args) -> int:
    from .analysis import print_table, qp_comparison, rd_sweep
    from .compressors import supports_qp
    from .datasets import generate

    data = generate(args.dataset, args.field)
    bounds = tuple(float(x) for x in args.bounds.split(","))
    rows = []
    for name in args.compressors.split(","):
        name = name.strip()
        if args.qp and supports_qp(name):
            kwargs = {"predictor": "interp"} if name == "sz3" else {}
            for p in qp_comparison(name, data, rel_bounds=bounds, **kwargs):
                rows.append({
                    "compressor": name,
                    "rel eb": p.rel_bound,
                    "PSNR": round(p.base.psnr, 2),
                    "CR": round(p.base.cr, 2),
                    "CR +QP": round(p.qp.cr, 2),
                    "gain %": round(100 * p.cr_gain, 1),
                })
        else:
            for r in rd_sweep(name, data, rel_bounds=bounds):
                rows.append(r.row())
    print_table(rows, f"sweep: {args.dataset}")
    return 0


def _cmd_archive(args) -> int:
    from .datasets import generate_all
    from .io import Archive

    shape = tuple(int(x) for x in args.shape.split(",")) if args.shape else None
    fields = generate_all(args.name, shape=shape)
    arch = Archive.create(args.output)
    raw = comp_total = 0
    blobs = {}
    for fname, data in fields.items():
        comp = _make_compressor_for(args, data)
        blob = comp.compress(data, checksum=getattr(args, "checksum", False))
        blobs[fname] = blob
        raw += data.nbytes
        comp_total += len(blob)
    arch.append_many(blobs)
    print(f"{args.name}: {len(fields)} fields, {raw} -> {arch.total_bytes()} bytes "
          f"(CR {raw / comp_total:.2f})")
    return 0


def _make_compressor_for(args, data: np.ndarray):
    return _make_compressor(args, data)


def _cmd_extract(args) -> int:
    from .compressors import decompress_any
    from .io import Archive

    arch = Archive(args.archive)
    if args.field == "list":
        for name, size in arch.sizes().items():
            print(f"{name}\t{size}")
        return 0
    out = decompress_any(arch.read(args.field))
    target = args.output or f"{args.field}.npy"
    np.save(target, out)
    print(f"{args.field} -> {target}: {out.shape} {out.dtype}")
    return 0


def _cmd_faults(args) -> int:
    from .compressors import decompress_any
    from .testing import inject, run_corruption_matrix

    with open(args.input, "rb") as f:
        blob = f.read()
    if args.injector:
        corrupted = inject(blob, args.injector, seed=args.seed)
        if not args.output:
            print("--injector requires --output", file=sys.stderr)
            return 2
        with open(args.output, "wb") as f:
            f.write(corrupted)
        print(f"{args.input}: {args.injector}(seed={args.seed}) -> "
              f"{args.output} ({len(blob)} -> {len(corrupted)} bytes)")
        return 0
    results = run_corruption_matrix(
        blob, decompress_any, seeds=range(args.seeds), deadline_s=args.deadline
    )
    for r in results:
        print(f"{r.injector:<10} seed={r.seed}  {r.outcome:<10} "
              f"{r.elapsed_s * 1e3:8.2f} ms  {r.detail}")
    bad = [r for r in results if not r.ok]
    print(f"{len(results) - len(bad)}/{len(results)} cells ok "
          f"(typed error or unchanged bytes)")
    return 1 if bad else 0


def _cmd_stats(args) -> int:
    from . import obs
    from .compressors import decompress_any
    from .datasets import generate
    from .obs.export import JsonlExporter, render_report
    from .transfer.pipeline import transfer_slices

    shape = tuple(int(x) for x in args.shape.split(",")) if args.shape else None
    data = generate(args.dataset, args.field, shape=shape, seed=args.seed)
    comp = _make_compressor(args, data)

    n = max(1, min(args.slices, data.shape[0]))
    edges = np.linspace(0, data.shape[0], n + 1).astype(int)
    if args.fail_prob > 0 or args.corrupt_prob > 0:
        from .testing.faults import FlakyLink

        channel = FlakyLink(fail_prob=args.fail_prob,
                            corrupt_prob=args.corrupt_prob, seed=args.seed)
    else:
        def channel(name: str, payload: bytes) -> bytes:
            return payload

    ob = obs.Observation()
    with obs.observe(ob):
        blobs = {
            f"slice{i:03d}": comp.compress(
                np.ascontiguousarray(data[a:b]), checksum=True
            )
            for i, (a, b) in enumerate(zip(edges[:-1], edges[1:]))
            if b > a
        }
        received: dict[str, bytes] = {}
        report = transfer_slices(blobs, channel, received=received,
                                 sleep=lambda s: None)
        for name in sorted(received):
            decompress_any(received[name])

    qp_tag = "+qp" if getattr(args, "qp", False) else ""
    print(render_report(
        ob, title=f"{args.compressor}{qp_tag} {args.dataset} "
                  f"compress -> transfer -> decompress"
    ))
    s = report.summary()
    print(f"transfer: {s['delivered']}/{s['slices']} slices delivered "
          f"({s['degraded']} degraded, {s['quarantined']} quarantined, "
          f"{s['attempts']} attempts, {s['verified_bytes']} bytes verified)")
    snap = ob.metrics.snapshot()
    hits = int(snap.get("huffman.table_cache{result=hit}", {}).get("value", 0))
    misses = int(snap.get("huffman.table_cache{result=miss}", {}).get("value", 0))
    if hits or misses:
        from .codecs.huffman import decode_table_cache_info

        info = decode_table_cache_info()
        print(f"huffman decode-table cache: {hits} hits / {misses} misses "
              f"this run (process totals: {info['hits']}/{info['misses']}, "
              f"{info['evictions']} evicted, {info['size']}/"
              f"{info['max_entries']} tables resident)")
    if args.jsonl:
        records = JsonlExporter(args.jsonl).export(
            ob, command="stats", dataset=args.dataset,
            compressor=args.compressor,
        )
        print(f"wrote {records} JSONL records to {args.jsonl}")
    return 0


def _cmd_serve(args) -> int:
    from .service import GatewayConfig, TenantPolicy, serve

    policy = TenantPolicy(
        rate=args.rate if args.rate else float("inf"),
        burst=args.burst,
        max_inflight=args.max_inflight,
    )
    config = GatewayConfig(
        workers=args.workers,
        queue_depth=args.queue_depth,
        stream_threshold_bytes=int(args.stream_threshold_mb * (1 << 20)),
        archive_path=args.archive,
        default_policy=policy,
    )
    serve(args.host, args.port, config=config)
    return 0


_COMMANDS = {
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "info": _cmd_info,
    "evaluate": _cmd_evaluate,
    "dataset": _cmd_dataset,
    "characterize": _cmd_characterize,
    "sweep": _cmd_sweep,
    "archive": _cmd_archive,
    "extract": _cmd_extract,
    "faults": _cmd_faults,
    "stats": _cmd_stats,
    "serve": _cmd_serve,
}


if __name__ == "__main__":
    sys.exit(main())
