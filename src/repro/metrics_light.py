"""Tiny metric helpers usable from inside compressors without importing the
full metrics package (avoids a circular import: metrics -> compressors)."""
from __future__ import annotations

import numpy as np

__all__ = ["psnr_estimate"]


def psnr_estimate(original: np.ndarray, decoded: np.ndarray, value_range: float) -> float:
    mse = float(np.mean((original.astype(np.float64) - decoded.astype(np.float64)) ** 2))
    if mse == 0:
        return float("inf")
    return 20.0 * np.log10(value_range / np.sqrt(mse))
