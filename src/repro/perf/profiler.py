"""Pipeline profiler: the flat per-stage view over :mod:`repro.obs`.

Historically this module owned its own stopwatch + byte counters.  The
observability layer (``repro.obs``) is now the single timing source of
truth: every hot-path hook records structured spans and metrics, and this
module is a thin compatibility facade over it —

* :func:`stage` / :func:`add_bytes` *are* ``obs.span`` / ``obs.add_bytes``
  (the same function objects, so the no-op-when-disabled guarantee and its
  cost are identical);
* :class:`PipelineProfiler` wraps an :class:`~repro.obs.Observation` and
  derives the familiar ``totals`` / ``bytes_seen`` / ``report()`` views
  from the tracer and metrics registry;
* :func:`profile` activates the wrapped observation via ``obs.observe``.

Existing callers keep working unchanged; new code should prefer the
:mod:`repro.obs` API directly, which additionally exposes span nesting,
events, histograms, and exporters (see docs/observability.md).

Stage names used across the stack (see docs/performance.md):

``predict``    interpolation predictions (compress + decompress)
``quantize``   linear quantization / dequantization
``qp``         quantization index prediction transform (forward + inverse)
``huffman``    entropy coding (Huffman or range coder)
``lossless``   byte-stream backend (zlib/LZ77/RLE)
``transfer``   resilient-transfer channel attempts (repro.transfer)
``verify``     CRC32 integrity verification of received slices
``retry``      backoff waits between transfer attempts
"""
from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from ..obs import Observation, add_bytes as _obs_add_bytes, observe, span as _obs_span

__all__ = ["PipelineProfiler", "profile", "stage", "add_bytes", "active_profiler"]

#: hot-path hooks — literally the obs layer's, re-exported for compatibility
stage = _obs_span
add_bytes = _obs_add_bytes


class PipelineProfiler:
    """Flat per-stage seconds/bytes view over one observation.

    ``totals`` and ``bytes_seen`` are computed from the underlying tracer
    and metrics registry on access, so they always reflect everything the
    observation has recorded (including merged fork-pool worker buffers).
    """

    __slots__ = ("observation",)

    def __init__(self, observation: Observation | None = None) -> None:
        self.observation = observation if observation is not None else Observation()

    @property
    def totals(self) -> dict[str, float]:
        """Accumulated seconds per span name (the legacy stopwatch view)."""
        return self.observation.tracer.stage_seconds()

    @property
    def bytes_seen(self) -> dict[str, int]:
        """Accumulated bytes per stage name."""
        return self.observation.bytes_seen()

    def add_bytes(self, name: str, nbytes: int) -> None:
        self.observation.add_bytes(name, nbytes)

    def total(self) -> float:
        return sum(self.totals.values())

    @contextmanager
    def section(self, name: str):
        """Record a span directly into this profiler's observation (works
        even when the observation is not globally active)."""
        with self.observation.tracer.span(name):
            yield

    def report(self, nbytes: int | None = None) -> dict[str, Any]:
        """Per-stage seconds / bytes / MB/s.

        ``nbytes`` (the uncompressed array size) supplies each stage's
        throughput denominator so stages are comparable; stages that recorded
        their own byte counts also report those.
        """
        return self.observation.stage_report(nbytes)


#: the currently active profiler facade (None = none installed via profile())
_ACTIVE: PipelineProfiler | None = None


def active_profiler() -> PipelineProfiler | None:
    return _ACTIVE


@contextmanager
def profile(profiler: PipelineProfiler | None = None) -> Iterator[PipelineProfiler]:
    """Activate ``profiler`` (or a fresh one) for the duration of the block.

    Equivalent to ``obs.observe(profiler.observation)`` plus bookkeeping for
    :func:`active_profiler`.
    """
    global _ACTIVE
    prof = profiler if profiler is not None else PipelineProfiler()
    prev = _ACTIVE
    _ACTIVE = prof
    try:
        with observe(prof.observation):
            yield prof
    finally:
        _ACTIVE = prev
