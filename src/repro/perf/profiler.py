"""Pipeline profiler: per-stage wall-clock and byte counters.

Extends :class:`repro.utils.timer.Stopwatch` with byte counters and a
module-level activation switch so the hot paths can be instrumented with
*zero overhead when profiling is off*: every instrumentation point is

    with stage("predict"):
        ...

and :func:`stage` returns a shared no-op context manager (one global read,
one ``is None`` test) unless a profiler has been activated via
:func:`profile`.  Activating a profiler never changes any compressed bytes —
the hooks only observe timings and sizes.

Stage names used across the stack (see docs/performance.md):

``predict``    interpolation predictions (compress + decompress)
``quantize``   linear quantization / dequantization
``qp``         quantization index prediction transform (forward + inverse)
``huffman``    entropy coding (Huffman or range coder)
``lossless``   byte-stream backend (zlib/LZ77/RLE)
``transfer``   resilient-transfer channel attempts (repro.transfer)
``verify``     CRC32 integrity verification of received slices
``retry``      backoff waits between transfer attempts
"""
from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..utils.timer import Stopwatch, throughput_mbs

__all__ = ["PipelineProfiler", "profile", "stage", "add_bytes", "active_profiler"]


@dataclass
class PipelineProfiler(Stopwatch):
    """Stopwatch plus per-stage byte counters and a throughput report."""

    bytes_seen: dict[str, int] = field(default_factory=dict)

    def add_bytes(self, name: str, nbytes: int) -> None:
        self.bytes_seen[name] = self.bytes_seen.get(name, 0) + int(nbytes)

    def report(self, nbytes: int | None = None) -> dict[str, Any]:
        """Per-stage seconds / bytes / MB/s.

        ``nbytes`` (the uncompressed array size) supplies each stage's
        throughput denominator so stages are comparable; stages that recorded
        their own byte counts also report those.
        """
        stages: dict[str, Any] = {}
        for name in sorted(set(self.totals) | set(self.bytes_seen)):
            seconds = self.totals.get(name, 0.0)
            entry: dict[str, Any] = {"seconds": seconds}
            if name in self.bytes_seen:
                entry["bytes"] = self.bytes_seen[name]
            if nbytes is not None and seconds > 0:
                entry["mb_per_s"] = throughput_mbs(nbytes, seconds)
            stages[name] = entry
        return {"stages": stages, "total_s": self.total()}


class _NullContext:
    """Reusable no-op context manager (cheaper than contextlib.nullcontext)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL = _NullContext()

#: the currently active profiler (None = profiling off, hooks are no-ops)
_ACTIVE: PipelineProfiler | None = None


def active_profiler() -> PipelineProfiler | None:
    return _ACTIVE


@contextmanager
def profile(profiler: PipelineProfiler | None = None) -> Iterator[PipelineProfiler]:
    """Activate ``profiler`` (or a fresh one) for the duration of the block."""
    global _ACTIVE
    prof = profiler if profiler is not None else PipelineProfiler()
    prev = _ACTIVE
    _ACTIVE = prof
    try:
        yield prof
    finally:
        _ACTIVE = prev


class _StageTimer:
    """Context manager accumulating one named segment into the profiler.

    A tiny dedicated class (rather than ``Stopwatch.section``) keeps the
    per-call overhead low on hot paths that enter a stage thousands of times.
    """

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: PipelineProfiler, name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> None:
        self._start = time.perf_counter()

    def __exit__(self, *exc: object) -> bool:
        totals = self._profiler.totals
        totals[self._name] = (
            totals.get(self._name, 0.0) + time.perf_counter() - self._start
        )
        return False


def stage(name: str):
    """Instrumentation hook: time the enclosed block under ``name``.

    Returns a shared no-op when profiling is inactive, so the hook costs a
    single global read on production paths.
    """
    prof = _ACTIVE
    if prof is None:
        return _NULL
    return _StageTimer(prof, name)


def add_bytes(name: str, nbytes: int) -> None:
    """Record ``nbytes`` flowing through stage ``name`` (no-op when off)."""
    prof = _ACTIVE
    if prof is not None:
        prof.add_bytes(name, nbytes)
