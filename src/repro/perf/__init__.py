"""Performance observability: per-stage pipeline profiling and counters.

See :mod:`repro.perf.profiler` for the design and docs/performance.md for
usage; ``tools/bench.py`` builds the repo's regression baseline on top of
this module.
"""
from .profiler import PipelineProfiler, active_profiler, add_bytes, profile, stage

__all__ = ["PipelineProfiler", "profile", "stage", "add_bytes", "active_profiler"]
