"""Performance observability: the flat per-stage view over :mod:`repro.obs`.

The structured tracer/metrics layer in :mod:`repro.obs` is the single
timing source of truth; this package re-exports the legacy profiler facade
built on it.  See docs/observability.md for the obs design and
docs/performance.md for the per-stage conventions; ``tools/bench.py``
builds the repo's regression baseline on top of both.
"""
from .profiler import PipelineProfiler, active_profiler, add_bytes, profile, stage

__all__ = ["PipelineProfiler", "profile", "stage", "add_bytes", "active_profiler"]
