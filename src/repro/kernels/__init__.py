"""Per-stage kernel backend registry.

The hot loops of the compressor stack (Huffman encode/decode, the QP
wavefront inverse, the Lorenzo differencing pair, and the interpolation
midpoint fills) each have one *reference* implementation in pure numpy and
may have additional *compiled* implementations (numba ``@njit``).  Every
implementation of a kernel stage exposes the same named ops with the same
signatures — ``tools/check_api.py`` lints that parity — so callers resolve
a backend at runtime and call through it without caring which one they got:

    kern = select_backend("huffman")          # or select_backend("qp", "numba")
    payload = kern.ops["encode_payload"](codes, lengths, positions)

Resolution order for :func:`select_backend`:

1. the explicit ``name`` argument (from a stage param / codec kwarg),
2. ``REPRO_KERNEL_BACKEND_<STAGE>`` (e.g. ``REPRO_KERNEL_BACKEND_HUFFMAN``),
3. ``REPRO_KERNEL_BACKEND`` (applies to every stage),
4. ``"auto"``: the highest-priority *available* backend.

Requesting a backend that is unknown or unavailable (numba not installed,
or a JIT failure disabled it) silently falls back to numpy — with a
one-time warning and a ``kernel.fallback`` obs counter — because a missing
accelerator must never change correctness, only speed.
"""
from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..obs import metric_count

__all__ = [
    "KernelBackend",
    "register_kernel_backend",
    "select_backend",
    "backend",
    "registered_backends",
    "available_backends",
    "kernel_stages",
    "active_backends",
    "suppress_fallback_warnings",
    "fallback_warnings_suppressed",
    "mark_backend_broken",
    "load_compiled_backends",
    "numba_available",
    "DEFAULT_BACKEND_NAME",
    "ENV_GLOBAL",
]

ENV_GLOBAL = "REPRO_KERNEL_BACKEND"
DEFAULT_BACKEND_NAME = "numpy"
AUTO = "auto"


@dataclass(frozen=True)
class KernelBackend:
    """One backend's implementation of one kernel stage."""

    stage: str
    name: str
    ops: Mapping[str, Callable[..., Any]]
    available: bool = True
    priority: int = 0
    #: optional pure-python callables with the *public* signatures, for
    #: introspection when ``ops`` values are jit wrappers (lint support).
    introspect: Mapping[str, Callable[..., Any]] | None = field(default=None)


_REGISTRY: dict[str, dict[str, KernelBackend]] = {}
_WARNED: set[tuple[str, str]] = set()
#: process-wide gate on the one-time fallback warning; fork-pool workers
#: set it via :func:`suppress_fallback_warnings` so a parallel run warns
#: once (in the parent), not once per worker
_WARNINGS_SUPPRESSED = False
_COMPILED_LOADED = False
# select_backend sits on per-pass hot paths (one resolution per interp fill),
# so the auto winner and the per-stage env key strings are cached.  Env
# *values* are still read on every call — monkeypatched/overridden
# environments must take effect immediately — only the invariant pieces
# (key spelling, best-available ranking) are memoized.
_AUTO_CACHE: dict[str, KernelBackend] = {}
_ENV_KEYS: dict[str, str] = {}


def register_kernel_backend(
    stage: str,
    name: str,
    ops: Mapping[str, Callable[..., Any]],
    *,
    available: bool = True,
    priority: int = 0,
    introspect: Mapping[str, Callable[..., Any]] | None = None,
) -> KernelBackend:
    """Register ``ops`` as backend ``name`` for kernel stage ``stage``."""
    table = _REGISTRY.setdefault(stage, {})
    if name in table:
        raise ValueError(f"kernel backend {name!r} already registered for {stage!r}")
    b = KernelBackend(
        stage=stage,
        name=name,
        ops=dict(ops),
        available=available,
        priority=priority,
        introspect=dict(introspect) if introspect else None,
    )
    table[name] = b
    _AUTO_CACHE.pop(stage, None)
    return b


def kernel_stages() -> tuple[str, ...]:
    """All kernel stages with at least one registered backend."""
    load_compiled_backends()
    return tuple(sorted(_REGISTRY))


def registered_backends(stage: str) -> tuple[str, ...]:
    """All backend names registered for ``stage`` (available or not)."""
    load_compiled_backends()
    return tuple(sorted(_REGISTRY.get(stage, ())))


def available_backends(stage: str) -> tuple[str, ...]:
    """Backend names for ``stage`` that can actually run right now."""
    load_compiled_backends()
    table = _REGISTRY.get(stage, {})
    return tuple(sorted(n for n, b in table.items() if b.available))


def backend(stage: str, name: str) -> KernelBackend:
    """The registered backend object, available or not (lint/introspection)."""
    load_compiled_backends()
    return _REGISTRY[stage][name]


def load_compiled_backends() -> None:
    """Import compiled backend modules so they self-register (idempotent)."""
    global _COMPILED_LOADED
    if _COMPILED_LOADED:
        return
    _COMPILED_LOADED = True
    from . import numba_backend  # noqa: F401 - registers on import


def _env_key(stage: str) -> str:
    key = _ENV_KEYS.get(stage)
    if key is None:
        key = _ENV_KEYS[stage] = f"{ENV_GLOBAL}_{stage.upper()}"
    return key


def env_override(stage: str) -> str | None:
    """The backend name requested via environment for ``stage``, if any."""
    per_stage = os.environ.get(_env_key(stage))
    if per_stage:
        return per_stage
    return os.environ.get(ENV_GLOBAL) or None


def select_backend(stage: str, name: str | None = None) -> KernelBackend:
    """Resolve the kernel backend to use for ``stage``.

    ``name=None`` consults the environment, then falls back to ``"auto"``
    (best available).  An unknown or unavailable request degrades to the
    numpy reference implementation with a one-time warning.
    """
    if not _COMPILED_LOADED:
        load_compiled_backends()
    table = _REGISTRY.get(stage)
    if not table:
        raise KeyError(f"no kernel backends registered for stage {stage!r}")
    if name is None:
        environ = os.environ
        name = environ.get(_env_key(stage)) or environ.get(ENV_GLOBAL)
    requested = name or AUTO
    if requested == AUTO:
        picked = _AUTO_CACHE.get(stage)
        if picked is None:
            picked = _AUTO_CACHE[stage] = max(
                (b for b in table.values() if b.available),
                key=lambda b: (b.priority, b.name),
            )
        return picked
    picked = table.get(requested)
    if picked is not None and picked.available:
        return picked
    fallback = table[DEFAULT_BACKEND_NAME]
    key = (stage, requested)
    if key not in _WARNED:
        _WARNED.add(key)
        if not _WARNINGS_SUPPRESSED:
            reason = "not registered" if picked is None else "unavailable"
            warnings.warn(
                f"kernel backend {requested!r} for stage {stage!r} is {reason}; "
                f"falling back to {DEFAULT_BACKEND_NAME!r}",
                RuntimeWarning,
                stacklevel=2,
            )
    metric_count("kernel.fallback", stage=stage, requested=requested)
    return fallback


def suppress_fallback_warnings(suppress: bool = True) -> bool:
    """Silence (or restore) the one-time backend-fallback warning in this
    process; returns the previous setting.

    The ``kernel.fallback`` obs counter still counts every fallback — only
    the ``warnings.warn`` side effect is gated.  Fork-pool workers call
    this from their initializer (the parent resolves all stages up front
    and warns exactly once for the whole run), so a parallel run no longer
    repeats the warning once per worker process.
    """
    global _WARNINGS_SUPPRESSED
    prev = _WARNINGS_SUPPRESSED
    _WARNINGS_SUPPRESSED = bool(suppress)
    return prev


def fallback_warnings_suppressed() -> bool:
    """Whether the fallback warning is currently suppressed (see
    :func:`suppress_fallback_warnings`)."""
    return _WARNINGS_SUPPRESSED


def mark_backend_broken(stage: str, name: str) -> None:
    """Permanently disable a backend for this process (e.g. JIT failure)."""
    table = _REGISTRY.get(stage, {})
    b = table.get(name)
    if b is not None and b.available:
        _AUTO_CACHE.pop(stage, None)
        table[name] = KernelBackend(
            stage=b.stage,
            name=b.name,
            ops=b.ops,
            available=False,
            priority=b.priority,
            introspect=b.introspect,
        )


def active_backends() -> dict[str, str]:
    """stage -> backend name that :func:`select_backend` resolves right now."""
    return {stage: select_backend(stage).name for stage in kernel_stages()}


def numba_available() -> bool:
    """True when the numba compiled backends can run in this process."""
    load_compiled_backends()
    from .numba_backend import NUMBA_AVAILABLE

    return NUMBA_AVAILABLE


# The numpy reference backends are always registered eagerly: every kernel
# stage must have its fallback before any compiled backend is considered.
from . import numpy_backend  # noqa: E402,F401 - registers on import
