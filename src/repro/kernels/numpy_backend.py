"""Pure-numpy reference implementations of every kernel stage.

These are the *semantics-defining* implementations: compiled backends must
produce bit-identical results (the golden-digest suite runs under both).
The bodies delegate to — or were lifted verbatim from — the owning modules
so there is exactly one source of truth per loop; imports of those modules
happen lazily inside the ops to keep this module import-cycle-free.

Op contracts (shared with :mod:`repro.kernels.numba_backend`):

``huffman.encode_payload(sym_codes, sym_lengths, bit_positions) -> bytes``
    Pack MSB-first canonical codes at precomputed bit offsets.
``huffman.decode_lockstep(buf, cur, stops, len_flat, lane_off, wins, M)``
    Joint table-driven decode of many lanes.  ``buf`` is the zero-padded
    concatenated payload, ``cur`` holds per-lane absolute bit cursors
    (mutated in place), ``stops`` the per-lane symbol counts sorted
    descending, ``len_flat`` the window->code-length table (step table),
    ``lane_off`` per-lane base offsets into ``len_flat`` (size 0 means a
    single shared table), ``wins`` the (max_steps, n_lanes) int64 output
    matrix of matched windows, ``M`` the window width in bits.
``qp.walk_2d(q, na, nb, sentinel, cond_code)`` / ``qp.walk_3d(...)``
    In-place wavefront reconstruction over the padded plane/volume ``q``
    of shape (batch, (na+1)*(nb+1)[*(nc+1)]).  ``cond_code``: 0 plain
    sentinel-validity, 3 condition III, 4 condition IV.
``lorenzo.forward_diff(t) -> ndarray`` / ``lorenzo.inverse_cumsum(q)``
    Sequential per-axis differencing (prepend-zero) and its cumsum inverse.
``interp.linear_fill(known, pred, n_inner)`` / ``interp.cubic_fill(...)``
    Midpoint prediction fills writing into ``pred[:n_inner]``.
``adaptive_quantize.encode(values, preds, eb, bits, threshold, radius)``
    Reserved-index adaptive quantization returning
    ``(wire, decoded, literals, n_adaptive)``.
``adaptive_quantize.decode(indices, preds, literals, eb, bits, threshold, radius)``
    Its exact inverse (bit-identical reconstruction).
"""
from __future__ import annotations

from typing import Any

import numpy as np

from . import register_kernel_backend

_WIN_DTYPE = np.dtype(">u4")
_COND_NAMES = {3: "III", 4: "IV"}

# Imports of the owning modules stay out of module scope (import-cycle-free:
# those modules import ``repro.kernels`` themselves), but they must not run
# per call either — interp fills fire once per pass, and a repeated
# ``from .. import`` costs microseconds that show up in the bench gate.
# First use resolves the delegate and memoizes it here.
_DELEGATES: dict[str, Any] = {}


def _delegate(key, resolve):
    fn = _DELEGATES.get(key)
    if fn is None:
        fn = _DELEGATES[key] = resolve()
    return fn


# ---------------------------------------------------------------- huffman

def encode_payload(sym_codes, sym_lengths, bit_positions):
    def _resolve():
        from ..codecs.bitstream import encode_codes_packed

        return encode_codes_packed

    return _delegate("encode_codes_packed", _resolve)(
        sym_codes, sym_lengths, bit_positions
    )


def decode_lockstep(buf, cur, stops, len_flat, lane_off, wins, M):
    # Overlapping big-endian 32-bit window view: byte i starts the window
    # covering bits [8i, 8i+32); buf carries >=3 padding bytes at the end.
    allwin = np.ndarray(
        (buf.size - 3,), dtype=_WIN_DTYPE, buffer=buf.data, strides=(1,)
    ).astype(np.int64)
    mask = np.int64((1 << M) - 1)
    shift_base = np.int64(32 - M)
    single = lane_off.size == 0
    prev = 0
    for b in [int(v) for v in np.unique(stops)]:
        act = int(np.count_nonzero(stops >= b))
        cur_v = cur[:act]
        off_v = None if single else lane_off[:act]
        row = slice(0, act)
        if single:
            for step in range(prev, b):
                w = allwin[cur_v >> 3]
                win = (w >> (shift_base - (cur_v & 7))) & mask
                wins[step, row] = win
                cur_v += len_flat[win]
        else:
            for step in range(prev, b):
                w = allwin[cur_v >> 3]
                win = (w >> (shift_base - (cur_v & 7))) & mask
                wins[step, row] = win
                cur_v += len_flat[win + off_v]
        prev = b


# --------------------------------------------------------------------- qp

def _qp_mod():
    def _resolve():
        from ..core import qp

        return qp

    return _delegate("qp", _resolve)


def walk_2d(q, na, nb, sentinel, cond_code):
    qp = _qp_mod()
    diags, _ = qp._diag_indices_2d(na, nb)
    qp._walk_2d(q, diags, sentinel, _COND_NAMES.get(cond_code, ""))


def walk_3d(q, na, nb, nc, sentinel, cond_code):
    qp = _qp_mod()
    diags, _ = qp._diag_indices_3d(na, nb, nc)
    qp._walk_3d(q, diags, sentinel, _COND_NAMES.get(cond_code, ""))


# ---------------------------------------------------------------- lorenzo

def forward_diff(t):
    q = t
    for ax in range(q.ndim):
        q = np.diff(q, axis=ax, prepend=0)
    return q


def inverse_cumsum(q):
    for ax in range(q.ndim):
        q = np.cumsum(q, axis=ax)
    return q


# ----------------------------------------------------- adaptive quantize

def adaptive_encode(values, preds, error_bound, bits, threshold, radius):
    def _resolve():
        from ..quantize.adaptive import adaptive_encode as fn

        return fn

    return _delegate("adaptive_encode", _resolve)(
        values, preds, error_bound, bits, threshold, radius
    )


def adaptive_decode(indices, preds, literals, error_bound, bits, threshold, radius):
    def _resolve():
        from ..quantize.adaptive import adaptive_decode as fn

        return fn

    return _delegate("adaptive_decode", _resolve)(
        indices, preds, literals, error_bound, bits, threshold, radius
    )


# ----------------------------------------------------------------- interp

def linear_fill(known, pred, n_inner):
    def _resolve():
        from ..predictors.interpolation import _linear_fill

        return _linear_fill

    _delegate("_linear_fill", _resolve)(known, pred, n_inner)


def cubic_fill(known, pred, n_inner):
    def _resolve():
        from ..predictors.interpolation import _cubic_fill

        return _cubic_fill

    _delegate("_cubic_fill", _resolve)(known, pred, n_inner)


OPS = {
    "huffman": {
        "encode_payload": encode_payload,
        "decode_lockstep": decode_lockstep,
    },
    "qp": {"walk_2d": walk_2d, "walk_3d": walk_3d},
    "lorenzo": {"forward_diff": forward_diff, "inverse_cumsum": inverse_cumsum},
    "interp": {"linear_fill": linear_fill, "cubic_fill": cubic_fill},
    "adaptive_quantize": {"encode": adaptive_encode, "decode": adaptive_decode},
}

for _stage, _ops in OPS.items():
    register_kernel_backend(_stage, "numpy", _ops, priority=0)
