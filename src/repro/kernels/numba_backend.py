"""Numba ``@njit`` implementations of the kernel stages.

Registered with ``available=False`` when numba is not importable, so the
registry (and the parity lint) can still see the ops while
:func:`repro.kernels.select_backend` falls back to numpy.  Every op is a
thin Python wrapper around a jitted inner loop; if compilation fails at
first call (unsupported numba/llvmlite combo, missing toolchain) the
wrapper marks the whole numba backend broken for the process and re-runs
the numpy reference op, so a JIT failure can never change results.

Bit-identity notes (the golden-digest suite runs under both backends):

* All entropy/QP/Lorenzo loops are pure integer arithmetic — identical by
  construction once the visit order respects data dependencies (the QP
  raster scan visits each cell after its left/top/back neighbours, which
  is the same partial order the anti-diagonal wavefront satisfies).
* The interpolation fills are floating point: the jitted expressions keep
  the numpy reference's operation order, and the constants (9, 1/2, 1/16)
  are passed in as scalars of the *array dtype* so numba cannot promote a
  float32 computation to float64 mid-expression.
"""
from __future__ import annotations

import warnings

import numpy as np

from . import mark_backend_broken, register_kernel_backend
from ..obs import metric_count

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - the only path in numba-free installs
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # no-op decorator so the module still imports
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap

    def prange(*args):
        return range(*args)


# ---------------------------------------------------------------- huffman

@njit(cache=True)
def _encode_payload_jit(codes, lengths, positions, out):  # pragma: no cover
    n = codes.shape[0]
    for i in range(n):
        ln = lengths[i]
        if ln == 0:
            continue
        pos = positions[i]
        b0 = pos >> 3
        # left-justify the code inside a 32-bit window anchored at byte b0;
        # ln <= 20 and (pos & 7) <= 7 so the shift is always >= 5
        w = np.int64(codes[i]) << (32 - ln - (pos & 7))
        out[b0] |= np.uint8(w >> 24)
        out[b0 + 1] |= np.uint8((w >> 16) & 0xFF)
        out[b0 + 2] |= np.uint8((w >> 8) & 0xFF)
        out[b0 + 3] |= np.uint8(w & 0xFF)


def encode_payload(sym_codes, sym_lengths, bit_positions):
    # bit_positions is the exclusive prefix sum of sym_lengths (n + 1 long),
    # exactly as codecs.bitstream.encode_codes_packed takes it
    if sym_codes.size == 0:
        return b""
    total_bits = int(bit_positions[-1])
    nbytes = (total_bits + 7) >> 3
    if nbytes == 0:
        return b""
    out = np.zeros(nbytes + 4, dtype=np.uint8)
    _encode_payload_jit(
        np.ascontiguousarray(sym_codes, dtype=np.uint64),
        np.ascontiguousarray(sym_lengths, dtype=np.int64),
        np.ascontiguousarray(bit_positions[:-1], dtype=np.int64),
        out,
    )
    return out[:nbytes].tobytes()


@njit(cache=True, parallel=True)
def _decode_lockstep_jit(buf, cur, stops, len_flat, lane_off, wins, M):  # pragma: no cover
    n_lanes = cur.shape[0]
    shift_base = 32 - M
    mask = (np.int64(1) << M) - 1
    single = lane_off.shape[0] == 0
    for k in prange(n_lanes):
        c = cur[k]
        off = np.int64(0) if single else lane_off[k]
        for step in range(stops[k]):
            b0 = c >> 3
            w = (
                (np.int64(buf[b0]) << 24)
                | (np.int64(buf[b0 + 1]) << 16)
                | (np.int64(buf[b0 + 2]) << 8)
                | np.int64(buf[b0 + 3])
            )
            win = (w >> (shift_base - (c & 7))) & mask
            wins[step, k] = win
            c += len_flat[win + off]
        cur[k] = c


def decode_lockstep(buf, cur, stops, len_flat, lane_off, wins, M):
    _decode_lockstep_jit(
        buf,
        cur,
        np.ascontiguousarray(stops, dtype=np.int64),
        len_flat,
        lane_off,
        wins,
        np.int64(M),
    )


# --------------------------------------------------------------------- qp

@njit(cache=True, parallel=True)
def _walk_2d_jit(q, na, nb, sentinel, cond):  # pragma: no cover
    w = nb + 1
    for b in prange(q.shape[0]):
        for i in range(1, na + 1):
            base = i * w
            for j in range(1, nb + 1):
                left = q[b, base + j - 1]
                top = q[b, base - w + j]
                lt = q[b, base - w + j - 1]
                if left == sentinel or top == sentinel or lt == sentinel:
                    continue
                if cond == 3:
                    if not ((left > 0 and top > 0) or (left < 0 and top < 0)):
                        continue
                elif cond == 4:
                    if not (
                        (left > 0 and top > 0 and lt > 0)
                        or (left < 0 and top < 0 and lt < 0)
                    ):
                        continue
                q[b, base + j] += left + top - lt


def walk_2d(q, na, nb, sentinel, cond_code):
    _walk_2d_jit(q, np.int64(na), np.int64(nb), np.int64(sentinel), np.int64(cond_code))


@njit(cache=True, parallel=True)
def _walk_3d_jit(q, na, nb, nc, sentinel, cond):  # pragma: no cover
    w1 = (nb + 1) * (nc + 1)
    w2 = nc + 1
    for b in prange(q.shape[0]):
        for i in range(1, na + 1):
            for j in range(1, nb + 1):
                base = i * w1 + j * w2
                for k in range(1, nc + 1):
                    left = q[b, base + k - 1]
                    top = q[b, base - w2 + k]
                    back = q[b, base - w1 + k]
                    lt = q[b, base - w2 + k - 1]
                    lb = q[b, base - w1 + k - 1]
                    tb = q[b, base - w1 - w2 + k]
                    ltb = q[b, base - w1 - w2 + k - 1]
                    if (
                        left == sentinel
                        or top == sentinel
                        or back == sentinel
                        or lt == sentinel
                        or lb == sentinel
                        or tb == sentinel
                        or ltb == sentinel
                    ):
                        continue
                    if cond == 3:
                        if not ((left > 0 and top > 0) or (left < 0 and top < 0)):
                            continue
                    elif cond == 4:
                        if not (
                            (left > 0 and top > 0 and back > 0)
                            or (left < 0 and top < 0 and back < 0)
                        ):
                            continue
                    q[b, base + k] += left + top + back - lt - lb - tb + ltb


def walk_3d(q, na, nb, nc, sentinel, cond_code):
    _walk_3d_jit(
        q,
        np.int64(na),
        np.int64(nb),
        np.int64(nc),
        np.int64(sentinel),
        np.int64(cond_code),
    )


# ---------------------------------------------------------------- lorenzo

@njit(cache=True, parallel=True)
def _diff_axis_jit(a):  # pragma: no cover
    outer, n, inner = a.shape
    for o in prange(outer):
        for i in range(n - 1, 0, -1):
            for k in range(inner):
                a[o, i, k] -= a[o, i - 1, k]


@njit(cache=True, parallel=True)
def _cumsum_axis_jit(a):  # pragma: no cover
    outer, n, inner = a.shape
    for o in prange(outer):
        for i in range(1, n):
            for k in range(inner):
                a[o, i, k] += a[o, i - 1, k]


def _per_axis(q, kernel):
    shape = q.shape
    for ax in range(q.ndim):
        outer = int(np.prod(shape[:ax], dtype=np.int64))
        inner = int(np.prod(shape[ax + 1 :], dtype=np.int64))
        kernel(q.reshape(outer, shape[ax], inner))
    return q


def forward_diff(t):
    return _per_axis(np.ascontiguousarray(t).copy(), _diff_axis_jit)


def inverse_cumsum(q):
    return _per_axis(np.ascontiguousarray(q).copy(), _cumsum_axis_jit)


# ----------------------------------------------------------------- interp

@njit(cache=True, parallel=True)
def _linear_fill_jit(known, out, n_inner, half):  # pragma: no cover
    m = known.shape[1]
    for j in prange(m):
        for i in range(n_inner):
            out[i, j] = (known[i, j] + known[i + 1, j]) * half


@njit(cache=True, parallel=True)
def _cubic_fill_jit(known, out, n_inner, half, nine, inv16):  # pragma: no cover
    m = known.shape[1]
    for j in prange(m):
        for i in range(1, n_inner - 1):
            out[i, j] = (
                nine * (known[i, j] + known[i + 1, j])
                - (known[i - 1, j] + known[i + 2, j])
            ) * inv16
        if n_inner > 0:
            out[0, j] = (known[0, j] + known[1, j]) * half
        if n_inner > 1:
            out[n_inner - 1, j] = (
                known[n_inner - 1, j] + known[n_inner, j]
            ) * half


def _fill_2d(known, pred, n_inner, jit_fn, consts):
    nk = known.shape[0]
    k2 = np.ascontiguousarray(known.reshape(nk, -1))
    if k2.shape[1] == 0 or n_inner <= 0:
        return
    out = np.empty((n_inner, k2.shape[1]), dtype=k2.dtype)
    jit_fn(k2, out, np.int64(n_inner), *consts)
    pred[:n_inner] = out.reshape((n_inner,) + known.shape[1:])


def linear_fill(known, pred, n_inner):
    half = known.dtype.type(0.5)
    _fill_2d(known, pred, n_inner, _linear_fill_jit, (half,))


def cubic_fill(known, pred, n_inner):
    dt = known.dtype.type
    _fill_2d(
        known, pred, n_inner, _cubic_fill_jit, (dt(0.5), dt(9.0), dt(0.0625))
    )


# ------------------------------------------------------------ registration

_OPS = {
    "huffman": {
        "encode_payload": encode_payload,
        "decode_lockstep": decode_lockstep,
    },
    "qp": {"walk_2d": walk_2d, "walk_3d": walk_3d},
    "lorenzo": {"forward_diff": forward_diff, "inverse_cumsum": inverse_cumsum},
    "interp": {"linear_fill": linear_fill, "cubic_fill": cubic_fill},
}


def _guarded(stage, opname, fn):
    """Fall back to the numpy reference op if the jitted path blows up.

    Compilation errors surface at first call, before the jitted body runs,
    so input arrays are still pristine when we re-dispatch.
    """

    def wrapper(*args, **kwargs):
        try:
            return fn(*args, **kwargs)
        except Exception:  # noqa: BLE001 - any JIT failure disables the backend
            mark_backend_broken(stage, "numba")
            metric_count("kernel.jit_failure", stage=stage, op=opname)
            warnings.warn(
                f"numba kernel {stage}.{opname} failed to compile/run; "
                "disabling the numba backend for this process",
                RuntimeWarning,
                stacklevel=2,
            )
            from .numpy_backend import OPS as _NUMPY_OPS

            return _NUMPY_OPS[stage][opname](*args, **kwargs)

    wrapper.__name__ = fn.__name__
    wrapper.__qualname__ = fn.__qualname__
    wrapper.__doc__ = fn.__doc__
    wrapper.__wrapped__ = fn  # inspect.signature sees the public signature
    return wrapper


for _stage, _ops in _OPS.items():
    register_kernel_backend(
        _stage,
        "numba",
        {op: _guarded(_stage, op, fn) for op, fn in _ops.items()},
        available=NUMBA_AVAILABLE,
        priority=10,
        introspect=_ops,
    )
