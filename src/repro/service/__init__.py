"""Compression-as-a-service: the async multi-tenant gateway.

Layers, bottom-up:

``messages``   typed dataclass requests/replies + the versioned ``RSV1``
               wire encoding (JSON header + binary payload).
``admission``  per-tenant token buckets and inflight quotas; rejections
               are typed :class:`~repro.errors.AdmissionError` subclasses.
``gateway``    the asyncio core — bounded queue, same-spec fork-pool
               batching, streamed route for huge volumes, crash-safe
               archive persistence, obs span/counter merge, drain.
``net``        length-prefixed TCP transport + :class:`ServiceClient`.

Quick start (in-process)::

    from repro.service import Gateway, GatewayConfig, CompressRequest

    async with Gateway(GatewayConfig(workers=2)) as gw:
        reply = await gw.submit(CompressRequest.from_array("acme", arr))
        blob = reply.result

Over TCP, ``repro serve --port 9753`` on one side and
:class:`ServiceClient` (or ``tools/loadgen.py``) on the other speak the
same frames.
"""
from __future__ import annotations

from .admission import AdmissionController, TenantPolicy, TokenBucket
from .gateway import Gateway, GatewayConfig
from .messages import (
    SCHEMA_VERSION,
    ArchiveGetRequest,
    ArchivePutRequest,
    CompressRequest,
    DecompressRequest,
    JobSpec,
    RangeGetRequest,
    ServiceReply,
    decode_message,
    encode_message,
)
from .net import ServiceClient, serve, start_server

__all__ = [
    "SCHEMA_VERSION",
    "AdmissionController",
    "ArchiveGetRequest",
    "ArchivePutRequest",
    "CompressRequest",
    "DecompressRequest",
    "Gateway",
    "GatewayConfig",
    "JobSpec",
    "RangeGetRequest",
    "ServiceClient",
    "ServiceReply",
    "TenantPolicy",
    "TokenBucket",
    "decode_message",
    "encode_message",
    "serve",
    "start_server",
]
