"""Per-tenant admission control: token buckets + inflight quotas.

The gateway admits a request *before* queueing it.  Admission is two
checks in order — the tenant's inflight quota, then its token bucket —
and each failure mode is a distinct typed error
(:class:`~repro.errors.QuotaExceededError`,
:class:`~repro.errors.RateLimitedError`), so clients can distinguish
"you have too much outstanding" (wait for your own replies) from "you
are sending too fast" (back off on wall-clock time).

Both the bucket and the controller take an injectable monotonic clock so
tests can drive time deterministically; production uses
``time.monotonic``.
"""
from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping

from ..errors import QuotaExceededError, RateLimitedError

__all__ = ["TenantPolicy", "TokenBucket", "AdmissionController"]


@dataclass(frozen=True)
class TenantPolicy:
    """Admission limits for one tenant.

    ``rate`` is sustained requests/second refilled into the bucket
    (``inf`` disables rate limiting), ``burst`` is the bucket capacity
    (peak back-to-back requests), ``max_inflight`` caps requests admitted
    but not yet answered.
    """

    rate: float = float("inf")
    burst: int = 64
    max_inflight: int = 32

    def __post_init__(self) -> None:
        if not self.rate > 0:
            raise ValueError(f"rate must be > 0, got {self.rate!r}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst!r}")
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight!r}"
            )


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill, ``burst`` capacity."""

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        self._last = now
        if elapsed > 0 and self.rate != float("inf"):
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        elif self.rate == float("inf"):
            self._tokens = self.burst

    def try_take(self) -> bool:
        """Take one token if available; never blocks."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class AdmissionController:
    """Tracks per-tenant buckets and inflight counts for the gateway.

    Single-threaded by design: the gateway calls :meth:`admit` and
    :meth:`finished` from the event-loop thread only, so no locking is
    needed (and none is taken).
    """

    def __init__(
        self,
        default_policy: TenantPolicy | None = None,
        policies: Mapping[str, TenantPolicy] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.default_policy = default_policy or TenantPolicy()
        self.policies = dict(policies or {})
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight: dict[str, int] = {}

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.policies.get(tenant, self.default_policy)

    def _bucket_for(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            policy = self.policy_for(tenant)
            bucket = TokenBucket(policy.rate, policy.burst, self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str) -> None:
        """Admit one request or raise a typed admission error.

        Quota is checked before the rate limit so a tenant saturating its
        inflight allowance is not also charged bucket tokens for the
        rejected attempt.
        """
        policy = self.policy_for(tenant)
        inflight = self._inflight.get(tenant, 0)
        if inflight >= policy.max_inflight:
            raise QuotaExceededError(
                f"tenant {tenant!r} has {inflight} requests in flight "
                f"(max_inflight={policy.max_inflight}); wait for replies "
                "before submitting more"
            )
        if not self._bucket_for(tenant).try_take():
            raise RateLimitedError(
                f"tenant {tenant!r} exceeded {policy.rate:g} req/s "
                f"(burst {policy.burst}); back off and retry"
            )
        self._inflight[tenant] = inflight + 1

    def finished(self, tenant: str) -> None:
        """Release one inflight slot (called once per admitted request)."""
        inflight = self._inflight.get(tenant, 0)
        if inflight <= 1:
            self._inflight.pop(tenant, None)
        else:
            self._inflight[tenant] = inflight - 1

    def inflight(self, tenant: str) -> int:
        return self._inflight.get(tenant, 0)

    def snapshot(self) -> dict:
        """Introspection view: inflight counts and bucket levels."""
        return {
            tenant: {
                "inflight": self._inflight.get(tenant, 0),
                "tokens": round(bucket.tokens, 3),
            }
            for tenant, bucket in sorted(self._buckets.items())
        } | {
            tenant: {"inflight": count, "tokens": None}
            for tenant, count in sorted(self._inflight.items())
            if tenant not in self._buckets
        }
