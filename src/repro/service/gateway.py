"""The asyncio compression gateway: batching, backpressure, persistence.

One :class:`Gateway` owns the whole serving path:

1. :meth:`Gateway.submit` admits a typed request (per-tenant token
   bucket + inflight quota, then a bounded global queue — each rejection
   a distinct :class:`~repro.errors.AdmissionError` subclass and a
   ``service.rejected{reason=...}`` counter tick), then parks an
   ``asyncio.Future`` for the reply.
2. A dispatcher task drains the queue in micro-batches, groups jobs by
   ``(op, JobSpec.batch_key)``, and runs each group as *one* fork-pool
   job — the worker builds the compressor once and processes every array
   in the group, amortizing construction and schedule-cache warmup
   exactly like the slab-parallel path.
3. Oversized compress requests (``nbytes >= stream_threshold_bytes``)
   bypass the fork pool: they run ``stream_compress`` on a worker thread
   so one huge volume cannot occupy the pool while small slices queue.
4. ``archive_put`` / ``archive_get`` persist through the crash-safe
   :class:`~repro.io.container.Archive` (journaled appends), serialized
   by an asyncio lock so concurrent puts cannot interleave writes.
5. Fork-pool workers run under their own :class:`~repro.obs.Observation`
   and ship the payload back; the gateway merges it into its own
   observation in job order, so ``gateway.observation`` holds the full
   request-scoped span/counter picture across process boundaries.

:meth:`Gateway.stop` drains: new submits fail with
:class:`~repro.errors.ServiceClosedError` while queued and inflight work
runs to completion, then the dispatcher exits and the pool shuts down —
no torn archive entries, every parked future resolved.
"""
from __future__ import annotations

import asyncio
import io
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .. import obs
from ..errors import (
    QueueFullError,
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceRequestError,
    TenantAccessError,
)
from ..io.container import Archive, ContainerReader, is_streamed_container
from ..parallel import create_fork_pool
from ..streaming import stream_compress, stream_decompress
from .admission import AdmissionController, TenantPolicy
from .messages import (
    ArchiveGetRequest,
    ArchivePutRequest,
    CompressRequest,
    DecompressRequest,
    JobSpec,
    RangeGetRequest,
    ServiceReply,
    _ERROR_TYPES,
    array_from_parts,
    decode_message,
    encode_message,
)

__all__ = ["GatewayConfig", "Gateway"]

_REQUEST_KINDS = (
    CompressRequest,
    DecompressRequest,
    ArchivePutRequest,
    ArchiveGetRequest,
    RangeGetRequest,
)


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway tuning knobs; defaults favor small deployments and tests."""

    workers: int = 2
    batch_window_ms: float = 2.0
    max_batch: int = 32
    stream_threshold_bytes: int = 32 << 20
    queue_depth: int = 256
    archive_path: str | None = None
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    policies: dict[str, TenantPolicy] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")


@dataclass
class _Job:
    request: Any
    future: asyncio.Future
    submitted: float


def _compressor_from_spec(spec_dict: dict) -> Any:
    """Build the compressor a :class:`JobSpec` dict describes.

    Runs in fork-pool workers (and the parent for streamed jobs), so it
    imports lazily and validates spec fields against what the registry
    says the named compressor actually supports."""
    from ..compressors import constructor_accepts, get_compressor, supports_qp

    spec = JobSpec.from_dict(spec_dict)
    kwargs: dict[str, Any] = {}
    if spec.qp is not None:
        if not supports_qp(spec.compressor):
            raise ServiceRequestError(
                f"compressor {spec.compressor!r} does not support qp"
            )
        from ..quantize import QPConfig

        kwargs["qp"] = QPConfig.from_dict(spec.qp)
    if spec.adaptive is not None:
        if not constructor_accepts(spec.compressor, "adaptive"):
            raise ServiceRequestError(
                f"compressor {spec.compressor!r} does not support adaptive "
                "quantization"
            )
        kwargs["adaptive"] = spec.adaptive
    try:
        return get_compressor(spec.compressor, spec.error_bound, **kwargs)
    except KeyError as exc:
        raise ServiceRequestError(f"unknown compressor {spec.compressor!r}") from exc


@dataclass(frozen=True)
class _ItemFailure:
    """One item's failure inside a batch, shipped back picklable.

    ``kind`` says whose fault it was: ``"service"`` carries a
    :class:`~repro.errors.ServiceError` reason tag, ``"repro"`` is a
    corrupt payload / bad spec (→ ``bad_request``), and ``"internal"``
    is an unexpected worker exception.  The parent maps it back to a
    typed error per job via :func:`_failure_to_error`, so one bad item
    never poisons the rest of its micro-batch.
    """

    kind: str
    reason: str
    message: str


def _capture_failure(exc: Exception) -> _ItemFailure:
    if isinstance(exc, ServiceError):
        return _ItemFailure("service", exc.reason, str(exc))
    if isinstance(exc, ReproError):
        return _ItemFailure("repro", ServiceRequestError.reason, str(exc))
    return _ItemFailure("internal", "internal", f"{type(exc).__name__}: {exc}")


def _failure_to_error(failure: _ItemFailure) -> Exception:
    if failure.kind == "service":
        return _ERROR_TYPES.get(failure.reason, ServiceError)(failure.message)
    if failure.kind == "repro":
        return ServiceRequestError(failure.message)
    return RuntimeError(failure.message)


def _pick_level(table: list, level: int | None, total: int) -> dict:
    """Resolve a requested level against a blob's progressive table.

    ``level=None`` means "everything": the finest recorded level, with
    the span running to the end of the blob."""
    if not table:
        raise ServiceRequestError("entry has no progressive levels")
    if level is None:
        last = table[-1]
        return {"level": last["level"], "eb": last["eb"], "end": total}
    for e in table:
        if e["level"] == level:
            return e
    raise ServiceRequestError(
        f"level {level} is not in the entry's progressive table "
        f"(levels {[e['level'] for e in table]})"
    )


def _canonical(blob: bytes) -> bytes:
    """Byte ranges address the canonical (v0) framing: a sealed blob's CRC
    envelope covers the whole payload, so prefixes of the *sealed* bytes
    can never verify — unwrap before slicing."""
    from ..io.integrity import is_sealed, unseal

    return unseal(blob) if is_sealed(blob) else bytes(blob)


def _pack_array(arr: np.ndarray) -> tuple:
    return (tuple(arr.shape), arr.dtype.str, np.ascontiguousarray(arr).tobytes())


def _run_batch(
    kind: str, spec_dict: dict | None, items: list
) -> tuple[list, dict | None]:
    """Fork-pool worker entry: process one same-spec batch.

    ``items`` is a list of job payloads — ``(shape, dtype, bytes)`` for
    compress, raw blobs for decompress.  The compressor is built once per
    batch; the worker's observation payload rides back for parent merge.
    Failures are isolated per item: each result slot is either the item's
    output or an :class:`_ItemFailure`, so a malformed request from one
    tenant cannot fail other tenants' batched requests.
    """
    ob = obs.Observation()
    with obs.observe(ob):
        with obs.span(f"service.batch.{kind}", jobs=len(items)):
            if kind == "compress":
                comp = _compressor_from_spec(spec_dict)
                spec = JobSpec.from_dict(spec_dict)
                results = []
                for shape, dtype, raw in items:
                    try:
                        arr = array_from_parts(shape, dtype, raw)
                        results.append(
                            comp.compress(
                                arr, checksum=spec.checksum, auto=spec.auto
                            )
                        )
                    except Exception as exc:  # noqa: BLE001 - per-item isolation
                        results.append(_capture_failure(exc))
            elif kind == "decompress":
                from ..compressors.registry import decompress_any, decompress_many

                blobs = list(items)
                try:
                    results = [_pack_array(a) for a in decompress_many(blobs)]
                except Exception:  # noqa: BLE001 - retry item-at-a-time
                    # the amortized batch path failed somewhere; redo the
                    # blobs one by one so only the offending items fail
                    results = []
                    for blob in blobs:
                        try:
                            results.append(_pack_array(decompress_any(blob)))
                        except Exception as exc:  # noqa: BLE001
                            results.append(_capture_failure(exc))
            else:  # pragma: no cover - dispatcher only sends the two kinds
                raise ValueError(f"unknown batch kind {kind!r}")
    return results, ob.to_payload()


class Gateway:
    """Async multi-tenant front end over the compression stack.

    Construct, :meth:`start`, :meth:`submit` typed requests (or feed raw
    wire frames through :meth:`handle`), then :meth:`stop` to drain.
    Also usable as an async context manager.
    """

    def __init__(self, config: GatewayConfig | None = None) -> None:
        self.config = config or GatewayConfig()
        self.observation = obs.Observation()
        self.admission = AdmissionController(
            self.config.default_policy, self.config.policies
        )
        self._queue: asyncio.Queue[_Job] = asyncio.Queue(
            maxsize=self.config.queue_depth
        )
        self._pool = None
        self._dispatcher: asyncio.Task | None = None
        self._closed = False
        self._inflight: set[asyncio.Future] = set()
        self._archive: Archive | None = None
        self._archive_lock = asyncio.Lock()
        self._batches = 0
        self._jobs = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spin up the fork pool and the dispatcher task (idempotent)."""
        if self._closed:
            raise ServiceClosedError("gateway is stopped")
        if self._pool is None:
            self._pool = create_fork_pool(self.config.workers)
        if self._dispatcher is None or self._dispatcher.done():
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting work; optionally run queued+inflight jobs dry.

        With ``drain=True`` (the default) every already-admitted request
        completes and its future resolves before the pool shuts down;
        with ``drain=False`` queued jobs are failed fast with
        :class:`ServiceClosedError`.
        """
        self._closed = True
        if not drain or self._dispatcher is None:
            # without a dispatcher nothing will ever drain the queue
            while not self._queue.empty():
                job = self._queue.get_nowait()
                self._finish_job(
                    job, error=ServiceClosedError("gateway stopped before dispatch")
                )
        # wait for the queue to empty and inflight futures to settle
        while not self._queue.empty() or self._inflight:
            await asyncio.gather(*tuple(self._inflight), return_exceptions=True)
            if not self._queue.empty():
                await asyncio.sleep(0)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    async def __aenter__(self) -> "Gateway":
        self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    @property
    def archive(self) -> Archive:
        if self._archive is None:
            if self.config.archive_path is None:
                raise ServiceRequestError(
                    "gateway has no archive (set GatewayConfig.archive_path)"
                )
            path = self.config.archive_path
            import os

            if os.path.exists(path):
                self._archive = Archive(path)
                self._archive.recover()
            else:
                self._archive = Archive.create(path)
        return self._archive

    # -- submission --------------------------------------------------------

    async def submit(self, request: Any) -> ServiceReply:
        """Admit, queue, and await one typed request; returns the reply.

        Admission failures raise the typed error (they are *not* folded
        into an error reply — :meth:`handle` does that translation for
        wire clients); execution failures come back as ``ok=False``
        replies via :meth:`ServiceReply.raise_for_status`.
        """
        if not isinstance(request, _REQUEST_KINDS):
            raise ServiceRequestError(
                f"cannot submit {type(request).__name__}; expected one of "
                + ", ".join(c.__name__ for c in _REQUEST_KINDS)
            )
        tenant = request.tenant
        with obs.observe(self.observation):
            obs.metric_count(
                "service.requests", op=request.kind, tenant=tenant
            )
            if isinstance(
                request, (ArchivePutRequest, ArchiveGetRequest, RangeGetRequest)
            ):
                try:
                    # fail namespace escapes before any work is queued
                    self._archive_key(tenant, request.name)
                except TenantAccessError:
                    obs.metric_count(
                        "service.rejected",
                        reason=TenantAccessError.reason, tenant=tenant,
                    )
                    raise
            if self._closed:
                obs.metric_count(
                    "service.rejected", reason=ServiceClosedError.reason,
                    tenant=tenant,
                )
                raise ServiceClosedError("gateway is draining; request refused")
            try:
                self.admission.admit(tenant)
            except ServiceError as exc:
                obs.metric_count(
                    "service.rejected", reason=exc.reason, tenant=tenant
                )
                raise
            loop = asyncio.get_running_loop()
            job = _Job(request, loop.create_future(), time.monotonic())
            try:
                self._queue.put_nowait(job)
            except asyncio.QueueFull:
                self.admission.finished(tenant)
                obs.metric_count(
                    "service.rejected", reason=QueueFullError.reason,
                    tenant=tenant,
                )
                raise QueueFullError(
                    f"gateway queue is full ({self.config.queue_depth} "
                    "pending); retry after a backoff"
                ) from None
        self._inflight.add(job.future)
        job.future.add_done_callback(self._inflight.discard)
        try:
            return await asyncio.shield(job.future)
        finally:
            # released exactly once per admitted job, even if the awaiting
            # client was cancelled (the shielded future still completes)
            if job.future.done():
                self.admission.finished(tenant)
            else:
                job.future.add_done_callback(
                    lambda _f, t=tenant: self.admission.finished(t)
                )

    async def handle(self, frame: bytes) -> bytes:
        """Wire entry point: decode one frame, serve it, encode the reply.

        Every failure — malformed frame, admission rejection, execution
        error — becomes an ``ok=False`` reply with the typed ``reason``
        code, so a wire client never sees a raw traceback or a hang.
        Unexpected exceptions get the ``internal`` code as a last resort.
        """
        request_id = ""
        op = ""
        try:
            request = decode_message(frame)
            if isinstance(request, ServiceReply):
                raise ServiceRequestError("a reply is not a servable request")
            request_id = request.request_id
            op = request.kind
            reply = await self.submit(request)
            return encode_message(reply)
        except ServiceError as exc:
            reply = ServiceReply(
                request_id=request_id, op=op, ok=False,
                error=exc.reason, message=str(exc),
            )
            return encode_message(reply)
        except ReproError as exc:
            with obs.observe(self.observation):
                obs.metric_count(
                    "service.rejected",
                    reason=ServiceRequestError.reason, tenant="?",
                )
            reply = ServiceReply(
                request_id=request_id, op=op, ok=False,
                error=ServiceRequestError.reason, message=str(exc),
            )
            return encode_message(reply)
        except Exception as exc:  # noqa: BLE001 - contract: never a raw traceback
            reply = ServiceReply(
                request_id=request_id, op=op, ok=False,
                error="internal",
                message=f"internal error: {type(exc).__name__}: {exc}",
            )
            return encode_message(reply)

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            job = await self._queue.get()
            batch = [job]
            deadline = time.monotonic() + self.config.batch_window_ms / 1000.0
            while len(batch) < self.config.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            try:
                self._launch_batches(batch)
            except Exception as exc:  # noqa: BLE001 - dispatcher must survive
                # e.g. an in-process spec whose qp/adaptive dict is not
                # JSON-serializable makes batch_key raise; fail the drained
                # jobs typed and keep dispatching (launched groups finish
                # their own jobs first — _finish_job is idempotent)
                error = exc if isinstance(exc, ReproError) else ServiceRequestError(
                    f"request could not be dispatched: "
                    f"{type(exc).__name__}: {exc}"
                )
                for job in batch:
                    self._finish_job(job, error=error)

    def _launch_batches(self, jobs: list[_Job]) -> None:
        """Group a drained micro-batch and launch each group concurrently."""
        groups: dict[tuple, list[_Job]] = {}
        for job in jobs:
            req = job.request
            if isinstance(req, CompressRequest) and (
                len(req.data) >= self.config.stream_threshold_bytes
            ):
                key: tuple = ("stream", id(job))
            elif isinstance(req, (CompressRequest, ArchivePutRequest)):
                key = ("compress", req.spec.batch_key)
            elif isinstance(req, DecompressRequest):
                if is_streamed_container(req.blob[:8]):
                    key = ("destream", id(job))
                else:
                    key = ("decompress", "")
            elif isinstance(req, RangeGetRequest):
                key = ("range_get", id(job))
            else:
                key = ("archive_get", id(job))
            groups.setdefault(key, []).append(job)
        loop = asyncio.get_running_loop()
        for (kind, _), group in groups.items():
            task = loop.create_task(self._run_group(kind, group))
            # keep a handle so drain waits for execution, not just futures
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _run_group(self, kind: str, jobs: list[_Job]) -> None:
        try:
            if kind == "compress":
                await self._run_pool_compress(jobs)
            elif kind == "decompress":
                await self._run_pool_decompress(jobs)
            elif kind == "stream":
                await self._run_streamed(jobs[0])
            elif kind == "destream":
                await self._run_destream(jobs[0])
            elif kind == "range_get":
                await self._run_range_get(jobs[0])
            else:
                await self._run_archive_get(jobs[0])
        except Exception as exc:  # noqa: BLE001 - folded into typed replies
            for job in jobs:
                self._finish_job(job, error=exc)

    async def _run_pool_compress(self, jobs: list[_Job]) -> None:
        spec = jobs[0].request.spec
        items = [
            (job.request.shape, job.request.dtype, job.request.data)
            for job in jobs
        ]
        loop = asyncio.get_running_loop()
        self._batches += 1
        self._jobs += len(jobs)
        results, payload = await loop.run_in_executor(
            self._pool, _run_batch, "compress", spec.to_dict(), items
        )
        self.observation.merge_payload(payload, worker=f"batch{self._batches}")
        for job, blob in zip(jobs, results):
            req = job.request
            try:
                if isinstance(blob, _ItemFailure):
                    self._finish_job(job, error=_failure_to_error(blob))
                elif isinstance(req, ArchivePutRequest):
                    await self._archive_append(job, req.name, blob)
                else:
                    self._finish_job(
                        job,
                        reply=ServiceReply(
                            request_id=req.request_id, op=req.kind,
                            result=blob,
                            meta={
                                "compressed_bytes": len(blob),
                                "input_bytes": len(req.data),
                                "batched": len(jobs),
                            },
                        ),
                    )
            except Exception as exc:  # noqa: BLE001 - fail this job only
                # e.g. a duplicate archive name: the offending job gets the
                # typed error, the rest of the group still completes
                self._finish_job(job, error=exc)

    async def _run_pool_decompress(self, jobs: list[_Job]) -> None:
        items = [job.request.blob for job in jobs]
        loop = asyncio.get_running_loop()
        self._batches += 1
        self._jobs += len(jobs)
        results, payload = await loop.run_in_executor(
            self._pool, _run_batch, "decompress", None, items
        )
        self.observation.merge_payload(payload, worker=f"batch{self._batches}")
        for job, item in zip(jobs, results):
            req = job.request
            if isinstance(item, _ItemFailure):
                self._finish_job(job, error=_failure_to_error(item))
                continue
            shape, dtype, raw = item
            self._finish_job(
                job,
                reply=ServiceReply(
                    request_id=req.request_id, op=req.kind, result=raw,
                    meta={"shape": list(shape), "dtype": dtype},
                ),
            )

    async def _run_streamed(self, job: _Job) -> None:
        """Huge compress request: thread + ``stream_compress`` (RSTR)."""
        req = job.request
        spec = req.spec

        def _work() -> tuple[bytes, Any, dict | None]:
            ob = obs.Observation()
            with obs.observe(ob):
                comp = _compressor_from_spec(spec.to_dict())
                arr = req.array()
                if spec.auto:
                    # the streamed route honors the auto knob too: tune on
                    # the whole volume once, then compress slab by slab
                    comp = comp._tuned_for(arr)
                sink = io.BytesIO()
                result = stream_compress(
                    comp, arr, sink, checksum=spec.checksum
                )
            return sink.getvalue(), result, ob.to_payload()

        self._jobs += 1
        blob, result, payload = await asyncio.get_running_loop().run_in_executor(
            None, _work
        )
        self.observation.merge_payload(payload, worker="stream")
        self._finish_job(
            job,
            reply=ServiceReply(
                request_id=req.request_id, op=req.kind, result=blob,
                meta={
                    "compressed_bytes": len(blob),
                    "input_bytes": len(req.data),
                    "streamed": True,
                    "segments": result.segments,
                },
            ),
        )

    async def _run_destream(self, job: _Job) -> None:
        req = job.request

        def _work() -> tuple[np.ndarray, dict | None]:
            ob = obs.Observation()
            with obs.observe(ob):
                arr = stream_decompress(req.blob)
            return arr, ob.to_payload()

        self._jobs += 1
        arr, payload = await asyncio.get_running_loop().run_in_executor(None, _work)
        self.observation.merge_payload(payload, worker="destream")
        self._finish_job(
            job,
            reply=ServiceReply(
                request_id=req.request_id, op=req.kind,
                result=np.ascontiguousarray(arr).tobytes(),
                meta={
                    "shape": list(arr.shape), "dtype": arr.dtype.str,
                    "streamed": True,
                },
            ),
        )

    @staticmethod
    def _archive_key(tenant: str, name: str) -> str:
        """Tenant-namespaced archive key: ``{tenant}/{name}``.

        ``/`` is the namespace separator, so neither component may
        contain it — a name like ``"../bob/secret"`` or a tenant with an
        embedded slash would alias another tenant's entries.  Every
        archive touch goes through this helper; a gateway restarted on
        an archive written by the pre-namespace format simply sees no
        entries for any tenant (old keys have no ``/`` prefix).
        """
        if not tenant or "/" in tenant:
            raise TenantAccessError(
                f"tenant id {tenant!r} may not be empty or contain '/'"
            )
        if not name or "/" in name:
            raise TenantAccessError(
                f"archive name {name!r} may not be empty or contain '/' "
                "(archive entries are scoped per tenant)"
            )
        return f"{tenant}/{name}"

    async def _archive_append(self, job: _Job, name: str, blob: bytes) -> None:
        req = job.request
        key = self._archive_key(req.tenant, name)
        async with self._archive_lock:
            archive = self.archive
            if key in archive.names():
                raise ServiceRequestError(
                    f"archive entry {name!r} already exists"
                )
            await asyncio.get_running_loop().run_in_executor(
                None, archive.append, key, blob
            )
        self._finish_job(
            job,
            reply=ServiceReply(
                request_id=req.request_id, op=req.kind,
                meta={"name": name, "compressed_bytes": len(blob)},
            ),
        )

    async def _read_archived(self, tenant: str, name: str) -> bytes:
        key = self._archive_key(tenant, name)
        async with self._archive_lock:
            archive = self.archive
            if key not in archive.names():
                raise ServiceRequestError(
                    f"archive entry {name!r} does not exist"
                )
            return await asyncio.get_running_loop().run_in_executor(
                None, archive.read, key
            )

    async def _run_archive_get(self, job: _Job) -> None:
        req = job.request
        blob = await self._read_archived(req.tenant, req.name)
        self._jobs += 1
        self._finish_job(
            job,
            reply=ServiceReply(
                request_id=req.request_id, op=req.kind, result=blob,
                meta={"name": req.name, "compressed_bytes": len(blob)},
            ),
        )

    async def _run_range_get(self, job: _Job) -> None:
        """Serve a level-aligned byte range of an archived progressive blob.

        Plain entries return ``blob[start:offset[level]]`` plus the full
        level table; streamed (``RSTR``) entries return the concatenation
        of each segment's level prefix with a per-segment span map, so
        the footer index keeps working client-side.  Non-progressive
        entries fail typed as ``bad_request``.
        """
        req = job.request
        blob = await self._read_archived(req.tenant, req.name)
        self._jobs += 1
        from ..compressors.progressive import level_table

        if is_streamed_container(blob[:8]):
            if req.start:
                raise ServiceRequestError(
                    "range start applies to plain blob entries only; "
                    "refine streamed entries per segment"
                )
            reader = ContainerReader(blob)
            segments = []
            parts = []
            for i, (off, size) in enumerate(reader.offsets()):
                seg = _canonical(reader.segment(i))
                entry = _pick_level(level_table(seg), req.level, len(seg))
                parts.append(seg[:entry["end"]])
                segments.append(
                    {
                        "offset": off, "size": size,
                        "prefix_bytes": entry["end"],
                        "level": entry["level"], "eb": entry["eb"],
                    }
                )
            payload = b"".join(parts)
            meta = {
                "name": req.name, "streamed": True, "axis": reader.axis,
                "segments": segments, "total_bytes": len(blob),
                "prefix_bytes": len(payload),
            }
        else:
            blob = _canonical(blob)
            table = level_table(blob)
            entry = _pick_level(table, req.level, len(blob))
            stop = entry["end"]
            if req.start > stop:
                raise ServiceRequestError(
                    f"range start {req.start} is past the level "
                    f"{entry['level']} boundary at {stop}"
                )
            payload = blob[req.start:stop]
            meta = {
                "name": req.name, "level": entry["level"], "eb": entry["eb"],
                "start": req.start, "prefix_bytes": stop,
                "total_bytes": len(blob), "levels": table,
            }
        with obs.observe(self.observation):
            obs.add_bytes("service.range_prefix", len(payload))
            obs.add_bytes("service.range_full", len(blob))
            obs.metric_count("service.range", tenant=req.tenant)
        self._finish_job(
            job,
            reply=ServiceReply(
                request_id=req.request_id, op=req.kind, result=payload,
                meta=meta,
            ),
        )

    # -- plumbing ----------------------------------------------------------

    def _finish_job(
        self,
        job: _Job,
        reply: ServiceReply | None = None,
        error: Exception | None = None,
    ) -> None:
        if job.future.done():
            return
        latency = time.monotonic() - job.submitted
        req = job.request
        with obs.observe(self.observation):
            obs.metric_seconds(
                "service.latency", latency, op=req.kind, tenant=req.tenant
            )
        if error is None:
            with obs.observe(self.observation):
                obs.metric_count(
                    "service.completed", op=req.kind, tenant=req.tenant
                )
            job.future.set_result(reply)
            return
        with obs.observe(self.observation):
            obs.metric_count(
                "service.failed", op=req.kind, tenant=req.tenant
            )
        if isinstance(error, ReproError) and not isinstance(error, ServiceError):
            # corrupt payloads etc. are the client's fault: bad_request
            error = ServiceRequestError(str(error))
        if isinstance(error, ServiceError):
            job.future.set_result(
                ServiceReply(
                    request_id=req.request_id, op=req.kind, ok=False,
                    error=error.reason, message=str(error),
                )
            )
        else:
            job.future.set_exception(error)

    def stats(self) -> dict:
        """Lightweight operational snapshot (queue, batching, admission)."""
        return {
            "queued": self._queue.qsize(),
            "inflight": len(self._inflight),
            "batches": self._batches,
            "jobs": self._jobs,
            "closed": self._closed,
            "admission": self.admission.snapshot(),
        }
