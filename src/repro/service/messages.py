"""Typed service messages with a versioned wire encoding.

Every request the gateway accepts — and every reply it produces — is one
of the frozen dataclasses below.  Each message encodes to::

    RSV1 | u32 header_len | JSON header (utf-8) | payload bytes

where the JSON header carries ``schema`` (the wire-format revision),
``kind`` (the message type tag), the message's scalar fields, and
``payload_len``; the binary payload (array bytes, compressed blobs) rides
behind the header untouched.  The same encoding is the in-process message
schema and the TCP wire format, so a client library, the load generator,
and the gateway's own tests all speak one contract.

Decoding is strict and typed: a wrong magic or malformed header raises
:class:`~repro.errors.CorruptBlobError`, a schema revision this reader
does not understand raises :class:`~repro.errors.VersionError`, and a
payload shorter than ``payload_len`` raises
:class:`~repro.errors.TruncatedStreamError` — never a bare ``KeyError``
or a silent partial parse.  Bumping :data:`SCHEMA_VERSION` therefore
*must* accompany any change to the header fields (the
``tools/check_api.py`` service lint pins this).
"""
from __future__ import annotations

import json
import struct
import uuid
from dataclasses import dataclass, field
from typing import Any, ClassVar

import numpy as np

from ..errors import CorruptBlobError, TruncatedStreamError, VersionError

__all__ = [
    "SCHEMA_VERSION",
    "WIRE_MAGIC",
    "JobSpec",
    "CompressRequest",
    "DecompressRequest",
    "ArchivePutRequest",
    "ArchiveGetRequest",
    "RangeGetRequest",
    "ServiceReply",
    "encode_message",
    "decode_message",
]

#: wire-format revision; bump on any header-field change
SCHEMA_VERSION = 1
WIRE_MAGIC = b"RSV1"

_SPEC_FIELDS = {"compressor", "error_bound", "checksum", "auto", "qp", "adaptive"}


def array_from_parts(
    shape: "tuple[int, ...]", dtype: str, data: bytes
) -> np.ndarray:
    """Validate (shape, dtype, payload) geometry and return the array view.

    This is the one place request geometry is checked — both the typed
    request objects and the fork-pool batch worker go through it, so a
    mismatched payload is always a typed :class:`CorruptBlobError`
    (→ ``bad_request`` on the wire), never a raw numpy ``ValueError``.
    """
    try:
        dt = np.dtype(dtype)
        dims = tuple(int(s) for s in shape)
    except (TypeError, ValueError) as exc:
        raise CorruptBlobError(
            f"bad array geometry {shape!r}/{dtype!r}: {exc}"
        ) from exc
    if any(s < 0 for s in dims):
        raise CorruptBlobError(f"array shape {dims} has a negative dimension")
    expect = int(np.prod(dims, dtype=np.int64)) * dt.itemsize
    if len(data) != expect:
        raise CorruptBlobError(
            f"compress payload is {len(data)} bytes, geometry "
            f"{dims}/{dt.str} needs {expect}"
        )
    return np.frombuffer(data, dtype=dt).reshape(dims)


@dataclass(frozen=True)
class JobSpec:
    """How to compress: the per-request slice of a pipeline configuration.

    Requests carrying an equal ``JobSpec`` are batched onto one fork-pool
    job (one compressor construction, one schedule-cache warmup) — the
    gateway's batching key is :attr:`batch_key`.  ``qp`` and ``adaptive``
    travel as their dict encodings (``QPConfig.to_dict`` /
    ``AdaptiveConfig.to_dict``) so the spec stays JSON-native.
    """

    compressor: str = "sz3"
    error_bound: float = 1e-3
    checksum: bool = False
    auto: bool = False
    qp: dict | None = None
    adaptive: dict | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.compressor, str) or not self.compressor:
            raise CorruptBlobError(
                f"spec compressor must be a non-empty string, got "
                f"{self.compressor!r}"
            )
        eb = self.error_bound
        if isinstance(eb, bool) or not isinstance(eb, (int, float)) or not eb > 0:
            raise CorruptBlobError(f"spec error_bound must be > 0, got {eb!r}")
        for name in ("checksum", "auto"):
            if not isinstance(getattr(self, name), bool):
                raise CorruptBlobError(
                    f"spec {name} must be a bool, got {getattr(self, name)!r}"
                )
        for name in ("qp", "adaptive"):
            val = getattr(self, name)
            if val is not None and not isinstance(val, dict):
                raise CorruptBlobError(
                    f"spec {name} must be a dict or null, got {val!r}"
                )

    @property
    def batch_key(self) -> str:
        """Canonical string key: equal specs batch together."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def to_dict(self) -> dict:
        return {
            "compressor": self.compressor,
            "error_bound": float(self.error_bound),
            "checksum": self.checksum,
            "auto": self.auto,
            "qp": self.qp,
            "adaptive": self.adaptive,
        }

    @classmethod
    def from_dict(cls, d: Any) -> "JobSpec":
        if not isinstance(d, dict):
            raise CorruptBlobError(f"job spec must be a dict, got {type(d).__name__}")
        unknown = set(d) - _SPEC_FIELDS
        if unknown:
            raise CorruptBlobError(f"job spec has unknown fields {sorted(unknown)}")
        return cls(**d)


def _new_request_id() -> str:
    return uuid.uuid4().hex


@dataclass
class _Message:
    """Shared encode scaffolding; every concrete message sets ``kind``."""

    kind: ClassVar[str] = ""

    def header_fields(self) -> dict:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def payload(self) -> bytes:
        return b""

    def encode(self) -> bytes:
        return encode_message(self)


@dataclass
class CompressRequest(_Message):
    """Compress a raw array (C-order bytes + geometry) under ``spec``."""

    kind: ClassVar[str] = "compress"

    tenant: str
    spec: JobSpec
    shape: tuple[int, ...]
    dtype: str
    data: bytes
    request_id: str = field(default_factory=_new_request_id)

    @classmethod
    def from_array(
        cls,
        tenant: str,
        array: np.ndarray,
        spec: JobSpec | None = None,
        request_id: str | None = None,
    ) -> "CompressRequest":
        array = np.ascontiguousarray(array)
        return cls(
            tenant=tenant,
            spec=spec or JobSpec(),
            shape=tuple(int(s) for s in array.shape),
            dtype=array.dtype.str,
            data=array.tobytes(),
            request_id=request_id or _new_request_id(),
        )

    def array(self) -> np.ndarray:
        """Reconstruct the request's array view (zero-copy, read-only)."""
        return array_from_parts(self.shape, self.dtype, self.data)

    def header_fields(self) -> dict:
        return {
            "tenant": self.tenant,
            "request_id": self.request_id,
            "spec": self.spec.to_dict(),
            "shape": list(self.shape),
            "dtype": self.dtype,
        }

    @property
    def payload(self) -> bytes:
        return self.data


@dataclass
class DecompressRequest(_Message):
    """Decode a blob (canonical, sealed, or streamed-container bytes)."""

    kind: ClassVar[str] = "decompress"

    tenant: str
    blob: bytes
    request_id: str = field(default_factory=_new_request_id)

    def header_fields(self) -> dict:
        return {"tenant": self.tenant, "request_id": self.request_id}

    @property
    def payload(self) -> bytes:
        return self.blob


@dataclass
class ArchivePutRequest(_Message):
    """Compress an array under ``spec`` and persist it as ``name``."""

    kind: ClassVar[str] = "archive_put"

    tenant: str
    name: str
    spec: JobSpec
    shape: tuple[int, ...]
    dtype: str
    data: bytes
    request_id: str = field(default_factory=_new_request_id)

    @classmethod
    def from_array(
        cls,
        tenant: str,
        name: str,
        array: np.ndarray,
        spec: JobSpec | None = None,
        request_id: str | None = None,
    ) -> "ArchivePutRequest":
        array = np.ascontiguousarray(array)
        return cls(
            tenant=tenant,
            name=name,
            spec=spec or JobSpec(),
            shape=tuple(int(s) for s in array.shape),
            dtype=array.dtype.str,
            data=array.tobytes(),
            request_id=request_id or _new_request_id(),
        )

    array = CompressRequest.array

    def header_fields(self) -> dict:
        return {
            "tenant": self.tenant,
            "request_id": self.request_id,
            "name": self.name,
            "spec": self.spec.to_dict(),
            "shape": list(self.shape),
            "dtype": self.dtype,
        }

    @property
    def payload(self) -> bytes:
        return self.data


@dataclass
class ArchiveGetRequest(_Message):
    """Fetch the stored blob for archive entry ``name``."""

    kind: ClassVar[str] = "archive_get"

    tenant: str
    name: str
    request_id: str = field(default_factory=_new_request_id)

    def header_fields(self) -> dict:
        return {
            "tenant": self.tenant,
            "request_id": self.request_id,
            "name": self.name,
        }


@dataclass
class RangeGetRequest(_Message):
    """Fetch a byte range of archive entry ``name`` by progressive level.

    ``level=k`` returns the prefix that decodes through interpolation
    level ``k`` (``None`` → the full blob); ``start`` trims bytes the
    client already holds, so an incremental refinement fetches only
    ``blob[start:offset[k]]``.  The reply's ``meta`` carries the level
    table (absolute ends + achievable error bounds) so the client can
    plan further refinements without another round-trip.  For streamed
    (``RSTR``) entries the reply instead maps per-segment level spans
    onto the container's footer index.
    """

    kind: ClassVar[str] = "range_get"

    tenant: str
    name: str
    level: int | None = None
    start: int = 0
    request_id: str = field(default_factory=_new_request_id)

    def header_fields(self) -> dict:
        return {
            "tenant": self.tenant,
            "request_id": self.request_id,
            "name": self.name,
            "level": self.level,
            "start": self.start,
        }


@dataclass
class ServiceReply(_Message):
    """The gateway's answer: result payload or a typed error.

    ``ok=True`` carries the result bytes in ``payload`` plus JSON-native
    ``meta`` (shape/dtype for decompress results, compressed size, the
    streamed-route flag).  ``ok=False`` carries the machine-readable
    ``error`` code (a :class:`~repro.errors.ServiceError` ``reason`` tag)
    and the human ``message``; :meth:`raise_for_status` re-raises the
    matching typed exception client-side.
    """

    kind: ClassVar[str] = "reply"

    request_id: str
    op: str
    ok: bool = True
    result: bytes = b""
    meta: dict = field(default_factory=dict)
    error: str = ""
    message: str = ""

    def header_fields(self) -> dict:
        return {
            "request_id": self.request_id,
            "op": self.op,
            "ok": self.ok,
            "meta": self.meta,
            "error": self.error,
            "message": self.message,
        }

    @property
    def payload(self) -> bytes:
        return self.result

    def array(self) -> np.ndarray:
        """Decode a decompress-result payload back into its array."""
        if "shape" not in self.meta or "dtype" not in self.meta:
            raise CorruptBlobError("reply carries no array geometry")
        dtype = np.dtype(self.meta["dtype"])
        return np.frombuffer(self.result, dtype=dtype).reshape(
            tuple(int(s) for s in self.meta["shape"])
        )

    def raise_for_status(self) -> "ServiceReply":
        if self.ok:
            return self
        from ..errors import ServiceError

        exc_type = _ERROR_TYPES.get(self.error, ServiceError)
        raise exc_type(self.message or f"request failed ({self.error})")


def _error_types() -> dict:
    from .. import errors

    return {
        cls.reason: cls
        for cls in (
            errors.ServiceError,
            errors.AdmissionError,
            errors.RateLimitedError,
            errors.QuotaExceededError,
            errors.QueueFullError,
            errors.ServiceClosedError,
            errors.ServiceRequestError,
            errors.TenantAccessError,
        )
    }


_ERROR_TYPES = _error_types()

_REQUEST_TYPES = {
    cls.kind: cls
    for cls in (
        CompressRequest,
        DecompressRequest,
        ArchivePutRequest,
        ArchiveGetRequest,
        RangeGetRequest,
        ServiceReply,
    )
}


def encode_message(msg: _Message) -> bytes:
    """Frame a message as ``RSV1 | u32 hlen | JSON | payload``."""
    payload = msg.payload
    header = dict(msg.header_fields())
    header["schema"] = SCHEMA_VERSION
    header["kind"] = msg.kind
    header["payload_len"] = len(payload)
    hbytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
    return WIRE_MAGIC + struct.pack("<I", len(hbytes)) + hbytes + payload


def _decode_header(data: bytes) -> tuple[dict, bytes]:
    if len(data) < 8:
        raise TruncatedStreamError(
            f"service message is {len(data)} bytes; the 8-byte frame "
            "prelude does not fit"
        )
    if data[:4] != WIRE_MAGIC:
        raise CorruptBlobError(
            f"not a service message (magic {data[:4]!r}, expected "
            f"{WIRE_MAGIC!r})"
        )
    (hlen,) = struct.unpack_from("<I", data, 4)
    if len(data) < 8 + hlen:
        raise TruncatedStreamError(
            f"service header declares {hlen} bytes, {len(data) - 8} present"
        )
    try:
        header = json.loads(data[8:8 + hlen].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptBlobError(f"service header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise CorruptBlobError("service header must be a JSON object")
    schema = header.get("schema")
    if not isinstance(schema, int) or isinstance(schema, bool):
        raise CorruptBlobError(f"service header schema {schema!r} is not an int")
    if schema != SCHEMA_VERSION:
        raise VersionError(
            f"service message schema {schema} is not supported "
            f"(this reader speaks {SCHEMA_VERSION})"
        )
    plen = header.get("payload_len")
    if not isinstance(plen, int) or isinstance(plen, bool) or plen < 0:
        raise CorruptBlobError(f"service header payload_len {plen!r} invalid")
    payload = data[8 + hlen:]
    if len(payload) < plen:
        raise TruncatedStreamError(
            f"service payload declares {plen} bytes, {len(payload)} present"
        )
    if len(payload) > plen:
        raise CorruptBlobError(
            f"service message carries {len(payload) - plen} trailing bytes"
        )
    return header, payload


def decode_message(data: bytes) -> _Message:
    """Decode one framed message back into its typed dataclass."""
    header, payload = _decode_header(data)
    kind = header.get("kind")
    cls = _REQUEST_TYPES.get(kind)
    if cls is None:
        raise CorruptBlobError(f"unknown service message kind {kind!r}")
    try:
        if cls is CompressRequest:
            return CompressRequest(
                tenant=_req_str(header, "tenant"),
                spec=JobSpec.from_dict(header.get("spec")),
                shape=tuple(int(s) for s in header.get("shape", ())),
                dtype=_req_str(header, "dtype"),
                data=payload,
                request_id=_req_str(header, "request_id"),
            )
        if cls is DecompressRequest:
            return DecompressRequest(
                tenant=_req_str(header, "tenant"),
                blob=payload,
                request_id=_req_str(header, "request_id"),
            )
        if cls is ArchivePutRequest:
            return ArchivePutRequest(
                tenant=_req_str(header, "tenant"),
                name=_req_str(header, "name"),
                spec=JobSpec.from_dict(header.get("spec")),
                shape=tuple(int(s) for s in header.get("shape", ())),
                dtype=_req_str(header, "dtype"),
                data=payload,
                request_id=_req_str(header, "request_id"),
            )
        if cls is ArchiveGetRequest:
            return ArchiveGetRequest(
                tenant=_req_str(header, "tenant"),
                name=_req_str(header, "name"),
                request_id=_req_str(header, "request_id"),
            )
        if cls is RangeGetRequest:
            level = header.get("level")
            if level is not None and (
                not isinstance(level, int) or isinstance(level, bool)
            ):
                raise CorruptBlobError(
                    f"range_get level must be an int or null, got {level!r}"
                )
            start = header.get("start", 0)
            if not isinstance(start, int) or isinstance(start, bool) or start < 0:
                raise CorruptBlobError(
                    f"range_get start must be a non-negative int, got {start!r}"
                )
            return RangeGetRequest(
                tenant=_req_str(header, "tenant"),
                name=_req_str(header, "name"),
                level=level,
                start=start,
                request_id=_req_str(header, "request_id"),
            )
        return ServiceReply(
            request_id=_req_str(header, "request_id"),
            op=_req_str(header, "op"),
            ok=bool(header.get("ok")),
            result=payload,
            meta=header.get("meta") or {},
            error=str(header.get("error") or ""),
            message=str(header.get("message") or ""),
        )
    except CorruptBlobError:
        raise
    except (TypeError, ValueError) as exc:
        raise CorruptBlobError(
            f"malformed {kind!r} message fields: {exc}"
        ) from exc


def _req_str(header: dict, key: str) -> str:
    val = header.get(key)
    if not isinstance(val, str):
        raise CorruptBlobError(f"service header field {key!r} must be a string")
    return val
