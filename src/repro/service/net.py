"""TCP transport for the gateway: length-prefixed RSV1 frames.

The wire protocol is deliberately minimal — each direction carries a
stream of ``u64-le length | RSV1 frame`` records, where the frame bytes
are exactly what :func:`~repro.service.messages.encode_message`
produces.  The server is one ``asyncio.start_server`` accept loop; every
connection runs requests through :meth:`Gateway.handle`, so all error
handling (admission rejections, malformed frames) already comes back as
typed ``ok=False`` replies and a protocol error only ever means the
*framing* itself broke.

:class:`ServiceClient` is the matching minimal client used by the load
generator and the tests; it pipelines naturally (send N frames, read N
replies) because the gateway answers in completion order per connection
request id, and the client matches replies by ``request_id``.
"""
from __future__ import annotations

import asyncio
import struct

import numpy as np

from ..errors import TruncatedStreamError
from .gateway import Gateway
from .messages import (
    ArchiveGetRequest,
    ArchivePutRequest,
    CompressRequest,
    DecompressRequest,
    JobSpec,
    RangeGetRequest,
    ServiceReply,
    decode_message,
    encode_message,
)

__all__ = ["start_server", "serve", "ServiceClient", "MAX_FRAME_BYTES"]

#: refuse frames larger than this (defense against a corrupt length word)
MAX_FRAME_BYTES = 4 << 30


async def _read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """Read one length-prefixed frame; None on clean EOF between frames."""
    try:
        head = await reader.readexactly(8)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TruncatedStreamError(
            f"connection closed mid-length-prefix ({len(exc.partial)}/8 bytes)"
        ) from exc
    (length,) = struct.unpack("<Q", head)
    if length > MAX_FRAME_BYTES:
        raise TruncatedStreamError(
            f"frame declares {length} bytes (limit {MAX_FRAME_BYTES})"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedStreamError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc


async def _write_frame(writer: asyncio.StreamWriter, frame: bytes) -> None:
    writer.write(struct.pack("<Q", len(frame)) + frame)
    await writer.drain()


async def start_server(
    gateway: Gateway, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Serve ``gateway`` over TCP; returns the listening server.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.sockets[0].getsockname()[1]`` (the tests and the CLI's
    startup banner both do).
    """

    async def _serve_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                frame = await _read_frame(reader)
                if frame is None:
                    break
                reply = await gateway.handle(frame)
                await _write_frame(writer, reply)
        except (TruncatedStreamError, ConnectionError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    return await asyncio.start_server(_serve_connection, host, port)


def serve(host: str = "127.0.0.1", port: int = 9753, *, config=None) -> None:
    """Run a gateway over TCP until interrupted (blocking).

    The convenience entry behind ``repro.serve()`` and ``repro serve``:
    builds a :class:`Gateway` from ``config`` (a
    :class:`~repro.service.gateway.GatewayConfig`, default settings when
    omitted), binds the TCP transport, and serves until ``SIGINT`` —
    then drains gracefully so inflight work and archive appends finish.
    """

    async def _main() -> None:
        gateway = Gateway(config)
        gateway.start()
        server = await start_server(gateway, host, port)
        addr = server.sockets[0].getsockname()
        print(f"repro gateway listening on {addr[0]}:{addr[1]}", flush=True)
        try:
            async with server:
                await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await gateway.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


class ServiceClient:
    """Minimal async client for one gateway connection.

    Each call sends one request frame and awaits its reply;
    ``raise_for_status=True`` (default) re-raises typed service errors
    client-side so callers interact with the remote gateway exactly as
    they would with an in-process one.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "ServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    async def request(self, message, *, raise_for_status: bool = True) -> ServiceReply:
        """Send one typed request, await and decode its reply."""
        if self._writer is None or self._reader is None:
            raise ConnectionError("client is not connected")
        await _write_frame(self._writer, encode_message(message))
        frame = await _read_frame(self._reader)
        if frame is None:
            raise TruncatedStreamError("server closed before replying")
        reply = decode_message(frame)
        if not isinstance(reply, ServiceReply):
            raise TruncatedStreamError(
                f"expected a reply frame, got {type(reply).__name__}"
            )
        if raise_for_status:
            reply.raise_for_status()
        return reply

    # -- convenience wrappers (what loadgen and notebooks actually call) --

    @staticmethod
    def _spec(spec: JobSpec | None, fields: dict) -> JobSpec | None:
        if fields and spec is not None:
            raise TypeError("pass either spec= or JobSpec fields, not both")
        return JobSpec(**fields) if fields else spec

    async def compress(
        self,
        tenant: str,
        array: np.ndarray,
        spec: JobSpec | None = None,
        **spec_fields,
    ) -> ServiceReply:
        """Compress ``array``; spec knobs may be passed directly
        (``error_bound=1e-3, compressor="qoz"``) or as a ``JobSpec``."""
        spec = self._spec(spec, spec_fields)
        return await self.request(CompressRequest.from_array(tenant, array, spec))

    async def decompress(self, tenant: str, blob: bytes) -> np.ndarray:
        reply = await self.request(DecompressRequest(tenant=tenant, blob=blob))
        return reply.array()

    async def archive_put(
        self,
        tenant: str,
        name: str,
        array: np.ndarray,
        spec: JobSpec | None = None,
        **spec_fields,
    ) -> ServiceReply:
        spec = self._spec(spec, spec_fields)
        return await self.request(
            ArchivePutRequest.from_array(tenant, name, array, spec)
        )

    async def archive_get(self, tenant: str, name: str) -> bytes:
        reply = await self.request(ArchiveGetRequest(tenant=tenant, name=name))
        return reply.result

    async def range_get(
        self,
        tenant: str,
        name: str,
        level: int | None = None,
        start: int = 0,
    ) -> ServiceReply:
        """Fetch the byte range of ``name`` that decodes through ``level``.

        Returns the full reply (not just bytes): ``result`` holds
        ``blob[start:offset[level]]`` and ``meta`` the level table, so a
        caller can preview with
        :func:`repro.compressors.progressive.decompress_prefix` and then
        refine by re-requesting with ``start=`` set to what it already
        holds — see :meth:`refine`.
        """
        return await self.request(
            RangeGetRequest(tenant=tenant, name=name, level=level, start=start)
        )

    async def refine(
        self, tenant: str, name: str, held: bytes, level: int | None = None
    ) -> bytes:
        """Extend an already-held prefix of ``name`` to ``level`` (default
        full): fetches only the missing suffix and returns the longer
        prefix.  ``refine(..., held=b"")`` degenerates to a plain fetch."""
        reply = await self.range_get(tenant, name, level=level, start=len(held))
        return bytes(held) + reply.result
