"""Block-parallel compression over worker processes (real SZ3's ``-T``).

Splits the domain into slabs along the longest axis, compresses each in its
own process, and frames the results so decompression (also parallelizable)
reassembles the array.  Slab independence costs a little ratio (prediction
cannot cross slab boundaries) and buys near-linear wall-clock scaling — the
same trade real multithreaded compressors make.

Two performance properties distinguish this from a naive ``pool.map``:

* **Shared-memory transport.**  Slab payloads never travel through the
  pickle pipe.  On compress the full input is placed in a
  ``multiprocessing.shared_memory`` segment once and workers attach by name,
  reading only their slab slice; on decompress workers write their
  reconstructed slab directly into a preallocated shared output array, so
  the parent performs zero per-slab array copies through IPC.  When shared
  memory is unavailable (or allocation fails) everything falls back to the
  original pickled path transparently.
* **Persistent pool.**  The worker pool is created lazily on first use and
  reused across ``compress``/``decompress`` calls, amortizing process
  startup over a whole experiment sweep instead of paying it per call.
  ``close()`` (or garbage collection) shuts it down.
"""
from __future__ import annotations

import json
import multiprocessing
import os
import struct
import weakref
from concurrent.futures import ProcessPoolExecutor
from typing import Any

import numpy as np

from . import obs
from .core.config import QPConfig
from .io.integrity import is_sealed, seal, unseal
from .streaming import slab_slices

__all__ = ["ParallelCompressor", "create_fork_pool"]

_MAGIC = b"RPAR"

try:
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - stdlib module; guard for odd builds
    _shm = None


def _attach_shm(name: str):
    """Attach to an existing shared-memory segment without adopting ownership.

    Child processes that merely *attach* must not touch the resource tracker:
    forked workers share the parent's tracker process, so a register (or a
    compensating unregister) from a worker corrupts the parent's bookkeeping
    and the tracker logs spurious KeyErrors at unlink time (CPython's
    well-known over-registration issue).  Registration is suppressed for the
    duration of the attach instead.
    """
    from multiprocessing import resource_tracker

    orig_register = resource_tracker.register

    def _no_register(rname, rtype):
        if rtype != "shared_memory":
            orig_register(rname, rtype)

    resource_tracker.register = _no_register
    try:
        return _shm.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig_register


def _compress_one(args) -> bytes:
    data, name, eb, qp_dict, kwargs, auto = args
    from .compressors import get_compressor

    kw = dict(kwargs)
    if qp_dict is not None:
        kw["qp"] = QPConfig.from_dict(qp_dict)
    return get_compressor(name, eb, **kw).compress(data, auto=auto)


def _compress_one_shm(args) -> bytes:
    shm_name, dtype_str, shape, axis, lo, hi, name, eb, qp_dict, kwargs, auto = args
    seg = _attach_shm(shm_name)
    try:
        full = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=seg.buf)
        idx = [slice(None)] * len(shape)
        idx[axis] = slice(lo, hi)
        # must be a genuine copy (ascontiguousarray could return a view into
        # the segment, which dies when the mapping closes below)
        slab = full[tuple(idx)].copy()
        del full
    finally:
        seg.close()
    return _compress_one((slab, name, eb, qp_dict, kwargs, auto))


def _decompress_one(blob: bytes) -> np.ndarray:
    from .compressors import decompress_any

    return decompress_any(blob)


def _decompress_one_shm(args) -> None:
    blob, shm_name, dtype_str, shape, axis, lo, hi = args
    part = _decompress_one(blob)
    seg = _attach_shm(shm_name)
    try:
        full = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=seg.buf)
        idx = [slice(None)] * len(shape)
        idx[axis] = slice(lo, hi)
        full[tuple(idx)] = part
        del full
    finally:
        seg.close()


#: worker-job dispatch table for the observed wrapper below; keys are stable
#: job kinds, values must be module-level functions (picklable by reference)
_JOB_FNS = {
    "compress": _compress_one,
    "compress_shm": _compress_one_shm,
    "decompress": _decompress_one,
    "decompress_shm": _decompress_one_shm,
}


def _observed_job(args) -> tuple:
    """Run one slab job under a worker-local observation.

    Worker processes cannot write into the parent's trace buffers, so the
    job records spans/metrics into a fresh :class:`repro.obs.Observation`
    and ships its serialized buffers back alongside the result; the parent
    merges them in job-submission order (see ``ParallelCompressor._run_jobs``).
    """
    kind, inner = args
    ob = obs.Observation()
    with obs.observe(ob):
        result = _JOB_FNS[kind](inner)
    return result, ob.to_payload()


def _pool_worker_init(suppress_kernel_warnings: bool) -> None:
    """Initializer run in every fork-pool worker.

    Carries the parent's warning-dedupe decision into the worker: the
    parent resolves every kernel stage (and warns, once) before the pool
    exists, so workers re-deriving the same fallback must not re-fire the
    warning N times.  The ``kernel.fallback`` counter still counts per
    worker."""
    if suppress_kernel_warnings:
        from . import kernels

        kernels.suppress_fallback_warnings(True)


def create_fork_pool(workers: int) -> ProcessPoolExecutor:
    """Build the persistent fork-based worker pool the stack shares.

    One construction point for every fork-pool user (the slab-parallel
    compressor and the service gateway): kernel backends are resolved in
    the parent first so any fallback warning fires exactly once, workers
    inherit the warning-dedupe flag through :func:`_pool_worker_init`, and
    the fork start method is preferred for cheap startup + shared-memory
    attach (spawn is the automatic fallback where fork is unavailable).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    from . import kernels

    kernels.active_backends()
    ctx = None
    if "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
    return ProcessPoolExecutor(
        max_workers=workers, mp_context=ctx,
        initializer=_pool_worker_init, initargs=(True,),
    )


def _effective_cores() -> int:
    """CPUs actually usable by this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _merge_consecutive_views(
    parts: "list[np.ndarray]", axis: int
) -> "np.ndarray | None":
    """Reassemble slabs without copying when they already tile one buffer.

    The batched decode path stacks equal-geometry slabs into a single
    contiguous array and hands back axis-0 views of it; for an axis-0 slab
    split those views, in order, ARE the concatenated volume.  Detect that
    case by address arithmetic (each part must start exactly where the
    previous one ended inside the shared C-contiguous base) and return the
    base reshaped — skipping a full-volume allocate-and-copy.  Returns None
    whenever anything does not line up.
    """
    if axis != 0 or len(parts) < 2:
        return None
    base = parts[0].base
    if base is None or not base.flags.c_contiguous:
        return None
    ptr = base.__array_interface__["data"][0]
    expect = ptr
    for p in parts:
        if (
            p.base is not base
            or p.dtype != base.dtype
            or not p.flags.c_contiguous
            or p.shape[1:] != parts[0].shape[1:]
            or p.__array_interface__["data"][0] != expect
        ):
            return None
        expect += p.nbytes
    if expect - ptr != base.nbytes:
        return None
    rows = sum(p.shape[0] for p in parts)
    return base.reshape((rows,) + parts[0].shape[1:])


def _peek_blob_header(blob: bytes) -> dict:
    """Read a slab blob's JSON header (shape/dtype) without decompressing."""
    if blob[:4] != b"RPRC":
        raise ValueError("not a repro compressed blob")
    (hlen,) = struct.unpack_from("<I", blob, 4)
    return json.loads(blob[8:8 + hlen].decode())


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    pool.shutdown(wait=False, cancel_futures=True)


#: Huffman block size for slab containers (vs the 4096 codec default).
#: Decode cost per container batch is ~``block_size`` lockstep steps, so
#: smaller blocks are the main lever for slab decode latency; 1024 cuts the
#: joint decode 2–3.5× on the bench slabs for <2% compressed-size growth.
SLAB_HUFFMAN_BLOCK = 1024


class ParallelCompressor:
    """Slab-parallel wrapper around any registered compressor.

    Satisfies the :class:`repro.compressors.Codec` protocol: ``compress``
    takes a keyword-only ``checksum`` that seals the whole slab container
    in the v1 integrity envelope, and ``decompress`` accepts both the
    canonical and the sealed framing.
    """

    @property
    def name(self) -> str:
        return f"parallel[{self.base}]"

    def __init__(
        self,
        base: str,
        error_bound: float,
        workers: int = 2,
        n_slabs: int | None = None,
        qp: QPConfig | None = None,
        **kwargs,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        from .compressors import constructor_accepts, supports_qp

        self.base = base
        self.error_bound = float(error_bound)
        self.workers = workers
        self.n_slabs = n_slabs
        self.qp = qp or QPConfig.disabled()
        if self.qp.enabled and not supports_qp(base):
            raise ValueError(
                f"compressor {base!r} does not support quantization index "
                "prediction; drop the qp argument or pick one of the "
                "prediction+quantization bases"
            )
        # only capable bases receive the config — others would reject (or
        # silently swallow) an unexpected keyword
        self._qp_dict = self.qp.to_dict() if supports_qp(base) else None
        # slab streams are short: block-synchronous Huffman decode costs
        # ``block_size`` Python-level steps regardless of lane count, so a
        # smaller block decodes slabs several times faster for ~8 bytes of
        # stored offset per extra block (<2% of a typical slab payload).
        # Only offered to bases whose constructor understands the knob;
        # explicit caller values (including None) win.
        if "huffman_block_size" not in kwargs and constructor_accepts(
            base, "huffman_block_size"
        ):
            kwargs["huffman_block_size"] = SLAB_HUFFMAN_BLOCK
        self.kwargs = kwargs
        self._pool: ProcessPoolExecutor | None = None
        self._pool_finalizer = None

    # -- worker pool --------------------------------------------------------

    def _get_pool(self) -> ProcessPoolExecutor:
        """Lazily created pool, reused across compress/decompress calls."""
        if self._pool is None:
            self._pool = create_fork_pool(self.workers)
            self._pool_finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool
            )
        return self._pool

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool_finalizer is not None:
            self._pool_finalizer()
            self._pool_finalizer = None
        self._pool = None

    # -- observed job execution --------------------------------------------

    def _run_jobs(self, kind: str, fn, jobs: list, parallel: bool) -> list:
        """Run slab jobs, threading observability buffers out of the pool.

        Serial jobs record straight into the active observation (same
        process).  Parallel jobs, when an observation is active, are wrapped
        in :func:`_observed_job` so each worker records into a local buffer
        shipped back with its result; the buffers are merged here in
        job-submission order, so the combined trace is deterministic no
        matter how the pool scheduled the work.
        """
        if not parallel:
            return [fn(j) for j in jobs]
        ob = obs.current()
        if ob is None:
            return list(self._get_pool().map(fn, jobs))
        tagged = [(kind, j) for j in jobs]
        out = []
        for i, (res, payload) in enumerate(self._get_pool().map(_observed_job, tagged)):
            ob.merge_payload(payload, worker=f"w{i}")
            out.append(res)
        return out

    # -- slab geometry ------------------------------------------------------

    def _slabs(self, shape: tuple[int, ...]) -> tuple[int, list[slice]]:
        n = self.n_slabs or self.workers
        # prefer the leading axis: C-order slabs are then contiguous views on
        # the compress side and consecutive in memory on the decompress side,
        # where reassembly can be a zero-copy reshape of the decoded stack;
        # fall back to the longest axis when axis 0 cannot host the slab count
        axis = int(np.argmax(shape))
        if shape[0] // 8 >= min(n, shape[axis] // 8 or 1):
            axis = 0
        n = max(1, min(n, shape[axis] // 8 or 1))
        return axis, slab_slices(shape[axis], n)

    # -- compression --------------------------------------------------------

    def compress(
        self,
        data: np.ndarray,
        *,
        checksum: bool = False,
        auto: bool = False,
        adaptive: Any = None,
    ) -> bytes:
        """Compress slab-parallel; the standard keyword knob set applies.

        ``auto`` runs the sampling tuner inside each slab job (each slab is
        tuned independently); ``adaptive`` forwards an
        :class:`~repro.core.config.AdaptiveConfig` (or its dict form) to
        every slab's base compressor and raises ``ValueError`` when the
        base does not take one.
        """
        data = np.asarray(data)
        kwargs = self._job_kwargs(adaptive)
        axis, slabs = self._slabs(data.shape)
        parallel = self.workers > 1 and len(slabs) > 1
        with obs.span(
            "parallel.compress", base=self.base, slabs=len(slabs), axis=axis
        ):
            blobs: list[bytes] | None = None
            if parallel and _shm is not None:
                blobs = self._compress_shm(data, axis, slabs, kwargs, auto)
            if blobs is None:
                jobs = []
                for sl in slabs:
                    idx = [slice(None)] * data.ndim
                    idx[axis] = sl
                    jobs.append((
                        np.ascontiguousarray(data[tuple(idx)]),
                        self.base, self.error_bound, self._qp_dict, kwargs,
                        auto,
                    ))
                blobs = self._run_jobs("compress", _compress_one, jobs, parallel)
            head = _MAGIC + struct.pack("<BI", axis, len(blobs))
            body = b"".join(struct.pack("<Q", len(b)) + b for b in blobs)
        out = head + body
        return seal(out) if checksum else out

    def _job_kwargs(self, adaptive: Any) -> dict:
        """Per-call constructor kwargs for the slab jobs (adaptive merge)."""
        if adaptive is None:
            return self.kwargs
        from .compressors import constructor_accepts

        if not constructor_accepts(self.base, "adaptive"):
            raise ValueError(
                f"compressor {self.base!r} does not support adaptive "
                "quantization; drop the adaptive argument"
            )
        if hasattr(adaptive, "to_dict"):
            adaptive = adaptive.to_dict()
        return dict(self.kwargs, adaptive=adaptive)

    def _compress_shm(
        self, data: np.ndarray, axis: int, slabs: list[slice],
        kwargs: dict, auto: bool,
    ) -> list[bytes] | None:
        """Compress via a shared input segment; None → caller falls back."""
        try:
            seg = _shm.SharedMemory(create=True, size=max(1, data.nbytes))
        except Exception:
            return None
        try:
            np.ndarray(data.shape, dtype=data.dtype, buffer=seg.buf)[...] = data
            jobs = [(
                seg.name, data.dtype.str, data.shape, axis, sl.start, sl.stop,
                self.base, self.error_bound, self._qp_dict, kwargs, auto,
            ) for sl in slabs]
            return self._run_jobs("compress_shm", _compress_one_shm, jobs, True)
        finally:
            seg.close()
            seg.unlink()

    # -- decompression ------------------------------------------------------

    def decompress(self, blob: bytes) -> np.ndarray:
        if is_sealed(blob):
            blob = unseal(blob)
        if blob[:4] != _MAGIC:
            raise ValueError("not a parallel container")
        axis, n = struct.unpack_from("<BI", blob, 4)
        off = 9
        parts_raw = []
        for _ in range(n):
            (size,) = struct.unpack_from("<Q", blob, off)
            off += 8
            parts_raw.append(blob[off:off + size])
            off += size
        if off != len(blob):
            raise ValueError("parallel container corrupt")
        with obs.span("parallel.decompress", base=self.base, slabs=n, axis=axis):
            if n > 1 and (self.workers == 1 or _effective_cores() < 2):
                # No real CPU concurrency to exploit (or serial requested):
                # N time-sliced worker processes each pay a full Python decode
                # loop per slab, which is strictly slower than one in-process
                # batched decode (joint Huffman lockstep + stacked QP inverse
                # across all slabs).  Running in-process also keeps perf-stage
                # accounting visible to the caller's profiler.
                return self._decompress_batched(parts_raw, axis)
            parallel = self.workers > 1 and n > 1
            if parallel and _shm is not None:
                out = self._decompress_shm(parts_raw, axis)
                if out is not None:
                    return out
            parts = self._run_jobs("decompress", _decompress_one, parts_raw, parallel)
            return np.concatenate(parts, axis=axis)

    def _decompress_batched(self, parts_raw: list[bytes], axis: int) -> np.ndarray:
        """Decode every slab in one in-process batch and assemble in place.

        ``decompress_many`` groups the slab blobs by (compressor, error
        bound) — always one group here — so all index streams go through a
        single joint Huffman decode sharing one set of memoized tables, and
        equal-geometry slabs share one stacked QP wavefront inverse.  Slab
        arrays are written straight into the preallocated output; nothing
        round-trips through pickle or shared memory.
        """
        from .compressors.registry import decompress_many

        parts = decompress_many(parts_raw)
        merged = _merge_consecutive_views(parts, axis)
        if merged is not None:
            return merged
        out_shape = list(parts[0].shape)
        out_shape[axis] = sum(p.shape[axis] for p in parts)
        out = np.empty(tuple(out_shape), dtype=parts[0].dtype)
        idx = [slice(None)] * len(out_shape)
        lo = 0
        for p in parts:
            hi = lo + p.shape[axis]
            idx[axis] = slice(lo, hi)
            out[tuple(idx)] = p
            lo = hi
        return out

    def _decompress_shm(
        self, parts_raw: list[bytes], axis: int
    ) -> np.ndarray | None:
        """Decompress slabs straight into one shared output array.

        The output geometry comes from peeking each slab blob's header
        (shape + dtype), so the full array is preallocated once and every
        worker writes its slice in place — no per-slab pickling back and no
        final concatenate copy.  Returns None to signal fallback.
        """
        headers = [_peek_blob_header(b) for b in parts_raw]
        shapes = [tuple(h["shape"]) for h in headers]
        dtype = np.dtype(headers[0]["dtype"])
        out_shape = list(shapes[0])
        out_shape[axis] = sum(s[axis] for s in shapes)
        out_shape = tuple(out_shape)
        nbytes = int(np.prod(out_shape, dtype=np.int64)) * dtype.itemsize
        try:
            seg = _shm.SharedMemory(create=True, size=max(1, nbytes))
        except Exception:
            return None
        try:
            jobs = []
            lo = 0
            for raw, s in zip(parts_raw, shapes):
                hi = lo + s[axis]
                jobs.append((raw, seg.name, dtype.str, out_shape, axis, lo, hi))
                lo = hi
            self._run_jobs("decompress_shm", _decompress_one_shm, jobs, True)
            return np.ndarray(out_shape, dtype=dtype, buffer=seg.buf).copy()
        finally:
            seg.close()
            seg.unlink()
