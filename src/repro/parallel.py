"""Block-parallel compression over worker processes (real SZ3's ``-T``).

Splits the domain into slabs along the longest axis, compresses each in its
own process, and frames the results so decompression (also parallelizable)
reassembles the array.  Slab independence costs a little ratio (prediction
cannot cross slab boundaries) and buys near-linear wall-clock scaling — the
same trade real multithreaded compressors make.
"""
from __future__ import annotations

import struct
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from .core.config import QPConfig

__all__ = ["ParallelCompressor"]

_MAGIC = b"RPAR"


def _compress_one(args) -> bytes:
    data, name, eb, qp_dict, kwargs = args
    from .compressors import get_compressor

    kw = dict(kwargs)
    if name in ("mgard", "sz3", "qoz", "hpez", "sperr"):
        kw["qp"] = QPConfig.from_dict(qp_dict)
    return get_compressor(name, eb, **kw).compress(data)


def _decompress_one(blob: bytes) -> np.ndarray:
    from .compressors import decompress_any

    return decompress_any(blob)


class ParallelCompressor:
    """Slab-parallel wrapper around any registered compressor."""

    def __init__(
        self,
        base: str,
        error_bound: float,
        workers: int = 2,
        n_slabs: int | None = None,
        qp: QPConfig | None = None,
        **kwargs,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.base = base
        self.error_bound = float(error_bound)
        self.workers = workers
        self.n_slabs = n_slabs
        self.qp = qp or QPConfig.disabled()
        self.kwargs = kwargs

    def _slabs(self, shape: tuple[int, ...]) -> tuple[int, list[slice]]:
        axis = int(np.argmax(shape))
        n = self.n_slabs or self.workers
        n = max(1, min(n, shape[axis] // 8 or 1))
        edges = np.linspace(0, shape[axis], n + 1, dtype=int)
        return axis, [slice(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:])
                      if b > a]

    def compress(self, data: np.ndarray) -> bytes:
        data = np.asarray(data)
        axis, slabs = self._slabs(data.shape)
        jobs = []
        for sl in slabs:
            idx = [slice(None)] * data.ndim
            idx[axis] = sl
            jobs.append((
                np.ascontiguousarray(data[tuple(idx)]),
                self.base, self.error_bound, self.qp.to_dict(), self.kwargs,
            ))
        if self.workers > 1 and len(jobs) > 1:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                blobs = list(pool.map(_compress_one, jobs))
        else:
            blobs = [_compress_one(j) for j in jobs]
        head = _MAGIC + struct.pack("<BI", axis, len(blobs))
        body = b"".join(struct.pack("<Q", len(b)) + b for b in blobs)
        return head + body

    def decompress(self, blob: bytes) -> np.ndarray:
        if blob[:4] != _MAGIC:
            raise ValueError("not a parallel container")
        axis, n = struct.unpack_from("<BI", blob, 4)
        off = 9
        parts_raw = []
        for _ in range(n):
            (size,) = struct.unpack_from("<Q", blob, off)
            off += 8
            parts_raw.append(blob[off:off + size])
            off += size
        if off != len(blob):
            raise ValueError("parallel container corrupt")
        if self.workers > 1 and n > 1:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                parts = list(pool.map(_decompress_one, parts_raw))
        else:
            parts = [_decompress_one(b) for b in parts_raw]
        return np.concatenate(parts, axis=axis)
