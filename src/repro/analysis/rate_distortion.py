"""Rate–distortion sweeps: the machinery behind Figures 10–15."""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compressors import get_compressor
from ..core.config import QPConfig
from ..metrics import EvalResult, evaluate

__all__ = ["RDPoint", "rd_sweep", "qp_comparison", "max_cr_gain"]

#: the paper sweeps value-range-relative error bounds around this ladder
DEFAULT_REL_BOUNDS = (1e-2, 1e-3, 1e-4, 1e-5)


@dataclass
class RDPoint:
    """One point of a rate-distortion curve (bit-rate vs PSNR)."""

    rel_bound: float
    base: EvalResult
    qp: EvalResult

    @property
    def cr_gain(self) -> float:
        """Relative CR increase of +QP over the base at identical PSNR."""
        return self.qp.cr / self.base.cr - 1.0


def rd_sweep(
    compressor: str,
    data: np.ndarray,
    rel_bounds: tuple[float, ...] = DEFAULT_REL_BOUNDS,
    qp: QPConfig | None = None,
    **kwargs,
) -> list[EvalResult]:
    """Evaluate one compressor over a ladder of value-range-relative bounds."""
    value_range = float(data.max() - data.min()) or 1.0
    results = []
    for rb in rel_bounds:
        comp = get_compressor(compressor, rb * value_range, qp=qp, **kwargs) \
            if compressor in ("sz3", "qoz", "hpez", "mgard") \
            else get_compressor(compressor, rb * value_range, **kwargs)
        results.append(evaluate(comp, data, label=compressor + ("+QP" if qp and qp.enabled else "")))
    return results


def qp_comparison(
    compressor: str,
    data: np.ndarray,
    rel_bounds: tuple[float, ...] = DEFAULT_REL_BOUNDS,
    qp: QPConfig | None = None,
    **kwargs,
) -> list[RDPoint]:
    """Base vs +QP rate-distortion pairs — the paper's left-shift curves.

    The PSNR of each pair must match exactly (QP never alters the data);
    this is asserted."""
    qp = qp or QPConfig()
    base = rd_sweep(compressor, data, rel_bounds, qp=None, **kwargs)
    plus = rd_sweep(compressor, data, rel_bounds, qp=qp, **kwargs)
    points = []
    for rb, b, q in zip(rel_bounds, base, plus):
        if abs(b.psnr - q.psnr) > 1e-9 and np.isfinite(b.psnr):
            raise AssertionError(
                f"QP changed PSNR on {compressor} at {rb}: {b.psnr} vs {q.psnr}"
            )
        points.append(RDPoint(rel_bound=rb, base=b, qp=q))
    return points


def max_cr_gain(points: list[RDPoint]) -> tuple[float, float]:
    """(best relative CR gain, PSNR at that point) — the annotation the paper
    attaches to each rate-distortion figure."""
    best = max(points, key=lambda p: p.cr_gain)
    return best.cr_gain, best.base.psnr
