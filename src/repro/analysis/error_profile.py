"""Compression-error distribution analysis.

Lindstrom's tech report (the paper's ref [30]) characterizes lossy-compressor
error distributions; these tools regenerate that style of analysis for any
compressor here: normalized error histograms, uniformity statistics (linear
quantization yields near-uniform error in ``[-eb, eb]``), and spatial error
autocorrelation (whether errors are white or structured — structured error
biases derived quantities).
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ErrorProfile", "error_profile"]


@dataclass
class ErrorProfile:
    """Summary of the point-wise error field ``d' - d``.

    ``hist``/``edges``      normalized-error histogram over [-1, 1] (in eb units)
    ``mean_bias``           mean error / eb (0 for unbiased quantizers)
    ``rms``                 RMS error / eb (1/sqrt(3) ~ 0.577 for uniform)
    ``uniformity``          L1 distance between the histogram and uniform
    ``lag1_autocorr``       mean lag-1 spatial autocorrelation of the error
    ``bound_utilization``   max |error| / eb
    """

    hist: np.ndarray
    edges: np.ndarray
    mean_bias: float
    rms: float
    uniformity: float
    lag1_autocorr: float
    bound_utilization: float


def error_profile(
    original: np.ndarray,
    decoded: np.ndarray,
    error_bound: float,
    bins: int = 51,
) -> ErrorProfile:
    if error_bound <= 0:
        raise ValueError("error_bound must be positive")
    err = (decoded.astype(np.float64) - original.astype(np.float64)) / error_bound
    hist, edges = np.histogram(err, bins=bins, range=(-1.0, 1.0), density=True)
    # density over width 2 -> uniform density is 0.5
    uniformity = float(np.abs(hist - 0.5).mean() / 0.5)

    acs = []
    for ax in range(err.ndim):
        if err.shape[ax] < 3:
            continue
        a = np.moveaxis(err, ax, 0)
        x, y = a[:-1].ravel(), a[1:].ravel()
        sx, sy = x.std(), y.std()
        if sx > 0 and sy > 0:
            acs.append(float(np.mean((x - x.mean()) * (y - y.mean())) / (sx * sy)))
    return ErrorProfile(
        hist=hist,
        edges=edges,
        mean_bias=float(err.mean()),
        rms=float(np.sqrt(np.mean(err**2))),
        uniformity=uniformity,
        lag1_autocorr=float(np.mean(acs)) if acs else 0.0,
        bound_utilization=float(np.abs(err).max()),
    )
