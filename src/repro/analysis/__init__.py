"""Evaluation harness helpers: rate-distortion sweeps, BD metrics, error
profiles, table rendering."""
from .bdrate import bd_psnr, bd_rate
from .error_profile import ErrorProfile, error_profile
from .rate_distortion import (
    DEFAULT_REL_BOUNDS,
    RDPoint,
    max_cr_gain,
    qp_comparison,
    rd_sweep,
)
from .tables import format_table, print_table

__all__ = [
    "DEFAULT_REL_BOUNDS",
    "RDPoint",
    "rd_sweep",
    "qp_comparison",
    "max_cr_gain",
    "format_table",
    "print_table",
    "bd_rate",
    "bd_psnr",
    "ErrorProfile",
    "error_profile",
]
