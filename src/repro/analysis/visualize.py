"""Image rendering for index-array visualization (Figures 3 and 5).

The paper's key characterization artefacts are *images* of quantization-index
slices.  This module renders them without plotting dependencies: arrays map
through a blue-white-red diverging colormap to binary PPM (or grayscale PGM)
files any image viewer opens.  Used by ``examples/visualize_indices.py`` to
regenerate Figure 3/5 panels.
"""
from __future__ import annotations

import pathlib

import numpy as np

__all__ = ["to_ppm", "to_pgm", "save_index_slice", "ascii_heatmap"]


def _normalize(values: np.ndarray, vmin: float, vmax: float) -> np.ndarray:
    v = np.clip(values.astype(np.float64), vmin, vmax)
    span = vmax - vmin
    return (v - vmin) / span if span > 0 else np.zeros_like(v)


def to_ppm(values: np.ndarray, vmin: float, vmax: float, scale: int = 1) -> bytes:
    """Render a 2-D array to binary PPM with a diverging blue-white-red map
    (the paper's index plots use exactly this kind of map)."""
    if values.ndim != 2:
        raise ValueError("to_ppm expects a 2-D array")
    t = _normalize(values, vmin, vmax)  # 0 .. 1, 0.5 = neutral
    # blue (0,0,255) -> white -> red (255,0,0)
    r = np.where(t >= 0.5, 255, 510 * t).astype(np.uint8)
    b = np.where(t <= 0.5, 255, 510 * (1 - t)).astype(np.uint8)
    g = (255 - 510 * np.abs(t - 0.5)).astype(np.uint8)
    img = np.stack([r, g, b], axis=-1)
    if scale > 1:
        img = np.repeat(np.repeat(img, scale, axis=0), scale, axis=1)
    h, w = img.shape[:2]
    return f"P6\n{w} {h}\n255\n".encode() + img.tobytes()


def to_pgm(values: np.ndarray, vmin: float, vmax: float, scale: int = 1) -> bytes:
    """Render a 2-D array to grayscale binary PGM."""
    if values.ndim != 2:
        raise ValueError("to_pgm expects a 2-D array")
    img = (255 * _normalize(values, vmin, vmax)).astype(np.uint8)
    if scale > 1:
        img = np.repeat(np.repeat(img, scale, axis=0), scale, axis=1)
    h, w = img.shape
    return f"P5\n{w} {h}\n255\n".encode() + img.tobytes()


def save_index_slice(
    path: str | pathlib.Path,
    indices2d: np.ndarray,
    value_range: int = 8,
    scale: int = 2,
) -> pathlib.Path:
    """Save one index slice as the paper renders it (range [-v, v])."""
    path = pathlib.Path(path)
    data = to_ppm(indices2d, -value_range, value_range, scale=scale)
    path.write_bytes(data)
    return path


_ASCII_RAMP = " .:-=+*#%@"


def ascii_heatmap(values: np.ndarray, vmin: float, vmax: float, width: int = 64) -> str:
    """Terminal-friendly heatmap of |values| (for example scripts/logs)."""
    if values.ndim != 2:
        raise ValueError("ascii_heatmap expects a 2-D array")
    step = max(1, values.shape[1] // width)
    sub = np.abs(values[::step, ::step])
    t = _normalize(np.abs(sub), 0, max(abs(vmin), abs(vmax)))
    idx = (t * (len(_ASCII_RAMP) - 1)).astype(int)
    return "\n".join("".join(_ASCII_RAMP[i] for i in row) for row in idx)
