"""Bjontegaard-delta metrics between rate-distortion curves.

BD-rate is the community-standard scalar summary of "curve A vs curve B":
the average bitrate difference (in percent) at equal PSNR over the
overlapping quality range.  The paper reports per-point CR increases; BD-rate
condenses a whole figure 10-15 panel into one number, which the harness uses
to summarize QP's effect.
"""
from __future__ import annotations

import numpy as np

__all__ = ["bd_rate", "bd_psnr"]


def _fit(rates: np.ndarray, psnrs: np.ndarray) -> np.ndarray:
    """Cubic fit of log-rate as a function of PSNR (standard BD recipe)."""
    order = np.argsort(psnrs)
    p = psnrs[order]
    r = np.log(rates[order])
    degree = min(3, p.size - 1)
    return np.polyfit(p, r, degree)


def bd_rate(
    rates_ref, psnrs_ref, rates_test, psnrs_test
) -> float:
    """Average bitrate change of *test* relative to *ref* at equal PSNR, in
    percent (negative = test needs fewer bits)."""
    rates_ref = np.asarray(rates_ref, dtype=np.float64)
    psnrs_ref = np.asarray(psnrs_ref, dtype=np.float64)
    rates_test = np.asarray(rates_test, dtype=np.float64)
    psnrs_test = np.asarray(psnrs_test, dtype=np.float64)
    if min(rates_ref.size, rates_test.size) < 2:
        raise ValueError("need at least 2 rate-distortion points per curve")
    if (rates_ref <= 0).any() or (rates_test <= 0).any():
        raise ValueError("rates must be positive")
    lo = max(psnrs_ref.min(), psnrs_test.min())
    hi = min(psnrs_ref.max(), psnrs_test.max())
    if hi <= lo:
        raise ValueError("rate-distortion curves do not overlap in PSNR")
    p_ref = np.polyint(_fit(rates_ref, psnrs_ref))
    p_test = np.polyint(_fit(rates_test, psnrs_test))
    avg_ref = (np.polyval(p_ref, hi) - np.polyval(p_ref, lo)) / (hi - lo)
    avg_test = (np.polyval(p_test, hi) - np.polyval(p_test, lo)) / (hi - lo)
    return float((np.exp(avg_test - avg_ref) - 1.0) * 100.0)


def bd_psnr(
    rates_ref, psnrs_ref, rates_test, psnrs_test
) -> float:
    """Average PSNR change of *test* over *ref* at equal bitrate, in dB."""
    rates_ref = np.asarray(rates_ref, dtype=np.float64)
    psnrs_ref = np.asarray(psnrs_ref, dtype=np.float64)
    rates_test = np.asarray(rates_test, dtype=np.float64)
    psnrs_test = np.asarray(psnrs_test, dtype=np.float64)
    if min(rates_ref.size, rates_test.size) < 2:
        raise ValueError("need at least 2 rate-distortion points per curve")
    lr_ref, lr_test = np.log(rates_ref), np.log(rates_test)
    lo = max(lr_ref.min(), lr_test.min())
    hi = min(lr_ref.max(), lr_test.max())
    if hi <= lo:
        raise ValueError("rate-distortion curves do not overlap in rate")

    def fit(lr, ps):
        order = np.argsort(lr)
        degree = min(3, lr.size - 1)
        return np.polyfit(lr[order], ps[order], degree)

    p_ref = np.polyint(fit(lr_ref, psnrs_ref))
    p_test = np.polyint(fit(lr_test, psnrs_test))
    avg_ref = (np.polyval(p_ref, hi) - np.polyval(p_ref, lo)) / (hi - lo)
    avg_test = (np.polyval(p_test, hi) - np.polyval(p_test, lo)) / (hi - lo)
    return float(avg_test - avg_ref)
