"""Plain-text table rendering for the benchmark harness output."""
from __future__ import annotations

from typing import Any

__all__ = ["format_table", "print_table"]


def format_table(rows: list[dict[str, Any]], title: str | None = None) -> str:
    """Render dict rows as an aligned ASCII table (keys of the first row
    define the column order)."""
    if not rows:
        return (title + "\n(empty)\n") if title else "(empty)\n"
    cols = list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def print_table(rows: list[dict[str, Any]], title: str | None = None) -> None:
    print(format_table(rows, title))


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3g}"
        return f"{v:.4g}"
    return str(v)
