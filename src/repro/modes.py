"""Error-bound modes beyond plain absolute bounds.

Real SZ supports three user-facing bound modes: absolute (``ABS``, the
compressors' native mode), value-range relative (``REL``), and point-wise
relative (``PW_REL``).  ``REL`` is a one-line scale; ``PW_REL`` — each
point's error bounded by ``rel * |value|`` — is implemented the standard
way: compress ``log(data)`` with the absolute bound ``log(1 + rel)``, which
provably yields ``|d' - d| <= rel * |d|`` point-wise.
"""
from __future__ import annotations

import numpy as np

from .compressors import Compressor, decompress_any, get_compressor, supports_qp
from .compressors.base import Blob
from .core.config import QPConfig

__all__ = ["relative_bound", "PointwiseRelativeCompressor"]


def relative_bound(data: np.ndarray, rel: float) -> float:
    """Absolute bound equivalent to a value-range-relative bound (REL mode)."""
    if rel <= 0:
        raise ValueError("rel must be positive")
    return rel * float(data.max() - data.min())


class PointwiseRelativeCompressor:
    """PW_REL mode: ``|d' - d| <= rel * |d|`` at every point.

    Requires strictly positive data (the standard log-transform PW_REL; SZ
    imposes the same restriction modulo sign bookkeeping).  Compression runs
    the chosen base compressor on ``log(data)`` with absolute bound
    ``log(1 + rel)``; since ``|log d' - log d| <= log(1+rel)`` implies
    ``d'/d`` within ``[1/(1+rel), 1+rel]``, the point-wise relative bound
    follows.

    Satisfies the :class:`repro.compressors.Codec` protocol: the blob is a
    regular repro container (annotated with the PW_REL fields), so
    ``checksum=True`` uses the standard v1 sealing and ``decompress``
    needs no out-of-band arguments.
    """

    name = "pw_rel"

    def __init__(
        self,
        base: str,
        rel: float,
        qp: QPConfig | None = None,
        **kwargs,
    ) -> None:
        if rel <= 0:
            raise ValueError("rel must be positive")
        self.base = base
        self.rel = float(rel)
        self.qp = qp
        self.kwargs = kwargs

    def _base_compressor(self, adaptive=None) -> Compressor:
        eb = float(np.log1p(self.rel))
        kwargs = dict(self.kwargs)
        if supports_qp(self.base):
            kwargs.setdefault("qp", self.qp or QPConfig.disabled())
        if adaptive is not None:
            from .compressors import constructor_accepts

            if not constructor_accepts(self.base, "adaptive"):
                raise ValueError(
                    f"compressor {self.base!r} does not support adaptive "
                    "quantization; drop the adaptive= argument"
                )
            kwargs["adaptive"] = adaptive
        return get_compressor(self.base, eb, **kwargs)

    def compress(
        self,
        data: np.ndarray,
        *,
        checksum: bool = False,
        auto: bool = False,
        adaptive=None,
    ) -> bytes:
        """Compress with the uniform Codec knob set; ``auto``/``adaptive``
        forward to the base compressor running on the log-domain data."""
        data = np.asarray(data)
        if (data <= 0).any():
            raise ValueError(
                "PW_REL mode requires strictly positive data "
                "(shift or split by sign first)"
            )
        logd = np.log(data.astype(np.float64))
        blob = self._base_compressor(adaptive).compress(logd, auto=auto)
        # annotate the blob so decompression knows to exponentiate
        b = Blob.from_bytes(blob)
        b.header["pw_rel"] = self.rel
        b.header["pw_rel_dtype"] = data.dtype.str
        return b.to_bytes(checksum=checksum)

    @staticmethod
    def decompress(blob: bytes) -> np.ndarray:
        b = Blob.from_bytes(blob)
        if "pw_rel" not in b.header:
            raise ValueError("not a PW_REL blob")
        dtype = np.dtype(b.header["pw_rel_dtype"])
        logd = decompress_any(b.to_bytes())
        return np.exp(logd).astype(dtype)
