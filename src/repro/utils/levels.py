"""Multilevel interpolation grid math (levels, strides, passes).

Terminology follows Section IV-A of the paper:

* **Level** ``l`` (1 = finest): at the start of level ``l`` every point whose
  coordinates are all multiples of ``2s`` (``s = 2**(l-1)``) is known; the
  level fills in the remaining points of the stride-``s`` grid.
* **Pass**: one interpolation sweep along one axis.  For 3-D data and axis
  order ``(z, y, x)`` the three passes of a level predict the points whose
  in-plane strides are ``2x2``, ``1x2`` and ``1x1`` — the red/green/magenta
  points of Figure 2.
* **Anchors**: the points of the coarsest grid (stride ``2**L``), stored
  exactly (as QoZ does) before any level runs.

Passes are expressed as tuples of slices into the working array, so the
compressors operate on strided *views* — no index arrays, no copies.

All schedule builders are memoized on their (hashable) arguments: pass
schedules depend only on shape/level/axis order, and the engine rebuilds them
for every volume, every HPEZ trial and every slab, so building each schedule
once and returning an immutable tuple of frozen passes removes pure
recomputation from the hot path.
"""
from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = [
    "Pass",
    "MDPass",
    "num_levels",
    "anchor_stride",
    "anchor_slices",
    "level_passes",
    "level_passes_multidim",
    "pass_sizes",
]


@dataclass(frozen=True)
class Pass:
    """One interpolation sweep.

    ``level``      1-based level index (1 = finest stride)
    ``axis``       interpolation axis
    ``known``      slices selecting the coarse grid (axis ``axis`` at step 2s)
    ``target``     slices selecting the points this pass predicts
    ``n_targets``  target count along ``axis`` (for the interpolation kernel)
    """

    level: int
    axis: int
    known: tuple[slice, ...]
    target: tuple[slice, ...]
    n_targets: int

    @property
    def axes(self) -> tuple[int, ...]:
        """Prediction axes (uniform interface with :class:`MDPass`)."""
        return (self.axis,)

    def known_for(self, axis: int) -> tuple[slice, ...]:
        if axis != self.axis:
            raise ValueError(f"axis {axis} is not the prediction axis of this pass")
        return self.known


@lru_cache(maxsize=1024)
def num_levels(shape: tuple[int, ...]) -> int:
    """Number of interpolation levels: enough that the anchor grid along the
    longest axis has very few points (SZ3/QoZ behaviour)."""
    longest = max(shape)
    if longest < 2:
        return 1
    return max(1, int(np.ceil(np.log2(longest - 1))) if longest > 2 else 1)


def anchor_stride(shape: tuple[int, ...]) -> int:
    return 1 << num_levels(shape)


@lru_cache(maxsize=1024)
def anchor_slices(shape: tuple[int, ...]) -> tuple[slice, ...]:
    s = anchor_stride(shape)
    return tuple(slice(0, None, s) for _ in shape)


def _axis_len(n: int, sl: slice) -> int:
    return len(range(*sl.indices(n)))


def level_passes(
    shape: tuple[int, ...], level: int, axis_order: tuple[int, ...] | None = None
) -> tuple[Pass, ...]:
    """Enumerate the passes of one level in the given axis order.

    Axes whose extent yields no targets at this stride are skipped (their
    pass is empty), but they still count as "done" for subsequent passes.
    The result is an immutable, memoized schedule tuple.
    """
    if axis_order is not None:
        axis_order = tuple(axis_order)
    return _level_passes_cached(tuple(shape), level, axis_order)


@lru_cache(maxsize=4096)
def _level_passes_cached(
    shape: tuple[int, ...], level: int, axis_order: tuple[int, ...] | None
) -> tuple[Pass, ...]:
    ndim = len(shape)
    if axis_order is None:
        axis_order = tuple(range(ndim))
    if sorted(axis_order) != list(range(ndim)):
        raise ValueError(f"axis_order must be a permutation of axes, got {axis_order}")
    s = 1 << (level - 1)
    passes: list[Pass] = []
    done: set[int] = set()
    for axis in axis_order:
        known = []
        target = []
        for a in range(ndim):
            if a == axis:
                known.append(slice(0, None, 2 * s))
                target.append(slice(s, None, 2 * s))
            elif a in done:
                known.append(slice(0, None, s))
                target.append(slice(0, None, s))
            else:
                known.append(slice(0, None, 2 * s))
                target.append(slice(0, None, 2 * s))
        n_targets = _axis_len(shape[axis], target[axis])
        done.add(axis)
        if n_targets == 0 or any(_axis_len(shape[a], target[a]) == 0 for a in range(ndim)):
            continue
        passes.append(
            Pass(level=level, axis=axis, known=tuple(known), target=tuple(target), n_targets=n_targets)
        )
    return tuple(passes)


def pass_sizes(shape: tuple[int, ...], p: "Pass | MDPass") -> tuple[int, ...]:
    """Shape of the target subgrid selected by pass ``p``."""
    return tuple(_axis_len(shape[a], p.target[a]) for a in range(len(shape)))


@dataclass(frozen=True)
class MDPass:
    """One multi-dimensional interpolation pass (HPEZ-style level structure).

    Points are grouped by the *parity class* of their coordinates on the
    level's grid: ``axes`` lists the axes whose coordinate is an odd multiple
    of the stride.  Each point is predicted by averaging 1-D interpolations
    along every axis in ``axes`` — the neighbours along those axes belong to
    smaller parity classes, which were processed earlier, so orthogonal
    correlation is exploited (the reason HPEZ's indices cluster least).
    """

    level: int
    axes: tuple[int, ...]
    target: tuple[slice, ...]

    @property
    def axis(self) -> int:
        """Primary axis (used to orient the pass array for QP)."""
        return self.axes[0]

    def known_for(self, axis: int) -> tuple[slice, ...]:
        """Coarse-grid slices for the 1-D interpolation along ``axis``."""
        if axis not in self.axes:
            raise ValueError(f"axis {axis} is not a prediction axis of this pass")
        s = 1 << (self.level - 1)
        known = list(self.target)
        known[axis] = slice(0, None, 2 * s)
        return tuple(known)


@lru_cache(maxsize=4096)
def level_passes_multidim(shape: tuple[int, ...], level: int) -> tuple[MDPass, ...]:
    """Enumerate multi-dimensional passes of one level, by parity-class size.

    Classes with fewer odd axes come first (their neighbours are already
    known); together with the anchors they tile the level's grid exactly.
    The result is an immutable, memoized schedule tuple.
    """
    from itertools import combinations

    ndim = len(shape)
    s = 1 << (level - 1)
    passes: list[MDPass] = []
    for size in range(1, ndim + 1):
        for axes in combinations(range(ndim), size):
            target = tuple(
                slice(s, None, 2 * s) if a in axes else slice(0, None, 2 * s)
                for a in range(ndim)
            )
            if any(_axis_len(shape[a], target[a]) == 0 for a in range(ndim)):
                continue
            passes.append(MDPass(level=level, axes=axes, target=target))
    return tuple(passes)
