"""Shared utilities: level math, blocks, validation.

Timing lives in :mod:`repro.obs.timing` (the observability layer is the
single timing source of truth); ``Stopwatch``/``throughput_mbs`` are
re-exported here for back-compatibility.
"""
from ..obs.timing import Stopwatch, throughput_mbs
from .blocks import block_grid_shape, iter_blocks, pad_to_multiple
from .levels import Pass, anchor_slices, anchor_stride, level_passes, num_levels, pass_sizes
from .validation import check_error_bound, check_ndarray

__all__ = [
    "Pass",
    "anchor_slices",
    "anchor_stride",
    "level_passes",
    "num_levels",
    "pass_sizes",
    "block_grid_shape",
    "iter_blocks",
    "pad_to_multiple",
    "Stopwatch",
    "throughput_mbs",
    "check_ndarray",
    "check_error_bound",
]
