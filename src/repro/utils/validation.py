"""Shared input validation helpers."""
from __future__ import annotations

import numpy as np

__all__ = ["check_ndarray", "check_error_bound"]

_SUPPORTED_DTYPES = (np.float32, np.float64)


def check_ndarray(data: np.ndarray, min_ndim: int = 1, max_ndim: int = 4) -> np.ndarray:
    """Validate and canonicalize compressor input (C-contiguous float array)."""
    data = np.asarray(data)
    if data.dtype not in [np.dtype(d) for d in _SUPPORTED_DTYPES]:
        raise TypeError(f"unsupported dtype {data.dtype}; use float32/float64")
    if not (min_ndim <= data.ndim <= max_ndim):
        raise ValueError(f"expected {min_ndim}..{max_ndim}-D data, got {data.ndim}-D")
    if data.size == 0:
        raise ValueError("empty input")
    if not np.isfinite(data).all():
        raise ValueError("input contains NaN or Inf")
    return np.ascontiguousarray(data)


def check_error_bound(eb: float) -> float:
    eb = float(eb)
    if not np.isfinite(eb) or eb <= 0:
        raise ValueError(f"error bound must be finite and positive, got {eb}")
    return eb
