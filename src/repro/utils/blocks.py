"""Block decomposition helpers (HPEZ-style 32^d tuning blocks, ZFP 4^d)."""
from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["iter_blocks", "block_grid_shape", "pad_to_multiple"]


def block_grid_shape(shape: tuple[int, ...], block: int) -> tuple[int, ...]:
    return tuple(-(-n // block) for n in shape)


def iter_blocks(shape: tuple[int, ...], block: int) -> Iterator[tuple[slice, ...]]:
    """Yield slice tuples tiling ``shape`` with ``block``-sized cubes
    (edge blocks are smaller)."""
    grid = block_grid_shape(shape, block)
    for idx in np.ndindex(*grid):
        yield tuple(
            slice(i * block, min((i + 1) * block, n)) for i, n in zip(idx, shape)
        )


def pad_to_multiple(data: np.ndarray, multiple: int, mode: str = "edge") -> np.ndarray:
    """Pad every axis up to the next multiple (used by ZFP/SPERR blocks)."""
    pads = [(0, (-n) % multiple) for n in data.shape]
    if all(p == (0, 0) for p in pads):
        return data
    return np.pad(data, pads, mode=mode)
