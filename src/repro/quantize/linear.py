"""Linear-scaling quantizer with unpredictable-data handling.

This is the quantization stage shared by all SZ-family ports (Section IV-A of
the paper): ``q = round((d - p) / 2e)``.  Indices whose magnitude reaches the
quantizer radius — or whose reconstruction would violate the error bound due
to floating-point rounding — are *unpredictable*: they receive the sentinel
index ``UNPREDICTABLE`` and their original values are stored losslessly in a
side stream, exactly as SZ3 does.

All operations are vectorized over whole pass arrays; the quantizer never
loops over data points.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LinearQuantizer", "QuantResult"]


@dataclass
class QuantResult:
    """Outcome of quantizing one prediction pass.

    ``indices``   signed quantization indices; sentinel at unpredictable points
    ``decoded``   reconstructed values (bit-identical to decompression output)
    ``literals``  original values at unpredictable points, in C order
    """

    indices: np.ndarray
    decoded: np.ndarray
    literals: np.ndarray


class LinearQuantizer:
    """Uniform scalar quantizer ``q = round((d - p) / 2e)`` with radius cap.

    Parameters
    ----------
    error_bound:
        Absolute point-wise error bound ``e``; reconstruction satisfies
        ``|d - d'| <= e`` at predictable points and ``d' == d`` at
        unpredictable ones.
    radius:
        Half the quantizer capacity. Indices with ``|q| >= radius`` are
        stored as literals (SZ3 default capacity 65536 -> radius 32768).
    """

    def __init__(self, error_bound: float, radius: int = 32768) -> None:
        if error_bound <= 0:
            raise ValueError("error_bound must be positive")
        if radius < 2:
            raise ValueError("radius must be >= 2")
        self.error_bound = float(error_bound)
        self.radius = int(radius)

    @property
    def sentinel(self) -> int:
        """Index value marking unpredictable points (outside [-radius, radius))."""
        return -self.radius

    def quantize(self, values: np.ndarray, preds: np.ndarray) -> QuantResult:
        """Quantize ``values`` against predictions; both may be any shape."""
        values = np.asarray(values)
        preds = np.asarray(preds, dtype=values.dtype)
        two_eb = 2.0 * self.error_bound
        # the float64 pipeline below matches q = rint((d - p) / 2e) and
        # d' = p + 2e*q bit-for-bit; casts are folded into the ufuncs and
        # intermediates reused in place instead of materializing temporaries
        q = np.subtract(values, preds, dtype=np.float64)
        np.divide(q, two_eb, out=q)
        np.rint(q, out=q)
        unpred = np.abs(q) >= self.radius
        q[unpred] = 0.0
        qi = q.astype(np.int64)
        np.multiply(q, two_eb, out=q)
        np.add(preds, q, out=q, dtype=np.float64)
        decoded = q.astype(values.dtype)
        # Floating-point guard: reject any point whose reconstruction misses
        # the bound (can happen at extreme magnitudes), mirroring SZ3.
        bad = np.subtract(decoded, values, dtype=np.float64)
        np.abs(bad, out=bad)
        unpred |= bad > self.error_bound
        qi[unpred] = self.sentinel
        literals = values[unpred].ravel()
        decoded[unpred] = literals
        return QuantResult(indices=qi, decoded=decoded, literals=literals)

    def dequantize(
        self, indices: np.ndarray, preds: np.ndarray, literals: np.ndarray
    ) -> np.ndarray:
        """Invert :meth:`quantize` for one pass.

        ``literals`` must contain exactly the unpredictable values of this
        pass, in C order; a mismatch raises.
        """
        indices = np.asarray(indices)
        preds = np.asarray(preds)
        unpred = indices == self.sentinel
        n_unpred = int(unpred.sum())
        if n_unpred != literals.size:
            raise ValueError(
                f"literal count mismatch: mask has {n_unpred}, stream has {literals.size}"
            )
        two_eb = 2.0 * self.error_bound
        t = np.multiply(two_eb, indices)
        np.add(preds, t, out=t, dtype=np.float64)
        out = t.astype(preds.dtype)
        if n_unpred:
            out[unpred] = literals.astype(preds.dtype)
        return out

    def split_literals(self, indices: np.ndarray, literals: np.ndarray, counts_done: int) -> np.ndarray:
        """Helper: how many literals the given index block consumes."""
        return int((indices == self.sentinel).sum())
