"""Adaptive linear-scaling quantizer with in-band reserved-index signalling.

SZ3's ``AdaptiveLinearQuantizer`` mechanism (arXiv:2111.02925): points whose
coarse quantization index magnitude reaches ``threshold`` are *hard to
predict* and are re-quantized against the tightened bound
``eb / 2**bits``, so regions the interpolator models poorly get a much
smaller pointwise error at almost no rate cost (their indices were large
anyway).  The switch is signalled **in-band**: wire indices with
``|w| >= threshold`` are reserved for tightened points, so the decoder
recovers the per-point bound from the index alone — no side channel, no
per-point mode bits.

Wire encoding
-------------
With ``t = threshold``, ``b = bits``, coarse index ``q = rint(d-p / 2eb)``
and tight index ``qt = rint(d-p / 2eb*2^-b)``:

* easy points (``|q| < t``) ship ``w = q`` verbatim; ``|w| < t``.
* hard points (``|q| >= t``) ship ``w = sign(qt) * (|qt| - bias)`` with
  ``bias = t*2^b - 2^(b-1) - t``; since ``|q| >= t`` implies
  ``|d-p| >= (t - 1/2) * 2eb`` and the tight scale is an exact power-of-two
  multiple of the coarse scale, ``|qt| >= t*2^b - 2^(b-1)`` holds exactly in
  floating point, hence ``|w| >= t`` — the reserved band.

Decode inverts by range: ``|w| < t`` is a coarse index, ``|w| >= t``
recovers ``|qt| = |w| + bias`` and reconstructs at the tightened scale.
Indices that would leave ``(-radius, radius)`` — or whose reconstruction
misses its bound due to floating-point rounding — fall back to the literal
sentinel stream, exactly like the plain :class:`~repro.quantize.linear.
LinearQuantizer`.

Both directions run the same ufunc structure (``p + scale * q`` in float64,
one final cast), so encode-side ``decoded`` is bit-identical to the
decompressor's output.
"""
from __future__ import annotations

import numpy as np

from ..core.config import ADAPTIVE_MAX_BITS
from .linear import QuantResult

__all__ = [
    "AdaptiveLinearQuantizer",
    "adaptive_encode",
    "adaptive_decode",
    "reserved_bias",
]


def reserved_bias(bits: int, threshold: int) -> int:
    """Shift subtracted from ``|qt|`` so hard wire indices start at ``threshold``."""
    return threshold * (1 << bits) - (1 << (bits - 1)) - threshold


def adaptive_encode(values, preds, error_bound, bits, threshold, radius):
    """Quantize ``values`` against ``preds`` with reserved-index adaptivity.

    Returns ``(wire, decoded, literals, n_adaptive)``: int64 wire indices
    (sentinel ``-radius`` at literal points), the bit-exact reconstruction,
    the literal side stream in C order, and the adaptive-point count.
    """
    values = np.asarray(values)
    preds = np.asarray(preds, dtype=values.dtype)
    two_eb = 2.0 * float(error_bound)
    two_tight = two_eb / float(1 << bits)
    tight_eb = float(error_bound) / float(1 << bits)
    bias = reserved_bias(bits, threshold)

    diff = np.subtract(values, preds, dtype=np.float64)
    q = np.rint(diff / two_eb)
    hard = np.abs(q) >= threshold
    qt = np.rint(diff / two_tight)
    # hard wire index: sign(qt) * (|qt| - bias); |qt| >= t*2^b - 2^(b-1)
    # holds exactly (power-of-two scaling commutes with rint), so the
    # result lands in the reserved band |w| >= threshold.
    wire_f = np.where(hard, np.sign(qt) * (np.abs(qt) - bias), q)
    # reconstruction, same ufunc structure as decode for bit-identity
    qtd = np.where(hard, qt, q)
    scale = np.where(hard, two_tight, two_eb)
    decoded = (preds + scale * qtd).astype(values.dtype)

    unpred = np.abs(wire_f) >= radius
    # defensive aliasing guard: a hard point whose wire index fell below the
    # reserved band would decode at the wrong scale — store it literally.
    unpred |= hard & (np.abs(wire_f) < threshold)
    # floating-point guard: each point must meet *its* bound.
    err = np.abs(np.subtract(decoded, values, dtype=np.float64))
    unpred |= np.where(hard, err > tight_eb, err > float(error_bound))

    wire = np.where(unpred, 0.0, wire_f).astype(np.int64)
    wire[unpred] = -int(radius)
    literals = values[unpred].ravel()
    decoded[unpred] = literals
    n_adaptive = int(np.count_nonzero(hard & ~unpred))
    return wire, decoded, literals, n_adaptive


def adaptive_decode(indices, preds, literals, error_bound, bits, threshold, radius):
    """Invert :func:`adaptive_encode` for one pass (literal-count checked)."""
    indices = np.asarray(indices)
    preds = np.asarray(preds)
    sentinel = -int(radius)
    two_eb = 2.0 * float(error_bound)
    two_tight = two_eb / float(1 << bits)
    bias = reserved_bias(bits, threshold)

    unpred = indices == sentinel
    n_unpred = int(unpred.sum())
    if n_unpred != literals.size:
        raise ValueError(
            f"literal count mismatch: mask has {n_unpred}, stream has {literals.size}"
        )
    w = indices.astype(np.float64)
    w[unpred] = 0.0
    hard = np.abs(w) >= threshold
    qtd = np.where(hard, np.sign(w) * (np.abs(w) + bias), w)
    scale = np.where(hard, two_tight, two_eb)
    out = (preds + scale * qtd).astype(preds.dtype)
    if n_unpred:
        out[unpred] = literals.astype(preds.dtype)
    return out


class AdaptiveLinearQuantizer:
    """Drop-in :class:`~repro.quantize.linear.LinearQuantizer` variant that
    tightens the effective bound by ``2**bits`` at hard-to-predict points.

    Parameters
    ----------
    error_bound:
        The *global* absolute bound ``e``; every point satisfies
        ``|d - d'| <= e`` and hard points additionally satisfy
        ``|d - d'| <= e / 2**bits``.
    radius:
        Half the quantizer capacity; wire indices with ``|w| >= radius``
        are stored as literals.
    bits:
        Bound-tightening exponent, ``1 <= bits <= ADAPTIVE_MAX_BITS``.
    threshold:
        Coarse-index magnitude at which a point counts as hard (``>= 1``).
    backend:
        Kernel backend name for :func:`repro.kernels.select_backend`
        (``None`` = environment / auto).
    """

    def __init__(
        self,
        error_bound: float,
        radius: int = 32768,
        *,
        bits: int = 2,
        threshold: int = 4,
        backend: str | None = None,
    ) -> None:
        if error_bound <= 0:
            raise ValueError("error_bound must be positive")
        if radius < 2:
            raise ValueError("radius must be >= 2")
        if not 1 <= int(bits) <= ADAPTIVE_MAX_BITS:
            raise ValueError(f"bits must be in [1, {ADAPTIVE_MAX_BITS}]")
        if int(threshold) < 1:
            raise ValueError("threshold must be >= 1")
        self.error_bound = float(error_bound)
        self.radius = int(radius)
        self.bits = int(bits)
        self.threshold = int(threshold)
        self.backend = backend
        #: adaptive-point count of the most recent :meth:`quantize` call
        self.last_adaptive = 0

    @property
    def sentinel(self) -> int:
        return -self.radius

    @property
    def tight_bound(self) -> float:
        """The tightened bound applied at hard-to-predict points."""
        return self.error_bound / float(1 << self.bits)

    def _ops(self):
        from ..kernels import select_backend

        return select_backend("adaptive_quantize", self.backend).ops

    def quantize(self, values: np.ndarray, preds: np.ndarray) -> QuantResult:
        wire, decoded, literals, n_adaptive = self._ops()["encode"](
            values, preds, self.error_bound, self.bits, self.threshold, self.radius
        )
        self.last_adaptive = n_adaptive
        return QuantResult(indices=wire, decoded=decoded, literals=literals)

    def dequantize(
        self, indices: np.ndarray, preds: np.ndarray, literals: np.ndarray
    ) -> np.ndarray:
        return self._ops()["decode"](
            indices, preds, literals, self.error_bound, self.bits,
            self.threshold, self.radius,
        )

    def split_literals(self, indices, literals, counts_done):
        return int((indices == self.sentinel).sum())
