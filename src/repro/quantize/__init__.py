"""Quantization stage."""
from .linear import LinearQuantizer, QuantResult

__all__ = ["LinearQuantizer", "QuantResult"]
