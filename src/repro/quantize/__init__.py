"""Quantization stage."""
from .adaptive import AdaptiveLinearQuantizer
from .linear import LinearQuantizer, QuantResult

__all__ = ["AdaptiveLinearQuantizer", "LinearQuantizer", "QuantResult"]
