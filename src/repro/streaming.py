"""Streaming out-of-core execution: pipelined slab compression with
bounded memory.

The in-memory path materializes the full volume, its full quantization
index stream, and the full entropy payload before a byte is written, so
peak RSS is a multiple of the input.  This module walks the volume along
the leading axis in bounded slabs and runs a three-stage producer/consumer
pipeline over a small thread pool:

1. **front** (worker threads): page in one slab — through a recycled
   :class:`BufferPool` scratch array — and run predict + quantize + the
   QP/adaptive index transforms (``Compressor._stream_front``);
2. **entropy** (dedicated thread): Huffman/rANS + lossless coding of the
   finished index stream (``Compressor._stream_entropy``), framed as a
   standalone blob byte-identical to ``compress(slab)``;
3. **write** (caller thread): flush each segment to the sink through an
   incremental :class:`~repro.io.container.ContainerWriter` the moment it
   is sealed.

Entropy coding of slab *k* therefore overlaps prediction of slab *k+1*
(numpy and zlib release the GIL on the hot loops); on a single hardware
thread the win comes from cache blocking instead — a slab-sized working
set stays inside the last-level cache where the full-volume pass thrashes
it (see docs/performance.md for measurements).  In-flight slabs are capped
by a fixed window, so peak memory is O(slab · depth), never O(volume), and
the producer's stall time against a full window is surfaced as the
``stream.backpressure_wait`` metric (buffer recycling as
``stream.buffer_reuse``).
"""
from __future__ import annotations

import os
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from time import perf_counter
from typing import Any, BinaryIO

import numpy as np

from . import obs
from .errors import CorruptBlobError
from .io.container import ContainerReader, ContainerWriter

__all__ = [
    "DEFAULT_SLAB_BYTES",
    "BufferPool",
    "StreamResult",
    "plan_slabs",
    "slab_slices",
    "stream_compress",
    "stream_decompress",
]

#: default streaming slab budget.  Chosen so one slab plus the engine's
#: per-slab temporaries (two int64 index copies + interpolation scratch,
#: roughly 5-6x the slab) sits comfortably inside a ~100 MB last-level
#: cache; measured on the large synthetic fields, 8-16 MB slabs are the
#: throughput plateau and 2-3x larger slabs already fall off it.
DEFAULT_SLAB_BYTES = 12 << 20
#: slabs thinner than this interpolate too little context and bloat the
#: per-slab header overhead (same floor as the slab-parallel split)
MIN_SLAB_ROWS = 8


def slab_slices(total: int, n: int) -> list[slice]:
    """Split ``total`` leading-axis rows into ``n`` near-equal slices."""
    n = max(1, min(int(n), int(total)))
    edges = np.linspace(0, total, n + 1).astype(int)
    return [
        slice(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:]) if b > a
    ]


def plan_slabs(
    shape: tuple[int, ...],
    dtype: Any,
    slab_bytes: int | None = None,
    min_rows: int = MIN_SLAB_ROWS,
) -> list[slice]:
    """Plan the leading-axis slab walk for a volume of ``shape``/``dtype``.

    Targets ``slab_bytes`` of input per slab (default
    :data:`DEFAULT_SLAB_BYTES`), never thinner than ``min_rows`` rows, and
    evens the remainder out across slabs so no straggler slab is tiny.
    """
    if not shape:
        raise ValueError("cannot plan slabs for a 0-d array")
    rows_total = int(shape[0])
    row_bytes = int(np.dtype(dtype).itemsize) * int(np.prod(shape[1:], dtype=np.int64))
    target = int(slab_bytes) if slab_bytes else DEFAULT_SLAB_BYTES
    if target <= 0:
        raise ValueError(f"slab_bytes must be positive, got {slab_bytes!r}")
    rows = max(int(min_rows), target // max(1, row_bytes))
    n = max(1, -(-rows_total // max(1, rows)))  # ceil
    n = min(n, max(1, rows_total // max(1, int(min_rows))))
    return slab_slices(rows_total, n)


class BufferPool:
    """Reusable numpy scratch arrays keyed by ``(shape, dtype)``.

    ``acquire`` hands back a previously released array of the same
    geometry when one is free, eliminating the per-slab allocate/fault
    cycle (every recycled slab is a ``stream.buffer_reuse{result=hit}``
    metric).  Thread-safe; bounded at ``max_per_key`` retained arrays per
    geometry so odd-sized tail slabs cannot pin memory.
    """

    def __init__(self, max_per_key: int = 4) -> None:
        self._free: dict[tuple[tuple[int, ...], str], list[np.ndarray]] = {}
        self._lock = threading.Lock()
        self._max_per_key = int(max_per_key)
        self.hits = 0
        self.misses = 0

    def acquire(self, shape: tuple[int, ...], dtype: Any) -> np.ndarray:
        key = (tuple(int(s) for s in shape), np.dtype(dtype).str)
        with self._lock:
            free = self._free.get(key)
            buf = free.pop() if free else None
            if buf is not None:
                self.hits += 1
            else:
                self.misses += 1
        if buf is not None:
            obs.metric_count("stream.buffer_reuse", result="hit")
            return buf
        obs.metric_count("stream.buffer_reuse", result="miss")
        return np.empty(key[0], dtype=np.dtype(dtype))

    def release(self, buf: np.ndarray) -> None:
        key = (tuple(buf.shape), buf.dtype.str)
        with self._lock:
            free = self._free.setdefault(key, [])
            if len(free) < self._max_per_key:
                free.append(buf)

    def stats(self) -> dict[str, int]:
        with self._lock:
            retained = sum(len(v) for v in self._free.values())
        return {"hits": self.hits, "misses": self.misses, "retained": retained}


@dataclass
class StreamResult:
    """Summary returned by :func:`stream_compress`."""

    compressor: str
    shape: tuple[int, ...]
    dtype: str
    axis: int
    segments: int
    payload_bytes: int
    total_bytes: int
    input_bytes: int
    backpressure_wait_s: float
    buffer_reuse: dict[str, int]

    @property
    def ratio(self) -> float:
        return self.input_bytes / max(1, self.total_bytes)


def _default_workers() -> int:
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    return max(1, min(4, cores))


def stream_compress(
    compressor: Any,
    data: np.ndarray,
    sink: BinaryIO,
    *,
    slab_bytes: int | None = None,
    workers: int | None = None,
    depth: int | None = None,
    checksum: bool = False,
) -> StreamResult:
    """Compress ``data`` (array or memmap) into ``sink`` slab by slab.

    Each written segment is byte-identical to
    ``compressor.compress(data[slab], checksum=checksum)``, so any segment
    decodes independently through the normal blob path.  At most ``depth``
    slabs (default ``workers + 2``) are in flight at once.
    """
    shape = tuple(int(s) for s in data.shape)
    if not shape or not all(shape):
        raise ValueError(f"cannot stream-compress shape {shape}")
    dtype = np.dtype(data.dtype)
    slabs = plan_slabs(shape, dtype, slab_bytes)
    n = len(slabs)
    nworkers = int(workers) if workers else _default_workers()
    window = int(depth) if depth else nworkers + 2
    window = max(1, window)
    pool = BufferPool(max_per_key=window + 1)
    parent = obs.current()
    slab_shape_tail = shape[1:]

    def _front_job(i: int, sl: slice):
        # worker threads start with a fresh obs context (observability
        # off); activate a per-slab observation and ship it back as a
        # payload so the parent can merge deterministically in slab order
        ob = obs.Observation() if parent is not None else None
        with obs.observe(ob) if ob is not None else nullcontext():
            buf = pool.acquire((sl.stop - sl.start,) + slab_shape_tail, dtype)
            with obs.span("stream.front", slab=i):
                np.copyto(buf, data[sl])  # the only source read (memmap page-in)
                front = compressor._stream_front(buf)
        return front, buf, (ob.to_payload() if ob is not None else None)

    def _entropy_job(i: int, ffut):
        front, buf, front_payload = ffut.result()
        ob = obs.Observation() if parent is not None else None
        with obs.observe(ob) if ob is not None else nullcontext():
            with obs.span("stream.entropy", slab=i):
                blob = compressor._stream_entropy(front, checksum=checksum)
        # the engine front may hold views into the slab buffer (anchors),
        # so the buffer is only recyclable once the segment is sealed
        pool.release(buf)
        return blob, front_payload, (ob.to_payload() if ob is not None else None)

    meta = {
        "compressor": compressor.name,
        "dtype": dtype.str,
        "shape": list(shape),
        "error_bound": compressor.error_bound,
    }
    backpressure = 0.0
    payload_bytes = 0
    with obs.span(
        "stream.compress", compressor=compressor.name, slabs=n
    ), ThreadPoolExecutor(
        max_workers=nworkers, thread_name_prefix="stream-front"
    ) as front_pool, ThreadPoolExecutor(
        max_workers=1, thread_name_prefix="stream-entropy"
    ) as entropy_pool:
        writer = ContainerWriter(sink, axis=0, meta=meta)
        in_flight: deque = deque()
        next_i = 0
        try:
            while next_i < n or in_flight:
                while next_i < n and len(in_flight) < window:
                    ffut = front_pool.submit(_front_job, next_i, slabs[next_i])
                    efut = entropy_pool.submit(_entropy_job, next_i, ffut)
                    in_flight.append((next_i, efut))
                    next_i += 1
                i, efut = in_flight.popleft()
                stalled = next_i < n and not efut.done()
                t0 = perf_counter()
                blob, front_payload, entropy_payload = efut.result()
                if stalled:
                    # the submit window was full and the head slab was not
                    # ready: the producer genuinely waited on the pipeline
                    backpressure += perf_counter() - t0
                if parent is not None:
                    parent.merge_payload(front_payload, worker=f"slab{i}.front")
                    parent.merge_payload(entropy_payload, worker=f"slab{i}.entropy")
                sp = obs.span("stream.write", slab=i)
                with sp:
                    writer.append(blob)
                    sp.label(bytes_out=len(blob))
                obs.add_bytes("stream.write", len(blob))
                payload_bytes += len(blob)
        except BaseException:
            for _j, efut in in_flight:
                efut.cancel()
            raise
        summary = writer.finalize()
        obs.metric_seconds("stream.backpressure_wait", backpressure)
    return StreamResult(
        compressor=compressor.name,
        shape=shape,
        dtype=dtype.str,
        axis=0,
        segments=summary["segments"],
        payload_bytes=payload_bytes,
        total_bytes=summary["total_bytes"],
        input_bytes=int(np.prod(shape, dtype=np.int64)) * dtype.itemsize,
        backpressure_wait_s=backpressure,
        buffer_reuse=pool.stats(),
    )


def stream_decompress(
    source: Any,
    *,
    compressor: Any = None,
    batch: int = 8,
) -> np.ndarray:
    """Decode a streamed container back into one array.

    ``source`` is anything :class:`~repro.io.container.ContainerReader`
    accepts (bytes, path, seekable file).  Segments are decoded in
    ``batch``-sized groups (joint entropy decode across the group) and
    written straight into the preallocated output, so decode memory also
    stays O(slab).  When ``compressor`` is None, each segment dispatches
    through the registry on its own header.
    """
    reader = source if isinstance(source, ContainerReader) else ContainerReader(source)
    n = len(reader)
    if n == 0:
        raise CorruptBlobError("streamed container holds no segments")
    batch = max(1, int(batch))
    meta = reader.meta
    out: np.ndarray | None = None
    if "shape" in meta and "dtype" in meta:
        out = np.empty(
            tuple(int(s) for s in meta["shape"]), dtype=np.dtype(meta["dtype"])
        )
    if compressor is not None:
        decode_many = compressor.decompress_many
    else:
        from .compressors.registry import decompress_many as decode_many
    parts: list[np.ndarray] = []
    cursor = 0
    with obs.span("stream.decompress", segments=n):
        for start in range(0, n, batch):
            blobs = [reader.segment(i) for i in range(start, min(start + batch, n))]
            for arr in decode_many(blobs):
                if out is None:
                    parts.append(arr)
                    continue
                rows = arr.shape[reader.axis]
                sel = [slice(None)] * out.ndim
                sel[reader.axis] = slice(cursor, cursor + rows)
                if cursor + rows > out.shape[reader.axis]:
                    raise CorruptBlobError(
                        "streamed container: segments decode to more rows "
                        "than the declared shape"
                    )
                out[tuple(sel)] = arr
                cursor += rows
    if out is not None:
        if cursor != out.shape[reader.axis]:
            raise CorruptBlobError(
                f"streamed container: segments decode to {cursor} rows, "
                f"header declares {out.shape[reader.axis]}"
            )
        return out
    return np.concatenate(parts, axis=reader.axis) if len(parts) > 1 else parts[0]
