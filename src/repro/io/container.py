"""Multi-field compressed archive.

One file holding many named compressed blobs (e.g. all 13 Hurricane fields,
or 3600 RTM slices) with an index, supporting appends and selective reads —
the on-disk format the parallel transfer pipeline writes.

Layout: ``RARC`` magic, then blob payloads back to back, then a JSON index
``{name: [offset, size]}``, then the little-endian u64 index offset and the
closing magic.  Appending rewrites only the tail (index + footer).
"""
from __future__ import annotations

import json
import pathlib
import struct

__all__ = ["Archive"]

_MAGIC = b"RARC"
_FOOT = b"CRAR"


class Archive:
    """Append/read interface over the archive file format."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)

    # -- writing ------------------------------------------------------------

    @classmethod
    def create(cls, path: str | pathlib.Path) -> "Archive":
        arch = cls(path)
        with open(arch.path, "wb") as f:
            f.write(_MAGIC)
        arch._write_index({})
        return arch

    def append(self, name: str, blob: bytes) -> None:
        index = self._read_index()
        if name in index:
            raise KeyError(f"entry {name!r} already exists")
        # the payload region ends where the index begins; new blobs overwrite
        # the index, which is rewritten after them
        idx_off = self._index_offset()
        with open(self.path, "r+b") as f:
            f.seek(idx_off)
            f.write(blob)
        index[name] = [idx_off, len(blob)]
        self._write_index(index, payload_end=idx_off + len(blob))

    def append_many(self, blobs: dict[str, bytes]) -> None:
        index = self._read_index()
        for name in blobs:
            if name in index:
                raise KeyError(f"entry {name!r} already exists")
        idx_off = self._index_offset()
        with open(self.path, "r+b") as f:
            f.seek(idx_off)
            pos = idx_off
            for name, blob in blobs.items():
                f.write(blob)
                index[name] = [pos, len(blob)]
                pos += len(blob)
        self._write_index(index, payload_end=pos)

    # -- reading --------------------------------------------------------------

    def names(self) -> list[str]:
        return list(self._read_index())

    def read(self, name: str) -> bytes:
        index = self._read_index()
        if name not in index:
            raise KeyError(f"no entry {name!r}; have {list(index)}")
        off, size = index[name]
        with open(self.path, "rb") as f:
            f.seek(off)
            return f.read(size)

    def sizes(self) -> dict[str, int]:
        return {k: v[1] for k, v in self._read_index().items()}

    def total_bytes(self) -> int:
        return self.path.stat().st_size

    # -- internals -------------------------------------------------------------

    def _index_offset(self) -> int:
        with open(self.path, "rb") as f:
            if f.read(4) != _MAGIC:
                raise ValueError(f"{self.path} is not an archive")
            f.seek(-12, 2)
            tail = f.read(12)
        (idx_off,) = struct.unpack("<Q", tail[:8])
        if tail[8:] != _FOOT:
            raise ValueError("archive footer corrupt")
        return idx_off

    def _read_index(self) -> dict[str, list[int]]:
        idx_off = self._index_offset()
        end = self.path.stat().st_size - 12
        with open(self.path, "rb") as f:
            f.seek(idx_off)
            raw = f.read(end - idx_off)
        return json.loads(raw.decode()) if raw else {}

    def _write_index(self, index: dict[str, list[int]], payload_end: int | None = None) -> None:
        if payload_end is None:
            payload_end = 4  # fresh archive: payload starts after the magic
        raw = json.dumps(index, separators=(",", ":")).encode()
        with open(self.path, "r+b") as f:
            f.seek(payload_end)
            f.write(raw)
            f.write(struct.pack("<Q", payload_end))
            f.write(_FOOT)
            f.truncate()
