"""Multi-field compressed archive with integrity-checked, crash-safe appends.

One file holding many named compressed blobs (e.g. all 13 Hurricane fields,
or 3600 RTM slices) with an index, supporting appends and selective reads —
the on-disk format the parallel transfer pipeline writes.

Layout (v1)::

    RARC | blob payloads... | index JSON | u64 idx_off | u32 idx_crc | RAR1

The v1 index is ``{"v": 1, "entries": {name: [offset, size, crc32]}}`` —
every entry carries a CRC32 verified on read, and the index itself is
covered by the footer CRC.  v0 archives (flat ``{name: [offset, size]}``
index, 12-byte ``CRAR`` footer, no checksums) remain fully readable.

Appending rewrites only the tail (index + footer).  Because the new payload
overwrites the *old* index, a crash mid-append used to leave an unreadable
file; appends are now journaled: the old tail (index + footer) is snapshotted
to a fsynced ``<archive>.journal`` sidecar before any byte of the archive is
touched, the new index is written and fsynced *before* the footer is
published, and the journal is removed only after the footer hits the disk.
:meth:`Archive.recover` (run automatically when a journal is present) either
confirms the completed append or rolls the file back to its pre-append state.
"""
from __future__ import annotations

import json
import os
import pathlib
import struct
import zlib

from ..errors import CorruptArchiveError, IntegrityError, TruncatedStreamError

__all__ = ["Archive"]

_MAGIC = b"RARC"
_FOOT_V0 = b"CRAR"
_FOOT_V1 = b"RAR1"
_JOURNAL_MAGIC = b"RJNL"

#: on-disk archive format revision written by this module
ARCHIVE_FORMAT_VERSION = 1


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


class Archive:
    """Append/read interface over the archive file format."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)

    @property
    def journal_path(self) -> pathlib.Path:
        return self.path.with_name(self.path.name + ".journal")

    # -- writing ------------------------------------------------------------

    @classmethod
    def create(cls, path: str | pathlib.Path) -> "Archive":
        arch = cls(path)
        with open(arch.path, "wb") as f:
            f.write(_MAGIC)
        arch._write_tail({}, payload_end=4)
        return arch

    def append(self, name: str, blob: bytes, _crash_point: str | None = None) -> None:
        """Append one named blob (journaled; see :meth:`append_many`).

        ``_crash_point`` is a fault-injection hook for the torn-write tests:
        ``"after_journal"`` / ``"after_payload"`` / ``"after_index"`` abort
        the append at that stage, simulating a crash before the footer is
        published.
        """
        self.append_many({name: blob}, _crash_point=_crash_point)

    def append_many(
        self, blobs: dict[str, bytes], _crash_point: str | None = None
    ) -> None:
        index = self._read_index()
        for name in blobs:
            if name in index:
                raise KeyError(f"entry {name!r} already exists")
        idx_off = self._index_offset()
        self._write_journal(idx_off)
        if _crash_point == "after_journal":
            raise _SimulatedCrash("after_journal")
        with open(self.path, "r+b") as f:
            f.seek(idx_off)
            pos = idx_off
            for name, blob in blobs.items():
                f.write(blob)
                index[name] = [pos, len(blob), _crc32(blob)]
                pos += len(blob)
            f.flush()
            os.fsync(f.fileno())
        if _crash_point == "after_payload":
            raise _SimulatedCrash("after_payload")
        self._write_tail(index, payload_end=pos, _crash_point=_crash_point)
        self.journal_path.unlink(missing_ok=True)

    # -- reading --------------------------------------------------------------

    def names(self) -> list[str]:
        return list(self._read_index())

    def read(self, name: str, verify: bool = True) -> bytes:
        """Read one entry; v1 entries get CRC32 verification by default."""
        index = self._read_index()
        if name not in index:
            raise KeyError(f"no entry {name!r}; have {list(index)}")
        entry = index[name]
        off, size = entry[0], entry[1]
        idx_off = self._index_offset()
        if off < 4 or size < 0 or off + size > idx_off:
            raise CorruptArchiveError(
                f"entry {name!r} spans [{off}, {off + size}) outside the "
                f"payload region [4, {idx_off})"
            )
        with open(self.path, "rb") as f:
            f.seek(off)
            blob = f.read(size)
        if len(blob) != size:
            raise TruncatedStreamError(
                f"entry {name!r} declares {size} bytes, read {len(blob)}"
            )
        if verify and len(entry) > 2 and _crc32(blob) != entry[2]:
            raise IntegrityError(f"entry {name!r} failed its CRC32 check")
        return blob

    def sizes(self) -> dict[str, int]:
        return {k: v[1] for k, v in self._read_index().items()}

    def checksums(self) -> dict[str, int | None]:
        """Per-entry CRC32 (``None`` for legacy v0 entries)."""
        return {
            k: (v[2] if len(v) > 2 else None) for k, v in self._read_index().items()
        }

    def verify_all(self) -> dict[str, bool]:
        """Re-read every entry and check its CRC (legacy entries pass)."""
        results = {}
        for name in self.names():
            try:
                self.read(name, verify=True)
                results[name] = True
            except (IntegrityError, TruncatedStreamError, CorruptArchiveError):
                results[name] = False
        return results

    def total_bytes(self) -> int:
        return self.path.stat().st_size

    @property
    def version(self) -> int:
        """On-disk format revision (0 for legacy, 1 for checksummed)."""
        with open(self.path, "rb") as f:
            f.seek(-4, 2)
            tail = f.read(4)
        if tail == _FOOT_V1:
            return 1
        if tail == _FOOT_V0:
            return 0
        raise CorruptArchiveError(f"{self.path}: unrecognized archive footer")

    # -- crash recovery ---------------------------------------------------------

    def recover(self) -> str:
        """Resolve an interrupted append using the journal sidecar.

        Returns ``"clean"`` when no journal exists or the journaled append
        actually completed (footer published; the stale journal is removed),
        ``"restored"`` when the archive tail was rolled back to its
        pre-append state, and ``"discarded"`` when the journal itself was
        torn (the archive was never touched).
        """
        jpath = self.journal_path
        if not jpath.exists():
            return "clean"
        raw = jpath.read_bytes()
        tail = self._parse_journal(raw)
        if tail is None:
            # journal write itself was interrupted -> archive untouched
            jpath.unlink(missing_ok=True)
            return "discarded"
        idx_off, tail_bytes = tail
        if self._footer_valid():
            # the append published its footer before the crash: it completed
            jpath.unlink(missing_ok=True)
            return "clean"
        with open(self.path, "r+b") as f:
            f.seek(idx_off)
            f.write(tail_bytes)
            f.truncate(idx_off + len(tail_bytes))
            f.flush()
            os.fsync(f.fileno())
        jpath.unlink(missing_ok=True)
        return "restored"

    def _footer_valid(self) -> bool:
        try:
            self._load_tail(recover=False)
            return True
        except (CorruptArchiveError, OSError):
            return False

    def _write_journal(self, idx_off: int) -> None:
        """Snapshot the current tail (index + footer) before mutating it."""
        with open(self.path, "rb") as f:
            f.seek(idx_off)
            tail = f.read()
        raw = (
            _JOURNAL_MAGIC
            + struct.pack("<QQI", idx_off, len(tail), _crc32(tail))
            + tail
        )
        with open(self.journal_path, "wb") as f:
            f.write(raw)
            f.flush()
            os.fsync(f.fileno())

    @staticmethod
    def _parse_journal(raw: bytes) -> tuple[int, bytes] | None:
        if len(raw) < 24 or raw[:4] != _JOURNAL_MAGIC:
            return None
        idx_off, tail_len, crc = struct.unpack_from("<QQI", raw, 4)
        tail = raw[24:]
        if len(tail) != tail_len or _crc32(tail) != crc:
            return None
        return idx_off, tail

    # -- internals -------------------------------------------------------------

    def _load_tail(self, recover: bool = True) -> tuple[int, dict]:
        """Return (index offset, index dict), recovering from a journal if
        one is present and the footer did not survive."""
        if recover and self.journal_path.exists():
            self.recover()
        try:
            size = self.path.stat().st_size
            with open(self.path, "rb") as f:
                head = f.read(4)
                if head != _MAGIC:
                    raise CorruptArchiveError(f"{self.path} is not an archive")
                if size < 16:
                    raise CorruptArchiveError(f"{self.path}: no footer present")
                f.seek(-16, 2)
                tail = f.read(16)
        except FileNotFoundError:
            raise CorruptArchiveError(f"{self.path} does not exist") from None
        if tail[12:] == _FOOT_V1:
            (idx_off,) = struct.unpack("<Q", tail[:8])
            (idx_crc,) = struct.unpack("<I", tail[8:12])
            end = size - 16
            raw = self._read_span(idx_off, end)
            if _crc32(raw) != idx_crc:
                raise CorruptArchiveError(f"{self.path}: index CRC32 mismatch")
            index = self._parse_index(raw)
        elif tail[12:] == _FOOT_V0:
            (idx_off,) = struct.unpack("<Q", tail[4:12])
            end = size - 12
            raw = self._read_span(idx_off, end)
            index = self._parse_index(raw)
        else:
            raise CorruptArchiveError(f"{self.path}: archive footer corrupt")
        return idx_off, index

    def _read_span(self, start: int, end: int) -> bytes:
        if start < 4 or start > end:
            raise CorruptArchiveError(
                f"{self.path}: index offset {start} outside file"
            )
        with open(self.path, "rb") as f:
            f.seek(start)
            return f.read(end - start)

    def _parse_index(self, raw: bytes) -> dict:
        if not raw:
            return {}
        try:
            obj = json.loads(raw.decode())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CorruptArchiveError(f"{self.path}: index unreadable: {exc}") from None
        if isinstance(obj, dict) and obj.get("v") == ARCHIVE_FORMAT_VERSION:
            entries = obj.get("entries")
        else:
            entries = obj  # legacy v0 flat index
        if not isinstance(entries, dict) or not all(
            isinstance(v, list)
            and len(v) in (2, 3)
            and all(isinstance(x, int) for x in v)
            for v in entries.values()
        ):
            raise CorruptArchiveError(f"{self.path}: malformed index entries")
        return entries

    def _index_offset(self) -> int:
        return self._load_tail()[0]

    def _read_index(self) -> dict:
        return self._load_tail()[1]

    def _write_tail(
        self,
        index: dict,
        payload_end: int,
        _crash_point: str | None = None,
    ) -> None:
        raw = json.dumps(
            {"v": ARCHIVE_FORMAT_VERSION, "entries": index},
            separators=(",", ":"),
        ).encode()
        with open(self.path, "r+b") as f:
            f.seek(payload_end)
            f.write(raw)
            # the index must be durable before the footer makes it reachable
            f.flush()
            os.fsync(f.fileno())
            if _crash_point == "after_index":
                f.truncate()
                raise _SimulatedCrash("after_index")
            f.write(struct.pack("<QI", payload_end, _crc32(raw)))
            f.write(_FOOT_V1)
            f.truncate()
            f.flush()
            os.fsync(f.fileno())


class _SimulatedCrash(RuntimeError):
    """Raised by the ``_crash_point`` fault-injection hooks in append."""
