"""Multi-field compressed archive with integrity-checked, crash-safe appends.

One file holding many named compressed blobs (e.g. all 13 Hurricane fields,
or 3600 RTM slices) with an index, supporting appends and selective reads —
the on-disk format the parallel transfer pipeline writes.

Layout (v1)::

    RARC | blob payloads... | index JSON | u64 idx_off | u32 idx_crc | RAR1

The v1 index is ``{"v": 1, "entries": {name: [offset, size, crc32]}}`` —
every entry carries a CRC32 verified on read, and the index itself is
covered by the footer CRC.  v0 archives (flat ``{name: [offset, size]}``
index, 12-byte ``CRAR`` footer, no checksums) remain fully readable.

Appending rewrites only the tail (index + footer).  Because the new payload
overwrites the *old* index, a crash mid-append used to leave an unreadable
file; appends are now journaled: the old tail (index + footer) is snapshotted
to a fsynced ``<archive>.journal`` sidecar before any byte of the archive is
touched, the new index is written and fsynced *before* the footer is
published, and the journal is removed only after the footer hits the disk.
:meth:`Archive.recover` (run automatically when a journal is present) either
confirms the completed append or rolls the file back to its pre-append state.

Streamed slab container (v1)
----------------------------
:class:`ContainerWriter` / :class:`ContainerReader` implement the
incremental variant used by ``compress_stream``: per-slab blob segments are
flushed to an append-only file-like sink as they finish, and a trailing
index records per-slab byte offsets so a reader can decode any slab (or
byte range of slabs) without touching the rest — the seam ROADMAP item 2's
range-request decode plugs into.  Layout::

    RSTR | u8 ver=1 | u8 axis | u16 reserved | segments... |
        index JSON | u64 idx_off | u32 idx_crc | RST1

The index is ``{"v": 1, "axis": a, "segments": [[offset, size, crc32],
...], "meta": {...}}``; segment offsets are absolute, strictly increasing
and contiguous (validated on open), and ``meta`` carries the volume
geometry (``compressor``/``dtype``/``shape``/``error_bound``) so decode can
preallocate the output.  This framing is additive: in-memory blobs
(``RPRC``/``RPR1``) and the slab-parallel container (``RPAR``) are
untouched, so all golden digests stay frozen.
"""
from __future__ import annotations

import io
import json
import os
import pathlib
import struct
import zlib
from typing import Any, BinaryIO, Iterator

from ..errors import (
    CorruptArchiveError,
    CorruptBlobError,
    IntegrityError,
    TruncatedStreamError,
    VersionError,
)

__all__ = ["Archive", "ContainerWriter", "ContainerReader", "is_streamed_container"]

_MAGIC = b"RARC"
_FOOT_V0 = b"CRAR"
_FOOT_V1 = b"RAR1"
_JOURNAL_MAGIC = b"RJNL"

_STREAM_MAGIC = b"RSTR"
_STREAM_FOOT = b"RST1"
#: streamed slab-container format revision written by this module
STREAM_FORMAT_VERSION = 1
_STREAM_HEADER_LEN = 8
_STREAM_FOOTER_LEN = 16

#: on-disk archive format revision written by this module
ARCHIVE_FORMAT_VERSION = 1


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


class Archive:
    """Append/read interface over the archive file format."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)

    @property
    def journal_path(self) -> pathlib.Path:
        return self.path.with_name(self.path.name + ".journal")

    # -- writing ------------------------------------------------------------

    @classmethod
    def create(cls, path: str | pathlib.Path) -> "Archive":
        arch = cls(path)
        with open(arch.path, "wb") as f:
            f.write(_MAGIC)
        arch._write_tail({}, payload_end=4)
        return arch

    def append(self, name: str, blob: bytes, _crash_point: str | None = None) -> None:
        """Append one named blob (journaled; see :meth:`append_many`).

        ``_crash_point`` is a fault-injection hook for the torn-write tests:
        ``"after_journal"`` / ``"after_payload"`` / ``"after_index"`` abort
        the append at that stage, simulating a crash before the footer is
        published.
        """
        self.append_many({name: blob}, _crash_point=_crash_point)

    def append_many(
        self, blobs: dict[str, bytes], _crash_point: str | None = None
    ) -> None:
        index = self._read_index()
        for name in blobs:
            if name in index:
                raise KeyError(f"entry {name!r} already exists")
        idx_off = self._index_offset()
        self._write_journal(idx_off)
        if _crash_point == "after_journal":
            raise _SimulatedCrash("after_journal")
        with open(self.path, "r+b") as f:
            f.seek(idx_off)
            pos = idx_off
            for name, blob in blobs.items():
                f.write(blob)
                index[name] = [pos, len(blob), _crc32(blob)]
                pos += len(blob)
            f.flush()
            os.fsync(f.fileno())
        if _crash_point == "after_payload":
            raise _SimulatedCrash("after_payload")
        self._write_tail(index, payload_end=pos, _crash_point=_crash_point)
        self.journal_path.unlink(missing_ok=True)

    # -- reading --------------------------------------------------------------

    def names(self) -> list[str]:
        return list(self._read_index())

    def read(self, name: str, verify: bool = True) -> bytes:
        """Read one entry; v1 entries get CRC32 verification by default."""
        index = self._read_index()
        if name not in index:
            raise KeyError(f"no entry {name!r}; have {list(index)}")
        entry = index[name]
        off, size = entry[0], entry[1]
        idx_off = self._index_offset()
        if off < 4 or size < 0 or off + size > idx_off:
            raise CorruptArchiveError(
                f"entry {name!r} spans [{off}, {off + size}) outside the "
                f"payload region [4, {idx_off})"
            )
        with open(self.path, "rb") as f:
            f.seek(off)
            blob = f.read(size)
        if len(blob) != size:
            raise TruncatedStreamError(
                f"entry {name!r} declares {size} bytes, read {len(blob)}"
            )
        if verify and len(entry) > 2 and _crc32(blob) != entry[2]:
            raise IntegrityError(f"entry {name!r} failed its CRC32 check")
        return blob

    def sizes(self) -> dict[str, int]:
        return {k: v[1] for k, v in self._read_index().items()}

    def checksums(self) -> dict[str, int | None]:
        """Per-entry CRC32 (``None`` for legacy v0 entries)."""
        return {
            k: (v[2] if len(v) > 2 else None) for k, v in self._read_index().items()
        }

    def verify_all(self) -> dict[str, bool]:
        """Re-read every entry and check its CRC (legacy entries pass)."""
        results = {}
        for name in self.names():
            try:
                self.read(name, verify=True)
                results[name] = True
            except (IntegrityError, TruncatedStreamError, CorruptArchiveError):
                results[name] = False
        return results

    def total_bytes(self) -> int:
        return self.path.stat().st_size

    @property
    def version(self) -> int:
        """On-disk format revision (0 for legacy, 1 for checksummed)."""
        with open(self.path, "rb") as f:
            f.seek(-4, 2)
            tail = f.read(4)
        if tail == _FOOT_V1:
            return 1
        if tail == _FOOT_V0:
            return 0
        raise CorruptArchiveError(f"{self.path}: unrecognized archive footer")

    # -- crash recovery ---------------------------------------------------------

    def recover(self) -> str:
        """Resolve an interrupted append using the journal sidecar.

        Returns ``"clean"`` when no journal exists or the journaled append
        actually completed (footer published; the stale journal is removed),
        ``"restored"`` when the archive tail was rolled back to its
        pre-append state, and ``"discarded"`` when the journal itself was
        torn (the archive was never touched).
        """
        jpath = self.journal_path
        if not jpath.exists():
            return "clean"
        raw = jpath.read_bytes()
        tail = self._parse_journal(raw)
        if tail is None:
            # journal write itself was interrupted -> archive untouched
            jpath.unlink(missing_ok=True)
            return "discarded"
        idx_off, tail_bytes = tail
        if self._footer_valid():
            # the append published its footer before the crash: it completed
            jpath.unlink(missing_ok=True)
            return "clean"
        with open(self.path, "r+b") as f:
            f.seek(idx_off)
            f.write(tail_bytes)
            f.truncate(idx_off + len(tail_bytes))
            f.flush()
            os.fsync(f.fileno())
        jpath.unlink(missing_ok=True)
        return "restored"

    def _footer_valid(self) -> bool:
        try:
            self._load_tail(recover=False)
            return True
        except (CorruptArchiveError, OSError):
            return False

    def _write_journal(self, idx_off: int) -> None:
        """Snapshot the current tail (index + footer) before mutating it."""
        with open(self.path, "rb") as f:
            f.seek(idx_off)
            tail = f.read()
        raw = (
            _JOURNAL_MAGIC
            + struct.pack("<QQI", idx_off, len(tail), _crc32(tail))
            + tail
        )
        with open(self.journal_path, "wb") as f:
            f.write(raw)
            f.flush()
            os.fsync(f.fileno())

    @staticmethod
    def _parse_journal(raw: bytes) -> tuple[int, bytes] | None:
        if len(raw) < 24 or raw[:4] != _JOURNAL_MAGIC:
            return None
        idx_off, tail_len, crc = struct.unpack_from("<QQI", raw, 4)
        tail = raw[24:]
        if len(tail) != tail_len or _crc32(tail) != crc:
            return None
        return idx_off, tail

    # -- internals -------------------------------------------------------------

    def _load_tail(self, recover: bool = True) -> tuple[int, dict]:
        """Return (index offset, index dict), recovering from a journal if
        one is present and the footer did not survive."""
        if recover and self.journal_path.exists():
            self.recover()
        try:
            size = self.path.stat().st_size
            with open(self.path, "rb") as f:
                head = f.read(4)
                if head != _MAGIC:
                    raise CorruptArchiveError(f"{self.path} is not an archive")
                if size < 16:
                    raise CorruptArchiveError(f"{self.path}: no footer present")
                f.seek(-16, 2)
                tail = f.read(16)
        except FileNotFoundError:
            raise CorruptArchiveError(f"{self.path} does not exist") from None
        if tail[12:] == _FOOT_V1:
            (idx_off,) = struct.unpack("<Q", tail[:8])
            (idx_crc,) = struct.unpack("<I", tail[8:12])
            end = size - 16
            raw = self._read_span(idx_off, end)
            if _crc32(raw) != idx_crc:
                raise CorruptArchiveError(f"{self.path}: index CRC32 mismatch")
            index = self._parse_index(raw)
        elif tail[12:] == _FOOT_V0:
            (idx_off,) = struct.unpack("<Q", tail[4:12])
            end = size - 12
            raw = self._read_span(idx_off, end)
            index = self._parse_index(raw)
        else:
            raise CorruptArchiveError(f"{self.path}: archive footer corrupt")
        return idx_off, index

    def _read_span(self, start: int, end: int) -> bytes:
        if start < 4 or start > end:
            raise CorruptArchiveError(
                f"{self.path}: index offset {start} outside file"
            )
        with open(self.path, "rb") as f:
            f.seek(start)
            return f.read(end - start)

    def _parse_index(self, raw: bytes) -> dict:
        if not raw:
            return {}
        try:
            obj = json.loads(raw.decode())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CorruptArchiveError(f"{self.path}: index unreadable: {exc}") from None
        if isinstance(obj, dict) and obj.get("v") == ARCHIVE_FORMAT_VERSION:
            entries = obj.get("entries")
        else:
            entries = obj  # legacy v0 flat index
        if not isinstance(entries, dict) or not all(
            isinstance(v, list)
            and len(v) in (2, 3)
            and all(isinstance(x, int) for x in v)
            for v in entries.values()
        ):
            raise CorruptArchiveError(f"{self.path}: malformed index entries")
        return entries

    def _index_offset(self) -> int:
        return self._load_tail()[0]

    def _read_index(self) -> dict:
        return self._load_tail()[1]

    def _write_tail(
        self,
        index: dict,
        payload_end: int,
        _crash_point: str | None = None,
    ) -> None:
        raw = json.dumps(
            {"v": ARCHIVE_FORMAT_VERSION, "entries": index},
            separators=(",", ":"),
        ).encode()
        with open(self.path, "r+b") as f:
            f.seek(payload_end)
            f.write(raw)
            # the index must be durable before the footer makes it reachable
            f.flush()
            os.fsync(f.fileno())
            if _crash_point == "after_index":
                f.truncate()
                raise _SimulatedCrash("after_index")
            f.write(struct.pack("<QI", payload_end, _crc32(raw)))
            f.write(_FOOT_V1)
            f.truncate()
            f.flush()
            os.fsync(f.fileno())


class _SimulatedCrash(RuntimeError):
    """Raised by the ``_crash_point`` fault-injection hooks in append."""


# -- streamed slab container -------------------------------------------------


def is_streamed_container(head: bytes) -> bool:
    """True when ``head`` (>= 4 bytes) starts a streamed slab container."""
    return head[:4] == _STREAM_MAGIC


class ContainerWriter:
    """Incremental writer for the streamed slab container.

    Segments (complete per-slab blobs) are written to ``sink`` the moment
    they are appended — the writer never buffers more than the index — so
    a huge volume streams through O(slab) memory.  ``sink`` only needs a
    ``write`` method (regular file, socket wrapper, ``BytesIO``); the
    offset index is tracked writer-side and published by :meth:`finalize`
    as the trailing index + footer.  Usable as a context manager
    (finalizes on clean exit).
    """

    def __init__(
        self,
        sink: BinaryIO,
        *,
        axis: int = 0,
        meta: dict[str, Any] | None = None,
    ) -> None:
        if not 0 <= int(axis) < 256:
            raise ValueError(f"slab axis {axis!r} out of range")
        self._sink = sink
        self.axis = int(axis)
        self.meta = dict(meta) if meta else {}
        self._segments: list[list[int]] = []
        self._pos = 0
        self._finalized = False
        self._write(
            _STREAM_MAGIC
            + struct.pack("<BBH", STREAM_FORMAT_VERSION, self.axis, 0)
        )

    def _write(self, data: bytes) -> None:
        self._sink.write(data)
        self._pos += len(data)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def bytes_written(self) -> int:
        return self._pos

    def offsets(self) -> list[tuple[int, int]]:
        """Per-segment ``(offset, size)`` pairs written so far."""
        return [(off, size) for off, size, _crc in self._segments]

    def append(self, segment: bytes) -> int:
        """Flush one complete segment to the sink; returns its index."""
        if self._finalized:
            raise ValueError("ContainerWriter is finalized")
        segment = bytes(segment)
        if not segment:
            raise ValueError("empty segment")
        self._segments.append([self._pos, len(segment), _crc32(segment)])
        self._write(segment)
        return len(self._segments) - 1

    def finalize(self) -> dict[str, Any]:
        """Publish the trailing index + footer; returns a summary dict."""
        if self._finalized:
            raise ValueError("ContainerWriter is already finalized")
        index = {
            "v": STREAM_FORMAT_VERSION,
            "axis": self.axis,
            "segments": self._segments,
        }
        if self.meta:
            index["meta"] = self.meta
        raw = json.dumps(index, separators=(",", ":")).encode()
        idx_off = self._pos
        self._write(raw)
        self._write(struct.pack("<QI", idx_off, _crc32(raw)) + _STREAM_FOOT)
        self._finalized = True
        flush = getattr(self._sink, "flush", None)
        if flush is not None:
            flush()
        return {
            "segments": len(self._segments),
            "payload_bytes": sum(s[1] for s in self._segments),
            "total_bytes": self._pos,
            "axis": self.axis,
        }

    def __enter__(self) -> "ContainerWriter":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc_type is None and not self._finalized:
            self.finalize()


class _ByteSource:
    """Random-access byte reads over bytes / a seekable file / a path."""

    def __init__(self, src: Any) -> None:
        self._file: BinaryIO | None = None
        self._buf: bytes | None = None
        if isinstance(src, (bytes, bytearray, memoryview)):
            self._buf = bytes(src)
            self._size = len(self._buf)
        elif isinstance(src, (str, pathlib.Path)):
            self._file = open(src, "rb")
            self._size = os.fstat(self._file.fileno()).st_size
        elif hasattr(src, "read") and hasattr(src, "seek"):
            self._file = src
            pos = src.tell()
            self._size = src.seek(0, io.SEEK_END)
            src.seek(pos)
        else:
            raise TypeError(
                "streamed container source must be bytes, a path, or a "
                f"seekable binary file, not {type(src).__name__}"
            )

    @property
    def size(self) -> int:
        return self._size

    def read_at(self, offset: int, n: int) -> bytes:
        if self._buf is not None:
            return self._buf[offset : offset + n]
        assert self._file is not None
        self._file.seek(offset)
        return self._file.read(n)


class ContainerReader:
    """Reader for the streamed slab container written by
    :class:`ContainerWriter`.

    ``source`` may be raw bytes, a filesystem path, or a seekable binary
    file object.  Segments are fetched on demand (:meth:`segment` /
    iteration) so decoding stays O(slab); :meth:`segment` is random-access
    by design — a range request needs only the trailing index plus the
    requested slabs' byte ranges.
    """

    def __init__(self, source: Any) -> None:
        self._src = _ByteSource(source)
        size = self._src.size
        if size < _STREAM_HEADER_LEN:
            raise TruncatedStreamError(
                f"streamed container: {size} bytes is shorter than the header"
            )
        head = self._src.read_at(0, _STREAM_HEADER_LEN)
        if head[:4] != _STREAM_MAGIC:
            raise CorruptBlobError(
                f"not a streamed container (magic {head[:4]!r})"
            )
        version, axis, _reserved = struct.unpack("<BBH", head[4:8])
        if version != STREAM_FORMAT_VERSION:
            raise VersionError(
                f"streamed container version {version} is not supported "
                f"(this build reads v{STREAM_FORMAT_VERSION})"
            )
        if size < _STREAM_HEADER_LEN + _STREAM_FOOTER_LEN:
            raise TruncatedStreamError(
                "streamed container: footer missing (stream truncated or "
                "never finalized)"
            )
        foot = self._src.read_at(size - _STREAM_FOOTER_LEN, _STREAM_FOOTER_LEN)
        if foot[12:] != _STREAM_FOOT:
            raise TruncatedStreamError(
                "streamed container: footer magic missing (stream truncated "
                "or never finalized)"
            )
        idx_off, idx_crc = struct.unpack("<QI", foot[:12])
        idx_end = size - _STREAM_FOOTER_LEN
        if not _STREAM_HEADER_LEN <= idx_off <= idx_end:
            raise CorruptBlobError(
                f"streamed container: index offset {idx_off} outside file"
            )
        raw = self._src.read_at(idx_off, idx_end - idx_off)
        if _crc32(raw) != idx_crc:
            raise IntegrityError("streamed container: index failed its CRC32")
        self._idx_off = idx_off
        index = self._parse_index(raw)
        self.axis = int(index["axis"])
        if self.axis != axis:
            raise CorruptBlobError(
                f"streamed container: header axis {axis} != index axis {self.axis}"
            )
        self.meta: dict[str, Any] = index.get("meta") or {}
        self._segments: list[list[int]] = index["segments"]

    def _parse_index(self, raw: bytes) -> dict[str, Any]:
        try:
            index = json.loads(raw.decode())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CorruptBlobError(
                f"streamed container: index unreadable: {exc}"
            ) from None
        if not isinstance(index, dict):
            raise CorruptBlobError("streamed container: index is not an object")
        if index.get("v") != STREAM_FORMAT_VERSION:
            raise VersionError(
                f"streamed container: index version {index.get('v')!r} is "
                f"not supported"
            )
        segments = index.get("segments")
        axis = index.get("axis")
        if not isinstance(axis, int) or not 0 <= axis < 256:
            raise CorruptBlobError("streamed container: bad index axis")
        if not isinstance(segments, list) or not all(
            isinstance(s, list)
            and len(s) == 3
            and all(isinstance(x, int) and x >= 0 for x in s)
            for s in segments
        ):
            raise CorruptBlobError("streamed container: malformed segment table")
        meta = index.get("meta", {})
        if not isinstance(meta, dict):
            raise CorruptBlobError("streamed container: malformed meta block")
        # offsets must be strictly increasing AND contiguous: segment k+1
        # starts exactly where segment k ended, and the payload region is
        # [header, idx_off) with no gaps for bytes to hide in
        pos = _STREAM_HEADER_LEN
        for i, (off, size, _crc) in enumerate(segments):
            if off != pos or size <= 0:
                raise CorruptBlobError(
                    f"streamed container: segment {i} spans [{off}, "
                    f"{off + size}) but the payload cursor is at {pos}"
                )
            pos += size
        if pos != self._idx_off:
            raise CorruptBlobError(
                f"streamed container: segments end at {pos} but the index "
                f"starts at {self._idx_off}"
            )
        return index

    def __len__(self) -> int:
        return len(self._segments)

    def offsets(self) -> list[tuple[int, int]]:
        """Per-segment ``(offset, size)`` pairs from the index."""
        return [(off, size) for off, size, _crc in self._segments]

    def segment(self, i: int, verify: bool = True) -> bytes:
        """Random-access read of segment ``i`` (CRC-checked by default)."""
        off, size, crc = self._segments[i]
        raw = self._src.read_at(off, size)
        if len(raw) != size:
            raise TruncatedStreamError(
                f"streamed container: segment {i} declares {size} bytes, "
                f"read {len(raw)}"
            )
        if verify and _crc32(raw) != crc:
            raise IntegrityError(
                f"streamed container: segment {i} failed its CRC32 check"
            )
        return raw

    def __iter__(self) -> Iterator[bytes]:
        for i in range(len(self._segments)):
            yield self.segment(i)
