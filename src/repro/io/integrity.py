"""Integrity envelope for serialized blobs (the v1 ``RPR1`` framing).

The v0 ``RPRC`` blob format carries no checksum or version field: a bit flip
in flight silently decodes to garbage (or hangs a sequential entropy reader).
v1 fixes this without moving a single payload bit — it *wraps* the canonical
v0 bytes in a 17-byte envelope::

    RPR1 | u8 version | u64 payload_len | u32 crc32(payload) | payload

Because the payload is the unmodified v0 blob, golden byte-identity digests
of the canonical encoding are unchanged: ``unseal(seal(blob)) == blob`` and
``crc32`` is the only redundancy added.  ``Blob.from_bytes`` auto-unseals,
so every reader accepts both framings; writers opt in via
``compress(..., checksum=True)`` / ``Blob.to_bytes(checksum=True)``.

The same CRC32 helper backs the v1 archive index entries.
"""
from __future__ import annotations

import struct
import zlib

from ..errors import IntegrityError, TruncatedStreamError, VersionError

__all__ = [
    "BLOB_MAGIC_V0",
    "BLOB_MAGIC_V1",
    "BLOB_FORMAT_VERSION",
    "ENVELOPE_BYTES",
    "crc32",
    "seal",
    "unseal",
    "is_sealed",
    "envelope_info",
]

BLOB_MAGIC_V0 = b"RPRC"
BLOB_MAGIC_V1 = b"RPR1"
#: current envelope revision written by :func:`seal`
BLOB_FORMAT_VERSION = 1
#: envelope overhead: magic + version + payload_len + crc32
ENVELOPE_BYTES = 4 + 1 + 8 + 4

_HEAD = struct.Struct("<BQI")


def crc32(data: bytes) -> int:
    """CRC32 (zlib polynomial) as an unsigned 32-bit value."""
    return zlib.crc32(data) & 0xFFFFFFFF


def seal(payload: bytes) -> bytes:
    """Wrap canonical blob bytes in the v1 integrity envelope."""
    return (
        BLOB_MAGIC_V1
        + _HEAD.pack(BLOB_FORMAT_VERSION, len(payload), crc32(payload))
        + payload
    )


def is_sealed(data: bytes) -> bool:
    """Whether ``data`` starts with the v1 envelope magic."""
    return data[:4] == BLOB_MAGIC_V1


def unseal(data: bytes) -> bytes:
    """Verify and strip the v1 envelope, returning the canonical payload.

    Raises :class:`~repro.errors.VersionError` for unknown revisions,
    :class:`~repro.errors.TruncatedStreamError` when the payload is shorter
    than declared, and :class:`~repro.errors.IntegrityError` on CRC or
    trailing-byte mismatch.
    """
    if data[:4] != BLOB_MAGIC_V1:
        raise IntegrityError("not a sealed (RPR1) blob")
    if len(data) < ENVELOPE_BYTES:
        raise TruncatedStreamError(
            f"sealed blob envelope needs {ENVELOPE_BYTES} bytes, have {len(data)}"
        )
    version, plen, crc = _HEAD.unpack_from(data, 4)
    if version != BLOB_FORMAT_VERSION:
        raise VersionError(
            f"unsupported blob format version {version} "
            f"(this reader knows <= {BLOB_FORMAT_VERSION})"
        )
    payload = data[ENVELOPE_BYTES:]
    if len(payload) < plen:
        raise TruncatedStreamError(
            f"sealed blob declares {plen} payload bytes, have {len(payload)}"
        )
    if len(payload) > plen:
        raise IntegrityError(
            f"{len(payload) - plen} trailing bytes after sealed payload"
        )
    if crc32(payload) != crc:
        raise IntegrityError("sealed blob payload CRC32 mismatch")
    return payload


def envelope_info(data: bytes) -> dict:
    """Envelope metadata without full verification (for ``repro info``)."""
    if not is_sealed(data):
        return {"format_version": 0, "checksum": None}
    if len(data) < ENVELOPE_BYTES:
        raise TruncatedStreamError("sealed blob envelope truncated")
    version, plen, crc = _HEAD.unpack_from(data, 4)
    return {
        "format_version": version,
        "payload_len": plen,
        "crc32": f"{crc:08x}",
        "crc_ok": crc32(data[ENVELOPE_BYTES:ENVELOPE_BYTES + plen]) == crc
        and len(data) == ENVELOPE_BYTES + plen,
    }
