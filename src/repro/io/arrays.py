"""Raw binary array I/O with the SZ-community file conventions.

The benchmark datasets are distributed as headerless binary files whose
dtype is encoded in the extension (``.f32``/``.f64``/``.d64``) and whose
dimensions come from the file name or an explicit argument — these helpers
read/write that convention alongside ``.npy``.
"""
from __future__ import annotations

import pathlib
import re

import numpy as np

__all__ = ["load_array", "save_array", "infer_dtype", "parse_dims"]

_EXT_DTYPES = {
    ".f32": np.float32,
    ".f64": np.float64,
    ".d64": np.float64,
    ".dat": np.float32,
}

_DIMS_RE = re.compile(r"(\d+(?:x\d+)+)")


def infer_dtype(path: str | pathlib.Path) -> np.dtype:
    """Dtype from the extension (``.f32``, ``.f64``, ``.d64``, ``.dat``)."""
    ext = pathlib.Path(path).suffix.lower()
    if ext not in _EXT_DTYPES:
        raise ValueError(f"cannot infer dtype from extension {ext!r}")
    return np.dtype(_EXT_DTYPES[ext])


def parse_dims(path: str | pathlib.Path) -> tuple[int, ...] | None:
    """Dimensions embedded in a filename like ``CLOUD_100x500x500.f32``."""
    m = _DIMS_RE.search(pathlib.Path(path).stem)
    if not m:
        return None
    return tuple(int(d) for d in m.group(1).split("x"))


def load_array(
    path: str | pathlib.Path,
    shape: tuple[int, ...] | None = None,
    dtype: np.dtype | None = None,
) -> np.ndarray:
    """Load ``.npy`` or raw binary (dtype/shape inferred where possible)."""
    path = pathlib.Path(path)
    if path.suffix.lower() == ".npy":
        return np.load(path)
    dtype = np.dtype(dtype) if dtype is not None else infer_dtype(path)
    shape = shape if shape is not None else parse_dims(path)
    data = np.fromfile(path, dtype=dtype)
    if shape is not None:
        expected = int(np.prod(shape))
        if expected != data.size:
            raise ValueError(
                f"{path}: file holds {data.size} values, shape {shape} needs {expected}"
            )
        data = data.reshape(shape)
    return data


def save_array(path: str | pathlib.Path, data: np.ndarray) -> None:
    """Save ``.npy`` or raw binary matching the extension's dtype."""
    path = pathlib.Path(path)
    if path.suffix.lower() == ".npy":
        np.save(path, data)
        return
    dtype = infer_dtype(path)
    np.ascontiguousarray(data, dtype=dtype).tofile(path)
