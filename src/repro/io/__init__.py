"""File I/O: raw/npy arrays, multi-field compressed archives, and the
streamed slab container."""
from .arrays import infer_dtype, load_array, parse_dims, save_array
from .container import Archive, ContainerReader, ContainerWriter, is_streamed_container

__all__ = [
    "load_array",
    "save_array",
    "infer_dtype",
    "parse_dims",
    "Archive",
    "ContainerWriter",
    "ContainerReader",
    "is_streamed_container",
]
