"""File I/O: raw/npy arrays and multi-field compressed archives."""
from .arrays import infer_dtype, load_array, parse_dims, save_array
from .container import Archive

__all__ = ["load_array", "save_array", "infer_dtype", "parse_dims", "Archive"]
