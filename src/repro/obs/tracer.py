"""Span-based tracer: nested monotonic-clock spans with labels.

A *span* is one timed region of the pipeline (``compress``, ``predict``,
``huffman``...).  Spans nest: entering a span while another is open records
the parent/depth relationship, so an exported trace reconstructs the call
tree exactly — which stage ran inside which operation, in what order.

Design constraints (see docs/observability.md):

* **Monotonic clock.**  All timestamps come from ``time.perf_counter`` and
  are stored relative to the tracer's epoch, so traces are immune to wall
  clock adjustments and offsets are meaningful within one trace.
* **Cheap when on, free when off.**  ``Tracer.span`` allocates one slotted
  handle and reads the clock twice; the *module-level* guard that makes the
  hot path free when tracing is disabled lives in :mod:`repro.obs` (one
  global read, one ``is None`` test, shared no-op handle).
* **Fork-pool survival.**  A worker process records into its own tracer,
  serializes it with :meth:`Tracer.to_payload`, and the parent merges the
  buffer with :meth:`Tracer.merge_payload` — spans keep their internal
  ordering and nesting, gain a ``worker`` tag, and hang under whatever span
  was open in the parent at merge time.  Merging in job-submission order
  makes the combined trace deterministic regardless of pool scheduling.
"""
from __future__ import annotations

import functools
import time
from typing import Any, Callable

__all__ = ["Span", "TraceEvent", "Tracer"]


class Span:
    """One completed (or still-open) timed region.

    Doubles as its own context-manager handle (``with tracer.span(...)``)
    so the hot path allocates exactly one object per span.
    """

    __slots__ = (
        "name",
        "index",
        "parent",
        "depth",
        "start",
        "end",
        "labels",
        "worker",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        index: int,
        parent: int,
        depth: int,
        start: float,
        end: float | None = None,
        labels: dict[str, Any] | None = None,
        worker: str | None = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.name = name
        self.index = index
        self.parent = parent  # index of the enclosing span, -1 for roots
        self.depth = depth
        self.start = start  # seconds since the tracer epoch
        self.end = end
        self.labels = labels
        self.worker = worker
        self._tracer = tracer

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer._close(self)
        return False

    def label(self, **labels: Any) -> "Span":
        """Attach labels after entry (e.g. an output size known at the end)."""
        if self.labels is None:
            self.labels = labels
        else:
            self.labels.update(labels)
        return self

    @property
    def seconds(self) -> float:
        """Duration; 0.0 while the span is still open."""
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "name": self.name,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "t0": self.start,
            "seconds": self.seconds,
        }
        if self.labels:
            d["labels"] = dict(self.labels)
        if self.worker is not None:
            d["worker"] = self.worker
        return d


class TraceEvent:
    """A point-in-time occurrence (retry fired, slice quarantined, ...)."""

    __slots__ = ("name", "time", "parent", "labels", "worker")

    def __init__(
        self,
        name: str,
        time_s: float,
        parent: int,
        labels: dict[str, Any] | None = None,
        worker: str | None = None,
    ) -> None:
        self.name = name
        self.time = time_s
        self.parent = parent
        self.labels = labels
        self.worker = worker

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"name": self.name, "t": self.time, "parent": self.parent}
        if self.labels:
            d["labels"] = dict(self.labels)
        if self.worker is not None:
            d["worker"] = self.worker
        return d


class Tracer:
    """Collects spans and events for one observed operation."""

    __slots__ = ("spans", "events", "epoch", "_stack", "_on_close")

    def __init__(self, on_close: "Callable[[Span], None] | None" = None) -> None:
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self.epoch = time.perf_counter()
        self._stack: list[Span] = []
        self._on_close = on_close

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **labels: Any) -> Span:
        """Open a nested span; use as ``with tracer.span("huffman"): ...``."""
        stack = self._stack
        parent = stack[-1] if stack else None
        s = Span(
            name,
            index=len(self.spans),
            parent=-1 if parent is None else parent.index,
            depth=len(stack),
            start=time.perf_counter() - self.epoch,
            labels=labels or None,
            tracer=self,
        )
        self.spans.append(s)
        stack.append(s)
        return s

    def _close(self, span: Span) -> None:
        span.end = time.perf_counter() - self.epoch
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        else:
            # tolerate mis-nested exits (an inner span leaked by an exception
            # path): pop back to the closing span instead of corrupting the
            # stack
            while stack:
                if stack.pop() is span:
                    break
        if self._on_close is not None:
            self._on_close(span)

    def event(self, name: str, **labels: Any) -> None:
        """Record a point event under the currently open span."""
        parent = self._stack[-1].index if self._stack else -1
        self.events.append(
            TraceEvent(
                name,
                time.perf_counter() - self.epoch,
                parent,
                labels or None,
            )
        )

    def trace(self, name: str | None = None, **labels: Any):
        """Decorator form: time every call of the wrapped function."""

        def deco(fn):
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name, **labels):
                    return fn(*args, **kwargs)

            return wrapper

        return deco

    # -- aggregation --------------------------------------------------------

    def stage_seconds(self) -> dict[str, float]:
        """Total seconds per span name (the flat per-stage view the perf
        profiler and the bench harness report)."""
        totals: dict[str, float] = {}
        for s in self.spans:
            if s.end is not None:
                totals[s.name] = totals.get(s.name, 0.0) + s.seconds
        return totals

    def span_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for s in self.spans:
            counts[s.name] = counts.get(s.name, 0) + 1
        return counts

    def root_seconds(self) -> float:
        """Total time covered by depth-0 spans (non-overlapping by
        construction in a single-threaded trace)."""
        return sum(s.seconds for s in self.spans if s.depth == 0 and s.end is not None)

    # -- fork-pool buffers --------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """Serialize finished spans/events for transport out of a worker.

        Only plain lists/dicts/floats — safe through pickle or JSON.  Times
        stay relative to this tracer's epoch; the receiving side keeps them
        as worker-local offsets (cross-process clock bases are not assumed
        comparable).
        """
        return {
            "spans": [s.to_dict() for s in self.spans if s.end is not None],
            "events": [e.to_dict() for e in self.events],
        }

    def merge_payload(self, payload: dict[str, Any], worker: str) -> None:
        """Graft a worker's span buffer into this trace under the currently
        open span, tagging every record with ``worker``.

        Call once per worker buffer, in job-submission order, so the merged
        trace is deterministic regardless of pool scheduling.
        """
        stack = self._stack
        anchor = stack[-1] if stack else None
        anchor_index = -1 if anchor is None else anchor.index
        anchor_depth = 0 if anchor is None else anchor.depth + 1
        # worker-local span indices may be sparse (open spans are dropped by
        # to_payload), so parents are remapped through an explicit table
        remap: dict[int, int] = {}
        for d in payload.get("spans", ()):
            parent = d.get("parent", -1)
            s = Span(
                d["name"],
                index=len(self.spans),
                parent=remap.get(parent, anchor_index),
                depth=anchor_depth + d.get("depth", 0),
                start=d.get("t0", 0.0),
                end=d.get("t0", 0.0) + d.get("seconds", 0.0),
                labels=dict(d["labels"]) if d.get("labels") else None,
                worker=worker,
            )
            remap[d.get("index", -1)] = s.index
            self.spans.append(s)
            if self._on_close is not None:
                self._on_close(s)
        for d in payload.get("events", ()):
            parent = d.get("parent", -1)
            self.events.append(
                TraceEvent(
                    d["name"],
                    d.get("t", 0.0),
                    remap.get(parent, anchor_index),
                    labels=dict(d["labels"]) if d.get("labels") else None,
                    worker=worker,
                )
            )
