"""Structured observability: traces + metrics for the compression pipeline.

One :class:`Observation` bundles a span :class:`~repro.obs.tracer.Tracer`
and a :class:`~repro.obs.metrics.MetricsRegistry` for a single observed
operation (a compress call, a bench run, a transfer).  Activate it with
:func:`observe`; every instrumentation hook in the hot path then records
into it:

>>> from repro import obs
>>> ob = obs.Observation()
>>> with obs.observe(ob):
...     compressor.compress(data)
>>> ob.tracer.stage_seconds()["huffman"]      # doctest: +SKIP

Hot-path contract
-----------------
Instrumentation points are ``with obs.span("huffman"): ...`` (or
``obs.add_bytes``/``obs.event``/``obs.metric_*``).  When no observation is
active every hook is a no-op costing one module-global read and an
``is None`` test — :func:`span` returns a shared do-nothing handle, so
production paths pay nothing for being observable.  Activating an
observation never changes any compressed bytes; hooks only watch timings
and sizes (enforced by the golden byte-identity tests).

Fork-pool survival
------------------
Worker processes cannot write into the parent's buffers.  A worker instead
activates its own Observation, runs the job, and ships
:meth:`Observation.to_payload` back with the result; the parent calls
:meth:`Observation.merge_payload` in job-submission order, so the combined
trace is deterministic (see ``repro.parallel``).

The legacy :mod:`repro.perf` profiler is a thin view over this module —
there is a single timing source of truth (the tracer).
"""
from __future__ import annotations

import functools
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator

from .metrics import (
    BYTES_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .timing import Stopwatch, throughput_mbs
from .tracer import Span, TraceEvent, Tracer

__all__ = [
    "Stopwatch",
    "throughput_mbs",
    "Observation",
    "observe",
    "current",
    "span",
    "event",
    "add_bytes",
    "metric_count",
    "metric_seconds",
    "traced",
    "Tracer",
    "Span",
    "TraceEvent",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SECONDS_BUCKETS",
    "BYTES_BUCKETS",
]

#: histogram of every span's duration, labelled by span name, recorded
#: automatically as spans close
SPAN_HISTOGRAM = "span.seconds"
#: counter family for byte flow through a named stage
BYTES_COUNTER = "stage.bytes"


class Observation:
    """A tracer + metrics registry observing one operation."""

    __slots__ = ("tracer", "metrics", "_span_hists")

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        span_histograms: bool = True,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._span_hists: dict[str, Histogram] = {}
        on_close = self._observe_span if span_histograms else None
        self.tracer = tracer if tracer is not None else Tracer(on_close=on_close)

    def _observe_span(self, span: Span) -> None:
        # runs on every span close — cache the per-name histogram instrument
        # so the hot path skips the registry's sorted-label key construction
        h = self._span_hists.get(span.name)
        if h is None:
            h = self.metrics.histogram(
                SPAN_HISTOGRAM, SECONDS_BUCKETS, span=span.name
            )
            self._span_hists[span.name] = h
        h.observe(span.seconds)

    # -- convenience recording ----------------------------------------------

    def add_bytes(self, stage: str, nbytes: int) -> None:
        self.metrics.counter(BYTES_COUNTER, stage=stage).inc(int(nbytes))

    def bytes_seen(self) -> dict[str, int]:
        """``stage -> total bytes`` view over the byte-flow counters."""
        out: dict[str, int] = {}
        for (name, labels), inst in self.metrics._instruments.items():
            if name == BYTES_COUNTER and len(labels) == 1 and labels[0][0] == "stage":
                out[labels[0][1]] = int(inst.value)
        return out

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Full deterministic-structure dump (spans, events, metrics)."""
        return {
            "spans": [s.to_dict() for s in self.tracer.spans],
            "events": [e.to_dict() for e in self.tracer.events],
            "metrics": self.metrics.snapshot(),
        }

    def stage_report(self, nbytes: int | None = None) -> dict[str, Any]:
        """Flat per-stage seconds/bytes/throughput (the bench/perf schema)."""
        totals = self.tracer.stage_seconds()
        seen = self.bytes_seen()
        stages: dict[str, Any] = {}
        for name in sorted(set(totals) | set(seen)):
            seconds = totals.get(name, 0.0)
            entry: dict[str, Any] = {"seconds": seconds}
            if name in seen:
                entry["bytes"] = seen[name]
            if nbytes is not None and seconds > 0:
                entry["mb_per_s"] = throughput_mbs(nbytes, seconds)
            stages[name] = entry
        return {
            "stages": stages,
            "total_s": sum(totals.values()),
            "span_count": len(self.tracer.spans),
        }

    # -- fork-pool buffers --------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """Serialize this observation for transport out of a worker."""
        payload = self.tracer.to_payload()
        payload["metrics"] = self.metrics.to_payload()
        return payload

    def merge_payload(self, payload: dict[str, Any] | None, worker: str) -> None:
        """Fold a worker's buffers into this observation (see module docs)."""
        if not payload:
            return
        self.tracer.merge_payload(payload, worker)
        self.metrics.merge_payload(payload.get("metrics", ()))


class _NullHandle:
    """Shared no-op span handle for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False

    def label(self, **labels: Any) -> "_NullHandle":
        return self


_NULL = _NullHandle()

#: the active observation (None = observability off, every hook is a no-op).
#: A :class:`~contextvars.ContextVar` rather than a module global so the
#: streaming thread pipeline can give each slab worker its own Observation
#: without racing the main thread's tracer ``_stack`` (new threads start
#: with a fresh context, i.e. observability off until the worker activates
#: its per-slab observation — see ``repro.streaming``).
_ACTIVE: ContextVar[Observation | None] = ContextVar("repro_obs_active", default=None)


def current() -> Observation | None:
    return _ACTIVE.get()


@contextmanager
def observe(observation: Observation | None = None) -> Iterator[Observation]:
    """Activate ``observation`` (or a fresh one) for the duration of the
    block.  Re-entrant: the previous observation is restored on exit."""
    ob = observation if observation is not None else Observation()
    token = _ACTIVE.set(ob)
    try:
        yield ob
    finally:
        _ACTIVE.reset(token)


def span(name: str, **labels: Any):
    """Hot-path hook: time the enclosed block as a nested span.

    Free when no observation is active (one context-var read, shared
    no-op)."""
    ob = _ACTIVE.get()
    if ob is None:
        return _NULL
    return ob.tracer.span(name, **labels)


def event(name: str, **labels: Any) -> None:
    """Record a point event (retry fired, slice quarantined, ...)."""
    ob = _ACTIVE.get()
    if ob is not None:
        ob.tracer.event(name, **labels)


def add_bytes(stage: str, nbytes: int) -> None:
    """Record ``nbytes`` flowing through ``stage`` (no-op when off)."""
    ob = _ACTIVE.get()
    if ob is not None:
        ob.add_bytes(stage, nbytes)


def metric_count(name: str, n: int = 1, **labels: Any) -> None:
    """Bump a labelled counter by ``n`` (no-op when off)."""
    ob = _ACTIVE.get()
    if ob is not None:
        ob.metrics.counter(name, **labels).inc(n)


def metric_seconds(name: str, seconds: float, **labels: Any) -> None:
    """Record a duration into a labelled seconds-histogram (no-op when off)."""
    ob = _ACTIVE.get()
    if ob is not None:
        ob.metrics.histogram(name, SECONDS_BUCKETS, **labels).observe(seconds)


def traced(name: str | None = None, **labels: Any):
    """Decorator: wrap a function in a span named after it (or ``name``)."""

    def deco(fn):
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            ob = _ACTIVE.get()
            if ob is None:
                return fn(*args, **kwargs)
            with ob.tracer.span(span_name, **labels):
                return fn(*args, **kwargs)

        return wrapper

    return deco
