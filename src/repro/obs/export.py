"""Exporters for observations: in-memory, JSON-lines, human-readable text.

Three sinks, matched to three consumers:

* :class:`InMemoryExporter` — tests and programmatic use; keeps structured
  snapshots in a list.
* :class:`JsonlExporter` — one JSON object per line (``meta`` header, then
  ``span`` / ``event`` / ``metric`` records), append-friendly and parseable
  with nothing but ``json.loads`` per line.  :func:`read_jsonl` is the
  matching reader.
* :func:`render_report` — the ``repro stats`` view: the span tree aggregated
  by call path (count, total time, share), events, and the metrics table.
"""
from __future__ import annotations

import io
import json
from typing import Any, Iterable, TextIO

from . import Observation

__all__ = ["InMemoryExporter", "JsonlExporter", "read_jsonl", "render_report"]

JSONL_VERSION = 1


class InMemoryExporter:
    """Collects observation snapshots in memory (the test sink)."""

    def __init__(self) -> None:
        self.snapshots: list[dict[str, Any]] = []

    def export(self, observation: Observation) -> dict[str, Any]:
        snap = observation.snapshot()
        self.snapshots.append(snap)
        return snap


class JsonlExporter:
    """Writes one observation as JSON-lines to a path or text stream."""

    def __init__(self, target: "str | TextIO") -> None:
        self._target = target

    def export(self, observation: Observation, **meta: Any) -> int:
        """Write the observation; returns the number of lines emitted."""
        if isinstance(self._target, (str, bytes)):
            with open(self._target, "a", encoding="utf-8") as fh:
                return self._write(observation, fh, meta)
        return self._write(observation, self._target, meta)

    @staticmethod
    def _write(observation: Observation, fh: TextIO, meta: dict[str, Any]) -> int:
        lines = 0

        def emit(record: dict[str, Any]) -> None:
            nonlocal lines
            fh.write(json.dumps(record, separators=(",", ":"), sort_keys=True))
            fh.write("\n")
            lines += 1

        head = {"type": "meta", "version": JSONL_VERSION}
        head.update(meta)
        emit(head)
        for s in observation.tracer.spans:
            rec = {"type": "span"}
            rec.update(s.to_dict())
            emit(rec)
        for e in observation.tracer.events:
            rec = {"type": "event"}
            rec.update(e.to_dict())
            emit(rec)
        for key, entry in observation.metrics.snapshot().items():
            rec = {"type": "metric", "key": key}
            rec.update(entry)
            emit(rec)
        return lines


def read_jsonl(source: "str | TextIO | Iterable[str]") -> dict[str, Any]:
    """Parse a JSON-lines export back into ``{meta, spans, events, metrics}``.

    The inverse of :class:`JsonlExporter` up to record grouping — the
    exporter round-trip test asserts span/event/metric content survives.
    """
    if isinstance(source, (str, bytes)):
        with open(source, encoding="utf-8") as fh:
            return read_jsonl(fh)
    out: dict[str, Any] = {"meta": None, "spans": [], "events": [], "metrics": {}}
    for line in source:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        kind = rec.pop("type", None)
        if kind == "meta":
            out["meta"] = rec
        elif kind == "span":
            out["spans"].append(rec)
        elif kind == "event":
            out["events"].append(rec)
        elif kind == "metric":
            key = rec.pop("key")
            out["metrics"][key] = rec
        else:
            raise ValueError(f"unknown record type {kind!r}")
    return out


# -- human-readable report ----------------------------------------------------


def _aggregate_paths(observation: Observation):
    """Group spans by their name path root→leaf, preserving first-seen order.

    Hundreds of per-pass spans collapse into one line per call path with a
    count and total duration — the shape a human wants from a trace.
    """
    spans = observation.tracer.spans
    paths: dict[tuple[str, ...], dict[str, Any]] = {}
    path_of: dict[int, tuple[str, ...]] = {}
    for s in spans:
        parent_path = path_of.get(s.parent, ())
        path = parent_path + (s.name,)
        path_of[s.index] = path
        agg = paths.get(path)
        if agg is None:
            paths[path] = agg = {"count": 0, "seconds": 0.0, "workers": set()}
        agg["count"] += 1
        agg["seconds"] += s.seconds
        if s.worker is not None:
            agg["workers"].add(s.worker)
    return paths


def render_report(observation: Observation, title: str = "observation") -> str:
    """Render the span tree, events, and metrics as aligned text."""
    out = io.StringIO()
    paths = _aggregate_paths(observation)
    root_total = observation.tracer.root_seconds()
    out.write(f"== {title} ==\n")
    out.write(f"spans: {len(observation.tracer.spans)}")
    out.write(f"  events: {len(observation.tracer.events)}")
    out.write(f"  wall (root spans): {root_total:.6f}s\n")
    if paths:
        out.write("\n-- span tree (grouped by call path) --\n")
        name_w = max(2 * (len(p) - 1) + len(p[-1]) for p in paths)
        name_w = max(name_w, len("span"))
        out.write(f"{'span':<{name_w}}  {'count':>6}  {'seconds':>10}  {'share':>6}\n")
        for path, agg in paths.items():
            label = "  " * (len(path) - 1) + path[-1]
            if agg["workers"]:
                label += f" [{len(agg['workers'])}w]"
            share = agg["seconds"] / root_total if root_total > 0 else 0.0
            out.write(
                f"{label:<{name_w}}  {agg['count']:>6}  "
                f"{agg['seconds']:>10.6f}  {share:>5.1%}\n"
            )
    events = observation.tracer.events
    if events:
        out.write("\n-- events --\n")
        counts: dict[str, int] = {}
        for e in events:
            counts[e.name] = counts.get(e.name, 0) + 1
        for name in sorted(counts):
            out.write(f"{name}: {counts[name]}\n")
    metrics = observation.metrics.snapshot()
    plain = {k: v for k, v in metrics.items() if v["kind"] in ("counter", "gauge")}
    hists = {k: v for k, v in metrics.items() if v["kind"] == "histogram"}
    if plain:
        out.write("\n-- counters & gauges --\n")
        key_w = max(len(k) for k in plain)
        for key, entry in plain.items():
            out.write(f"{key:<{key_w}}  {entry['value']}\n")
    if hists:
        out.write("\n-- histograms (non-empty buckets) --\n")
        for key, entry in hists.items():
            mean = entry["sum"] / entry["count"] if entry["count"] else 0.0
            out.write(f"{key}: count={entry['count']} mean={mean:.6g}\n")
            for le, c in zip(entry["le"], entry["counts"]):
                if c:
                    out.write(f"    <= {le:g}: {c}\n")
            if entry["overflow"]:
                out.write(f"    > {entry['le'][-1]:g}: {entry['overflow']}\n")
    return out.getvalue()
