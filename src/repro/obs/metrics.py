"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the *stateful* half of the observability layer — spans say
when things happened, metrics say how much and how often.  Three instrument
kinds, modeled on the Prometheus data model but dependency-free:

``Counter``    monotonically increasing total (bytes moved, retries fired)
``Gauge``      last-written value (pool size, current ratio)
``Histogram``  value distribution over *fixed* bucket boundaries

Histogram boundaries are fixed at construction and never adapt to the data,
so two runs over the same workload produce byte-identical snapshots — the
property the exporter round-trip and regression tests rely on.

Instruments are keyed by ``(name, sorted labels)``; :meth:`MetricsRegistry.
snapshot` renders keys in the conventional ``name{k=v,...}`` form, sorted,
so snapshots are deterministic dictionaries safe to diff in tests.
"""
from __future__ import annotations

from bisect import bisect_left
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SECONDS_BUCKETS",
    "BYTES_BUCKETS",
]

#: default duration boundaries (seconds): 1µs .. 30s, geometric, fixed
SECONDS_BUCKETS = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
    1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0,
)

#: default size boundaries (bytes): 64B .. 4GB, powers of 16, fixed
BYTES_BUCKETS = (64.0, 1024.0, 16384.0, 262144.0, 4194304.0, 67108864.0, 1073741824.0, 4294967296.0)


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_key(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic total; negative increments are rejected."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        v = self.value
        return {"value": int(v) if float(v).is_integer() else v}

    def merge(self, other: dict[str, Any]) -> None:
        self.value += other.get("value", 0)


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        v = self.value
        return {"value": int(v) if float(v).is_integer() else v}

    def merge(self, other: dict[str, Any]) -> None:
        # merge order is deterministic (job order), so last-write-wins is too
        self.value = other.get("value", self.value)


class Histogram:
    """Distribution over fixed, deterministic bucket boundaries.

    ``counts[i]`` counts observations ``<= le[i]``; one implicit overflow
    bucket catches the rest.  Boundaries never change after construction.
    """

    __slots__ = ("le", "counts", "overflow", "total", "count")
    kind = "histogram"

    def __init__(self, buckets: tuple[float, ...] = SECONDS_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("bucket boundaries must be strictly increasing")
        self.le = tuple(float(b) for b in buckets)
        self.counts = [0] * len(self.le)
        self.overflow = 0
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        i = bisect_left(self.le, value)
        if i < len(self.counts):
            self.counts[i] += 1
        else:
            self.overflow += 1
        self.total += value
        self.count += 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "le": list(self.le),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "sum": self.total,
            "count": self.count,
        }

    def merge(self, other: dict[str, Any]) -> None:
        if list(other.get("le", ())) != list(self.le):
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.get("counts", ())):
            self.counts[i] += c
        self.overflow += other.get("overflow", 0)
        self.total += other.get("sum", 0.0)
        self.count += other.get("count", 0)


class MetricsRegistry:
    """Lazily-created instruments keyed by name + labels."""

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}

    def _get(self, cls, name: str, labels: dict[str, Any], *args):
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(*args)
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}"
            )
        return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = SECONDS_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        h = self._get(Histogram, name, labels, buckets)
        if h.le != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        return h

    def __len__(self) -> int:
        return len(self._instruments)

    # -- snapshots & merging ------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Deterministic ``rendered-key -> {kind, ...state}`` mapping."""
        out: dict[str, dict[str, Any]] = {}
        for (name, labels) in sorted(self._instruments):
            inst = self._instruments[(name, labels)]
            entry = {"kind": inst.kind}
            entry.update(inst.to_dict())
            out[_render_key(name, labels)] = entry
        return out

    def to_payload(self) -> list[dict[str, Any]]:
        """Serializable form carrying the raw key parts (for exact merges)."""
        out = []
        for (name, labels) in sorted(self._instruments):
            inst = self._instruments[(name, labels)]
            out.append({
                "name": name,
                "labels": [list(kv) for kv in labels],
                "kind": inst.kind,
                "state": inst.to_dict(),
            })
        return out

    def merge_payload(self, payload: list[dict[str, Any]]) -> None:
        """Fold a worker's metrics into this registry: counters/histograms
        add, gauges take the incoming value (deterministic merge order)."""
        kinds = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
        for item in payload:
            labels = dict(tuple(kv) for kv in item.get("labels", ()))
            kind = item.get("kind")
            state = item.get("state", {})
            if kind == "histogram":
                inst = self.histogram(
                    item["name"], tuple(state.get("le", SECONDS_BUCKETS)), **labels
                )
            elif kind in kinds:
                inst = self._get(kinds[kind], item["name"], labels)
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
            inst.merge(state)
