"""Wall-clock timing primitives of the observability layer.

The :class:`Stopwatch` is the manual counterpart of the tracer's
``span`` — for callers (benchmarks, the speed experiments) that want
named wall-clock totals without installing an :class:`Observation`
handler — and ``throughput_mbs`` is the single throughput convention
(paper convention, 1 MB = 1e6 bytes) every report shares.
"""
from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "throughput_mbs"]


@dataclass
class Stopwatch:
    """Accumulates named wall-clock segments (compression, encode, ...)."""

    totals: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.totals[name] = self.totals.get(name, 0.0) + time.perf_counter() - start

    def total(self) -> float:
        return sum(self.totals.values())


def throughput_mbs(nbytes: int, seconds: float) -> float:
    """Throughput in MB/s (paper convention, 1 MB = 1e6 bytes)."""
    if seconds <= 0:
        return float("inf")
    return nbytes / 1e6 / seconds
