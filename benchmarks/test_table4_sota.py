"""Table IV — comparison with the state of the art: the four base
compressors and their +QP versions vs ZFP, TTHRESH and SPERR, at two error
bounds on Miranda and SegSalt (CR / PSNR / compression & decompression
speed)."""
import pytest
from conftest import write_result

import repro
from repro.analysis import format_table
from repro.core import QPConfig
from repro.metrics import evaluate

_BOUNDS = (1e-3, 1e-5)
_DATASETS = (("miranda", "velocityx"), ("segsalt", "Pressure2000"))
_DONE: list = []


@pytest.mark.parametrize("dataset,field", _DATASETS)
def test_table4(dataset, field, benchmark, bench_field):
    data = bench_field(dataset, field)
    value_range = float(data.max() - data.min())

    def sweep():
        rows = []
        for rel in _BOUNDS:
            eb = rel * value_range
            for name in ("mgard", "sz3", "qoz", "hpez"):
                base = evaluate(repro.get_compressor(name, eb), data, label=name.upper())
                plus = evaluate(
                    repro.get_compressor(name, eb, qp=QPConfig()), data,
                    label=name.upper() + "+QP",
                )
                rows.extend([
                    {"rel_eb": rel, **base.row()},
                    {"rel_eb": rel, **plus.row()},
                ])
            for name in ("zfp", "tthresh", "sperr"):
                r = evaluate(repro.get_compressor(name, eb), data, label=name.upper())
                rows.append({"rel_eb": rel, **r.row()})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by = {(r["rel_eb"], r["compressor"]): r for r in rows}
    for rel in _BOUNDS:
        # QP never reduces the compression ratio meaningfully
        for name in ("MGARD", "SZ3", "QOZ", "HPEZ"):
            assert by[(rel, name + "+QP")]["CR"] >= by[(rel, name)]["CR"] * 0.97
            # identical distortion
            assert by[(rel, name + "+QP")]["PSNR"] == pytest.approx(
                by[(rel, name)]["PSNR"], abs=1e-6
            )
        # ZFP's fixed-accuracy conservatism: highest PSNR at the same request
        zfp_psnr = by[(rel, "ZFP")]["PSNR"]
        assert zfp_psnr >= max(
            by[(rel, n)]["PSNR"] for n in ("SZ3", "QOZ", "HPEZ")
        ) - 1.0
    write_result(
        f"table4_{dataset}",
        format_table(rows, f"Table IV: comparison with the state of the art ({dataset})"),
    )
    _DONE.append(dataset)
