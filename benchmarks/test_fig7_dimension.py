"""Figure 7 — compression-ratio increase rate for different QP prediction
dimensions (1D-Back / 1D-Top / 1D-Left / 2D / 3D), on SegSalt Pressure2000
and Miranda Velocityx with SZ3.

Expected shape (paper Section V-C1): 2D wins; 1D-Back and 3D underperform
because level-wise prediction leaves the interpolation direction
non-contiguous.
"""
import pytest
from conftest import write_result

import repro
from repro.core import QP_DIMENSIONS, QPConfig

_ROWS = []
_FIELDS = [("segsalt", "Pressure2000"), ("miranda", "velocityx")]


@pytest.mark.parametrize("dataset,field", _FIELDS)
def test_fig7_dimension(dataset, field, benchmark, bench_field):
    data = bench_field(dataset, field)
    eb = 1e-4 * float(data.max() - data.min())
    base_size = len(repro.SZ3(eb, predictor="interp").compress(data))

    def sweep():
        gains = {}
        for dim in QP_DIMENSIONS:
            comp = repro.SZ3(eb, predictor="interp", qp=QPConfig(dimension=dim))
            gains[dim] = base_size / len(comp.compress(data)) - 1.0
        return gains

    gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
    row = {"field": f"{dataset}/{field}"}
    row.update({d: f"{100 * g:+.1f}%" for d, g in gains.items()})
    _ROWS.append(row)
    # 2D must beat 3D and 1D-Back (the paper's best-fit conclusion)
    assert gains["2d"] >= gains["3d"] - 1e-12
    assert gains["2d"] >= gains["1d-back"] - 1e-12
    if len(_ROWS) == len(_FIELDS):
        from repro.analysis import format_table

        write_result(
            "fig7_dimension",
            format_table(_ROWS, "Fig 7: CR increase vs QP prediction dimension"),
        )
