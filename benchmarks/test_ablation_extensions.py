"""Ablation benchmarks for the design choices DESIGN.md calls out, plus the
paper's future-work extensions implemented in this repo.

1. Lossless backend ablation — validates the zlib-for-ZSTD substitution by
   measuring what each backend adds on top of Huffman.
2. SPERR+QP — future-work item 1: QP generalized to a transform-based
   compressor (per-subband prediction on wavelet indices).
3. Case-I fast inverse — future-work item 3: the unconditional QP decode is
   a prefix sum; measure the speedup over the wavefront decode Case III
   requires.
"""
import time

import numpy as np
from conftest import write_result

import repro
from repro.analysis import format_table
from repro.core import QPConfig, qp_forward, qp_inverse


def test_ablation_lossless_backend(benchmark, bench_field):
    data = bench_field("miranda", "velocityx")
    eb = 1e-4 * float(data.max() - data.min())

    def sweep():
        rows = []
        for backend in ("raw", "rle", "lz77", "zlib"):
            comp = repro.SZ3(eb, predictor="interp", lossless_backend=backend)
            t0 = time.perf_counter()
            blob = comp.compress(data)
            dt = time.perf_counter() - t0
            rows.append({
                "backend": backend,
                "CR": round(data.nbytes / len(blob), 2),
                "compress s": round(dt, 3),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by = {r["backend"]: r["CR"] for r in rows}
    # every real backend must at least match raw; zlib is the default choice
    assert by["zlib"] >= by["raw"]
    assert by["lz77"] >= by["raw"] * 0.99
    write_result(
        "ablation_lossless",
        format_table(rows, "Ablation: lossless backend after Huffman (SZ3)"),
    )


def test_extension_sperr_qp(benchmark, bench_field):
    """QP on wavelet indices: helps on turbulence/climate, can hurt on
    oscillatory wavefields — the reason the paper calls generalization
    beyond interpolation-based compressors future work."""
    rows = []

    def sweep():
        for ds, fld in (("miranda", "velocityx"), ("cesm", None),
                        ("segsalt", "Pressure2000")):
            data = bench_field(ds, fld)
            eb = 1e-4 * float(data.max() - data.min())
            s_base = len(repro.get_compressor("sperr", eb).compress(data))
            s_qp = len(
                repro.get_compressor("sperr", eb, qp=QPConfig()).compress(data)
            )
            rows.append({
                "dataset": ds,
                "SPERR CR": round(data.nbytes / s_base, 2),
                "SPERR+QP CR": round(data.nbytes / s_qp, 2),
                "gain %": round(100 * (s_base / s_qp - 1), 1),
            })
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    gains = {r["dataset"]: r["gain %"] for r in rows}
    assert gains["miranda"] > 0  # generalization pays on smooth turbulence
    write_result(
        "ablation_sperr_qp",
        format_table(rows, "Extension: QP on SPERR's wavelet indices"),
    )


def test_extension_case1_fast_inverse(benchmark):
    rng = np.random.default_rng(0)
    q = rng.integers(-10, 10, (64, 96, 96))
    c1 = QPConfig(condition="I")
    c3 = QPConfig(condition="III")
    qp1 = qp_forward(q, -999, c1, 1)
    qp3 = qp_forward(q, -999, c3, 1)

    t0 = time.perf_counter()
    out1 = benchmark.pedantic(
        lambda: qp_inverse(qp1, -999, c1, 1), rounds=1, iterations=1
    )
    t_fast = time.perf_counter() - t0
    t0 = time.perf_counter()
    out3 = qp_inverse(qp3, -999, c3, 1)
    t_wave = time.perf_counter() - t0
    assert np.array_equal(out1, q) and np.array_equal(out3, q)
    speedup = t_wave / max(t_fast, 1e-9)
    write_result(
        "ablation_case1_inverse",
        f"Extension: Case-I prefix-sum inverse vs Case-III wavefront\n"
        f"fast inverse: {t_fast * 1e3:.2f} ms, wavefront: {t_wave * 1e3:.2f} ms, "
        f"speedup {speedup:.1f}x\n",
    )
    assert speedup > 2.0  # the whole point of the fast path
