"""Ablations for the adaptive extensions: online QP auto-tuning and
temporal (time-dimension) compression on RTM-style data."""
import numpy as np
from conftest import write_result

import repro
from repro.analysis import format_table
from repro.core import QPConfig
from repro.core.autotune import autotune_qp


def test_ablation_qp_autotune(benchmark, bench_field):
    """Per-field tuned QP vs the paper's fixed best-fit config vs off."""
    rows = []

    def sweep():
        for ds, fld in (("segsalt", "Pressure2000"), ("miranda", "velocityx"),
                        ("s3d", "pressure")):
            data = bench_field(ds, fld)
            eb = 1e-4 * float(data.max() - data.min())
            tuned_cfg = autotune_qp(data, eb)
            sizes = {
                "off": len(repro.SZ3(eb, predictor="interp").compress(data)),
                "fixed": len(
                    repro.SZ3(eb, predictor="interp", qp=QPConfig()).compress(data)
                ),
                "tuned": len(
                    repro.SZ3(eb, predictor="interp", qp=tuned_cfg).compress(data)
                ),
            }
            rows.append({
                "dataset": ds,
                "CR off": round(data.nbytes / sizes["off"], 2),
                "CR fixed QP": round(data.nbytes / sizes["fixed"], 2),
                "CR tuned QP": round(data.nbytes / sizes["tuned"], 2),
                "tuned config": f"{tuned_cfg.dimension}/{tuned_cfg.condition}"
                                if tuned_cfg.enabled else "disabled",
            })
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    for r in rows:
        # the tuner must never lose meaningfully to either static choice
        assert r["CR tuned QP"] >= min(r["CR off"], r["CR fixed QP"]) * 0.98
    write_result(
        "ablation_qp_autotune",
        format_table(rows, "Ablation: online QP auto-tuning vs fixed config"),
    )


def test_ablation_temporal(benchmark):
    """Time-dimension prediction on slowly-evolving RTM snapshots."""
    data = repro.generate("rtm", shape=(10, 32, 32, 20)).astype(np.float32)
    slow = np.repeat(data[:5], 2, axis=0)  # slow the motion down
    eb = 1e-3 * float(slow.max() - slow.min())

    def run():
        temporal = repro.TemporalCompressor("sz3", eb, predictor="interp",
                                            qp=QPConfig())
        intra = repro.TemporalCompressor("sz3", eb, keyframe_interval=1,
                                         predictor="interp", qp=QPConfig())
        return len(temporal.compress(slow)), len(intra.compress(slow))

    s_temporal, s_intra = benchmark.pedantic(run, rounds=1, iterations=1)
    assert s_temporal < s_intra
    write_result(
        "ablation_temporal",
        f"Ablation: temporal prediction on RTM snapshots\n"
        f"intra-only: {s_intra} bytes, temporal: {s_temporal} bytes "
        f"({100 * (s_intra / s_temporal - 1):.1f}% smaller)\n",
    )
