"""Figure 5 — regional entropy of the quantization indices for all four
interpolation-based compressors, before (a) and after (b) QP.

The paper's panel shows the clustered regions collapsing once QP is applied;
here we regenerate the per-region entropy numbers attached above each
subplot.
"""
import pytest
from conftest import write_result

import repro
from repro.analysis import format_table
from repro.compressors import CompressionState
from repro.core import QPConfig, regional_entropy

_ROWS = []


@pytest.mark.parametrize("name", ["mgard", "sz3", "qoz", "hpez"])
def test_fig5_regional_entropy(name, benchmark, bench_field):
    data = bench_field("segsalt", "Pressure2000")
    eb = 1e-4 * float(data.max() - data.min())
    kwargs = {"predictor": "interp"} if name == "sz3" else {}

    def run():
        st = CompressionState()
        comp = repro.get_compressor(name, eb, qp=QPConfig(), **kwargs)
        comp.compress(data, state=st)
        return st

    st = benchmark.pedantic(run, rounds=1, iterations=1)
    q, qp = st.index_volume, st.extras["index_volume_qp"]
    nz, ny, nx = data.shape
    regions = {
        "Region 0": ("xy", nz // 2, (ny * 4 // 9, ny * 5 // 9), (nx // 7, nx * 3 // 7)),
        "Region 1": ("xz", ny // 2, (nz * 2 // 5, nz * 3 // 5), (nx // 7, nx * 3 // 7)),
        "Region 2": ("yz", nx // 2, (nz // 3, nz * 2 // 5), (ny // 2, ny * 3 // 5)),
    }
    row = {"compressor": name.upper()}
    for label, (plane, idx, rr, cc) in regions.items():
        h_before = regional_entropy(q, plane, idx, rr, cc)
        h_after = regional_entropy(qp, plane, idx, rr, cc)
        row[f"{label} H"] = round(h_before, 3)
        row[f"{label} H+QP"] = round(h_after, 3)
    _ROWS.append(row)
    # QP must reduce (or preserve) entropy in the majority of regions
    improved = sum(
        row[f"Region {i} H+QP"] <= row[f"Region {i} H"] + 0.05 for i in range(3)
    )
    assert improved >= 2
    if len(_ROWS) == 4:
        write_result(
            "fig5_regional_entropy",
            format_table(_ROWS, "Fig 5: regional index entropy, before/after QP"),
        )
