"""Figure 9 — compression-ratio increase rate vs QP start level.

Expected shape: levels 1-2 capture essentially the whole gain (they hold
>98% of the points); adding level 3+ changes little.
"""
from conftest import write_result

import repro
from repro.analysis import format_table
from repro.core import QPConfig


def test_fig9_levels(benchmark, bench_field):
    data = bench_field("segsalt", "Pressure2000")
    eb = 1e-4 * float(data.max() - data.min())
    base_size = len(repro.SZ3(eb, predictor="interp").compress(data))

    def sweep():
        gains = {}
        for max_level in (1, 2, 3, 4):
            comp = repro.SZ3(
                eb, predictor="interp", qp=QPConfig(max_level=max_level)
            )
            gains[max_level] = base_size / len(comp.compress(data)) - 1.0
        return gains

    gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        {"QP levels": f"<= {lvl}", "CR increase": f"{100 * g:+.2f}%"}
        for lvl, g in gains.items()
    ]
    write_result("fig9_levels", format_table(rows, "Fig 9: CR increase vs QP start level"))
    # level 2 captures nearly all of the level-4 gain
    assert gains[2] >= gains[4] - 0.02
    # going from level 1 to level 2 helps (level 2 holds ~1/8 of the points)
    assert gains[2] >= gains[1] - 0.005
