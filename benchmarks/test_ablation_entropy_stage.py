"""Ablation: Huffman vs adaptive range coder as the entropy stage.

Real SZ3 offers both; the paper's pipeline uses Huffman + ZSTD.  This
ablation quantifies the choice on actual (QP-transformed) quantization-index
streams: the range coder wins on very skewed/low-entropy streams (no
1-bit-per-symbol floor), Huffman wins on throughput.
"""
import time

import numpy as np
from conftest import write_result

import repro
from repro.analysis import format_table
from repro.codecs import HuffmanCodec, RangeCodec
from repro.codecs.lossless import compress as lossless
from repro.compressors import CompressionState
from repro.core import QPConfig, shannon_entropy


def test_ablation_entropy_stage(benchmark, bench_field):
    data = bench_field("segsalt", "Pressure2000")
    rows = []

    def sweep():
        for rel in (1e-2, 1e-4):
            eb = rel * float(data.max() - data.min())
            st = CompressionState()
            repro.SZ3(eb, predictor="interp", qp=QPConfig()).compress(data, state=st)
            q = st.extras["index_volume_qp"].ravel()
            # subsample to keep the sequential range coder affordable
            q = q[:120_000]
            codes = q - q.min()
            H = shannon_entropy(codes)

            t0 = time.perf_counter()
            hblob = lossless(HuffmanCodec().encode(codes), "zlib")
            t_h = time.perf_counter() - t0
            t0 = time.perf_counter()
            rblob = RangeCodec().encode(q)
            t_r = time.perf_counter() - t0
            rows.append({
                "rel eb": rel,
                "entropy (bits)": round(H, 3),
                "huffman+zlib (bits/sym)": round(8 * len(hblob) / q.size, 3),
                "range coder (bits/sym)": round(8 * len(rblob) / q.size, 3),
                "huffman enc (s)": round(t_h, 3),
                "range enc (s)": round(t_r, 3),
            })
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    for r in rows:
        # both stages land near the empirical entropy
        assert r["range coder (bits/sym)"] <= r["entropy (bits)"] * 1.15 + 0.2
    write_result(
        "ablation_entropy_stage",
        format_table(rows, "Ablation: entropy stage on QP'd index streams"),
    )
