"""Figure 3 — selection of visualization regions on SegSalt Pressure2000.

The paper picks one slice per plane (xy/xz/yz) plus a zoom window per slice
("Region 0/1/2") and shows the quantization-index clustering there.  This
harness regenerates the region statistics: window entropy and clustering
measures for each plane, using SZ3's index volume.
"""
import numpy as np
from conftest import write_result

import repro
from repro.analysis import format_table
from repro.compressors import CompressionState
from repro.core import clustering_stats, plane_slice, regional_entropy


def _regions(shape):
    """Zoom windows scaled from the paper's [450:550, ...] selections."""
    def scaled(n, lo, hi, full):
        return int(lo / full * n), int(hi / full * n)

    nz, ny, nx = shape
    return {
        "Region 0 (xy)": ("xy", nz // 2, scaled(ny, 450, 550, 1008), scaled(nx, 50, 150, 352)),
        "Region 1 (xz)": ("xz", ny // 2, scaled(nz, 400, 600, 1008), scaled(nx, 50, 150, 352)),
        "Region 2 (yz)": ("yz", nx // 2, scaled(nz, 320, 420, 1008), scaled(ny, 500, 600, 1008)),
    }


def test_fig3_region_selection(benchmark, bench_field):
    data = bench_field("segsalt", "Pressure2000")
    value_range = float(data.max() - data.min())
    eb = 1e-4 * value_range

    def run():
        st = CompressionState()
        repro.SZ3(eb, predictor="interp").compress(data, state=st)
        return st

    st = benchmark.pedantic(run, rounds=1, iterations=1)
    q = st.index_volume
    rows = []
    for label, (plane, idx, rows_rng, cols_rng) in _regions(data.shape).items():
        ent = regional_entropy(q, plane, idx, rows_rng, cols_rng)
        window = plane_slice(q, plane, idx)[
            rows_rng[0]:rows_rng[1], cols_rng[0]:cols_rng[1]
        ]
        cs = clustering_stats(window)
        rows.append({
            "region": label,
            "window entropy": round(ent, 3),
            "nonzero frac": round(cs.nonzero_fraction, 3),
            "same-sign nbrs": round(cs.same_sign_neighbour, 3),
            "equal nbrs": round(cs.neighbour_equal, 3),
        })
        # the clustering effect: like-signed neighbours far above the ~half
        # that independent signs would give among nonzero indices
        assert cs.same_sign_neighbour >= 0.0
    # at least one region must show strong clustering (the paper's premise)
    assert max(r["same-sign nbrs"] for r in rows) > 0.25
    write_result("fig3_regions", format_table(rows, "Fig 3: zoom-region clustering (SZ3 indices)"))
