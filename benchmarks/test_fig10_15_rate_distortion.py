"""Figures 10-15 — rate-distortion of the four interpolation-based
compressors with and without QP on the six generic datasets (Miranda,
SegSalt, SCALE, CESM, S3D, Hurricane).

Each dataset gets one harness; the printed table is the figure's data:
(bitrate, PSNR) pairs for base and +QP, with the paper's max-CR-increase
annotation.  Invariants asserted per point: identical PSNR (QP never touches
the data) and gains that grow toward tighter bounds on the QP-friendly
datasets.
"""
import pytest
from conftest import write_result

import repro
from repro.analysis import format_table, max_cr_gain, qp_comparison

_DATASETS = {
    "fig10_miranda": ("miranda", "velocityx"),
    "fig11_segsalt": ("segsalt", "Pressure2000"),
    "fig12_scale": ("scale", "T"),
    "fig13_cesm": ("cesm", None),
    "fig14_s3d": ("s3d", "pressure"),
    "fig15_hurricane": ("hurricane", "U"),
}
_BOUNDS = (1e-2, 1e-3, 1e-4)
_COMPRESSORS = ("mgard", "sz3", "qoz", "hpez")


@pytest.mark.parametrize("figure", list(_DATASETS))
def test_rate_distortion(figure, benchmark, bench_field):
    dataset, field = _DATASETS[figure]
    data = bench_field(dataset, field)

    def sweep():
        results = {}
        for name in _COMPRESSORS:
            kwargs = {"predictor": "interp"} if name == "sz3" else {}
            results[name] = qp_comparison(
                name, data, rel_bounds=_BOUNDS, **kwargs
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    annotations = []
    for name, points in results.items():
        for p in points:
            assert p.base.psnr == pytest.approx(p.qp.psnr, abs=1e-9)
            rows.append({
                "compressor": name.upper(),
                "rel eb": p.rel_bound,
                "PSNR": round(p.base.psnr, 2),
                "bitrate base": round(p.base.bitrate, 3),
                "bitrate +QP": round(p.qp.bitrate, 3),
                "CR base": round(p.base.cr, 2),
                "CR +QP": round(p.qp.cr, 2),
                "gain %": round(100 * p.cr_gain, 1),
            })
        gain, at_psnr = max_cr_gain(points)
        annotations.append(
            f"{name.upper()}: max CR increase {100 * gain:+.1f}% at PSNR {at_psnr:.1f}"
        )
    text = format_table(rows, f"{figure}: rate-distortion, {dataset}")
    text += "\n".join(annotations) + "\n"
    write_result(figure, text)
    # across the whole figure, QP must help at least one compressor
    # substantially at the tightest bound (the paper's headline effect);
    # Hurricane is the paper's own exception and is exempt
    best_gain = max(p.cr_gain for pts in results.values() for p in pts)
    if dataset != "hurricane":
        assert best_gain > 0.03
