"""Figure 18 — end-to-end parallel data transfer (RTM, SZ3 vs SZ3+QP).

Per-slice compression is measured on real RTM-like snapshots, the measured
times are rescaled to the paper's per-core C++ throughput grade (documented
substitution — Python absolute speed is not representative), and the
strong-scaling pipeline model projects 3600 slices over a 461.75 MB/s link
at 225-1800 cores, plus the paper's bandwidth-sensitivity argument."""
import numpy as np
from conftest import write_result

import repro
from repro.analysis import format_table
from repro.core import QPConfig
from repro.transfer import (
    PAPER_CORE_COUNTS,
    compare_strong_scaling,
    gain_vs_bandwidth,
    measure_slices,
    vanilla_transfer_seconds,
)

_PAPER_COMP_MBS = 190.0


def test_fig18_transfer(benchmark):
    data = repro.generate("rtm", shape=(8, 48, 48, 28))
    slices = [np.ascontiguousarray(data[i]) for i in range(data.shape[0])]
    eb = 1e-4 * float(data.max() - data.min())

    def run():
        base = measure_slices(slices, "sz3", eb, predictor="interp")
        qp = measure_slices(slices, "sz3", eb, qp=QPConfig(), predictor="interp")
        return base, qp

    base, qp = benchmark.pedantic(run, rounds=1, iterations=1)
    assert qp.compressed_bytes < base.compressed_bytes  # QP shrinks the data

    factor = (base.raw_bytes / 1e6 / base.compress_seconds) / _PAPER_COMP_MBS
    for m in (base, qp):
        m.compress_seconds *= factor
        m.decompress_seconds *= factor

    cmp = compare_strong_scaling(base, qp, scale_to_slices=3600)
    gains = cmp.gains()
    rows = []
    for b, q, g in zip(cmp.base, cmp.qp, gains):
        rows.append({
            "cores": b.cores,
            "base compress": round(b.compress, 3),
            "base transfer": round(b.transfer, 3),
            "base total": round(b.total, 3),
            "+QP total": round(q.total, 3),
            "gain": f"{g:.3f}x",
        })
    # the paper's shape: QP wins end-to-end, more so at higher core counts
    assert all(g > 1.0 for g in gains)
    assert gains[-1] >= gains[0]

    bw = gain_vs_bandwidth(base, qp, cores=PAPER_CORE_COUNTS[-1], scale_to_slices=3600)
    # doubling the bandwidth shrinks the benefit (16% -> 11% in the paper)
    assert bw[0][1] >= bw[1][1] >= bw[2][1]

    text = format_table(rows, "Fig 18: end-to-end transfer strong scaling "
                              "(SZ3 vs SZ3+QP, paper-grade compute)")
    text += f"\nCR: base {base.cr:.2f} vs +QP {qp.cr:.2f}\n"
    text += "bandwidth sensitivity: " + ", ".join(
        f"x{m:g}->{g:.3f}x" for m, g in bw
    ) + "\n"
    vanilla = vanilla_transfer_seconds(base.raw_bytes, scale=3600 / base.n_slices)
    text += f"vanilla transfer of the scaled dataset: {vanilla:.1f}s\n"
    write_result("fig18_transfer", text)
