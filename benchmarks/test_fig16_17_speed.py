"""Figures 16 & 17 — compression and decompression speed of the base
compressors vs their +QP versions at error bounds 1e-3 / 1e-4 / 1e-5.

Absolute MB/s on this pure-Python substrate are not comparable to the
paper's C++ numbers (see DESIGN.md §2); the reproduced quantity is the
*relative overhead* of QP, which the paper reports as ~15-25% on
compression and more on decompression.
"""
import time

import numpy as np
import pytest
from conftest import write_result

import repro
from repro.core import QPConfig
from repro.obs import throughput_mbs

_BOUNDS = (1e-3, 1e-4, 1e-5)
_COMPRESSORS = ("mgard", "sz3", "qoz", "hpez")
_ROWS_C: list = []
_ROWS_D: list = []


def _measure(comp, data):
    t0 = time.perf_counter()
    blob = comp.compress(data)
    t1 = time.perf_counter()
    comp.decompress(blob)
    t2 = time.perf_counter()
    return t1 - t0, t2 - t1


@pytest.mark.parametrize("name", _COMPRESSORS)
def test_fig16_17_speed(name, benchmark, bench_field):
    data = bench_field("miranda", "velocityx")
    rows_c, rows_d = [], []

    def sweep():
        for rel in _BOUNDS:
            eb = rel * float(data.max() - data.min())
            kwargs = {"predictor": "interp"} if name == "sz3" else {}
            base = repro.get_compressor(name, eb, **kwargs)
            plus = repro.get_compressor(name, eb, qp=QPConfig(), **kwargs)
            bc, bd = _measure(base, data)
            qc, qd = _measure(plus, data)
            rows_c.append({
                "compressor": name.upper(),
                "rel eb": rel,
                "base MB/s": round(throughput_mbs(data.nbytes, bc), 2),
                "+QP MB/s": round(throughput_mbs(data.nbytes, qc), 2),
                "QP overhead %": round(100 * (qc / bc - 1), 1),
            })
            rows_d.append({
                "compressor": name.upper(),
                "rel eb": rel,
                "base MB/s": round(throughput_mbs(data.nbytes, bd), 2),
                "+QP MB/s": round(throughput_mbs(data.nbytes, qd), 2),
                "QP overhead %": round(100 * (qd / bd - 1), 1),
            })

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    _ROWS_C.extend(rows_c)
    _ROWS_D.extend(rows_d)
    # QP overhead must stay bounded: never more than ~2.5x the base time on
    # this substrate (the paper's C++ overhead is 15-45%)
    for r in rows_c + rows_d:
        assert r["QP overhead %"] < 150.0
    if len(_ROWS_C) == len(_COMPRESSORS) * len(_BOUNDS):
        from repro.analysis import format_table

        write_result(
            "fig16_compression_speed",
            format_table(_ROWS_C, "Fig 16: compression speed, base vs +QP"),
        )
        write_result(
            "fig17_decompression_speed",
            format_table(_ROWS_D, "Fig 17: decompression speed, base vs +QP"),
        )
