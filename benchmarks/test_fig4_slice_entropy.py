"""Figure 4 — entropy of quantization indices by slice in the three planes
(SegSalt Pressure2000, SZ3, stride 2 to isolate the last interpolation
level)."""
import numpy as np
from conftest import write_result

import repro
from repro.analysis import format_table
from repro.compressors import CompressionState
from repro.core import slice_entropy


def test_fig4_slice_entropy(benchmark, bench_field):
    data = bench_field("segsalt", "Pressure2000")
    eb = 1e-4 * float(data.max() - data.min())
    st = CompressionState()
    repro.SZ3(eb, predictor="interp").compress(data, state=st)
    q = st.index_volume

    def curves():
        return {p: slice_entropy(q, p, stride=2) for p in ("xy", "xz", "yz")}

    ent = benchmark.pedantic(curves, rounds=1, iterations=1)
    rows = []
    for plane, e in ent.items():
        rows.append({
            "plane": plane,
            "slices": e.size,
            "min": round(float(e.min()), 3),
            "median": round(float(np.median(e)), 3),
            "max": round(float(e.max()), 3),
        })
        # entropy varies across slices — the basis for the paper's choice of
        # "medium entropy" demonstration slices
        assert e.max() > e.min()
    text = format_table(rows, "Fig 4: per-slice index entropy (stride 2)")
    # coarse ASCII profile of the xy curve (the paper's main panel)
    e = ent["xy"]
    bins = np.array_split(e, 12)
    profile = "".join(str(min(9, int(b.mean()))) for b in bins)
    text += f"\nxy entropy profile (12 bins, 0-9 scale): {profile}\n"
    write_result("fig4_slice_entropy", text)
