"""Figure 8 — compression-ratio increase rate for prediction conditions
Cases I-IV (2-D QP, SZ3), across error bounds.

The run uses a reduced quantizer capacity (radius 128) so unpredictable
points actually occur at the tight bounds — the regime the conditions were
designed to discriminate (with the default 2^15 radius, synthetic fields
produce almost no unpredictables and Cases I-III coincide).

Reproduced shape: Case I falls off at small error bounds (unpredictable
neighbours poison its predictions) and Case IV is the most conservative.
On these synthetic fields Case II edges Case III slightly — coherent
oscillatory data rewards predicting across sign changes; see EXPERIMENTS.md.
"""
import pytest
from conftest import write_result

import repro
from repro.core import QP_CONDITIONS, QPConfig

_ROWS = []
_BOUNDS = (1e-2, 1e-3, 1e-4)
_RADIUS = 128


@pytest.mark.parametrize("rel", _BOUNDS)
def test_fig8_conditions(rel, benchmark, bench_field):
    data = bench_field("segsalt", "Pressure2000")
    eb = rel * float(data.max() - data.min())
    base_size = len(
        repro.SZ3(eb, predictor="interp", radius=_RADIUS).compress(data)
    )

    def sweep():
        gains = {}
        for cond in QP_CONDITIONS:
            comp = repro.SZ3(
                eb, predictor="interp", radius=_RADIUS, qp=QPConfig(condition=cond)
            )
            gains[cond] = base_size / len(comp.compress(data)) - 1.0
        return gains

    gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
    row = {"rel eb": rel}
    row.update({f"Case {c}": f"{100 * g:+.1f}%" for c, g in gains.items()})
    _ROWS.append(row)
    if rel == min(_BOUNDS):
        # tight bound: unpredictable-aware cases beat unconditional Case I
        assert gains["II"] >= gains["I"]
        assert gains["III"] >= gains["I"]
    if len(_ROWS) == len(_BOUNDS):
        from repro.analysis import format_table

        totals = {c: 0.0 for c in QP_CONDITIONS}
        for r in _ROWS:
            for c in QP_CONDITIONS:
                totals[c] += float(r[f"Case {c}"].rstrip("%"))
        best = max(totals, key=totals.get)
        text = format_table(_ROWS, "Fig 8: CR increase vs prediction condition "
                                   f"(radius {_RADIUS})")
        text += f"\nbest overall condition: Case {best}\n"
        write_result("fig8_conditions", text)
        # Case III comfortably beats the conservative Case IV and never
        # collapses like Case I at tight bounds
        assert totals["III"] >= totals["IV"] - 0.5
