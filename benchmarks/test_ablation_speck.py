"""Ablation: SPERR coefficient coder — quantization+Huffman (this repo's
default substitution) vs the SPECK-style embedded coder (SPERR's native
architecture, implemented in ``repro.codecs.speck``).

The simplified whole-domain SPECK partition trades ratio for embeddedness;
the ablation records both so the substitution choice in DESIGN.md stays
justified by measurement.
"""
import time

import numpy as np
from conftest import write_result

import repro
from repro.analysis import format_table
from repro.compressors.sperr import SPERR


def test_ablation_speck(benchmark):
    data = repro.generate("miranda", "velocityx", shape=(32, 48, 48))
    eb = 1e-3 * float(data.max() - data.min())
    rows = []

    def sweep():
        for coder in ("quant", "speck"):
            comp = SPERR(eb, coder=coder)
            t0 = time.perf_counter()
            blob = comp.compress(data)
            t1 = time.perf_counter()
            out = comp.decompress(blob)
            t2 = time.perf_counter()
            err = np.abs(out.astype(np.float64) - data.astype(np.float64)).max()
            assert err <= eb
            rows.append({
                "coder": coder,
                "CR": round(data.nbytes / len(blob), 2),
                "compress s": round(t1 - t0, 3),
                "decompress s": round(t2 - t1, 3),
            })
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(rows) == 2
    write_result(
        "ablation_speck",
        format_table(rows, "Ablation: SPERR coefficient coder (quant vs SPECK)"),
    )
