"""Table III — benchmark dataset inventory (paper dims vs this repo's scaled
synthetic dims)."""
from conftest import write_result

from repro import table3_rows
from repro.analysis import format_table


def test_table3_datasets(benchmark):
    rows = benchmark.pedantic(table3_rows, rounds=1, iterations=1)
    assert len(rows) == 7
    names = [r["Dataset"] for r in rows]
    assert names == ["Miranda", "Hurricane", "SegSalt", "SCALE", "S3D",
                     "CESM-3D", "RTM"]
    # paper's dims, verbatim
    seg = next(r for r in rows if r["Dataset"] == "SegSalt")
    assert seg["Dimension (paper)"] == "1008x1008x352"
    rtm = next(r for r in rows if r["Dataset"] == "RTM")
    assert rtm["Dimension (paper)"] == "3600x449x449x235"
    write_result("table3_datasets", format_table(rows, "Table III: datasets"))
