"""Cross-cutting analysis benchmarks built on the harness extensions:

* BD-rate summary — condenses each rate-distortion figure into one number
  per compressor ("QP is worth X% bitrate at equal quality").
* Error-profile validation — ref [30]-style analysis showing the linear
  quantizer's error is near-uniform, unbiased, and bound-respecting, with
  and without QP (QP must not change the error field at all).
"""
import numpy as np
from conftest import write_result

import repro
from repro.analysis import bd_rate, error_profile, format_table
from repro.core import QPConfig


def test_bdrate_summary(benchmark, bench_field):
    bounds = (1e-2, 1e-3, 1e-4)

    def sweep():
        rows = []
        for ds, fld in (("miranda", "velocityx"), ("segsalt", "Pressure2000")):
            data = bench_field(ds, fld)
            for name in ("mgard", "sz3", "qoz", "hpez"):
                kwargs = {"predictor": "interp"} if name == "sz3" else {}
                points = repro.qp_comparison(name, data, rel_bounds=bounds, **kwargs)
                rb = [p.base.bitrate for p in points]
                pb = [p.base.psnr for p in points]
                rq = [p.qp.bitrate for p in points]
                pq = [p.qp.psnr for p in points]
                rows.append({
                    "dataset": ds,
                    "compressor": name.upper(),
                    "BD-rate of +QP %": round(bd_rate(rb, pb, rq, pq), 2),
                })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # QP must save bits at equal quality on these QP-friendly datasets
    assert all(r["BD-rate of +QP %"] < 0 for r in rows)
    write_result(
        "bdrate_summary",
        format_table(rows, "BD-rate of +QP vs base (negative = bits saved)"),
    )


def test_error_profile_validation(benchmark, bench_field):
    data = bench_field("miranda", "velocityx")
    eb = 1e-4 * float(data.max() - data.min())

    def run():
        base = repro.SZ3(eb, predictor="interp")
        plus = repro.SZ3(eb, predictor="interp", qp=QPConfig())
        out_b = base.decompress(base.compress(data))
        out_q = plus.decompress(plus.compress(data))
        return out_b, out_q

    out_b, out_q = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.array_equal(out_b, out_q)  # QP leaves the error field untouched
    prof = error_profile(data, out_b, eb)
    rows = [{
        "mean bias (eb units)": round(prof.mean_bias, 4),
        "RMS (eb units)": round(prof.rms, 4),
        "uniformity dist": round(prof.uniformity, 4),
        "lag-1 autocorr": round(prof.lag1_autocorr, 4),
        "bound utilization": round(prof.bound_utilization, 4),
    }]
    assert abs(prof.mean_bias) < 0.05
    assert prof.bound_utilization <= 1.0 + 1e-9
    write_result(
        "error_profile",
        format_table(rows, "Error profile of SZ3 (identical with +QP)"),
    )
