"""Figure 15 companion — QP across *all* Hurricane fields.

The paper's Hurricane panel is its outlier (QP near-flat for MGARD, SZ3 and
HPEZ); per-field behaviour is what drives the aggregate.  This harness runs
SZ3 ± QP over every one of the 13 Hurricane fields and reports per-field
gains plus the dataset aggregate, asserting only the invariants (identical
reconstruction; gains bounded below by a small negative margin)."""
import numpy as np
from conftest import write_result

import repro
from repro.analysis import format_table
from repro.core import QPConfig


def test_fig15_allfields(benchmark):
    shape = (16, 80, 80)
    fields = repro.generate_all("hurricane", shape=shape)
    rows = []

    def sweep():
        total_base = total_qp = 0
        for fname, data in fields.items():
            data = data.astype(np.float32)
            eb = 1e-4 * float(data.max() - data.min())
            base = repro.SZ3(eb, predictor="interp")
            plus = repro.SZ3(eb, predictor="interp", qp=QPConfig())
            sb, sq = len(base.compress(data)), len(plus.compress(data))
            total_base += sb
            total_qp += sq
            rows.append({
                "field": fname,
                "CR base": round(data.nbytes / sb, 2),
                "CR +QP": round(data.nbytes / sq, 2),
                "gain %": round(100 * (sb / sq - 1), 1),
            })
        rows.append({
            "field": "AGGREGATE",
            "CR base": round(sum(d.nbytes for d in fields.values()) / total_base, 2),
            "CR +QP": round(sum(d.nbytes for d in fields.values()) / total_qp, 2),
            "gain %": round(100 * (total_base / total_qp - 1), 1),
        })
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    gains = [r["gain %"] for r in rows[:-1]]
    # per-field gains vary; none may collapse below a small negative margin
    assert min(gains) > -10.0
    write_result(
        "fig15_allfields",
        format_table(rows, "Fig 15 companion: QP across all 13 Hurricane fields (SZ3)"),
    )
