"""Shared benchmark fixtures and output plumbing.

Every benchmark regenerates one table or figure of the paper.  Because
``pytest --benchmark-only`` captures stdout, each harness also writes its
rendered table to ``benchmarks/results/<experiment>.txt`` so the regenerated
numbers survive the run; EXPERIMENTS.md records the paper-vs-measured
comparison.

Benchmark-scale data shapes are slightly smaller than the library defaults to
keep the full suite's runtime reasonable on the pure-Python substrate.
"""
from __future__ import annotations

import pathlib

import numpy as np
import pytest

import repro

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: scaled-down shapes used by the heavier sweeps
BENCH_SHAPES = {
    "miranda": (48, 72, 72),
    "hurricane": (20, 100, 100),
    "segsalt": (96, 96, 36),
    "scale": (20, 120, 120),
    "s3d": (48, 48, 48),
    "cesm": (13, 96, 192),
}


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)


@pytest.fixture(scope="session")
def bench_field():
    """Dataset/field loader memoized across the whole benchmark session."""
    cache: dict = {}

    def load(dataset: str, field: str | None = None) -> np.ndarray:
        key = (dataset, field)
        if key not in cache:
            cache[key] = repro.generate(dataset, field, shape=BENCH_SHAPES.get(dataset))
        return cache[key]

    return load


def rel_eb(data: np.ndarray, rel: float) -> float:
    return rel * float(data.max() - data.min())
