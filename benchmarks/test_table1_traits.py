"""Table I — qualitative characteristics of the interpolation-based
compressors (speed / ratio / resolution reduction / GPU / QoI / quality
orientation)."""
from conftest import write_result

from repro import traits_table
from repro.analysis import format_table


def test_table1_traits(benchmark):
    rows = benchmark.pedantic(traits_table, rounds=1, iterations=1)
    assert [r["compressor"] for r in rows] == ["MGARD", "SZ3", "QOZ", "HPEZ"]
    # the paper's claims, verbatim
    by = {r["compressor"]: r for r in rows}
    assert by["MGARD"]["resolution_reduction"] is True
    assert by["SZ3"]["resolution_reduction"] is False
    assert by["MGARD"]["gpu"] and by["QOZ"]["gpu"]
    assert by["MGARD"]["qoi"] and by["SZ3"]["qoi"]
    assert by["QOZ"]["quality_oriented"] and by["HPEZ"]["quality_oriented"]
    assert by["HPEZ"]["ratio"] == "high" and by["MGARD"]["ratio"] == "low"
    write_result("table1_traits", format_table(rows, "Table I: compressor traits"))
