"""Table II — compression statistics on SegSalt Pressure2000 with PSNR
aligned to ~75 for the four interpolation-based compressors, with and
without QP."""
import numpy as np
import pytest
from conftest import write_result

import repro
from repro.analysis import format_table
from repro.core import QPConfig
from repro.metrics import evaluate

TARGET_PSNR = 75.0
TOLERANCE = 3.0


def _align_psnr(name: str, data: np.ndarray) -> float:
    """Binary-search the relative error bound that lands PSNR near 75."""
    value_range = float(data.max() - data.min())
    lo, hi = 1e-5, 0.2  # rel bounds bracketing the PSNR target
    eb = None
    for _ in range(12):
        mid = np.sqrt(lo * hi)
        comp = repro.get_compressor(name, mid * value_range)
        out = comp.decompress(comp.compress(data))
        p = repro.psnr(data, out)
        if abs(p - TARGET_PSNR) <= TOLERANCE:
            return mid * value_range
        if p > TARGET_PSNR:
            lo = mid  # too precise -> loosen
        else:
            hi = mid
        eb = mid * value_range
    return eb


_ROWS: dict = {}


@pytest.mark.parametrize("name", ["mgard", "sz3", "qoz", "hpez"])
def test_table2_row(name, benchmark, bench_field):
    data = bench_field("segsalt", "Pressure2000")
    eb = _align_psnr(name, data)
    base = benchmark.pedantic(
        lambda: evaluate(repro.get_compressor(name, eb), data), rounds=1, iterations=1
    )
    qp = evaluate(repro.get_compressor(name, eb, qp=QPConfig()), data)
    assert abs(base.psnr - TARGET_PSNR) <= TOLERANCE + 2.0
    assert qp.psnr == pytest.approx(base.psnr, abs=1e-9)  # QP preserves quality
    assert qp.cr >= base.cr * 0.97  # QP never costs more than noise

    _ROWS[name] = {
        "Compressor": name.upper(),
        "Max Rel Error": float(f"{base.max_rel_error:.3g}"),
        "PSNR": round(base.psnr, 2),
        "CR (original)": round(base.cr, 2),
        "CR with QP": round(qp.cr, 2),
        "QP gain %": round(100 * (qp.cr / base.cr - 1), 1),
    }
    if len(_ROWS) == 4:
        rows = [_ROWS[n] for n in ("mgard", "sz3", "qoz", "hpez")]
        write_result(
            "table2_segsalt",
            format_table(rows, "Table II: SegSalt Pressure2000 @ PSNR~75"),
        )
