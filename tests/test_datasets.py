"""Tests for the synthetic dataset generators."""
import numpy as np
import pytest

from repro.datasets import DATASETS, generate, generate_all, table3_rows
from repro.datasets.fields import (
    front_field,
    lat_lon_climate,
    layered_model,
    point_source_wavefield,
    salt_body,
    spectral_field,
    vortex_field,
)


def test_registry_covers_paper_table3():
    assert set(DATASETS) == {
        "miranda", "hurricane", "segsalt", "scale", "s3d", "cesm", "rtm",
    }
    assert DATASETS["segsalt"].paper_dims == (1008, 1008, 352)
    assert DATASETS["rtm"].paper_dims == (3600, 449, 449, 235)
    assert DATASETS["s3d"].dtype == "f8"


def test_table3_rows_complete():
    rows = table3_rows()
    assert len(rows) == 7
    assert all("Dimension (paper)" in r for r in rows)


@pytest.mark.parametrize("name", list(DATASETS))
def test_generate_default_field(name):
    data = generate(name)
    info = DATASETS[name]
    assert data.shape == info.default_dims
    assert data.dtype == np.dtype(info.dtype)
    assert np.isfinite(data).all()


def test_generate_deterministic():
    a = generate("miranda", "pressure", seed=1)
    b = generate("miranda", "pressure", seed=1)
    assert np.array_equal(a, b)
    c = generate("miranda", "pressure", seed=2)
    assert not np.array_equal(a, c)


def test_fields_differ():
    a = generate("miranda", "velocityx")
    b = generate("miranda", "velocityy")
    assert not np.array_equal(a, b)


def test_generate_custom_shape():
    data = generate("segsalt", "Velocity", shape=(20, 24, 16))
    assert data.shape == (20, 24, 16)


def test_generate_all_returns_every_field():
    fields = generate_all("segsalt", shape=(16, 16, 8))
    assert set(fields) == set(DATASETS["segsalt"].fields)


def test_unknown_dataset_and_field():
    with pytest.raises(KeyError):
        generate("nyx")
    with pytest.raises(KeyError):
        generate("miranda", "entropy_field")


class TestFieldPrimitives:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_spectral_field_normalized(self):
        f = spectral_field((32, 32, 32), 2.0, self.rng)
        assert abs(f.mean()) < 1e-10
        assert abs(f.std() - 1.0) < 0.05

    def test_spectral_slope_controls_smoothness(self):
        rough = spectral_field((64, 64), 1.0, np.random.default_rng(1))
        smooth = spectral_field((64, 64), 4.0, np.random.default_rng(1))
        # gradient energy much higher for the shallow spectrum
        g_rough = np.abs(np.diff(rough, axis=0)).mean()
        g_smooth = np.abs(np.diff(smooth, axis=0)).mean()
        assert g_rough > 2 * g_smooth

    def test_layered_model_piecewise(self):
        m = layered_model((40, 16, 16), self.rng)
        assert len(np.unique(m)) <= 14  # at most n_layers distinct values

    def test_salt_body_binary(self):
        s = salt_body((24, 24, 24), self.rng, value=4.8)
        assert set(np.unique(s)) <= {0.0, 4.8}
        assert (s > 0).any()

    def test_wavefield_peaks_at_front(self):
        w = point_source_wavefield((32, 32, 32), self.rng, t=0.4,
                                   center=(0.5, 0.5, 0.5))
        # energy concentrated near radius 0.4 from the center
        assert np.abs(w).max() > 0.1

    def test_vortex_components(self):
        for comp in ("u", "v", "w", "scalar"):
            f = vortex_field((8, 32, 32), self.rng, comp)
            assert np.isfinite(f).all()

    def test_front_field_bounded(self):
        f = front_field((32, 32), self.rng)
        assert f.min() >= 0.0 and f.max() <= 1.0
        # sharp fronts: most mass near 0 or 1
        mid = ((f > 0.2) & (f < 0.8)).mean()
        assert mid < 0.35

    def test_climate_zonal_gradient(self):
        f = lat_lon_climate((8, 48, 96), self.rng)
        # equator (middle latitude) warmer than poles on average
        assert f[:, 24, :].mean() > f[:, 0, :].mean()


def test_rtm_wavefront_expands():
    data = generate("rtm", shape=(6, 24, 24, 16))
    # the energetic shell moves outward over time: later snapshots spread
    def radius_of_energy(vol):
        z, y, x = np.meshgrid(*[np.linspace(0, 1, n) for n in vol.shape], indexing="ij")
        w = vol**2
        if w.sum() == 0:
            return 0.0
        c = [(w * g).sum() / w.sum() for g in (z, y, x)]
        r = np.sqrt(sum((g - ci) ** 2 for g, ci in zip((z, y, x), c)))
        return float((w * r).sum() / w.sum())

    assert radius_of_energy(data[-1]) > radius_of_energy(data[0])
