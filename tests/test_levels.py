"""Tests for the multilevel pass machinery: every point must be produced
exactly once across anchors + all passes of all levels."""
import numpy as np
import pytest

from repro.utils.levels import (
    anchor_slices,
    anchor_stride,
    level_passes,
    num_levels,
    pass_sizes,
)


@pytest.mark.parametrize(
    "shape",
    [(17,), (32,), (33,), (16, 16), (15, 31), (8, 9, 10), (33, 17, 5), (64, 64, 64)],
)
def test_full_coverage_no_overlap(shape):
    """Anchors + all pass targets tile the whole array exactly once."""
    counter = np.zeros(shape, dtype=np.int64)
    counter[anchor_slices(shape)] += 1
    for level in range(num_levels(shape), 0, -1):
        for p in level_passes(shape, level):
            counter[p.target] += 1
    assert counter.min() == 1 and counter.max() == 1


def test_pass_strides_match_paper_figure2():
    """3-D level passes produce the 2x2 / 1x2 / 1x1 in-plane stride pattern."""
    shape = (5, 5, 5)
    passes = level_passes(shape, 1)  # stride 1, coarse grid stride 2
    assert [p.axis for p in passes] == [0, 1, 2]
    # pass along z: y and x stay on the 2-grid (stride 2x2 in-plane)
    assert passes[0].target == (slice(1, None, 2), slice(0, None, 2), slice(0, None, 2))
    # pass along y: z now dense (stride 1), x still on the 2-grid
    assert passes[1].target == (slice(0, None, 1), slice(1, None, 2), slice(0, None, 2))
    # pass along x: z and y dense
    assert passes[2].target == (slice(0, None, 1), slice(0, None, 1), slice(1, None, 2))


def test_known_grid_is_double_stride_on_interp_axis():
    p = level_passes((9, 9), 2)[0]  # stride s=2, coarse grid stride 2s=4
    assert p.known[0] == slice(0, None, 4)
    assert p.target[0] == slice(2, None, 4)


def test_level1_and_2_hold_most_points():
    """The paper gates QP at levels 1-2 because they hold >98% of the data."""
    shape = (64, 64, 64)
    total = np.prod(shape)
    count12 = 0
    for level in (1, 2):
        for p in level_passes(shape, level):
            count12 += np.prod(pass_sizes(shape, p))
    assert count12 / total > 0.98


def test_custom_axis_order():
    shape = (8, 8, 8)
    passes = level_passes(shape, 1, axis_order=(2, 0, 1))
    assert [p.axis for p in passes] == [2, 0, 1]
    counter = np.zeros(shape, dtype=np.int64)
    counter[anchor_slices(shape)] += 1
    for level in range(num_levels(shape), 0, -1):
        for p in level_passes(shape, level, axis_order=(2, 0, 1)):
            counter[p.target] += 1
    assert counter.min() == 1 and counter.max() == 1


def test_bad_axis_order_rejected():
    with pytest.raises(ValueError):
        level_passes((8, 8), 1, axis_order=(0, 0))


def test_degenerate_axes():
    # an axis of extent 1 never yields targets but must not break coverage
    shape = (1, 16)
    counter = np.zeros(shape, dtype=np.int64)
    counter[anchor_slices(shape)] += 1
    for level in range(num_levels(shape), 0, -1):
        for p in level_passes(shape, level):
            counter[p.target] += 1
    assert counter.min() == 1 and counter.max() == 1


def test_num_levels_monotone():
    assert num_levels((2,)) == 1
    assert num_levels((3,)) == 1
    assert num_levels((5,)) == 2
    assert num_levels((64, 8)) <= num_levels((128, 8))


def test_anchor_stride_exceeds_half_extent():
    for shape in [(16,), (100,), (31, 7)]:
        s = anchor_stride(shape)
        assert s >= (max(shape) - 1) / 2
