"""Golden bit-identity: the performance work must not move a single bit.

The digests below were produced by the pre-optimization encoder on fixed
seeded inputs.  Every hot-path change this PR makes — prediction reuse,
schedule memoization, the subgrid trial shrink, the cumsum/wavefront-cache
QP inverses, the histogram median, the byte-windowed Huffman packer, and the
stage profiler — claims to be a pure reorganization of work.  This test is
that claim, enforced: blobs must stay byte-identical to the pre-PR encoder,
with profiling off, with profiling on, and with every cache warm.
"""
import hashlib

import numpy as np
import pytest

import repro
from repro import perf
from repro.core.config import QPConfig
from repro.compressors import get_compressor

GOLDEN = {
    "miranda-24x20x22/sz3/qp=off": "4ade417d3da37085a0d2e0f775d9ea8196345620060f8a4490231180f88795b8",
    "miranda-24x20x22/sz3/qp=on": "c8440c4447626d107ca975185f68ca20213c907e772c964ab31fac9234f33a5f",
    "miranda-24x20x22/qoz/qp=off": "3c5585d099452716f3e702eee22c9b2b4c80f49eac52d652f66c21019e2b156f",
    "miranda-24x20x22/qoz/qp=on": "a1b8d8e181fd569938757c5d3339553fa59742e0d90eba40c460167fca4ea5c4",
    "miranda-24x20x22/hpez/qp=off": "48d0f6f02b88a0cb9b00a69bd3928ef47d6a58953e32efee901bb6dfe6fccf12",
    "miranda-24x20x22/hpez/qp=on": "9d5109a13ff7e8ddfd8d29e9c8c3119be1e5f3ed3261d3829b2a81411040347d",
    "miranda-24x20x22/mgard/qp=off": "4442890613dd182675652b0960d50af2a9d52f7fb781196e7ae25486ea77b760",
    "miranda-24x20x22/mgard/qp=on": "d9894cd41e94bef57257afda0e13e267d9c03fb5af45a87f15bdcb274ced0077",
    "cesm-33x26/sz3/qp=off": "024425bf087a09eeb28775dcb6119ac6500df41cd6fc979ca003a979b8513d84",
    "cesm-33x26/sz3/qp=on": "f0eaf968fc76c7e8d9627367f148edbede18671d2ad9ec21c1edc1ca22478c98",
    "cesm-33x26/qoz/qp=off": "8cce13ecb4e79ff1ca2399252ccf6eb20586f53dd8444faeee5ce3d668a491f6",
    "cesm-33x26/qoz/qp=on": "7ebb48265561c86858f2fe8e574c17c219bc3193eccda3090a6e9b7f7d055bc7",
    "cesm-33x26/hpez/qp=off": "5c82c83349a0bb442522a616066404979ebc2b2e410b67969b42d4e78cb6fb8b",
    "cesm-33x26/hpez/qp=on": "51934e0527821cf2c3d32556f3c14e04dd81c1a79e06434c08306e32554c1617",
    "cesm-33x26/mgard/qp=off": "16b3daa70d56929ce83c9c92023891459639770d15c2cc66c86f24bd7adb78ed",
    "cesm-33x26/mgard/qp=on": "41e919feb4a7ed261c02296907ba4e972738d3f3f877f3ff589ec95f0884ac89",
}


@pytest.fixture(scope="module")
def inputs():
    data3 = repro.generate("miranda", shape=(24, 20, 22), seed=0)
    data2 = np.ascontiguousarray(repro.generate("cesm", shape=(4, 33, 26), seed=1)[0])
    return {"miranda-24x20x22": data3, "cesm-33x26": data2}


def _compress(data, base, qp_on):
    eb = 1e-3 * float(data.max() - data.min())
    kw = {"qp": QPConfig()} if qp_on else {}
    return get_compressor(base, eb, **kw).compress(data)


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_blob_matches_golden_digest(inputs, key):
    label, base, qp = key.split("/")
    blob = _compress(inputs[label], base, qp == "qp=on")
    assert hashlib.sha256(blob).hexdigest() == GOLDEN[key]


def test_profiling_does_not_change_bytes(inputs):
    data = inputs["miranda-24x20x22"]
    plain = _compress(data, "sz3", True)
    prof = perf.PipelineProfiler()
    with perf.profile(prof):
        instrumented = _compress(data, "sz3", True)
    assert instrumented == plain
    # and the profiler actually saw the pipeline while bytes stayed equal
    assert {"predict", "quantize", "qp", "huffman", "lossless"} <= set(prof.totals)


def test_sealed_blob_payload_matches_golden_digest(inputs):
    # the v1 integrity envelope wraps the canonical v0 bytes unmodified:
    # checksummed blobs still hash to the golden digests once unsealed
    from repro.io import integrity

    data = inputs["miranda-24x20x22"]
    eb = 1e-3 * float(data.max() - data.min())
    comp = get_compressor("sz3", eb, qp=QPConfig())
    sealed = comp.compress(data, checksum=True)
    assert sealed[:4] == integrity.BLOB_MAGIC_V1
    payload = integrity.unseal(sealed)
    assert (
        hashlib.sha256(payload).hexdigest()
        == GOLDEN["miranda-24x20x22/sz3/qp=on"]
    )
    # and the sealed blob decodes like the plain one
    out = comp.decompress(sealed)
    assert np.abs(out - data).max() <= eb * (1 + 1e-6)


def test_warm_caches_do_not_change_bytes(inputs):
    # second run hits the schedule/wavefront-index memo tables; bytes and
    # decoded values must be unaffected by cache state
    data = inputs["miranda-24x20x22"]
    eb = 1e-3 * float(data.max() - data.min())
    comp = get_compressor("sz3", eb, qp=QPConfig())
    cold = comp.compress(data)
    warm = comp.compress(data)
    assert cold == warm
    out = comp.decompress(warm)
    assert np.abs(out - data).max() <= eb * (1 + 1e-6)
