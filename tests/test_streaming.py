"""Streaming execution mode: slab planner, buffer pool, incremental
container, compress_stream/decompress_stream equivalence, and torn-stream
fault behaviour.

The load-bearing property is byte-identity: a streamed container's
segments are exactly the blobs ``compress`` would produce for the same
slabs, so every existing decode path (and every golden digest) keeps
working on streamed output.
"""
import io
import os

import numpy as np
import pytest

import repro
from repro import obs
from repro.compressors import get_compressor
from repro.core.config import AdaptiveConfig, QPConfig
from repro.errors import (
    CorruptBlobError,
    IntegrityError,
    ReproError,
    TruncatedStreamError,
    VersionError,
)
from repro.io import ContainerReader, ContainerWriter, is_streamed_container
from repro.streaming import (
    BufferPool,
    plan_slabs,
    slab_slices,
    stream_compress,
    stream_decompress,
)
from repro.testing import run_corruption_matrix

pytestmark = pytest.mark.streaming

ENGINES = ("sz3", "qoz", "hpez", "mgard")


def _small_field(shape=(24, 20, 16), seed=11):
    rng = np.random.default_rng(seed)
    coords = np.meshgrid(*(np.linspace(0, 2.5, s) for s in shape),
                         indexing="ij")
    return (sum(np.sin(c) for c in coords)
            + 0.05 * rng.standard_normal(shape)).astype(np.float32)


def _slab_bytes_for(data, n_slabs):
    rows = max(1, data.shape[0] // n_slabs)
    return rows * int(np.prod(data.shape[1:])) * data.dtype.itemsize


# -- slab planner -------------------------------------------------------------


def test_slab_slices_cover_contiguously():
    slices = slab_slices(100, 7)
    assert slices[0].start == 0 and slices[-1].stop == 100
    for a, b in zip(slices, slices[1:]):
        assert a.stop == b.start
    assert sum(s.stop - s.start for s in slices) == 100


def test_slab_slices_more_parts_than_rows():
    slices = slab_slices(3, 8)
    assert sum(s.stop - s.start for s in slices) == 3
    assert all(s.stop > s.start for s in slices)


def test_plan_slabs_respects_min_rows_and_budget():
    shape, dtype = (64, 32, 32), np.dtype(np.float32)
    row_bytes = 32 * 32 * 4
    slices = plan_slabs(shape, dtype, slab_bytes=8 * row_bytes, min_rows=8)
    assert slices[0].start == 0 and slices[-1].stop == 64
    assert all(s.stop - s.start >= 8 for s in slices)


def test_plan_slabs_single_slab_when_budget_exceeds_volume():
    slices = plan_slabs((16, 8, 8), np.dtype(np.float32), slab_bytes=1 << 30)
    assert len(slices) == 1
    assert slices[0] == slice(0, 16)


# -- buffer pool --------------------------------------------------------------


def test_buffer_pool_reuses_released_buffers():
    pool = BufferPool()
    a = pool.acquire((8, 4), np.dtype(np.float32))
    pool.release(a)
    b = pool.acquire((8, 4), np.dtype(np.float32))
    assert b is a
    stats = pool.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_buffer_pool_keys_on_shape_and_dtype():
    pool = BufferPool()
    a = pool.acquire((8, 4), np.dtype(np.float32))
    pool.release(a)
    b = pool.acquire((8, 4), np.dtype(np.float64))
    assert b is not a
    assert pool.stats()["misses"] == 2


def test_buffer_pool_caps_retained_buffers():
    pool = BufferPool(max_per_key=2)
    bufs = [pool.acquire((4,), np.dtype(np.float32)) for _ in range(5)]
    for b in bufs:
        pool.release(b)
    # only two survive the cap; the next three acquires are 2 hits + 1 miss
    hits0 = pool.stats()["hits"]
    got = [pool.acquire((4,), np.dtype(np.float32)) for _ in range(3)]
    stats = pool.stats()
    assert stats["hits"] - hits0 == 2
    assert len(got) == 3


# -- incremental container ----------------------------------------------------


def test_container_round_trip_bytesio():
    segments = [b"alpha", b"bravo-bravo", b"c" * 100]
    sink = io.BytesIO()
    with ContainerWriter(sink, axis=0, meta={"k": 1}) as w:
        for seg in segments:
            w.append(seg)
    raw = sink.getvalue()
    assert is_streamed_container(raw[:4])
    r = ContainerReader(raw)
    assert len(r) == len(segments)
    assert list(r) == segments
    assert r.meta == {"k": 1}
    assert r.axis == 0
    # random access re-reads with CRC verification
    assert r.segment(1) == segments[1]


def test_container_offsets_monotone_and_contiguous():
    sink = io.BytesIO()
    with ContainerWriter(sink) as w:
        for seg in (b"x" * 10, b"y" * 33, b"z" * 7):
            w.append(seg)
    offsets = ContainerReader(sink.getvalue()).offsets()
    cursor = offsets[0][0]
    for off, size in offsets:
        assert off == cursor
        cursor = off + size


def test_container_writer_rejects_empty_segment_and_reuse():
    sink = io.BytesIO()
    w = ContainerWriter(sink)
    with pytest.raises(ValueError):
        w.append(b"")
    w.append(b"data")
    w.finalize()
    with pytest.raises(ValueError):
        w.append(b"more")
    with pytest.raises(ValueError):
        w.finalize()


def test_container_writer_file_sink(tmp_path):
    path = tmp_path / "field.rstr"
    with open(path, "wb") as fh, ContainerWriter(fh, meta={"n": 2}) as w:
        w.append(b"one")
        w.append(b"two")
    r = ContainerReader(str(path))
    assert list(r) == [b"one", b"two"]


def _sealed_container(meta=None):
    sink = io.BytesIO()
    with ContainerWriter(sink, meta=meta) as w:
        w.append(b"segment-zero" * 20)
        w.append(b"segment-one" * 17)
    return sink.getvalue()


def test_container_truncation_is_typed():
    raw = _sealed_container()
    for cut in (2, 6, len(raw) // 2, len(raw) - 1):
        with pytest.raises((TruncatedStreamError, CorruptBlobError)):
            ContainerReader(raw[:cut])


def test_container_bad_magic_and_version():
    raw = _sealed_container()
    with pytest.raises(CorruptBlobError):
        ContainerReader(b"XXXX" + raw[4:])
    bad_ver = raw[:4] + bytes([250]) + raw[5:]
    with pytest.raises(VersionError):
        ContainerReader(bad_ver)


def test_container_segment_corruption_fails_crc():
    raw = bytearray(_sealed_container())
    r = ContainerReader(bytes(raw))
    off, size = r.offsets()[0]
    raw[off + size // 2] ^= 0x40
    with pytest.raises(IntegrityError):
        ContainerReader(bytes(raw)).segment(0)


def test_container_index_corruption_fails_crc():
    raw = bytearray(_sealed_container())
    # the index JSON sits between the last segment and the 16-byte footer
    off, size = ContainerReader(bytes(raw)).offsets()[-1]
    raw[off + size + 2] ^= 0x01
    with pytest.raises((IntegrityError, CorruptBlobError)):
        ContainerReader(bytes(raw))


@pytest.mark.faults
def test_streamed_container_corruption_matrix():
    comp = get_compressor("sz3", 1e-2, qp=QPConfig())
    data = _small_field()
    sink = io.BytesIO()
    comp.compress_stream(data, sink,
                         slab_bytes=_slab_bytes_for(data, 3))
    results = run_corruption_matrix(sink.getvalue(), stream_decompress,
                                    seeds=range(4))
    bad = [r for r in results if r.outcome == "untyped"]
    assert not bad, bad
    assert not any("deadline" in r.detail for r in results)


# -- compress_stream equivalence ---------------------------------------------


@pytest.mark.parametrize("name", ENGINES)
@pytest.mark.parametrize("qp", [False, True])
def test_stream_segments_match_per_slab_compress(name, qp):
    data = _small_field()
    kwargs = {"qp": QPConfig() if qp else QPConfig.disabled()}
    comp = get_compressor(name, 1e-2, **kwargs)
    slab_bytes = _slab_bytes_for(data, 3)
    sink = io.BytesIO()
    res = comp.compress_stream(data, sink, slab_bytes=slab_bytes)
    slices = plan_slabs(data.shape, data.dtype, slab_bytes=slab_bytes)
    reader = ContainerReader(sink.getvalue())
    assert res.segments == len(slices) == len(reader)
    expected_parts = []
    for seg, sl in zip(reader, slices):
        blob = comp.compress(np.ascontiguousarray(data[sl]))
        assert seg == blob
        expected_parts.append(comp.decompress(blob))
    out = stream_decompress(sink.getvalue())
    np.testing.assert_array_equal(out, np.concatenate(expected_parts, axis=0))


@pytest.mark.parametrize("name", ENGINES)
def test_stream_adaptive_segments_match(name):
    data = _small_field()
    comp = get_compressor(name, 1e-2, qp=QPConfig(),
                          adaptive=AdaptiveConfig(bits=2, threshold=3))
    slab_bytes = _slab_bytes_for(data, 2)
    sink = io.BytesIO()
    comp.compress_stream(data, sink, slab_bytes=slab_bytes)
    slices = plan_slabs(data.shape, data.dtype, slab_bytes=slab_bytes)
    for seg, sl in zip(ContainerReader(sink.getvalue()), slices):
        assert seg == comp.compress(np.ascontiguousarray(data[sl]))


@pytest.mark.parametrize("name", ENGINES)
def test_single_slab_stream_is_bit_identical_to_compress(name):
    data = _small_field(shape=(16, 12, 10))
    comp = get_compressor(name, 1e-2, qp=QPConfig())
    sink = io.BytesIO()
    res = comp.compress_stream(data, sink, slab_bytes=1 << 30)
    assert res.segments == 1
    blob = comp.compress(data)
    assert ContainerReader(sink.getvalue()).segment(0) == blob
    np.testing.assert_array_equal(stream_decompress(sink.getvalue()),
                                  comp.decompress(blob))


def test_stream_checksum_mode_round_trips():
    data = _small_field()
    comp = get_compressor("sz3", 1e-2, qp=QPConfig())
    sink = io.BytesIO()
    comp.compress_stream(data, sink, slab_bytes=_slab_bytes_for(data, 2),
                         checksum=True)
    out = stream_decompress(sink.getvalue())
    assert out.shape == data.shape
    assert float(np.abs(out - data).max()) <= 1e-2 * 1.0000001


def test_generic_compressor_streams_via_whole_blob_fallback():
    data = _small_field(shape=(16, 12, 10))
    comp = get_compressor("zfp", 1e-2)
    sink = io.BytesIO()
    res = comp.compress_stream(data, sink, slab_bytes=_slab_bytes_for(data, 2))
    assert res.segments >= 2
    out = comp.decompress_stream(sink.getvalue())
    assert out.shape == data.shape
    assert out.dtype == data.dtype


def test_stream_decompress_without_compressor_uses_registry():
    data = _small_field()
    comp = get_compressor("hpez", 1e-2, qp=QPConfig())
    sink = io.BytesIO()
    comp.compress_stream(data, sink, slab_bytes=_slab_bytes_for(data, 2))
    out = stream_decompress(sink.getvalue())
    np.testing.assert_array_equal(out, comp.decompress_stream(sink.getvalue()))


def test_stream_accepts_memmap_input(tmp_path):
    data = _small_field(shape=(32, 16, 12))
    npy = tmp_path / "field.npy"
    np.save(npy, data)
    mm = np.load(npy, mmap_mode="r")
    comp = get_compressor("sz3", 1e-2, qp=QPConfig())
    slab_bytes = _slab_bytes_for(data, 4)
    sink_mm = io.BytesIO()
    comp.compress_stream(mm, sink_mm, slab_bytes=slab_bytes)
    sink_arr = io.BytesIO()
    comp.compress_stream(data, sink_arr, slab_bytes=slab_bytes)
    assert sink_mm.getvalue() == sink_arr.getvalue()


def test_stream_file_round_trip(tmp_path):
    data = _small_field()
    comp = get_compressor("mgard", 1e-2, qp=QPConfig())
    path = tmp_path / "field.rstr"
    with open(path, "wb") as fh:
        comp.compress_stream(data, fh, slab_bytes=_slab_bytes_for(data, 3))
    out = stream_decompress(str(path))
    assert out.shape == data.shape
    assert float(np.abs(out.astype(np.float64)
                        - data.astype(np.float64)).max()) <= 1e-2 * 1.0000001


def test_torn_stream_decode_is_typed(tmp_path):
    data = _small_field()
    comp = get_compressor("sz3", 1e-2, qp=QPConfig())
    sink = io.BytesIO()
    comp.compress_stream(data, sink, slab_bytes=_slab_bytes_for(data, 3))
    raw = sink.getvalue()
    # tear the stream at several points: mid-header, mid-payload, mid-footer
    for cut in (3, len(raw) // 3, len(raw) - 5):
        with pytest.raises(ReproError):
            stream_decompress(raw[:cut])


def test_stream_result_accounting():
    data = _small_field()
    comp = get_compressor("sz3", 1e-2, qp=QPConfig())
    sink = io.BytesIO()
    res = comp.compress_stream(data, sink, slab_bytes=_slab_bytes_for(data, 3))
    assert res.input_bytes == data.nbytes
    assert res.total_bytes == len(sink.getvalue())
    assert res.payload_bytes < res.total_bytes
    assert res.ratio > 1.0
    assert res.backpressure_wait_s >= 0.0
    assert set(res.buffer_reuse) >= {"hits", "misses"}


def test_stream_observability_spans_and_metrics():
    data = _small_field()
    comp = get_compressor("sz3", 1e-2, qp=QPConfig())
    ob = obs.Observation()
    with obs.observe(ob):
        sink = io.BytesIO()
        comp.compress_stream(data, sink, slab_bytes=_slab_bytes_for(data, 3))
    payload = ob.to_payload()
    names = {s["name"] for s in payload.get("spans", [])}
    assert {"stream.front", "stream.entropy", "stream.write"} <= names
    flat = str(payload.get("metrics"))
    assert "stream.buffer_reuse" in flat
    assert "stream.backpressure_wait" in flat


def test_module_level_stream_compress_matches_method():
    data = _small_field()
    comp = get_compressor("qoz", 1e-2, qp=QPConfig())
    a, b = io.BytesIO(), io.BytesIO()
    stream_compress(comp, data, a, slab_bytes=_slab_bytes_for(data, 2))
    comp.compress_stream(data, b, slab_bytes=_slab_bytes_for(data, 2))
    assert a.getvalue() == b.getvalue()


# -- CLI and API-surface lint -------------------------------------------------


def test_cli_stream_round_trip(tmp_path):
    from repro import cli

    data = _small_field(shape=(32, 16, 12))
    src = tmp_path / "in.npy"
    np.save(src, data)
    blob_path = tmp_path / "out.rc"
    rc = cli.main([
        "compress", str(src), str(blob_path),
        "--compressor", "sz3", "--eb", "1e-2",
        "--stream", "--slab-mb", "0.02",
    ])
    assert rc == 0
    with open(blob_path, "rb") as fh:
        assert is_streamed_container(fh.read(4))
    out_path = tmp_path / "roundtrip.npy"
    rc = cli.main(["decompress", str(blob_path), str(out_path)])
    assert rc == 0
    out = np.load(out_path)
    assert out.shape == data.shape
    assert float(np.abs(out.astype(np.float64)
                        - data.astype(np.float64)).max()) <= 1e-2 * 1.0000001


def test_check_api_streaming_surface_is_clean():
    import pathlib
    import sys

    tools = pathlib.Path(__file__).resolve().parents[1] / "tools"
    sys.path.insert(0, str(tools))
    try:
        import check_api

        assert check_api.check_streaming() == []
    finally:
        sys.path.remove(str(tools))
