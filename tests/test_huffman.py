"""Unit + property tests for the canonical length-limited Huffman codec."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.codecs.huffman import (
    MAX_CODE_LEN,
    HuffmanCodec,
    canonical_codes,
    huffman_code_lengths,
)


def kraft_sum(lengths):
    present = lengths[lengths > 0]
    return float(np.sum(2.0 ** (-present)))


class TestCodeLengths:
    def test_empty(self):
        assert huffman_code_lengths(np.zeros(4, dtype=np.int64)).sum() == 0

    def test_single_symbol_gets_one_bit(self):
        lens = huffman_code_lengths(np.array([0, 5, 0]))
        assert lens.tolist() == [0, 1, 0]

    def test_two_equal_symbols(self):
        lens = huffman_code_lengths(np.array([3, 3]))
        assert lens.tolist() == [1, 1]

    def test_kraft_inequality_holds(self):
        rng = np.random.default_rng(1)
        freqs = rng.integers(0, 1000, size=300)
        lens = huffman_code_lengths(freqs)
        assert kraft_sum(lens) <= 1.0 + 1e-12

    def test_skewed_distribution_is_near_entropy(self):
        # geometric-ish distribution: expected code length close to entropy
        freqs = np.array([2 ** (20 - i) for i in range(20)], dtype=np.int64)
        lens = huffman_code_lengths(freqs)
        p = freqs / freqs.sum()
        entropy = -(p * np.log2(p)).sum()
        avg = (p * lens).sum()
        assert avg <= entropy + 1.0  # Huffman is within 1 bit of entropy

    def test_length_limit_enforced(self):
        # Fibonacci-like frequencies force very deep optimal trees
        freqs = np.ones(64, dtype=np.int64)
        a, b = 1, 2
        for i in range(64):
            freqs[i] = a
            a, b = b, a + b
        lens = huffman_code_lengths(freqs)
        assert lens.max() <= MAX_CODE_LEN
        assert kraft_sum(lens) <= 1.0 + 1e-12

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            huffman_code_lengths(np.array([1, -1]))

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            huffman_code_lengths(np.ones((2, 2), dtype=np.int64))


class TestCanonicalCodes:
    def test_prefix_free(self):
        lens = huffman_code_lengths(np.array([50, 30, 10, 7, 2, 1]))
        codes = canonical_codes(lens)
        present = np.nonzero(lens)[0]
        strings = {
            format(int(codes[s]), f"0{int(lens[s])}b") for s in present
        }
        assert len(strings) == present.size
        for a in strings:
            for b in strings:
                if a != b:
                    assert not b.startswith(a)

    def test_empty_lengths(self):
        assert canonical_codes(np.zeros(3, dtype=np.int64)).sum() == 0


class TestCodecRoundtrip:
    def test_empty(self):
        c = HuffmanCodec()
        assert c.decode(c.encode(np.empty(0, dtype=np.int64))).size == 0

    def test_single_value_repeated(self):
        c = HuffmanCodec()
        sym = np.full(1000, 7, dtype=np.int64)
        assert np.array_equal(c.decode(c.encode(sym)), sym)

    def test_one_symbol(self):
        c = HuffmanCodec()
        sym = np.array([42])
        assert np.array_equal(c.decode(c.encode(sym)), sym)

    def test_negative_symbols_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCodec().encode(np.array([-1, 2]))

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCodec().decode(b"XXXX" + b"\x00" * 16)

    def test_gaussian_indices(self):
        rng = np.random.default_rng(2)
        sym = np.abs(rng.normal(0, 5, 100000)).astype(np.int64)
        c = HuffmanCodec()
        blob = c.encode(sym)
        assert np.array_equal(c.decode(blob), sym)
        # must actually compress a low-entropy stream
        assert len(blob) < sym.size * 8 / 2

    def test_block_boundaries(self):
        # sizes around multiples of the block size stress the lockstep decode
        c = HuffmanCodec(block_size=64)
        rng = np.random.default_rng(3)
        for n in (1, 63, 64, 65, 128, 129, 1000):
            sym = rng.integers(0, 10, n)
            assert np.array_equal(c.decode(c.encode(sym)), sym), n

    def test_large_alphabet(self):
        rng = np.random.default_rng(4)
        sym = rng.integers(0, 5000, 20000)
        c = HuffmanCodec()
        assert np.array_equal(c.decode(c.encode(sym)), sym)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            HuffmanCodec(block_size=0)


@given(
    hnp.arrays(
        dtype=np.int64,
        shape=st.integers(0, 2000),
        elements=st.integers(0, 200),
    )
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(sym):
    c = HuffmanCodec(block_size=97)
    assert np.array_equal(c.decode(c.encode(sym)), sym)
