"""Unit + property tests for the canonical length-limited Huffman codec."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.codecs.huffman import (
    MAX_CODE_LEN,
    HuffmanCodec,
    canonical_codes,
    clear_decode_table_cache,
    decode_table_cache_info,
    huffman_code_lengths,
)
from repro.errors import TruncatedStreamError


def kraft_sum(lengths):
    present = lengths[lengths > 0]
    return float(np.sum(2.0 ** (-present)))


class TestCodeLengths:
    def test_empty(self):
        assert huffman_code_lengths(np.zeros(4, dtype=np.int64)).sum() == 0

    def test_single_symbol_gets_one_bit(self):
        lens = huffman_code_lengths(np.array([0, 5, 0]))
        assert lens.tolist() == [0, 1, 0]

    def test_two_equal_symbols(self):
        lens = huffman_code_lengths(np.array([3, 3]))
        assert lens.tolist() == [1, 1]

    def test_kraft_inequality_holds(self):
        rng = np.random.default_rng(1)
        freqs = rng.integers(0, 1000, size=300)
        lens = huffman_code_lengths(freqs)
        assert kraft_sum(lens) <= 1.0 + 1e-12

    def test_skewed_distribution_is_near_entropy(self):
        # geometric-ish distribution: expected code length close to entropy
        freqs = np.array([2 ** (20 - i) for i in range(20)], dtype=np.int64)
        lens = huffman_code_lengths(freqs)
        p = freqs / freqs.sum()
        entropy = -(p * np.log2(p)).sum()
        avg = (p * lens).sum()
        assert avg <= entropy + 1.0  # Huffman is within 1 bit of entropy

    def test_length_limit_enforced(self):
        # Fibonacci-like frequencies force very deep optimal trees
        freqs = np.ones(64, dtype=np.int64)
        a, b = 1, 2
        for i in range(64):
            freqs[i] = a
            a, b = b, a + b
        lens = huffman_code_lengths(freqs)
        assert lens.max() <= MAX_CODE_LEN
        assert kraft_sum(lens) <= 1.0 + 1e-12

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            huffman_code_lengths(np.array([1, -1]))

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            huffman_code_lengths(np.ones((2, 2), dtype=np.int64))


class TestCanonicalCodes:
    def test_prefix_free(self):
        lens = huffman_code_lengths(np.array([50, 30, 10, 7, 2, 1]))
        codes = canonical_codes(lens)
        present = np.nonzero(lens)[0]
        strings = {
            format(int(codes[s]), f"0{int(lens[s])}b") for s in present
        }
        assert len(strings) == present.size
        for a in strings:
            for b in strings:
                if a != b:
                    assert not b.startswith(a)

    def test_empty_lengths(self):
        assert canonical_codes(np.zeros(3, dtype=np.int64)).sum() == 0


class TestCodecRoundtrip:
    def test_empty(self):
        c = HuffmanCodec()
        assert c.decode(c.encode(np.empty(0, dtype=np.int64))).size == 0

    def test_single_value_repeated(self):
        c = HuffmanCodec()
        sym = np.full(1000, 7, dtype=np.int64)
        assert np.array_equal(c.decode(c.encode(sym)), sym)

    def test_one_symbol(self):
        c = HuffmanCodec()
        sym = np.array([42])
        assert np.array_equal(c.decode(c.encode(sym)), sym)

    def test_negative_symbols_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCodec().encode(np.array([-1, 2]))

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCodec().decode(b"XXXX" + b"\x00" * 16)

    def test_gaussian_indices(self):
        rng = np.random.default_rng(2)
        sym = np.abs(rng.normal(0, 5, 100000)).astype(np.int64)
        c = HuffmanCodec()
        blob = c.encode(sym)
        assert np.array_equal(c.decode(blob), sym)
        # must actually compress a low-entropy stream
        assert len(blob) < sym.size * 8 / 2

    def test_block_boundaries(self):
        # sizes around multiples of the block size stress the lockstep decode
        c = HuffmanCodec(block_size=64)
        rng = np.random.default_rng(3)
        for n in (1, 63, 64, 65, 128, 129, 1000):
            sym = rng.integers(0, 10, n)
            assert np.array_equal(c.decode(c.encode(sym)), sym), n

    def test_large_alphabet(self):
        rng = np.random.default_rng(4)
        sym = rng.integers(0, 5000, 20000)
        c = HuffmanCodec()
        assert np.array_equal(c.decode(c.encode(sym)), sym)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            HuffmanCodec(block_size=0)


class TestDecodeEdgeCases:
    def test_single_symbol_stream_max_len_one(self):
        # one-symbol alphabet -> every code is the single 1-bit code, the
        # smallest possible decode table (max_len == 1, two entries)
        c = HuffmanCodec(block_size=32)
        for n in (1, 31, 32, 33, 100):
            sym = np.full(n, 3, dtype=np.int64)
            assert np.array_equal(c.decode(c.encode(sym)), sym), n

    def test_final_block_shorter_than_block_size(self):
        # 2 full blocks + a 20-symbol tail: the tail lane must stop early
        # while the full lanes keep stepping
        c = HuffmanCodec(block_size=50)
        rng = np.random.default_rng(5)
        sym = rng.integers(0, 6, 120).astype(np.int64)
        assert np.array_equal(c.decode(c.encode(sym)), sym)

    def test_last_window_straddles_payload_end(self):
        # craft a stream whose total bit length is not byte-aligned, so the
        # final window gather reads past the payload into the zero pad
        import struct

        c = HuffmanCodec()
        rng = np.random.default_rng(6)
        for attempt in range(16):
            sym = np.concatenate([
                np.zeros(1000, np.int64),
                rng.integers(0, 40, 200 + attempt),
            ])
            blob = c.encode(sym)
            n, block_size, n_present = struct.unpack_from("<QII", blob, 4)
            off = 20 + 5 * n_present
            _, total_bits = struct.unpack_from("<QQ", blob, off)
            if total_bits % 8:
                break
        assert total_bits % 8, "could not build a non-byte-aligned payload"
        assert np.array_equal(c.decode(blob), sym)

    def test_decode_table_cache_shared_across_containers(self):
        # two containers with identical code-length tables (same frequency
        # profile) must share exactly one table build, byte-identical output
        c = HuffmanCodec()
        rng = np.random.default_rng(7)
        a = rng.integers(0, 16, 3000).astype(np.int64)
        b = a[::-1].copy()  # same frequencies -> same canonical table
        blob_a, blob_b = c.encode(a), c.encode(b)
        clear_decode_table_cache()
        out_a = c.decode(blob_a)
        info = decode_table_cache_info()
        assert (info["misses"], info["hits"]) == (1, 0)
        out_b = c.decode(blob_b)
        info = decode_table_cache_info()
        assert (info["misses"], info["hits"]) == (1, 1)  # exactly one build
        assert np.array_equal(out_a, a)
        assert np.array_equal(out_b, b)
        assert out_a.tobytes() == a.tobytes()
        assert out_b.tobytes() == b.tobytes()


class TestDecodeMany:
    def test_matches_decode_per_container(self):
        c = HuffmanCodec(block_size=128)
        rng = np.random.default_rng(8)
        streams = [
            rng.integers(0, hi, n).astype(np.int64)
            for hi, n in ((5, 1000), (300, 257), (2, 1), (7, 500), (1, 90))
        ]
        blobs = [c.encode(s) for s in streams]
        outs = c.decode_many(blobs)
        assert len(outs) == len(streams)
        for s, blob, out in zip(streams, blobs, outs):
            assert np.array_equal(out, s)
            assert np.array_equal(c.decode(blob), out)

    def test_empty_members_keep_positions(self):
        c = HuffmanCodec()
        empty = c.encode(np.empty(0, dtype=np.int64))
        full = c.encode(np.arange(10))
        outs = c.decode_many([empty, full, empty])
        assert outs[0].size == 0 and outs[2].size == 0
        assert np.array_equal(outs[1], np.arange(10))

    def test_empty_batch(self):
        assert HuffmanCodec().decode_many([]) == []

    def test_corrupt_member_raises(self):
        c = HuffmanCodec()
        good = c.encode(np.arange(100))
        with pytest.raises(TruncatedStreamError):
            c.decode_many([good, good[:10]])


@given(
    hnp.arrays(
        dtype=np.int64,
        shape=st.integers(0, 2000),
        elements=st.integers(0, 200),
    )
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(sym):
    c = HuffmanCodec(block_size=97)
    assert np.array_equal(c.decode(c.encode(sym)), sym)


@given(
    st.lists(
        hnp.arrays(
            dtype=np.int64,
            shape=st.integers(0, 300),
            elements=st.integers(0, 60),
        ),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=40, deadline=None)
def test_decode_many_property(streams):
    c = HuffmanCodec(block_size=61)
    blobs = [c.encode(s) for s in streams]
    for s, out in zip(streams, c.decode_many(blobs)):
        assert np.array_equal(out, s)
