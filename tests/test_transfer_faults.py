"""Resilient-transfer tests: retry/backoff convergence, quarantine,
graceful-degradation accounting, and profiler surfacing.

The acceptance bar from the ISSUE: a flaky-link run with 20% injected
failure probability still delivers 100% of slices via retries, and the
pipeline's accounting reconciles exactly with the faults the link injected.
"""
import numpy as np
import pytest

from repro import perf
from repro.errors import TransferFaultError
from repro.testing import FlakyLink
from repro.transfer import (
    RetryPolicy,
    TransferReport,
    run_disk_pipeline,
    transfer_slices,
)

pytestmark = pytest.mark.faults


def _blobs(n=20, size=100):
    return {f"s{i:03d}": bytes([i % 256]) * size for i in range(n)}


def _no_sleep(_):
    return None


class TestRetryConvergence:
    def test_flaky_20pct_delivers_everything(self):
        """20% drop probability: every slice arrives via retries."""
        blobs = _blobs()
        link = FlakyLink(fail_prob=0.2, seed=1)
        report = transfer_slices(blobs, link, sleep=_no_sleep)
        assert sorted(report.delivered) == sorted(blobs)
        assert not report.quarantined
        assert report.verified_bytes == sum(len(b) for b in blobs.values())
        # accounting reconciles with the faults the link actually injected
        assert report.total_attempts == sum(link.attempts.values())
        assert len(report.degraded) == sum(
            1 for n in blobs if link.faults.get(n, 0) > 0
        )

    def test_corrupting_link_is_caught_and_retried(self):
        """Corrupted payloads fail CRC verification and are re-requested."""
        blobs = _blobs()
        link = FlakyLink(fail_prob=0.0, corrupt_prob=0.5, seed=3)
        received: dict[str, bytes] = {}
        report = transfer_slices(blobs, link, sleep=_no_sleep, received=received)
        assert sorted(report.delivered) == sorted(blobs)
        # what landed is bit-identical to what was sent — corruption never leaks
        assert received == blobs
        assert len(report.degraded) == sum(1 for n in link.faults if link.faults[n])

    def test_perfect_link_single_attempt(self):
        report = transfer_slices(_blobs(), lambda name, p: p, sleep=_no_sleep)
        assert not report.degraded and not report.quarantined
        assert all(o.attempts == 1 for o in report.outcomes)


class TestQuarantine:
    def test_dead_link_quarantines_all(self):
        blobs = _blobs(n=5)
        policy = RetryPolicy(max_attempts=4)
        link = FlakyLink(fail_prob=1.0, seed=2)
        report = transfer_slices(blobs, link, policy=policy, sleep=_no_sleep)
        assert sorted(report.quarantined) == sorted(blobs)
        assert not report.delivered
        assert report.verified_bytes == 0
        assert all(o.attempts == policy.max_attempts for o in report.outcomes)
        assert all(o.error for o in report.outcomes)

    def test_attempt_timeout_counts_as_failure(self):
        """A channel that returns bytes too late still fails the attempt."""
        policy = RetryPolicy(max_attempts=2, attempt_timeout_s=0.0)
        report = transfer_slices(
            _blobs(n=3), lambda name, p: p, policy=policy, sleep=_no_sleep
        )
        assert len(report.quarantined) == 3
        assert all("deadline" in o.error for o in report.outcomes)

    def test_summary_accounting(self):
        blobs = _blobs(n=8)
        link = FlakyLink(fail_prob=0.5, seed=5)
        report = transfer_slices(
            blobs, link, policy=RetryPolicy(max_attempts=2), sleep=_no_sleep
        )
        s = report.summary()
        assert s["slices"] == 8
        assert s["delivered"] + s["quarantined"] == 8
        assert s["verified_bytes"] == 100 * s["delivered"]


class TestBackoff:
    def test_exponential_backoff_sequence(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.01, backoff=2.0, max_delay_s=0.05
        )
        sleeps: list[float] = []
        link = FlakyLink(fail_prob=1.0, seed=0)
        transfer_slices({"only": b"x" * 10}, link, policy=policy, sleep=sleeps.append)
        # 5 attempts -> 4 backoff waits: 0.01, 0.02, 0.04, then capped at 0.05
        assert sleeps == [0.01, 0.02, 0.04, 0.05]

    def test_delay_s_is_capped(self):
        policy = RetryPolicy(base_delay_s=0.1, backoff=10.0, max_delay_s=0.5)
        assert policy.delay_s(1) == pytest.approx(0.1)
        assert [policy.delay_s(k) for k in (2, 3, 9)] == [0.5, 0.5, 0.5]

    def test_no_sleep_after_final_attempt(self):
        sleeps: list[float] = []
        link = FlakyLink(fail_prob=1.0, seed=0)
        transfer_slices(
            _blobs(n=2),
            link,
            policy=RetryPolicy(max_attempts=3),
            sleep=sleeps.append,
        )
        assert len(sleeps) == 2 * 2  # (max_attempts - 1) waits per slice


class TestProfilerSurfacing:
    def test_stages_recorded(self):
        prof = perf.PipelineProfiler()
        link = FlakyLink(fail_prob=0.3, seed=4)
        blobs = _blobs()
        with perf.profile(prof):
            report = transfer_slices(blobs, link, sleep=_no_sleep)
        assert {"transfer", "verify", "retry"} <= set(prof.totals)
        assert sorted(report.delivered) == sorted(blobs)

    def test_byte_accounting_matches_report(self):
        prof = perf.PipelineProfiler()
        blobs = _blobs(n=6, size=50)
        with perf.profile(prof):
            report = transfer_slices(blobs, lambda n, p: p, sleep=_no_sleep)
        assert prof.bytes_seen["verify"] == report.verified_bytes == 6 * 50


class TestDiskPipelineIntegration:
    @pytest.fixture()
    def slices(self):
        rng = np.random.default_rng(0)
        return [rng.standard_normal((16, 16)).astype(np.float32) for _ in range(4)]

    def test_flaky_channel_still_delivers(self, tmp_path, slices):
        res = run_disk_pipeline(
            slices,
            tmp_path,
            compressor="sz3",
            error_bound=1e-2,
            channel=FlakyLink(fail_prob=0.2, seed=7),
            sleep=_no_sleep,
        )
        assert res.delivered_slices == len(slices)
        assert res.quarantined_slices == 0
        assert res.verified_bytes > 0
        assert res.max_abs_error <= 1e-2 * (1 + 1e-6)

    def test_dead_channel_degrades_gracefully(self, tmp_path, slices):
        res = run_disk_pipeline(
            slices,
            tmp_path,
            compressor="sz3",
            error_bound=1e-2,
            channel=FlakyLink(fail_prob=1.0, seed=7),
            retry=RetryPolicy(max_attempts=2),
            sleep=_no_sleep,
        )
        assert res.delivered_slices == 0
        assert res.quarantined_slices == len(slices)
        assert len(res.quarantined) == len(slices)
        assert res.verified_bytes == 0

    def test_modelled_path_reports_full_delivery(self, tmp_path, slices):
        res = run_disk_pipeline(
            slices, tmp_path, compressor="sz3", error_bound=1e-2
        )
        assert res.delivered_slices == len(slices)
        assert res.degraded_slices == res.quarantined_slices == 0
        # verified_bytes counts the blob payloads read back (< file size,
        # which also holds the archive magic/index/footer)
        assert 0 < res.verified_bytes < res.archive_bytes


def test_channel_fault_is_typed():
    with pytest.raises(TransferFaultError):
        FlakyLink(fail_prob=1.0, seed=0)("s", b"x")
