"""Tests for distortion/rate metrics and the evaluation harness."""
import numpy as np
import pytest

from repro.compressors import SZ3
from repro.metrics import (
    bitrate,
    compression_ratio,
    evaluate,
    max_abs_error,
    max_rel_error,
    mse,
    nrmse,
    psnr,
)


class TestErrors:
    def test_mse_zero_for_identical(self):
        a = np.arange(10.0)
        assert mse(a, a) == 0.0

    def test_mse_known_value(self):
        a = np.zeros(4)
        b = np.full(4, 2.0)
        assert mse(a, b) == 4.0

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))

    def test_psnr_paper_convention(self):
        # range 10, MSE 1 -> 20*log10(10/1) = 20 dB
        a = np.linspace(0, 10, 1000)
        b = a + 1.0
        assert psnr(a, b) == pytest.approx(20.0, abs=0.01)

    def test_psnr_infinite_for_lossless(self):
        a = np.arange(5.0)
        assert psnr(a, a.copy()) == float("inf")

    def test_max_abs_error(self):
        assert max_abs_error(np.array([0.0, 1.0]), np.array([0.5, 1.0])) == 0.5

    def test_max_rel_error_uses_range(self):
        a = np.array([0.0, 10.0])
        b = np.array([1.0, 10.0])
        assert max_rel_error(a, b) == pytest.approx(0.1)

    def test_nrmse(self):
        a = np.array([0.0, 2.0])
        assert nrmse(a, a + 1.0) == pytest.approx(0.5)


class TestRate:
    def test_compression_ratio(self):
        data = np.zeros(100, dtype=np.float32)
        assert compression_ratio(data, 100) == 4.0

    def test_bitrate_relation(self):
        data = np.zeros(100, dtype=np.float32)
        # bitrate = 32 / CR for f32
        assert bitrate(data, 100) == pytest.approx(32.0 / compression_ratio(data, 100))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            compression_ratio(np.zeros(4), 0)


def test_evaluate_end_to_end(smooth_field):
    res = evaluate(SZ3(1e-3), smooth_field)
    assert res.cr > 1
    assert res.max_abs_error <= 1e-3 * (1 + 1e-9)
    assert res.psnr > 40
    assert res.compress_mbs > 0 and res.decompress_mbs > 0
    assert res.bitrate == pytest.approx(32.0 / res.cr, rel=1e-6)
    row = res.row()
    assert set(row) >= {"compressor", "CR", "PSNR"}


def test_evaluate_label_override(smooth_field):
    res = evaluate(SZ3(1e-2), smooth_field, label="sz3+QP")
    assert res.compressor == "sz3+QP"
