"""Tests for the compressor registry and Table I traits."""
import numpy as np
import pytest

from repro.compressors import (
    COMPRESSORS,
    INTERP_COMPRESSORS,
    available_compressors,
    decompress_any,
    get_compressor,
    traits_table,
)
from repro.core import QPConfig


def test_all_names_registered():
    assert set(available_compressors()) == set(COMPRESSORS)
    assert set(INTERP_COMPRESSORS) <= set(COMPRESSORS)


def test_get_compressor_unknown():
    with pytest.raises(KeyError):
        get_compressor("szip", 1e-3)


@pytest.mark.parametrize("name", COMPRESSORS)
def test_every_compressor_constructs_and_roundtrips(name, field_2d):
    kwargs = {"qp": QPConfig()} if name in INTERP_COMPRESSORS else {}
    comp = get_compressor(name, 1e-3, **kwargs)
    blob = comp.compress(field_2d)
    out = decompress_any(blob)
    assert np.abs(out.astype(np.float64) - field_2d.astype(np.float64)).max() <= 1e-3


def test_traits_table_matches_paper_table1():
    rows = {r["compressor"]: r for r in traits_table()}
    assert set(rows) == {"MGARD", "SZ3", "QOZ", "HPEZ"}
    # Table I claims, row by row
    assert rows["MGARD"]["speed"] == "low"
    assert rows["SZ3"]["speed"] == "high"
    assert rows["HPEZ"]["speed"] == "medium"
    assert rows["HPEZ"]["ratio"] == "high"
    assert rows["MGARD"]["resolution_reduction"] is True
    assert all(
        rows[n]["resolution_reduction"] is False for n in ("SZ3", "QOZ", "HPEZ")
    )
    assert rows["MGARD"]["qoi"] is True and rows["SZ3"]["qoi"] is True
    assert rows["QOZ"]["quality_oriented"] is True


def test_decompress_any_requires_valid_blob():
    with pytest.raises(ValueError):
        decompress_any(b"not a blob at all")
