"""Tests for the utility helpers and the visualization renderer."""
import numpy as np
import pytest

from repro.analysis.visualize import ascii_heatmap, save_index_slice, to_pgm, to_ppm
from repro.utils.blocks import block_grid_shape, iter_blocks, pad_to_multiple
from repro.obs import Stopwatch, throughput_mbs
from repro.utils.validation import check_error_bound, check_ndarray


class TestBlocks:
    def test_grid_shape(self):
        assert block_grid_shape((10, 20), 8) == (2, 3)
        assert block_grid_shape((8,), 8) == (1,)

    def test_iter_blocks_tiles_exactly(self):
        shape = (10, 13)
        counter = np.zeros(shape, dtype=int)
        for sl in iter_blocks(shape, 4):
            counter[sl] += 1
        assert counter.min() == 1 and counter.max() == 1

    def test_edge_blocks_smaller(self):
        blocks = list(iter_blocks((10,), 8))
        assert blocks[0] == (slice(0, 8),)
        assert blocks[1] == (slice(8, 10),)

    def test_pad_to_multiple(self):
        data = np.arange(10.0).reshape(2, 5)
        padded = pad_to_multiple(data, 4)
        assert padded.shape == (4, 8)
        assert np.array_equal(padded[:2, :5], data)
        # edge mode: padding repeats the border
        assert padded[3, 0] == data[1, 0]

    def test_pad_noop_when_aligned(self):
        data = np.zeros((4, 8))
        assert pad_to_multiple(data, 4) is data


class TestTimer:
    def test_stopwatch_sections(self):
        sw = Stopwatch()
        with sw.section("a"):
            pass
        with sw.section("a"):
            pass
        with sw.section("b"):
            pass
        assert set(sw.totals) == {"a", "b"}
        assert sw.total() == pytest.approx(sum(sw.totals.values()))

    def test_throughput(self):
        assert throughput_mbs(2_000_000, 2.0) == pytest.approx(1.0)
        assert throughput_mbs(1, 0.0) == float("inf")


class TestValidation:
    def test_check_ndarray_contiguous(self):
        data = np.asfortranarray(np.ones((4, 4), dtype=np.float32))
        out = check_ndarray(data)
        assert out.flags["C_CONTIGUOUS"]

    def test_check_ndarray_rejects(self):
        with pytest.raises(TypeError):
            check_ndarray(np.ones(3, dtype=np.int32))
        with pytest.raises(ValueError):
            check_ndarray(np.ones((2,) * 5, dtype=np.float32))
        with pytest.raises(ValueError):
            check_ndarray(np.array([np.inf], dtype=np.float32))

    def test_check_error_bound(self):
        assert check_error_bound(1e-3) == 1e-3
        for bad in (0.0, -1.0, float("nan")):
            with pytest.raises(ValueError):
                check_error_bound(bad)


class TestVisualize:
    def test_ppm_header_and_size(self):
        img = to_ppm(np.zeros((5, 7)), -1, 1)
        assert img.startswith(b"P6\n7 5\n255\n")
        assert len(img) == len(b"P6\n7 5\n255\n") + 5 * 7 * 3

    def test_ppm_diverging_colors(self):
        img = to_ppm(np.array([[-1.0, 0.0, 1.0]]), -1, 1)
        pixels = np.frombuffer(img.split(b"255\n", 1)[1], dtype=np.uint8).reshape(1, 3, 3)
        assert tuple(pixels[0, 0]) == (0, 0, 255)      # negative -> blue
        assert tuple(pixels[0, 1]) == (255, 255, 255)  # zero -> white
        assert tuple(pixels[0, 2]) == (255, 0, 0)      # positive -> red

    def test_pgm(self):
        img = to_pgm(np.array([[0.0, 1.0]]), 0, 1, scale=2)
        assert img.startswith(b"P5\n4 2\n255\n")

    def test_scale(self):
        img = to_ppm(np.zeros((2, 2)), -1, 1, scale=3)
        assert b"6 6" in img[:12]

    def test_save_index_slice(self, tmp_path):
        path = save_index_slice(tmp_path / "q.ppm", np.zeros((4, 4), dtype=int))
        assert path.exists()
        assert path.read_bytes().startswith(b"P6")

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            to_ppm(np.zeros(3), -1, 1)
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros((2, 2, 2)), -1, 1)

    def test_ascii_heatmap(self):
        art = ascii_heatmap(np.eye(8) * 4, -4, 4, width=8)
        lines = art.splitlines()
        assert len(lines) == 8
        assert lines[0][0] != " "  # the diagonal is hot
        assert lines[0][-1] == " "


def test_4d_compression_end_to_end():
    """The engine and QP handle 4-D (RTM-style) volumes directly."""
    from repro.compressors import SZ3
    from repro.core import QPConfig
    from repro.datasets import generate

    data = generate("rtm", shape=(6, 16, 16, 12))
    eb = 1e-3 * float(data.max() - data.min())
    comp = SZ3(eb, predictor="interp", qp=QPConfig())
    out = comp.decompress(comp.compress(data))
    assert out.shape == data.shape
    assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= eb * (1 + 1e-9)
