"""Tests for quantization-index characterization tools (Section IV)."""
import numpy as np
import pytest

from repro.core import (
    clustering_stats,
    plane_slice,
    regional_entropy,
    shannon_entropy,
    slice_entropy,
)


class TestShannonEntropy:
    def test_empty(self):
        assert shannon_entropy(np.array([])) == 0.0

    def test_constant(self):
        assert shannon_entropy(np.zeros(100, dtype=int)) == 0.0

    def test_uniform_binary(self):
        v = np.array([0, 1] * 50)
        assert shannon_entropy(v) == pytest.approx(1.0)

    def test_uniform_k_symbols(self):
        v = np.repeat(np.arange(8), 10)
        assert shannon_entropy(v) == pytest.approx(3.0)

    def test_skew_reduces_entropy(self):
        balanced = np.array([0, 1] * 50)
        skewed = np.array([0] * 90 + [1] * 10)
        assert shannon_entropy(skewed) < shannon_entropy(balanced)


class TestPlaneSlice:
    def setup_method(self):
        self.vol = np.arange(4 * 5 * 6).reshape(4, 5, 6)

    def test_xy_slice(self):
        assert np.array_equal(plane_slice(self.vol, "xy", 2), self.vol[2])

    def test_xz_slice(self):
        assert np.array_equal(plane_slice(self.vol, "xz", 3), self.vol[:, 3, :])

    def test_yz_slice(self):
        assert np.array_equal(plane_slice(self.vol, "yz", 1), self.vol[:, :, 1])

    def test_stride(self):
        s = plane_slice(self.vol, "xy", 0, stride=2)
        assert np.array_equal(s, self.vol[0, ::2, ::2])

    def test_bad_plane(self):
        with pytest.raises(ValueError):
            plane_slice(self.vol, "zz", 0)

    def test_bad_ndim(self):
        with pytest.raises(ValueError):
            plane_slice(np.zeros((2, 2)), "xy", 0)


def test_slice_entropy_shape_and_values():
    vol = np.zeros((3, 8, 8), dtype=int)
    vol[1] = np.random.default_rng(0).integers(0, 4, (8, 8))
    ent = slice_entropy(vol, "xy")
    assert ent.shape == (3,)
    assert ent[0] == 0.0 and ent[2] == 0.0 and ent[1] > 0


def test_regional_entropy_window():
    vol = np.zeros((2, 10, 10), dtype=int)
    vol[0, 2:4, 2:4] = np.arange(4).reshape(2, 2)
    full = regional_entropy(vol, "xy", 0, (0, 10), (0, 10))
    window = regional_entropy(vol, "xy", 0, (2, 4), (2, 4))
    assert window > full  # zoom region is locally diverse


def test_clustering_stats_on_clustered_vs_random():
    rng = np.random.default_rng(1)
    clustered = np.sign(np.cumsum(rng.normal(0.2, 1, (32, 32)), axis=1)).astype(int)
    random = rng.integers(-1, 2, (32, 32))
    cs = clustering_stats(clustered)
    rs = clustering_stats(random)
    assert cs.same_sign_neighbour > rs.same_sign_neighbour
    assert 0 <= cs.nonzero_fraction <= 1


def test_clustering_stats_requires_2d():
    with pytest.raises(ValueError):
        clustering_stats(np.zeros(5, dtype=int))
