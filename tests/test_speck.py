"""Tests for the SPECK-style embedded set-partitioning coder."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.codecs.speck import speck_decode, speck_encode
from repro.compressors.sperr import SPERR


class TestSpeckCodec:
    def test_zero_array(self):
        c = np.zeros((8, 8))
        out = speck_decode(speck_encode(c, 0.1))
        assert np.array_equal(out, c)

    def test_single_spike(self):
        c = np.zeros((8, 8))
        c[3, 5] = 7.3
        out = speck_decode(speck_encode(c, 0.01))
        assert abs(out[3, 5] - 7.3) <= 0.01
        assert np.abs(out).sum() == pytest.approx(abs(out[3, 5]))

    def test_accuracy_guarantee(self):
        rng = np.random.default_rng(0)
        c = rng.normal(0, 2, (16, 16, 8))
        thr = 0.05
        out = speck_decode(speck_encode(c, thr))
        assert np.abs(out - c).max() <= thr

    def test_signs_preserved(self):
        c = np.array([[-5.0, 5.0], [0.25, -0.25]])
        out = speck_decode(speck_encode(c, 0.01))
        assert np.sign(out[0, 0]) == -1 and np.sign(out[0, 1]) == 1

    def test_sparse_cheaper_than_dense(self):
        rng = np.random.default_rng(1)
        dense = rng.normal(0, 1, (16, 16))
        sparse = dense * (rng.random((16, 16)) < 0.05)
        assert len(speck_encode(sparse, 0.01)) < len(speck_encode(dense, 0.01))

    def test_non_power_of_two_shapes(self):
        rng = np.random.default_rng(2)
        c = rng.normal(0, 1, (7, 13, 5))
        out = speck_decode(speck_encode(c, 0.02))
        assert np.abs(out - c).max() <= 0.02

    def test_1d(self):
        c = np.sin(np.linspace(0, 6, 33))
        out = speck_decode(speck_encode(c, 1e-3))
        assert np.abs(out - c).max() <= 1e-3

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            speck_encode(np.ones(4), 0.0)

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            speck_decode(b"XXXX" + b"\x00" * 16)

    @given(
        hnp.arrays(np.float64, hnp.array_shapes(min_dims=1, max_dims=3, max_side=9),
                   elements=st.floats(-100, 100)),
        st.floats(1e-3, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_accuracy(self, c, thr):
        out = speck_decode(speck_encode(c, thr))
        assert np.abs(out - c).max() <= thr


class TestSperrSpeckMode:
    def test_roundtrip_bound(self, field_2d):
        eb = 1e-3
        comp = SPERR(eb, coder="speck")
        out = comp.decompress(comp.compress(field_2d))
        assert np.abs(out.astype(np.float64) - field_2d).max() <= eb

    def test_3d(self):
        n = 24
        x, y, z = np.meshgrid(*[np.linspace(0, 1, n)] * 3, indexing="ij")
        data = (np.sin(3 * np.pi * x) * (1 - y) * z).astype(np.float32)
        comp = SPERR(1e-3, coder="speck")
        out = comp.decompress(comp.compress(data))
        assert np.abs(out.astype(np.float64) - data).max() <= 1e-3

    def test_invalid_coder(self):
        with pytest.raises(ValueError):
            SPERR(1e-3, coder="ezw")
