"""ParallelCompressor: shared-memory transport, persistent pool, QP routing.

These exercise the rewritten parallel path: slab payloads travel through
``multiprocessing.shared_memory`` (not the pickle pipe), the worker pool is
reused across calls, decompression writes slabs into one preallocated output
array, and QP is routed by the registry capability flag instead of a
hardcoded base-name list.
"""
import numpy as np
import pytest

import repro
from repro.core.config import QPConfig
from repro.compressors import supports_qp
from repro.compressors.registry import COMPRESSORS
from repro.parallel import ParallelCompressor


@pytest.fixture(scope="module")
def volume():
    return repro.generate("miranda", shape=(40, 32, 32), seed=0)


def _eb(data):
    return 1e-3 * float(data.max() - data.min())


class TestRoundTrips:
    @pytest.mark.parametrize("base", COMPRESSORS)
    def test_all_bases_workers2(self, volume, base):
        eb = _eb(volume)
        comp = ParallelCompressor(base, eb, workers=2)
        try:
            out = comp.decompress(comp.compress(volume))
        finally:
            comp.close()
        assert out.shape == volume.shape
        if base not in ("zfp", "tthresh"):  # fixed-rate/HOSVD bound semantics differ
            assert np.abs(out - volume).max() <= eb * (1 + 1e-6)

    @pytest.mark.parametrize("qp_on", [False, True])
    def test_qp_on_off(self, volume, qp_on):
        eb = _eb(volume)
        kw = {"qp": QPConfig()} if qp_on else {}
        comp = ParallelCompressor("sz3", eb, workers=2, **kw)
        try:
            out = comp.decompress(comp.compress(volume))
        finally:
            comp.close()
        assert np.abs(out - volume).max() <= eb * (1 + 1e-6)

    def test_non_contiguous_input(self, volume):
        eb = _eb(volume)
        nc = volume.transpose(2, 0, 1)
        assert not nc.flags["C_CONTIGUOUS"]
        comp = ParallelCompressor("sz3", eb, workers=2)
        try:
            out = comp.decompress(comp.compress(nc))
        finally:
            comp.close()
        assert out.shape == nc.shape
        assert np.abs(out - nc).max() <= eb * (1 + 1e-6)

    def test_short_axis_fewer_slabs_than_workers(self):
        # longest axis < 8 * workers: slab count clamps but round-trip holds
        data = repro.generate("miranda", shape=(12, 10, 10), seed=3)
        eb = _eb(data)
        comp = ParallelCompressor("sz3", eb, workers=4)
        try:
            out = comp.decompress(comp.compress(data))
        finally:
            comp.close()
        assert np.abs(out - data).max() <= eb * (1 + 1e-6)


class TestSharedMemoryPath:
    def test_parallel_bytes_match_serial(self, volume):
        # the SHM transport must not change what gets compressed: the
        # container from 4 workers equals the serial 4-slab container
        eb = _eb(volume)
        par = ParallelCompressor("sz3", eb, workers=4, n_slabs=4, qp=QPConfig())
        ser = ParallelCompressor("sz3", eb, workers=1, n_slabs=4, qp=QPConfig())
        try:
            assert par.compress(volume) == ser.compress(volume)
        finally:
            par.close()
            ser.close()

    def test_pool_persists_across_calls(self, volume):
        eb = _eb(volume)
        comp = ParallelCompressor("sz3", eb, workers=2)
        try:
            blob1 = comp.compress(volume)
            pool = comp._pool
            assert pool is not None
            blob2 = comp.compress(volume)
            assert comp._pool is pool  # same executor object, not a new one
            assert blob1 == blob2
            comp.decompress(blob1)
            assert comp._pool is pool
        finally:
            comp.close()
        assert comp._pool is None

    def test_pickle_fallback_matches_shm(self, volume, monkeypatch):
        eb = _eb(volume)
        comp = ParallelCompressor("sz3", eb, workers=2, n_slabs=2)
        try:
            via_shm = comp.compress(volume)
            monkeypatch.setattr("repro.parallel._shm", None)
            via_pipe = comp.compress(volume)
            assert via_shm == via_pipe
            out = comp.decompress(via_pipe)
        finally:
            comp.close()
        assert np.abs(out - volume).max() <= eb * (1 + 1e-6)


class TestQPRouting:
    def test_capability_flags(self):
        assert supports_qp("sz3") and supports_qp("qoz")
        assert supports_qp("hpez") and supports_qp("mgard") and supports_qp("sperr")
        assert not supports_qp("zfp")
        assert not supports_qp("tthresh")
        with pytest.raises(KeyError):
            supports_qp("nope")

    @pytest.mark.parametrize("base", ["zfp", "tthresh"])
    def test_qp_on_incapable_base_raises(self, base):
        with pytest.raises(ValueError, match="does not support quantization"):
            ParallelCompressor(base, 1e-3, workers=2, qp=QPConfig())

    @pytest.mark.parametrize("base", ["zfp", "tthresh"])
    def test_disabled_qp_on_incapable_base_ok(self, volume, base):
        comp = ParallelCompressor(base, _eb(volume), workers=1,
                                  qp=QPConfig.disabled())
        out = comp.decompress(comp.compress(volume))
        assert out.shape == volume.shape

    def test_qp_changes_sperr_stream(self, volume):
        # sperr gained the capability flag: QP must actually reach the base
        eb = _eb(volume)
        plain = ParallelCompressor("sperr", eb, workers=1, n_slabs=2)
        qp = ParallelCompressor("sperr", eb, workers=1, n_slabs=2, qp=QPConfig())
        assert plain.compress(volume) != qp.compress(volume)
