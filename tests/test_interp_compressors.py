"""Integration tests for the four interpolation-based compressors, with and
without QP.  The contract under test:

1. the point-wise error bound holds;
2. QP changes the compression ratio but NEVER the decompressed bytes;
3. blobs are self-describing and dispatchable.
"""
import numpy as np
import pytest

from repro.compressors import HPEZ, MGARD, SZ3, CompressionState, QoZ, decompress_any
from repro.core import QPConfig

ALL = [SZ3, QoZ, HPEZ, MGARD]
EB = 1e-3


def maxerr(a, b):
    return float(np.abs(a.astype(np.float64) - b.astype(np.float64)).max())


@pytest.mark.parametrize("cls", ALL)
@pytest.mark.parametrize("with_qp", [False, True])
def test_roundtrip_bound_smooth(cls, with_qp, smooth_field):
    c = cls(EB, qp=QPConfig() if with_qp else None)
    blob = c.compress(smooth_field)
    out = c.decompress(blob)
    assert out.shape == smooth_field.shape
    assert out.dtype == smooth_field.dtype
    assert maxerr(out, smooth_field) <= EB * (1 + 1e-9)


@pytest.mark.parametrize("cls", ALL)
def test_roundtrip_layered(cls, layered_field):
    c = cls(EB, qp=QPConfig())
    out = c.decompress(c.compress(layered_field))
    assert maxerr(out, layered_field) <= EB * (1 + 1e-9)


@pytest.mark.parametrize("cls", ALL)
def test_roundtrip_noisy(cls, noisy_field):
    c = cls(1e-2, qp=QPConfig())
    out = c.decompress(c.compress(noisy_field))
    assert maxerr(out, noisy_field) <= 1e-2 * (1 + 1e-9)


@pytest.mark.parametrize("cls", ALL)
def test_qp_preserves_decompressed_data(cls, smooth_field):
    """The paper's central invariant: QP leaves reconstruction bit-identical."""
    base = cls(EB)
    qp = cls(EB, qp=QPConfig())
    out_base = base.decompress(base.compress(smooth_field))
    out_qp = qp.decompress(qp.compress(smooth_field))
    assert np.array_equal(out_base, out_qp)


def test_qp_improves_cr_on_clustered_data(smooth_field):
    """On smooth data at a tight bound QP must improve (or match) SZ3's CR."""
    eb = 1e-4
    base = SZ3(eb, predictor="interp")
    qp = SZ3(eb, predictor="interp", qp=QPConfig())
    size_base = len(base.compress(smooth_field))
    size_qp = len(qp.compress(smooth_field))
    assert size_qp < size_base


@pytest.mark.parametrize("cls", ALL)
def test_float64_input(cls, smooth_field):
    data = smooth_field.astype(np.float64)
    c = cls(EB)
    out = c.decompress(c.compress(data))
    assert out.dtype == np.float64
    assert maxerr(out, data) <= EB * (1 + 1e-9)


@pytest.mark.parametrize("cls", [SZ3, QoZ, MGARD])
def test_2d_data(cls, field_2d):
    c = cls(EB, qp=QPConfig())
    out = c.decompress(c.compress(field_2d))
    assert maxerr(out, field_2d) <= EB * (1 + 1e-9)


def test_1d_data():
    data = np.sin(np.linspace(0, 20, 500)).astype(np.float32)
    c = SZ3(EB, qp=QPConfig())
    out = c.decompress(c.compress(data))
    assert maxerr(out, data) <= EB * (1 + 1e-9)


@pytest.mark.parametrize("shape", [(7, 9, 11), (33, 5, 17), (16, 16, 16)])
def test_awkward_shapes(shape):
    rng = np.random.default_rng(0)
    data = np.cumsum(rng.normal(0, 0.1, shape), axis=0).astype(np.float32)
    c = SZ3(EB, qp=QPConfig())
    out = c.decompress(c.compress(data))
    assert maxerr(out, data) <= EB * (1 + 1e-9)


def test_sz3_forced_lorenzo(smooth_field):
    c = SZ3(EB, predictor="lorenzo")
    blob = c.compress(smooth_field)
    out = c.decompress(blob)
    assert maxerr(out, smooth_field) <= EB * (1 + 1e-9)


def test_sz3_lorenzo_switch_on_layered(layered_field):
    c = SZ3(1e-5)
    assert c._select_predictor(layered_field) == "lorenzo"


def test_sz3_interp_on_smooth(smooth_field):
    c = SZ3(1e-3)
    assert c._select_predictor(smooth_field) == "interp"


def test_dispatch_decompress_any(smooth_field):
    blob = QoZ(EB).compress(smooth_field)
    out = decompress_any(blob)
    assert maxerr(out, smooth_field) <= EB * (1 + 1e-9)


def test_wrong_compressor_rejected(smooth_field):
    blob = SZ3(EB).compress(smooth_field)
    with pytest.raises(ValueError):
        QoZ(EB).decompress(blob)


def test_state_collection(smooth_field):
    st = CompressionState()
    c = SZ3(EB, predictor="interp", qp=QPConfig())
    c.compress(smooth_field, state=st)
    assert st.index_volume is not None
    assert st.index_volume.shape == smooth_field.shape
    assert "index_volume_qp" in st.extras
    # QP must lower (or keep) the entropy of the index volume
    from repro.core import shannon_entropy

    assert shannon_entropy(st.extras["index_volume_qp"]) <= shannon_entropy(
        st.index_volume
    ) + 1e-9


def test_mgard_resolution_reduction(smooth_field):
    c = MGARD(EB)
    blob = c.compress(smooth_field)
    full = c.decompress(blob)
    half = c.decompress_resolution(blob, level=1)
    assert half.shape == tuple((n + 1) // 2 for n in smooth_field.shape)
    assert np.array_equal(half, full[::2, ::2, ::2])
    quarter = c.decompress_resolution(blob, level=2)
    assert np.array_equal(quarter, full[::4, ::4, ::4])


def test_mgard_resolution_level0_is_full(smooth_field):
    c = MGARD(EB)
    blob = c.compress(smooth_field)
    assert np.array_equal(c.decompress_resolution(blob, 0), c.decompress(blob))


def test_hpez_level_schemes_recorded(layered_field):
    st = CompressionState()
    c = HPEZ(EB)
    c.compress(layered_field, state=st)
    schemes = st.extras["level_schemes"]
    assert len(schemes) >= 1
    assert all("structure" in s for s in schemes.values())


def test_hpez_blockwise_mode(layered_field):
    st = CompressionState()
    c = HPEZ(EB, block_side=24, qp=QPConfig())
    blob = c.compress(layered_field, state=st)
    out = c.decompress(blob)
    assert maxerr(out, layered_field) <= EB * (1 + 1e-9)
    assert len(st.extras["block_choices"]) >= 2


def test_hpez_picks_reversed_order_on_anisotropic_data():
    """SegSalt-like data prefers the x-first order (the paper's Section IV-B
    observation about HPEZ blocks on SegSalt)."""
    from repro.datasets import generate

    data = generate("segsalt", "Pressure2000", shape=(64, 64, 24))
    vr = float(data.max() - data.min())
    st = CompressionState()
    HPEZ(1e-3 * vr).compress(data, state=st)
    schemes = st.extras["level_schemes"]
    assert any(
        s["structure"] == "sequential" and s.get("axis_order")
        for s in schemes.values()
    ) or any(s["structure"] == "multidim" for s in schemes.values())


def test_invalid_inputs():
    with pytest.raises(ValueError):
        SZ3(EB).compress(np.array([np.nan, 1.0]))
    with pytest.raises(TypeError):
        SZ3(EB).compress(np.array([1, 2, 3]))
    with pytest.raises(ValueError):
        SZ3(-1.0)
    with pytest.raises(ValueError):
        SZ3(EB, predictor="magic")


def test_tiny_input():
    data = np.array([1.0, 2.0], dtype=np.float32)
    c = SZ3(EB)
    out = c.decompress(c.compress(data))
    assert maxerr(out, data) <= EB * (1 + 1e-9)


def test_qoz_explicit_alpha_beta(smooth_field):
    c = QoZ(EB, alpha=1.5, beta=2.0)
    out = c.decompress(c.compress(smooth_field))
    assert maxerr(out, smooth_field) <= EB * (1 + 1e-9)


def test_blob_corruption_detected(smooth_field):
    blob = SZ3(EB).compress(smooth_field)
    with pytest.raises(ValueError):
        decompress_any(b"XXXX" + blob[4:])
