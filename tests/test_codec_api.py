"""Tests for the unified compressor API surface (the ``Codec`` protocol).

Every registered compressor and every wrapper must expose the same minimal
surface — ``name``, ``compress(data, *, checksum=False) -> bytes``,
``decompress(blob) -> np.ndarray`` — so callers can hold any of them behind
one type.  ``tools/check_api.py`` is the CI lint enforcing this; these tests
run it in-process and pin the behaviours the protocol promises (checksum
sealing on every implementation, self-describing QoI containers, the mgard
partial-resolution entry point honouring the envelope).
"""
import struct
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.compressors import COMPRESSORS, Codec, get_compressor
from repro.core import QPConfig
from repro.errors import CorruptBlobError
from repro.io.integrity import is_sealed
from repro.modes import PointwiseRelativeCompressor
from repro.parallel import ParallelCompressor
from repro.qoi import QoIPreservingCompressor, SquareQoI
from repro.temporal import TemporalCompressor

TOOLS = Path(__file__).resolve().parents[1] / "tools"


@pytest.fixture(scope="module")
def check_api():
    sys.path.insert(0, str(TOOLS))
    try:
        import check_api
    finally:
        sys.path.remove(str(TOOLS))
    return check_api


@pytest.fixture(scope="module")
def field():
    n = 24
    x, y, z = np.meshgrid(*[np.linspace(0, 1, n)] * 3, indexing="ij")
    return (np.sin(3 * x) * np.cos(2 * y) + z).astype(np.float32)


# -- the lint -----------------------------------------------------------------


def test_every_compressor_satisfies_codec(check_api):
    results = check_api.check_all()
    bad = {name: probs for name, probs in results.items() if probs}
    assert not bad, f"Codec violations: {bad}"
    # the lint actually covered the registry, all four wrappers, and every
    # registered pipeline's stage-chain contract
    assert set(COMPRESSORS) <= set(results)
    assert {"parallel[sz3]", "temporal", "pw_rel", "qoi[sz3]"} <= set(results)
    assert {f"pipeline[{name}]" for name in COMPRESSORS} <= set(results)


def test_lint_catches_nonconforming_shapes(check_api):
    class NoChecksum:
        name = "bad"

        def compress(self, data):  # missing the checksum keyword
            return b""

        def decompress(self, blob):
            return np.zeros(1)

    problems = check_api.check_codec(NoChecksum())
    assert any("checksum" in p for p in problems)

    class Positional:
        name = "bad2"

        def compress(self, data, checksum=False):  # not keyword-only
            return b""

        def decompress(self, blob):
            return np.zeros(1)

    problems = check_api.check_codec(Positional())
    assert any("keyword-only" in p for p in problems)

    class Missing:
        name = "bad3"

    assert check_api.check_codec(Missing())  # fails isinstance outright


def test_runtime_isinstance_check(field):
    comp = get_compressor("sz3", 1e-2)
    assert isinstance(comp, Codec)
    assert isinstance(ParallelCompressor("sz3", 1e-2), Codec)
    assert not isinstance(object(), Codec)


# -- checksum sealing across the surface -------------------------------------


@pytest.mark.parametrize("name", ("sz3", "mgard", "zfp"))
def test_registered_compressor_checksum_roundtrip(name, field):
    comp = get_compressor(name, 1e-2)
    plain = comp.compress(field)
    sealed = comp.compress(field, checksum=True)
    assert not is_sealed(plain) and is_sealed(sealed)
    for blob in (plain, sealed):
        out = comp.decompress(blob)
        assert out.shape == field.shape
        assert np.abs(out.astype(np.float64) - field).max() <= 1e-2 * (1 + 1e-9)


def test_wrapper_checksum_roundtrip(field):
    wrappers = [
        ParallelCompressor("sz3", 1e-2, workers=2, n_slabs=2),
        TemporalCompressor("sz3", 1e-2, keyframe_interval=4),
        PointwiseRelativeCompressor("sz3", 1e-2),
    ]
    positive = field - field.min() + 1.0  # PW_REL needs strictly positive data
    for comp in wrappers:
        data = positive if isinstance(comp, PointwiseRelativeCompressor) else field
        sealed = comp.compress(data, checksum=True)
        assert is_sealed(sealed)
        out = comp.decompress(sealed)
        assert out.shape == data.shape
        # unsealed container still decodes identically
        assert np.array_equal(comp.decompress(comp.compress(data)), out)


def test_compress_rejects_positional_extras(field):
    comp = get_compressor("sz3", 1e-2)
    with pytest.raises(TypeError):
        comp.compress(field, True)  # checksum must be passed by keyword


# -- QoI: self-describing v2 container + retired legacy format ----------------


@pytest.fixture(scope="module")
def qoi_comp():
    return QoIPreservingCompressor("sz3", SquareQoI(), tau=1e-2, block_side=16)


def test_qoi_v2_roundtrip_without_shape(qoi_comp, field):
    blob = qoi_comp.compress(field)
    assert blob[:4] == b"RQO2"
    out = qoi_comp.decompress(blob)  # no shape argument needed
    assert out.shape == field.shape and out.dtype == field.dtype
    assert SquareQoI().error(field, out) <= 1e-2 * (1 + 1e-9)


def test_qoi_v2_checksum_seals_whole_container(qoi_comp, field):
    sealed = qoi_comp.compress(field, checksum=True)
    assert is_sealed(sealed)
    out = qoi_comp.decompress(sealed)
    assert out.shape == field.shape


def test_qoi_v2_shape_argument_deprecated_but_tolerated(qoi_comp, field):
    blob = qoi_comp.compress(field)
    with pytest.warns(DeprecationWarning):
        out = qoi_comp.decompress(blob, shape=field.shape)
    assert out.shape == field.shape
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError):
            qoi_comp.decompress(blob, shape=(1, 2, 3))  # contradicts header


def _as_legacy_rqoi(v2_blob: bytes) -> bytes:
    (hlen,) = struct.unpack_from("<I", v2_blob, 4)
    import json

    header = json.loads(v2_blob[8:8 + hlen].decode())
    body = v2_blob[8 + hlen:]
    return b"RQOI" + struct.pack("<I", header["n_blocks"]) + body


def test_qoi_legacy_container_typed_rejection(qoi_comp, field):
    """The shape-less RQOI format is retired: typed error, migration hint."""
    from repro.errors import CorruptBlobError

    legacy = _as_legacy_rqoi(qoi_comp.compress(field))
    with pytest.raises(CorruptBlobError, match="RQOI.*retired"):
        qoi_comp.decompress(legacy)
    # the shape= escape hatch is gone too — same typed rejection
    with pytest.raises(CorruptBlobError, match="re-compress"):
        qoi_comp.decompress(legacy, shape=field.shape)


def test_qoi_decompress_shape_is_keyword_only(qoi_comp, field):
    blob = qoi_comp.compress(field)
    with pytest.raises(TypeError):
        qoi_comp.decompress(blob, field.shape)  # positional shape retired


# -- mgard partial resolution honours the envelope ----------------------------


def test_mgard_decompress_resolution_unwraps_checksum_envelope(field):
    comp = get_compressor("mgard", 1e-2, qp=QPConfig.disabled())
    sealed = comp.compress(field, checksum=True)
    full = comp.decompress_resolution(sealed, level=0)
    assert np.array_equal(full, comp.decompress(sealed))
    coarse = comp.decompress_resolution(sealed, level=1)
    expect = comp.decompress(sealed)[::2, ::2, ::2]
    assert coarse.shape == expect.shape
    assert np.array_equal(coarse, expect)


def test_mgard_decompress_resolution_rejects_corrupt_sealed_blob(field):
    comp = get_compressor("mgard", 1e-2)
    sealed = bytearray(comp.compress(field, checksum=True))
    sealed[len(sealed) // 2] ^= 0xFF
    with pytest.raises(CorruptBlobError):
        comp.decompress_resolution(bytes(sealed), level=1)


# -- registry decode knobs ----------------------------------------------------


def test_decompress_any_rejects_unknown_knob(field):
    from repro.compressors import decompress_any

    blob = get_compressor("sz3", 1e-2).compress(field)
    with pytest.raises(TypeError):
        decompress_any(blob, workers=3)  # not one of the documented knobs
    out = decompress_any(blob, lossless_backend=None, predictor=None)
    assert out.shape == field.shape


def test_decompress_any_validates_header():
    from repro.compressors import decompress_any

    with pytest.raises(CorruptBlobError):
        decompress_any(b"RPRX" + b"\x00" * 64)
