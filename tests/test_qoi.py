"""Tests for QoI-preserving compression (derived point-wise bounds)."""
import numpy as np
import pytest

from repro.core import QPConfig
from repro.qoi import (
    IsolineQoI,
    LogQoI,
    QoIPreservingCompressor,
    RegionalAverageQoI,
    SquareQoI,
)


@pytest.fixture(scope="module")
def velocity():
    n = 40
    x, y, z = np.meshgrid(*[np.linspace(0, 1, n)] * 3, indexing="ij")
    return (np.sin(4 * np.pi * x) * np.cos(2 * np.pi * y) * (1 + z)).astype(np.float32)


@pytest.fixture(scope="module")
def positive_field(velocity):
    return (np.abs(velocity) + 0.5).astype(np.float32)


class TestBoundDerivation:
    def test_square_bound_is_exact(self):
        qoi = SquareQoI()
        d = np.array([0.0, 1.0, 10.0])
        tau = 0.5
        eb = qoi.pointwise_bound(d, tau)
        # perturbing by exactly the bound must not exceed tau
        worst = np.abs((d + eb) ** 2 - d**2)
        assert (worst <= tau * (1 + 1e-12)).all()
        # and the bound is tight: 1.001x the bound overshoots somewhere
        worst_over = np.abs((d + 1.01 * eb) ** 2 - d**2)
        assert worst_over.max() > tau

    def test_square_bound_larger_near_zero(self):
        qoi = SquareQoI()
        eb = qoi.pointwise_bound(np.array([0.0, 5.0]), 0.1)
        assert eb[0] > eb[1]

    def test_log_bound(self):
        qoi = LogQoI()
        d = np.array([0.5, 1.0, 100.0])
        tau = 0.05
        eb = qoi.pointwise_bound(d, tau)
        assert (np.abs(np.log(d - eb) - np.log(d)) <= tau * (1 + 1e-9)).all()

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LogQoI().pointwise_bound(np.array([-1.0, 2.0]), 0.1)

    def test_isoline_band(self):
        qoi = IsolineQoI(level=1.0)
        eb = qoi.pointwise_bound(np.array([0.0, 0.99, 1.5]), 0.05)
        assert eb[0] == pytest.approx(1.0)   # far from level: big bound
        assert eb[1] == pytest.approx(0.05)  # inside the band: tau
        assert eb[2] == pytest.approx(0.5)

    def test_invalid_tau(self):
        for qoi in (SquareQoI(), LogQoI(), IsolineQoI(0.0), RegionalAverageQoI()):
            with pytest.raises(ValueError):
                qoi.pointwise_bound(np.ones(3), 0.0)


class TestQoIPreservingCompressor:
    def test_square_preserved(self, velocity):
        tau = 1e-3
        comp = QoIPreservingCompressor("sz3", SquareQoI(), tau, block_side=16)
        blob = comp.compress(velocity)
        out = comp.decompress(blob)
        err = np.abs(
            velocity.astype(np.float64) ** 2 - out.astype(np.float64) ** 2
        ).max()
        assert err <= tau * (1 + 1e-9)

    def test_log_preserved(self, positive_field):
        tau = 1e-3
        comp = QoIPreservingCompressor("sz3", LogQoI(), tau, block_side=16)
        out = comp.decompress(comp.compress(positive_field))
        err = np.abs(
            np.log(positive_field.astype(np.float64)) - np.log(out.astype(np.float64))
        ).max()
        assert err <= tau * (1 + 1e-9)

    def test_isoline_preserved(self, velocity):
        qoi = IsolineQoI(level=0.2)
        comp = QoIPreservingCompressor("sz3", qoi, tau=0.02, block_side=16)
        out = comp.decompress(comp.compress(velocity))
        assert qoi.check(velocity, out, 0.02)

    def test_regional_average_preserved(self, velocity):
        qoi = RegionalAverageQoI()
        comp = QoIPreservingCompressor("sz3", qoi, tau=1e-4, block_side=16)
        out = comp.decompress(comp.compress(velocity))
        assert abs(out.astype(np.float64).mean() - velocity.astype(np.float64).mean()) <= 1e-4

    def test_with_qp_enabled(self, velocity):
        tau = 1e-3
        comp = QoIPreservingCompressor(
            "qoz", SquareQoI(), tau, block_side=16, qp=QPConfig()
        )
        out = comp.decompress(comp.compress(velocity))
        err = np.abs(
            velocity.astype(np.float64) ** 2 - out.astype(np.float64) ** 2
        ).max()
        assert err <= tau * (1 + 1e-9)

    def test_adaptive_beats_global_bound(self):
        """Blockwise adaptation must compress better than the global
        worst-case bound when the derived bound varies strongly across
        blocks (the whole point of derived regional bounds)."""
        n = 48
        x, y, z = np.meshgrid(*[np.linspace(0, 1, n)] * 3, indexing="ij")
        # amplitude steps 50x across the z midplane: SquareQoI's bound is
        # ~25x looser in the low-amplitude half of the domain
        amp = np.where(z >= 0.5, 50.0, 1.0)
        data = (amp * np.sin(4 * np.pi * x) * np.cos(2 * np.pi * y)).astype(np.float32)
        tau = 1.0
        qoi = SquareQoI()
        bounds = qoi.pointwise_bound(data, tau)
        assert bounds.max() / bounds.min() > 10  # genuinely varying

        # controlled comparison: identical block structure, adaptive bound
        # per block vs the global worst-case bound in every block — isolates
        # the benefit of the derived regional bounds from block overhead
        adaptive = QoIPreservingCompressor("sz3", qoi, tau, block_side=24)
        size_adaptive = len(adaptive.compress(data))

        class _GlobalBound(SquareQoI):
            def pointwise_bound(self, d, t):
                return np.full(d.shape, float(bounds.min()))

        uniform = QoIPreservingCompressor("sz3", _GlobalBound(), tau, block_side=24)
        size_uniform = len(uniform.compress(data))
        assert size_adaptive < size_uniform

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            QoIPreservingCompressor("sz3", SquareQoI(), 0.0)
        with pytest.raises(ValueError):
            QoIPreservingCompressor("sz3", SquareQoI(), 0.1, block_side=2)

    def test_corrupt_container_rejected(self, velocity):
        comp = QoIPreservingCompressor("sz3", SquareQoI(), 1e-2, block_side=16)
        blob = comp.compress(velocity)
        with pytest.raises(ValueError):
            comp.decompress(b"XXXX" + blob[4:])
