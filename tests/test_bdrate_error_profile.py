"""Tests for BD-rate metrics and error-profile analysis."""
import numpy as np
import pytest

from repro.analysis import bd_psnr, bd_rate, error_profile
from repro.compressors import SZ3
from repro.core import QPConfig


class TestBDRate:
    def test_identical_curves_zero(self):
        rates = [1.0, 2.0, 4.0, 8.0]
        psnrs = [40.0, 50.0, 60.0, 70.0]
        assert bd_rate(rates, psnrs, rates, psnrs) == pytest.approx(0.0, abs=1e-9)
        assert bd_psnr(rates, psnrs, rates, psnrs) == pytest.approx(0.0, abs=1e-9)

    def test_half_rate_curve(self):
        rates = np.array([1.0, 2.0, 4.0, 8.0])
        psnrs = np.array([40.0, 50.0, 60.0, 70.0])
        # same quality at half the bits -> BD-rate = -50%
        assert bd_rate(rates, psnrs, rates / 2, psnrs) == pytest.approx(-50.0, abs=1e-6)

    def test_better_psnr_curve(self):
        rates = np.array([1.0, 2.0, 4.0, 8.0])
        psnrs = np.array([40.0, 50.0, 60.0, 70.0])
        assert bd_psnr(rates, psnrs, rates, psnrs + 3) == pytest.approx(3.0, abs=1e-6)

    def test_no_overlap_rejected(self):
        with pytest.raises(ValueError):
            bd_rate([1, 2], [10, 20], [1, 2], [30, 40])
        with pytest.raises(ValueError):
            bd_psnr([1, 2], [10, 20], [100, 200], [10, 20])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            bd_rate([1], [10], [1, 2], [10, 20])

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            bd_rate([0, 2], [10, 20], [1, 2], [10, 20])

    def test_qp_gives_negative_bdrate(self, smooth_field):
        """QP shifts curves left, so its BD-rate vs the base is negative."""
        rates_b, psnrs_b, rates_q, psnrs_q = [], [], [], []
        for rel in (1e-2, 1e-3, 1e-4):
            eb = rel * float(smooth_field.max() - smooth_field.min())
            b = SZ3(eb, predictor="interp")
            q = SZ3(eb, predictor="interp", qp=QPConfig())
            sb, sq = len(b.compress(smooth_field)), len(q.compress(smooth_field))
            out = b.decompress(b.compress(smooth_field))
            from repro.metrics import psnr

            p = psnr(smooth_field, out)
            rates_b.append(8 * sb / smooth_field.size)
            rates_q.append(8 * sq / smooth_field.size)
            psnrs_b.append(p)
            psnrs_q.append(p)
        assert bd_rate(rates_b, psnrs_b, rates_q, psnrs_q) < 0


class TestErrorProfile:
    def test_uniform_quantization_error_profile(self, smooth_field):
        eb = 1e-3
        comp = SZ3(eb, predictor="interp")
        out = comp.decompress(comp.compress(smooth_field))
        prof = error_profile(smooth_field, out, eb)
        assert abs(prof.mean_bias) < 0.05
        # linear quantization: RMS/eb near 1/sqrt(3)
        assert 0.3 < prof.rms < 0.75
        assert prof.bound_utilization <= 1.0 + 1e-9
        # roughly uniform (far from a delta at zero)
        assert prof.uniformity < 0.6

    def test_zero_error(self):
        d = np.ones((8, 8))
        prof = error_profile(d, d.copy(), 0.1)
        assert prof.rms == 0.0
        assert prof.bound_utilization == 0.0

    def test_structured_error_has_autocorrelation(self):
        rng = np.random.default_rng(0)
        d = rng.normal(0, 1, (64, 64))
        smooth_err = np.cumsum(rng.normal(0, 1e-3, (64, 64)), axis=0)
        smooth_err = np.clip(smooth_err, -0.1, 0.1)
        prof = error_profile(d, d + smooth_err, 0.1)
        white = error_profile(d, d + rng.uniform(-0.1, 0.1, d.shape), 0.1)
        assert prof.lag1_autocorr > white.lag1_autocorr + 0.3

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            error_profile(np.ones(4), np.ones(4), 0.0)
