"""Corruption matrix: every injector × every decode path, typed and bounded.

The contract under test (ISSUE tentpole): feeding corrupted bytes to any
decode path raises a *typed* :class:`repro.errors.ReproError` within the
deadline — never an uncontrolled ``IndexError``/``struct.error``, never a
hang, never a wrong-shaped array.

Two strictness tiers:

* **sealed (v1) compressor blobs** — the CRC envelope catches *everything*:
  all four injectors must produce a typed error, across all 7 compressors
  with QP on and off.
* **codec streams / unsealed blobs** — no checksum, so a bit flip can
  legitimately decode to different-but-well-formed output (e.g. two Huffman
  codes of equal length swapped).  Here the contract is: no untyped
  exception, no deadline overrun, and any silent decode must still be
  well-formed (the matrix's decode callables assert shape/type before
  returning).
"""
import numpy as np
import pytest

from repro.codecs import fixed as fixed_codec
from repro.codecs import huffman, lossless
from repro.compressors import decompress_any, get_compressor, supports_qp
from repro.core.config import AdaptiveConfig, QPConfig
from repro.errors import CorruptBlobError, ReproError, TruncatedStreamError
from repro.testing import INJECTORS, run_corruption_matrix

pytestmark = pytest.mark.faults

ALL_COMPRESSORS = ("mgard", "sz3", "qoz", "hpez", "zfp", "tthresh", "sperr")
#: engine compressors whose quantize stage has the adaptive spec variant —
#: its reserved-index wire format and adaptive header block are extra
#: decode surface, so each gets its own matrix rows
ADAPTIVE_COMPRESSORS = ("mgard", "sz3", "qoz", "hpez")
SEEDS = range(3)
DEADLINE_S = 10.0


def _make_data(seed=0, shape=(14, 12, 10)):
    rng = np.random.default_rng(seed)
    coords = np.meshgrid(*(np.linspace(0, 3, s) for s in shape), indexing="ij")
    return (sum(np.sin(c) for c in coords) + 0.1 * rng.standard_normal(shape)).astype(
        np.float32
    )


def _compressor_configs():
    for name in ALL_COMPRESSORS:
        qp_modes = (False, True) if supports_qp(name) else (False,)
        for qp_on in qp_modes:
            yield name, qp_on, False
    for name in ADAPTIVE_COMPRESSORS:
        yield name, True, True


def _build(name, qp_on, adaptive_on, checksum):
    data = _make_data()
    kwargs = {}
    if supports_qp(name):
        kwargs["qp"] = QPConfig() if qp_on else QPConfig.disabled()
    if adaptive_on:
        kwargs["adaptive"] = AdaptiveConfig(bits=2, threshold=3)
    comp = get_compressor(name, 1e-2, **kwargs)
    return data, comp.compress(data, checksum=checksum)


@pytest.mark.parametrize(
    "name,qp_on,adaptive_on", list(_compressor_configs()), ids=lambda v: str(v)
)
def test_sealed_blobs_all_injectors_typed(name, qp_on, adaptive_on):
    """With the v1 envelope, every injector must yield a typed error."""
    data, sealed = _build(name, qp_on, adaptive_on, checksum=True)

    def decode(blob):
        return decompress_any(blob)

    results = run_corruption_matrix(sealed, decode, seeds=SEEDS, deadline_s=DEADLINE_S)
    bad = [r for r in results if not r.ok]
    assert not bad, [
        f"{r.injector}/seed={r.seed}: {r.outcome} ({r.detail})" for r in bad
    ]
    assert all(r.elapsed_s <= DEADLINE_S for r in results)


@pytest.mark.parametrize(
    "name,qp_on,adaptive_on", list(_compressor_configs()), ids=lambda v: str(v)
)
def test_unsealed_blobs_never_untyped_never_misshapen(name, qp_on, adaptive_on):
    """Without a checksum a flip may silently decode — but any decode that
    returns must produce the declared shape/dtype, and failures stay typed."""
    data, blob = _build(name, qp_on, adaptive_on, checksum=False)

    def decode(b):
        out = decompress_any(b)
        assert out.shape == data.shape, f"wrong shape {out.shape}"
        assert out.dtype == data.dtype
        return out

    results = run_corruption_matrix(blob, decode, seeds=SEEDS, deadline_s=DEADLINE_S)
    untyped = [r for r in results if r.outcome == "untyped"]
    assert not untyped, [
        f"{r.injector}/seed={r.seed}: {r.detail}" for r in untyped
    ]
    assert all(r.elapsed_s <= DEADLINE_S for r in results)
    # truncation and header tampering are always structurally detectable
    for r in results:
        if r.injector in ("truncate", "tamper"):
            assert r.outcome in ("typed", "unchanged"), (
                f"{r.injector}/seed={r.seed}: {r.outcome} ({r.detail})"
            )


def _codec_streams():
    from repro.pipeline.stages import ENTROPY_STAGES, StageContext

    rng = np.random.default_rng(42)
    symbols = rng.integers(0, 30, size=4000).astype(np.int64)
    raw_bytes = rng.integers(0, 256, size=3000, dtype=np.uint8).tobytes()
    compressible = (b"abcd" * 700) + raw_bytes[:200]
    streams = {
        # every registered entropy stage (new wire ids are fuzzed for free)
        f"entropy-{name}": (
            cls().forward(StageContext(), symbols),
            lambda payload, _cls=cls: _cls().inverse(StageContext(), payload),
        )
        for name, cls in sorted(ENTROPY_STAGES.items())
    }
    streams.update({
        "fixed": (
            fixed_codec.encode_fixed(symbols.astype(np.uint64)),
            fixed_codec.decode_fixed,
        ),
        "lossless-zlib": (lossless.compress(compressible, "zlib"), lossless.decompress),
        "lossless-rle": (lossless.compress(b"\x07" * 5000, "rle"), lossless.decompress),
        "lossless-lz77": (lossless.compress(compressible, "lz77"), lossless.decompress),
    })
    return streams


@pytest.mark.parametrize("codec", sorted(_codec_streams()))
def test_codec_streams_never_untyped(codec):
    stream, decode = _codec_streams()[codec]
    results = run_corruption_matrix(stream, decode, seeds=SEEDS, deadline_s=DEADLINE_S)
    untyped = [r for r in results if r.outcome == "untyped"]
    assert not untyped, [
        f"{r.injector}/seed={r.seed}: {r.detail}" for r in untyped
    ]
    assert all(r.elapsed_s <= DEADLINE_S for r in results)


def test_truncated_before_magic_is_truncation_not_corruption():
    """A prefix too short to even judge the 4-byte magic must raise the typed
    truncation error — the magic check only fires once enough bytes exist."""
    blob = huffman.HuffmanCodec().encode(np.arange(50, dtype=np.int64))
    for cut in (0, 1, 3):
        with pytest.raises(TruncatedStreamError):
            huffman.HuffmanCodec().decode(blob[:cut])
    # once the magic is fully present but wrong, it is corruption
    with pytest.raises(CorruptBlobError):
        huffman.HuffmanCodec().decode(b"XXXX" + blob[4:])
    # and a truncated-but-magic-bearing prefix is still truncation
    with pytest.raises(TruncatedStreamError):
        huffman.HuffmanCodec().decode(blob[:12])


def test_matrix_classifies_typed_and_silent():
    """Self-check of the harness: a strict decoder reports typed cells, a
    no-op decoder reports silent ones."""

    def strict(_):
        raise ReproError("always typed")

    payload = bytes(range(64)) * 4
    assert all(
        r.outcome in ("typed", "unchanged")
        for r in run_corruption_matrix(payload, strict, seeds=range(2))
    )
    silent = run_corruption_matrix(payload, lambda b: b, seeds=range(2))
    assert any(r.outcome == "silent" for r in silent)


def test_every_injector_changes_bytes():
    payload = bytes(range(250)) * 3
    for kind in INJECTORS:
        changed = sum(
            INJECTORS[kind](payload, seed=s) != payload for s in range(10)
        )
        assert changed == 10, f"{kind} left bytes unchanged"
