"""Tests for the dual-quantization Lorenzo predictor."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.predictors.lorenzo import lorenzo_decode, lorenzo_encode


@pytest.mark.parametrize("shape", [(50,), (20, 30), (8, 9, 10)])
def test_roundtrip_and_bound(shape):
    rng = np.random.default_rng(0)
    data = rng.normal(0, 3, shape)
    eb = 0.01
    result, recon = lorenzo_encode(data, eb)
    assert np.abs(recon - data).max() <= eb * (1 + 1e-9)
    decoded = lorenzo_decode(result, eb)
    assert np.array_equal(decoded, recon)


def test_constant_data_gives_sparse_indices():
    data = np.full((16, 16), 3.7)
    result, recon = lorenzo_encode(data, 0.1)
    # only the first element carries the level; everything else cancels
    assert np.count_nonzero(result.indices) <= 1
    assert np.abs(recon - data).max() <= 0.1 * (1 + 1e-9)


def test_smooth_data_small_indices():
    x = np.linspace(0, 1, 100)
    data = np.outer(x, x)
    result, _ = lorenzo_encode(data, 1e-3)
    # 2-D Lorenzo on a bilinear surface: residuals stay tiny
    assert np.abs(result.indices[2:, 2:]).max() <= 2


def test_escapes_roundtrip():
    rng = np.random.default_rng(1)
    data = rng.normal(0, 1, (32, 32))
    data[5, 5] = 1e5  # spike forces an escape
    eb = 1e-4
    result, recon = lorenzo_encode(data, eb, radius=256)
    assert result.escapes.size > 0
    assert (result.indices == result.sentinel).sum() == result.escapes.size
    decoded = lorenzo_decode(result, eb)
    assert np.array_equal(decoded, recon)
    assert np.abs(recon - data).max() <= eb * (1 + 1e-9)


def test_invalid_error_bound():
    with pytest.raises(ValueError):
        lorenzo_encode(np.zeros(4), 0.0)
    from repro.predictors.lorenzo import LorenzoResult

    with pytest.raises(ValueError):
        lorenzo_decode(LorenzoResult(np.zeros(4, dtype=np.int64), np.zeros(0), -8), 0.0)


def test_overflow_guard():
    data = np.array([1e30])
    with pytest.raises(ValueError):
        lorenzo_encode(data, 1e-10)


def test_escape_count_mismatch_detected():
    data = np.random.default_rng(2).normal(0, 1, 50)
    result, _ = lorenzo_encode(data, 0.01)
    result.escapes = np.array([1, 2, 3])  # corrupt
    with pytest.raises(ValueError):
        lorenzo_decode(result, 0.01)


@given(
    hnp.arrays(np.float64, hnp.array_shapes(min_dims=1, max_dims=3, max_side=12),
               elements=st.floats(-1e3, 1e3)),
    st.floats(1e-4, 1.0),
)
@settings(max_examples=60, deadline=None)
def test_property_roundtrip(data, eb):
    result, recon = lorenzo_encode(data, eb, radius=64)
    assert np.abs(recon - data).max() <= eb * (1 + 1e-9)
    assert np.array_equal(lorenzo_decode(result, eb), recon)
