"""Tests for the structured observability layer (repro.obs).

Covers the contracts the rest of the codebase leans on: span nesting and
ordering, deterministic fork-pool buffer merges, fixed histogram buckets,
the JSONL exporter round-trip, and the disabled-path no-op guarantee.
"""
import io
import json

import numpy as np
import pytest

from repro import obs
from repro.obs import (
    SECONDS_BUCKETS,
    Observation,
    Tracer,
)
from repro.obs.export import (
    InMemoryExporter,
    JsonlExporter,
    read_jsonl,
    render_report,
)
from repro.obs.metrics import Histogram, MetricsRegistry


# -- tracer: nesting & ordering ----------------------------------------------


def test_span_nesting_records_parent_and_depth():
    t = Tracer()
    with t.span("outer"):
        with t.span("mid"):
            with t.span("inner"):
                pass
        with t.span("mid2"):
            pass
    names = [s.name for s in t.spans]
    assert names == ["outer", "mid", "inner", "mid2"]  # open order
    outer, mid, inner, mid2 = t.spans
    assert (outer.parent, outer.depth) == (-1, 0)
    assert (mid.parent, mid.depth) == (outer.index, 1)
    assert (inner.parent, inner.depth) == (mid.index, 2)
    assert (mid2.parent, mid2.depth) == (outer.index, 1)
    assert all(s.end is not None and s.seconds >= 0 for s in t.spans)
    # children close before (or when) their parent does
    assert inner.end <= mid.end <= outer.end


def test_span_labels_and_late_label():
    t = Tracer()
    with t.span("stage", dim="2d") as s:
        s.label(nbytes=128)
    assert t.spans[0].labels == {"dim": "2d", "nbytes": 128}


def test_mis_nested_exit_does_not_corrupt_stack():
    t = Tracer()
    outer = t.span("outer")
    t.span("leaked")  # entered, never exited (exception path)
    outer.__exit__(None, None, None)  # closing outer pops the leaked span too
    with t.span("next"):
        pass
    assert t.spans[-1].depth == 0 and t.spans[-1].parent == -1


def test_stage_seconds_and_counts_aggregate_by_name():
    t = Tracer()
    for _ in range(3):
        with t.span("a"):
            with t.span("b"):
                pass
    totals, counts = t.stage_seconds(), t.span_counts()
    assert set(totals) == {"a", "b"} and counts == {"a": 3, "b": 3}
    assert totals["a"] >= totals["b"] >= 0


def test_event_attaches_to_open_span():
    t = Tracer()
    with t.span("transfer"):
        t.event("retry", attempt=2)
    assert t.events[0].name == "retry"
    assert t.events[0].parent == t.spans[0].index
    assert t.events[0].labels == {"attempt": 2}


# -- fork-pool buffer merge ---------------------------------------------------


def _worker_payload(tag):
    ob = Observation()
    with obs.observe(ob):
        with obs.span("job", tag=tag):
            with obs.span("stage"):
                pass
        obs.add_bytes("stage", 100)
        obs.metric_count("jobs")
    return ob.to_payload()


def test_merge_payload_is_deterministic_and_nests_under_anchor():
    payloads = [_worker_payload(i) for i in range(3)]

    def merged():
        parent = Observation()
        with obs.observe(parent):
            with obs.span("parallel"):
                for i, p in enumerate(payloads):
                    parent.merge_payload(p, worker=f"w{i}")
        return parent

    a, b = merged(), merged()
    # merged worker spans are identical regardless of when the merge runs
    # (the locally-timed "parallel" anchor span itself naturally differs)
    assert [s.to_dict() for s in a.tracer.spans if s.worker] == [
        s.to_dict() for s in b.tracer.spans if s.worker
    ]
    # worker spans hang under the parallel span, tagged and re-deepened
    jobs = [s for s in a.tracer.spans if s.name == "job"]
    assert [s.worker for s in jobs] == ["w0", "w1", "w2"]
    root = next(s for s in a.tracer.spans if s.name == "parallel")
    assert all(s.parent == root.index and s.depth == 1 for s in jobs)
    stages = [s for s in a.tracer.spans if s.name == "stage"]
    assert all(s.depth == 2 for s in stages)
    # metrics add across workers
    assert a.bytes_seen()["stage"] == 300
    assert a.metrics.counter("jobs").value == 3


def test_merge_payload_remaps_sparse_worker_indices():
    t = Tracer()
    # worker trace whose open root was dropped by to_payload -> sparse indices
    payload = {
        "spans": [
            {"name": "child", "index": 5, "parent": 2, "depth": 1,
             "t0": 0.0, "seconds": 0.5},
            {"name": "orphan", "index": 7, "parent": 99, "depth": 0,
             "t0": 1.0, "seconds": 0.25},
        ],
        "events": [{"name": "ping", "t": 0.1, "parent": 5}],
    }
    with t.span("anchor"):
        t.merge_payload(payload, worker="w0")
    anchor, child, orphan = t.spans
    # unknown parents re-anchor under the open span
    assert child.parent == anchor.index and orphan.parent == anchor.index
    assert t.events[0].parent == child.index  # known parent remapped


def test_parallel_compressor_fork_pool_spans(tmp_path):
    parallel = pytest.importorskip("repro.parallel")
    data = np.linspace(0, 1, 4 * 16 * 16, dtype=np.float32).reshape(4, 16, 16)
    comp = parallel.ParallelCompressor("sz3", 1e-3, workers=2, n_slabs=2)
    ob = Observation()
    with obs.observe(ob):
        blob = comp.compress(data)
        out = comp.decompress(blob)
    assert np.abs(out - data).max() <= 1e-3 * (1 + 1e-9)
    workers = {s.worker for s in ob.tracer.spans if s.worker}
    assert workers == {"w0", "w1"}
    roots = {s.name for s in ob.tracer.spans if s.depth == 0}
    assert roots == {"parallel.compress", "parallel.decompress"}
    # worker-side compress spans survived the pool, nested under the root
    # (decompress may legitimately run in-process on single-core machines)
    croot = next(s for s in ob.tracer.spans if s.name == "parallel.compress")
    jobs = [s for s in ob.tracer.spans
            if s.worker is not None and s.name == "compress"]
    assert len(jobs) == 2
    assert all(s.parent == croot.index and s.depth == 1 for s in jobs)
    # decode stages were recorded under the decompress root either way
    droot = next(s for s in ob.tracer.spans if s.name == "parallel.decompress")
    by_index = {s.index: s for s in ob.tracer.spans}

    def under(s, root):
        while s.parent != -1:
            s = by_index[s.parent]
            if s is root:
                return True
        return False

    decode = {s.name for s in ob.tracer.spans if under(s, droot)}
    assert "huffman" in decode


# -- metrics ------------------------------------------------------------------


def test_histogram_buckets_are_fixed_and_stable():
    h = Histogram((1.0, 10.0, 100.0))
    for v in (0.5, 5.0, 50.0, 500.0, 5.0):
        h.observe(v)
    assert h.to_dict() == {
        "le": [1.0, 10.0, 100.0],
        "counts": [1, 2, 1],
        "overflow": 1,
        "sum": 560.5,
        "count": 5,
    }
    # same workload -> byte-identical snapshot
    h2 = Histogram((1.0, 10.0, 100.0))
    for v in (0.5, 5.0, 50.0, 500.0, 5.0):
        h2.observe(v)
    assert h2.to_dict() == h.to_dict()


def test_histogram_rejects_unsorted_buckets_and_bucket_mismatch():
    with pytest.raises(ValueError):
        Histogram((3.0, 1.0))
    reg = MetricsRegistry()
    reg.histogram("h", (1.0, 2.0))
    with pytest.raises(ValueError):
        reg.histogram("h", (1.0, 3.0))


def test_registry_keys_by_labels_and_rejects_kind_clash():
    reg = MetricsRegistry()
    reg.counter("n", stage="a").inc(2)
    reg.counter("n", stage="b").inc(3)
    assert reg.counter("n", stage="a").value == 2
    snap = reg.snapshot()
    assert snap["n{stage=a}"]["value"] == 2 and snap["n{stage=b}"]["value"] == 3
    with pytest.raises(TypeError):
        reg.gauge("n", stage="a")


def test_span_close_feeds_span_histogram():
    ob = Observation()
    with obs.observe(ob):
        with obs.span("x"):
            pass
        with obs.span("x"):
            pass
    snap = ob.metrics.snapshot()
    assert snap["span.seconds{span=x}"]["count"] == 2
    assert snap["span.seconds{span=x}"]["le"] == list(SECONDS_BUCKETS)


# -- exporters ----------------------------------------------------------------


def _sample_observation():
    ob = Observation()
    with obs.observe(ob):
        with obs.span("compress", base="sz3"):
            with obs.span("huffman"):
                pass
            obs.event("checkpoint", k=1)
        obs.add_bytes("compress", 4096)
        obs.metric_count("attempts", 3)
    return ob


def test_jsonl_round_trip_preserves_content(tmp_path):
    ob = _sample_observation()
    path = tmp_path / "trace.jsonl"
    n = JsonlExporter(str(path)).export(ob, run="t1")
    text = path.read_text()
    assert n == len(text.splitlines())
    for line in text.splitlines():  # every line is standalone JSON
        json.loads(line)
    back = read_jsonl(str(path))
    assert back["meta"]["version"] == 1 and back["meta"]["run"] == "t1"
    assert back["spans"] == [s.to_dict() for s in ob.tracer.spans]
    assert back["events"] == [e.to_dict() for e in ob.tracer.events]
    snap = ob.metrics.snapshot()
    assert set(back["metrics"]) == set(snap)
    for key, entry in snap.items():
        assert back["metrics"][key] == entry


def test_jsonl_export_to_stream_appends():
    ob = _sample_observation()
    buf = io.StringIO()
    JsonlExporter(buf).export(ob)
    JsonlExporter(buf).export(ob)
    back = read_jsonl(io.StringIO(buf.getvalue()))
    # two appended exports -> doubled spans, merged metric keys
    assert len(back["spans"]) == 2 * len(ob.tracer.spans)


def test_in_memory_exporter_snapshots():
    ob = _sample_observation()
    sink = InMemoryExporter()
    snap = sink.export(ob)
    assert sink.snapshots == [snap]
    assert {s["name"] for s in snap["spans"]} == {"compress", "huffman"}
    assert "stage.bytes{stage=compress}" in snap["metrics"]


def test_render_report_mentions_stages_and_metrics():
    text = render_report(_sample_observation(), title="unit")
    assert "== unit ==" in text
    assert "compress" in text and "huffman" in text
    assert "stage.bytes{stage=compress}" in text
    assert "checkpoint" in text


# -- activation & the disabled path ------------------------------------------


def test_hooks_are_noops_when_disabled():
    assert obs.current() is None
    handle = obs.span("anything", k=1)
    with handle:
        pass
    assert handle is obs.span("other")  # shared singleton, no allocation
    obs.event("e")
    obs.add_bytes("s", 10)
    obs.metric_count("c")
    obs.metric_seconds("h", 0.1)
    ob = Observation()
    with obs.observe(ob):
        pass
    assert not ob.tracer.spans and len(ob.metrics) == 0


def test_observe_is_reentrant():
    outer, inner = Observation(), Observation()
    with obs.observe(outer):
        with obs.span("a"):
            pass
        with obs.observe(inner):
            with obs.span("b"):
                pass
        with obs.span("c"):
            pass
    assert obs.current() is None
    assert [s.name for s in outer.tracer.spans] == ["a", "c"]
    assert [s.name for s in inner.tracer.spans] == ["b"]


def test_observation_never_changes_compressed_bytes():
    from repro.compressors import get_compressor

    data = np.linspace(0, 1, 24 ** 3, dtype=np.float32).reshape(24, 24, 24)
    comp = get_compressor("sz3", 1e-3)
    plain = comp.compress(data)
    with obs.observe(Observation()):
        observed = comp.compress(data)
    assert observed == plain


def test_stage_report_shape():
    ob = _sample_observation()
    rep = ob.stage_report(nbytes=4096)
    assert {"stages", "total_s", "span_count"} <= set(rep)
    assert rep["span_count"] == 2
    assert rep["stages"]["compress"]["bytes"] == 4096
    assert "seconds" in rep["stages"]["huffman"]
