"""Shared fixtures: small synthetic fields covering the regimes the paper
exercises (smooth, layered/discontinuous, noisy)."""
import numpy as np
import pytest


@pytest.fixture(scope="session")
def smooth_field():
    n = 48
    x, y, z = np.meshgrid(*[np.linspace(0, 1, n)] * 3, indexing="ij")
    return (
        np.sin(6 * np.pi * x) * np.cos(4 * np.pi * y) * np.exp(-((z - 0.5) ** 2) * 8)
    ).astype(np.float32)


@pytest.fixture(scope="session")
def layered_field():
    n = 48
    rng = np.random.default_rng(7)
    layers = np.cumsum(rng.uniform(0.05, 0.3, 12))
    vals = rng.uniform(1.5, 4.5, 13)
    depth = np.linspace(0, 1, n)
    field = vals[np.searchsorted(layers, depth)][:, None, None] * np.ones((n, n, n))
    x, y = np.meshgrid(np.linspace(0, 1, n), np.linspace(0, 1, n), indexing="ij")
    field = field + (0.3 * np.sin(2 * np.pi * x) * y)[None, :, :]
    return field.astype(np.float32)


@pytest.fixture(scope="session")
def noisy_field(smooth_field):
    rng = np.random.default_rng(3)
    return (smooth_field + 0.05 * rng.normal(0, 1, smooth_field.shape)).astype(
        np.float32
    )


@pytest.fixture()
def tuner_rng():
    """Deterministic RNG for the sampling auto-tuner's block jitter.

    Function-scoped on purpose: every test that samples tuner blocks starts
    from the same stream, so tuner decisions are reproducible run to run
    and across test-selection order."""
    return np.random.default_rng(2024)


@pytest.fixture(scope="session")
def field_2d():
    n = 64
    x, y = np.meshgrid(np.linspace(0, 1, n), np.linspace(0, 1, n), indexing="ij")
    return (np.sin(5 * np.pi * x) * np.cos(3 * np.pi * y)).astype(np.float32)
