"""Tests for array I/O and the compressed archive container."""
import numpy as np
import pytest

from repro.io import Archive, infer_dtype, load_array, parse_dims, save_array


class TestArrays:
    def test_npy_roundtrip(self, tmp_path):
        data = np.random.default_rng(0).normal(0, 1, (4, 5)).astype(np.float32)
        path = tmp_path / "a.npy"
        save_array(path, data)
        assert np.array_equal(load_array(path), data)

    def test_raw_f32_roundtrip(self, tmp_path):
        data = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        path = tmp_path / "field_2x3x4.f32"
        save_array(path, data)
        out = load_array(path)
        assert out.shape == (2, 3, 4)
        assert out.dtype == np.float32
        assert np.array_equal(out, data)

    def test_raw_f64(self, tmp_path):
        data = np.linspace(0, 1, 10)
        path = tmp_path / "x.f64"
        save_array(path, data)
        out = load_array(path, shape=(10,))
        assert out.dtype == np.float64
        assert np.allclose(out, data)

    def test_explicit_shape_mismatch(self, tmp_path):
        path = tmp_path / "x.f32"
        save_array(path, np.zeros(10, dtype=np.float32))
        with pytest.raises(ValueError):
            load_array(path, shape=(3, 3))

    def test_infer_dtype(self):
        assert infer_dtype("a.f32") == np.float32
        assert infer_dtype("a.F64") == np.float64
        with pytest.raises(ValueError):
            infer_dtype("a.bin")

    def test_parse_dims(self):
        assert parse_dims("CLOUD_100x500x500.f32") == (100, 500, 500)
        assert parse_dims("pressure_256x384x384.dat") == (256, 384, 384)
        assert parse_dims("noshape.f32") is None


class TestArchive:
    def test_create_empty(self, tmp_path):
        arch = Archive.create(tmp_path / "a.rarc")
        assert arch.names() == []

    def test_append_and_read(self, tmp_path):
        arch = Archive.create(tmp_path / "a.rarc")
        arch.append("u", b"payload-u")
        arch.append("v", b"payload-v-longer")
        assert arch.names() == ["u", "v"]
        assert arch.read("u") == b"payload-u"
        assert arch.read("v") == b"payload-v-longer"
        assert arch.sizes() == {"u": 9, "v": 16}

    def test_append_many(self, tmp_path):
        arch = Archive.create(tmp_path / "a.rarc")
        blobs = {f"slice{i:03d}": bytes([i]) * (i + 1) for i in range(20)}
        arch.append_many(blobs)
        for name, blob in blobs.items():
            assert arch.read(name) == blob

    def test_duplicate_rejected(self, tmp_path):
        arch = Archive.create(tmp_path / "a.rarc")
        arch.append("u", b"x")
        with pytest.raises(KeyError):
            arch.append("u", b"y")

    def test_missing_entry(self, tmp_path):
        arch = Archive.create(tmp_path / "a.rarc")
        with pytest.raises(KeyError):
            arch.read("ghost")

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"garbage data here")
        with pytest.raises(ValueError):
            Archive(path).names()

    def test_end_to_end_with_compressor(self, tmp_path, smooth_field):
        from repro.compressors import SZ3, decompress_any

        arch = Archive.create(tmp_path / "fields.rarc")
        comp = SZ3(1e-3)
        for i in range(3):
            arch.append(f"slab{i}", comp.compress(smooth_field[i * 8:(i + 1) * 8]))
        for i in range(3):
            out = decompress_any(arch.read(f"slab{i}"))
            ref = smooth_field[i * 8:(i + 1) * 8]
            assert np.abs(out.astype(np.float64) - ref).max() <= 1e-3
