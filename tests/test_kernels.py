"""Kernel backend registry: selection rules and cross-backend bit-identity.

The registry (:mod:`repro.kernels`) lets the hot loops resolve a compiled
implementation at runtime; correctness demands that every backend of every
stage is bit-identical to the numpy reference.  These tests pin the
resolution rules (explicit name > per-stage env > global env > auto), the
graceful-fallback contract for unknown/unavailable backends, and — for all
seven compressors, QP on and off — that forcing each registered backend
produces byte-identical blobs.  When numba is importable the forced-numba
runs genuinely exercise the compiled kernels; when it is not, they exercise
the fallback path instead, so the suite passes either way.
"""
import hashlib
import warnings

import numpy as np
import pytest

import repro
from repro import kernels, obs
from repro.core.config import QPConfig
from repro.compressors import COMPRESSORS, get_compressor, supports_qp

from tests.test_golden_identity import GOLDEN


BACKENDS = ("numpy", "numba")


# -- registry resolution rules ------------------------------------------------


def test_all_stages_registered():
    assert set(kernels.kernel_stages()) == {
        "adaptive_quantize", "huffman", "interp", "lorenzo", "qp"
    }
    for stage in kernels.kernel_stages():
        assert "numpy" in kernels.registered_backends(stage)
        assert "numpy" in kernels.available_backends(stage)


def test_explicit_name_wins(monkeypatch):
    monkeypatch.setenv(kernels.ENV_GLOBAL, "no-such-backend-env")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        assert kernels.select_backend("huffman", "numpy").name == "numpy"


def test_env_override_global(monkeypatch):
    monkeypatch.setenv(kernels.ENV_GLOBAL, "numpy")
    assert kernels.select_backend("qp").name == "numpy"


def test_env_override_per_stage_beats_global(monkeypatch):
    monkeypatch.setenv(kernels.ENV_GLOBAL, "no-such-backend-global")
    monkeypatch.setenv(f"{kernels.ENV_GLOBAL}_LORENZO", "numpy")
    # the per-stage variable resolves cleanly; other stages fall back
    assert kernels.select_backend("lorenzo").name == "numpy"


def test_auto_resolves_available(monkeypatch):
    monkeypatch.delenv(kernels.ENV_GLOBAL, raising=False)
    for stage in kernels.kernel_stages():
        b = kernels.select_backend(stage)
        assert b.available
        if not kernels.numba_available():
            assert b.name == "numpy"


def test_unknown_backend_falls_back_with_warning_and_counter():
    ob = obs.Observation()
    with obs.observe(ob):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            b = kernels.select_backend("huffman", "definitely-not-a-backend")
    assert b.name == "numpy"
    assert any("falling back" in str(w.message) for w in caught)
    snap = ob.metrics.snapshot()
    assert any(k.startswith("kernel.fallback") for k in snap)


def test_numba_request_without_numba_degrades_to_numpy():
    if kernels.numba_available():
        pytest.skip("numba importable: the request resolves for real")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for stage in kernels.kernel_stages():
            assert kernels.select_backend(stage, "numba").name == "numpy"


def test_active_backends_maps_every_stage():
    active = kernels.active_backends()
    assert set(active) == set(kernels.kernel_stages())
    assert all(isinstance(v, str) for v in active.values())


def test_unknown_stage_raises():
    with pytest.raises(KeyError):
        kernels.select_backend("no-such-stage")


# -- cross-backend bit-identity ----------------------------------------------


@pytest.fixture(scope="module")
def field3d():
    return repro.generate("miranda", shape=(20, 18, 16), seed=3)


def _blob(name, data, qp_on, backend, monkeypatch):
    monkeypatch.setenv(kernels.ENV_GLOBAL, backend)
    eb = 1e-3 * float(data.max() - data.min())
    kw = {"qp": QPConfig()} if qp_on else {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        comp = get_compressor(name, eb, **kw)
        blob = comp.compress(data)
        out = comp.decompress(blob)
    assert np.abs(out - data).max() <= eb * (1 + 1e-6)
    return blob


@pytest.mark.parametrize("qp_on", [False, True], ids=["qp=off", "qp=on"])
@pytest.mark.parametrize("name", sorted(COMPRESSORS))
def test_backends_bit_identical_all_compressors(name, qp_on, field3d, monkeypatch):
    if qp_on and not supports_qp(name):
        pytest.skip(f"{name} has no qp stage")
    blobs = {b: _blob(name, field3d, qp_on, b, monkeypatch) for b in BACKENDS}
    assert blobs["numba"] == blobs["numpy"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_golden_digests_hold_under_forced_backend(backend, monkeypatch):
    monkeypatch.setenv(kernels.ENV_GLOBAL, backend)
    data = repro.generate("miranda", shape=(24, 20, 22), seed=0)
    eb = 1e-3 * float(data.max() - data.min())
    for base in ("sz3", "qoz", "hpez", "mgard"):
        for qp_on in (False, True):
            kw = {"qp": QPConfig()} if qp_on else {}
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                blob = get_compressor(base, eb, **kw).compress(data)
            key = f"miranda-24x20x22/{base}/qp={'on' if qp_on else 'off'}"
            assert hashlib.sha256(blob).hexdigest() == GOLDEN[key], (
                f"{key} changed bytes under backend={backend}"
            )


@pytest.mark.parametrize("backend", BACKENDS)
def test_decode_fixture_roundtrip_under_backend(backend, field3d, monkeypatch):
    # encode with the default backend, decode with each forced backend:
    # the wire format must be backend-agnostic in both directions
    monkeypatch.delenv(kernels.ENV_GLOBAL, raising=False)
    eb = 1e-3 * float(field3d.max() - field3d.min())
    comp = get_compressor("sz3", eb, qp=QPConfig())
    blob = comp.compress(field3d)
    ref = comp.decompress(blob)
    monkeypatch.setenv(kernels.ENV_GLOBAL, backend)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        out = comp.decompress(blob)
    np.testing.assert_array_equal(out, ref)


# -- per-kernel equality (direct op-level, exercises numba when present) ------


def _backend_pairs(stage):
    names = kernels.available_backends(stage)
    return [n for n in names if n != "numpy"]


def test_lorenzo_ops_match_numpy():
    rng = np.random.default_rng(11)
    t = rng.integers(-500, 500, size=(9, 8, 7)).astype(np.int64)
    ref_f = kernels.backend("lorenzo", "numpy").ops["forward_diff"](t)
    ref_i = kernels.backend("lorenzo", "numpy").ops["inverse_cumsum"](ref_f.copy())
    for name in _backend_pairs("lorenzo"):
        b = kernels.backend("lorenzo", name)
        np.testing.assert_array_equal(b.ops["forward_diff"](t), ref_f)
        np.testing.assert_array_equal(b.ops["inverse_cumsum"](ref_f.copy()), ref_i)


@pytest.mark.parametrize("method", ["linear", "cubic"])
def test_interp_fill_matches_numpy(method):
    from repro.predictors.interpolation import predict_midpoints

    rng = np.random.default_rng(12)
    known = rng.standard_normal((9, 30)).astype(np.float32)
    ref = predict_midpoints(known, 9, method, backend="numpy")
    for name in _backend_pairs("interp"):
        got = predict_midpoints(known, 9, method, backend=name)
        np.testing.assert_array_equal(got, ref)


@pytest.mark.parametrize("cond", ["I", "II", "III", "IV"])
def test_qp_inverse_matches_numpy(cond):
    from repro.core.config import QPConfig
    from repro.core.qp import qp_forward, qp_inverse

    rng = np.random.default_rng(13)
    q = rng.integers(-40, 40, size=(17, 13)).astype(np.int64)
    cfg = QPConfig(condition=cond)
    fwd = qp_forward(q, -99, cfg, 1)
    ref = qp_inverse(fwd.copy(), -99, cfg, 1, backend="numpy")
    np.testing.assert_array_equal(ref, q)
    for name in _backend_pairs("qp"):
        got = qp_inverse(fwd.copy(), -99, cfg, 1, backend=name)
        np.testing.assert_array_equal(got, ref)


def test_huffman_codec_matches_numpy_across_backends():
    from repro.codecs.huffman import HuffmanCodec

    rng = np.random.default_rng(14)
    symbols = rng.integers(0, 300, size=20000).astype(np.int64)
    ref_blob = HuffmanCodec(backend="numpy").encode(symbols)
    ref_out = HuffmanCodec(backend="numpy").decode(ref_blob)
    np.testing.assert_array_equal(ref_out, symbols)
    for name in _backend_pairs("huffman"):
        assert HuffmanCodec(backend=name).encode(symbols) == ref_blob
        np.testing.assert_array_equal(
            HuffmanCodec(backend=name).decode(ref_blob), symbols
        )


# -- observability ------------------------------------------------------------


def test_huffman_table_cache_counters_surface_in_obs():
    from repro.codecs.huffman import HuffmanCodec, clear_decode_table_cache

    clear_decode_table_cache()
    symbols = np.arange(100, dtype=np.int64) % 17
    blob = HuffmanCodec().encode(symbols)
    ob = obs.Observation()
    with obs.observe(ob):
        HuffmanCodec().decode(blob)   # miss: cold table
        HuffmanCodec().decode(blob)   # hit: memoized table
    snap = ob.metrics.snapshot()
    assert snap["huffman.table_cache{result=miss}"]["value"] == 1
    assert snap["huffman.table_cache{result=hit}"]["value"] == 1
