"""Tests for the 1-D interpolation kernels."""
import numpy as np
import pytest

from repro.predictors.interpolation import predict_midpoints


def test_linear_midpoints_1d():
    known = np.array([0.0, 2.0, 4.0])
    pred = predict_midpoints(known, 2, "linear")
    assert pred.tolist() == [1.0, 3.0]


def test_linear_trailing_boundary_copies_left():
    known = np.array([0.0, 2.0])
    pred = predict_midpoints(known, 2, "linear")
    assert pred.tolist() == [1.0, 2.0]


def test_linear_exact_on_linear_data():
    x = np.arange(0, 33, 2, dtype=np.float64)  # straight line samples
    pred = predict_midpoints(x, x.size - 1, "linear")
    expected = np.arange(1, 32, 2, dtype=np.float64)
    assert np.allclose(pred, expected)


def test_cubic_exact_on_cubic_polynomial():
    t = np.arange(0, 20, dtype=np.float64)
    f = 0.5 * t**3 - 2 * t**2 + t - 3
    known = f[::1]
    # midpoints of consecutive integers: predict f at k+0.5 via 4-point kernel
    pred = predict_midpoints(known, known.size - 1, "cubic")
    th = np.arange(0.5, 19, 1.0)
    exact = 0.5 * th**3 - 2 * th**2 + th - 3
    # interior points are exact for cubics; boundaries are linear fallback
    assert np.allclose(pred[1:-1], exact[1:-1], atol=1e-9)


def test_cubic_falls_back_to_linear_for_tiny_grids():
    known = np.array([0.0, 1.0, 4.0])
    lin = predict_midpoints(known, 2, "linear")
    cub = predict_midpoints(known, 2, "cubic")
    assert np.allclose(lin, cub)


def test_multidimensional_broadcast():
    known = np.arange(12, dtype=np.float64).reshape(4, 3)
    pred = predict_midpoints(known, 3, "linear")
    assert pred.shape == (3, 3)
    assert np.allclose(pred, (known[:-1] + known[1:]) / 2)


def test_invalid_target_count():
    with pytest.raises(ValueError):
        predict_midpoints(np.zeros(4), 2)


def test_invalid_method():
    with pytest.raises(ValueError):
        predict_midpoints(np.zeros(4), 3, "spline")


def test_cubic_matches_sz3_weights():
    # interior weights must be exactly (-1, 9, 9, -1)/16
    known = np.zeros(6)
    known[1] = 1.0
    pred = predict_midpoints(known, 5, "cubic")
    # target 1 (between known[1], known[2]) sees known[0..3] -> weight 9/16
    assert pred[1] == pytest.approx(9 / 16)
    # target 2 (between known[2], known[3]) sees known[1..4] -> weight -1/16
    assert pred[2] == pytest.approx(-1 / 16)
