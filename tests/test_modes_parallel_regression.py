"""Tests for PW_REL mode, the parallel block compressor, and the SZ2-style
regression predictor."""
import numpy as np
import pytest

from repro.compressors import SZ3
from repro.core import QPConfig
from repro.modes import PointwiseRelativeCompressor, relative_bound
from repro.parallel import ParallelCompressor
from repro.predictors.regression import fit_plane, plane_prediction


class TestRegressionPredictor:
    def test_fit_exact_on_plane(self):
        i, j = np.meshgrid(np.arange(6.0), np.arange(6.0), indexing="ij")
        block = 3.0 + 2.0 * (i - 2.5) - 0.5 * (j - 2.5)
        coeffs = fit_plane(block)
        pred = plane_prediction(block.shape, coeffs)
        assert np.allclose(pred, block, atol=1e-5)

    def test_fit_constant(self):
        block = np.full((4, 4, 4), 7.25)
        coeffs = fit_plane(block)
        assert coeffs[0] == pytest.approx(7.25)
        assert np.allclose(coeffs[1:], 0.0, atol=1e-7)

    def test_sz3_regression_roundtrip(self, smooth_field):
        eb = 1e-3
        comp = SZ3(eb, predictor="regression")
        out = comp.decompress(comp.compress(smooth_field))
        assert np.abs(out.astype(np.float64) - smooth_field).max() <= eb * (1 + 1e-9)

    def test_regression_worse_than_interp_on_smooth(self, smooth_field):
        """The paper's premise: interpolation superseded regression."""
        eb = 1e-3
        s_reg = len(SZ3(eb, predictor="regression").compress(smooth_field))
        s_int = len(SZ3(eb, predictor="interp").compress(smooth_field))
        assert s_int < s_reg

    def test_regression_state_collection(self, smooth_field):
        from repro.compressors import CompressionState

        st = CompressionState()
        SZ3(1e-2, predictor="regression").compress(smooth_field, state=st)
        assert st.extras["predictor"] == "regression"
        assert st.index_volume.shape == smooth_field.shape


class TestPWRelMode:
    def test_relative_bound_helper(self):
        data = np.array([0.0, 10.0])
        assert relative_bound(data, 1e-3) == pytest.approx(0.01)
        with pytest.raises(ValueError):
            relative_bound(data, 0)

    def test_pointwise_relative_bound_holds(self):
        rng = np.random.default_rng(0)
        # values spanning four orders of magnitude
        data = np.exp(rng.uniform(0, 9, (24, 24, 24))).astype(np.float64)
        rel = 1e-3
        comp = PointwiseRelativeCompressor("sz3", rel, qp=QPConfig())
        blob = comp.compress(data)
        out = PointwiseRelativeCompressor.decompress(blob)
        rel_err = np.abs(out - data) / np.abs(data)
        assert rel_err.max() <= rel * (1 + 1e-6)

    def test_rejects_nonpositive(self):
        comp = PointwiseRelativeCompressor("sz3", 1e-3)
        with pytest.raises(ValueError):
            comp.compress(np.array([1.0, -2.0, 3.0]))
        with pytest.raises(ValueError):
            PointwiseRelativeCompressor("sz3", 0.0)

    def test_non_pwrel_blob_rejected(self, smooth_field):
        blob = SZ3(1e-3).compress(smooth_field)
        with pytest.raises(ValueError):
            PointwiseRelativeCompressor.decompress(blob)


class TestParallelCompressor:
    def test_roundtrip_serial_workers(self, smooth_field):
        comp = ParallelCompressor("sz3", 1e-3, workers=1, n_slabs=3,
                                  predictor="interp")
        out = comp.decompress(comp.compress(smooth_field))
        assert np.abs(out.astype(np.float64) - smooth_field).max() <= 1e-3 * (1 + 1e-9)

    def test_roundtrip_multiprocess(self, smooth_field):
        comp = ParallelCompressor("sz3", 1e-3, workers=2, n_slabs=2,
                                  qp=QPConfig(), predictor="interp")
        out = comp.decompress(comp.compress(smooth_field))
        assert np.abs(out.astype(np.float64) - smooth_field).max() <= 1e-3 * (1 + 1e-9)

    def test_slab_count_respects_minimum(self):
        comp = ParallelCompressor("sz3", 1e-3, workers=8, n_slabs=64)
        data = np.sin(np.linspace(0, 6, 40 * 9 * 9)).reshape(40, 9, 9).astype(np.float32)
        out = comp.decompress(comp.compress(data))
        assert out.shape == data.shape

    def test_deterministic_bytes_across_worker_counts(self, smooth_field):
        a = ParallelCompressor("sz3", 1e-3, workers=1, n_slabs=2, predictor="interp")
        b = ParallelCompressor("sz3", 1e-3, workers=2, n_slabs=2, predictor="interp")
        assert a.compress(smooth_field) == b.compress(smooth_field)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ParallelCompressor("sz3", 1e-3, workers=0)

    def test_slab_huffman_block_default_and_override(self, smooth_field):
        from repro.parallel import SLAB_HUFFMAN_BLOCK

        # slab containers default to the small decode-friendly block …
        comp = ParallelCompressor("sz3", 1e-3, workers=1, n_slabs=2)
        assert comp.kwargs["huffman_block_size"] == SLAB_HUFFMAN_BLOCK
        # … an explicit value (including None = codec default) wins …
        plain = ParallelCompressor(
            "sz3", 1e-3, workers=1, n_slabs=2, huffman_block_size=None
        )
        assert plain.kwargs["huffman_block_size"] is None
        # … the choice changes the bytes but not the reconstruction
        a, b = comp.compress(smooth_field), plain.compress(smooth_field)
        assert a != b
        out_a, out_b = comp.decompress(a), plain.decompress(b)
        for out in (out_a, out_b):
            assert np.abs(out.astype(np.float64) - smooth_field).max() <= 1e-3 * (
                1 + 1e-9
            )

    def test_sz3_huffman_block_size_validated(self):
        with pytest.raises(ValueError):
            SZ3(1e-3, huffman_block_size=0)

    def test_corrupt_container(self, smooth_field):
        comp = ParallelCompressor("sz3", 1e-3, workers=1, n_slabs=2)
        blob = comp.compress(smooth_field)
        with pytest.raises(ValueError):
            comp.decompress(b"XXXX" + blob[4:])
