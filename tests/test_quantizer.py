"""Tests for the linear-scaling quantizer."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quantize import LinearQuantizer


def test_invalid_params():
    with pytest.raises(ValueError):
        LinearQuantizer(0.0)
    with pytest.raises(ValueError):
        LinearQuantizer(-1.0)
    with pytest.raises(ValueError):
        LinearQuantizer(1.0, radius=1)


def test_exact_prediction_gives_zero_index():
    q = LinearQuantizer(0.1)
    values = np.array([1.0, 2.0, 3.0])
    res = q.quantize(values, values.copy())
    assert res.indices.tolist() == [0, 0, 0]
    assert np.array_equal(res.decoded, values)
    assert res.literals.size == 0


def test_error_bound_enforced():
    rng = np.random.default_rng(0)
    values = rng.normal(0, 10, (20, 20))
    preds = values + rng.normal(0, 1, values.shape)
    q = LinearQuantizer(0.05)
    res = q.quantize(values, preds)
    assert np.abs(res.decoded - values).max() <= 0.05 + 1e-12


def test_unpredictable_points_stored_exactly():
    q = LinearQuantizer(1e-6, radius=4)
    values = np.array([0.0, 100.0, 0.5])  # 100.0 and 0.5 blow past radius*2eb
    preds = np.zeros(3)
    res = q.quantize(values, preds)
    assert res.indices[1] == q.sentinel
    assert res.indices[2] == q.sentinel
    assert res.decoded[1] == 100.0
    assert res.decoded[2] == 0.5
    assert res.literals.tolist() == [100.0, 0.5]


def test_dequantize_roundtrip():
    rng = np.random.default_rng(1)
    values = rng.normal(0, 5, (8, 9)).astype(np.float32)
    preds = values + rng.normal(0, 2, values.shape).astype(np.float32)
    q = LinearQuantizer(0.01, radius=64)
    res = q.quantize(values, preds)
    recon = q.dequantize(res.indices, preds, res.literals)
    assert np.array_equal(recon, res.decoded)


def test_dequantize_literal_mismatch_raises():
    q = LinearQuantizer(0.1, radius=4)
    idx = np.array([q.sentinel, 0])
    with pytest.raises(ValueError):
        q.dequantize(idx, np.zeros(2), np.empty(0))


def test_decoded_matches_decompressor_view():
    """decoded values are what a decompressor reproduces — integer index math."""
    q = LinearQuantizer(0.25)
    values = np.array([1.3])
    preds = np.array([1.0])
    res = q.quantize(values, preds)
    assert res.indices[0] == 1  # round(0.3/0.5) = 1
    assert res.decoded[0] == pytest.approx(1.5)


@given(
    hnp.arrays(np.float64, st.integers(1, 200), elements=st.floats(-1e6, 1e6)),
    st.floats(1e-6, 1e2),
)
@settings(max_examples=80, deadline=None)
def test_property_bound_and_roundtrip(values, eb):
    q = LinearQuantizer(eb, radius=1024)
    preds = np.zeros_like(values)
    res = q.quantize(values, preds)
    assert np.abs(res.decoded - values).max() <= eb
    recon = q.dequantize(res.indices, preds, res.literals)
    assert np.array_equal(recon, res.decoded)
