"""Tests for the command-line interface."""
import json

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def npy_field(tmp_path, field_2d):
    path = tmp_path / "field.npy"
    np.save(path, field_2d)
    return path


def test_compress_decompress_roundtrip(tmp_path, npy_field, field_2d, capsys):
    blob = tmp_path / "field.rz"
    out = tmp_path / "out.npy"
    assert main(["compress", str(npy_field), str(blob), "--eb", "1e-3"]) == 0
    assert "CR" in capsys.readouterr().out
    assert main(["decompress", str(blob), str(out)]) == 0
    recon = np.load(out)
    assert recon.shape == field_2d.shape
    assert np.abs(recon.astype(np.float64) - field_2d).max() <= 1e-3


def test_compress_with_qp_flags(tmp_path, npy_field, field_2d):
    blob = tmp_path / "f.rz"
    rc = main([
        "compress", str(npy_field), str(blob), "--eb", "1e-3",
        "--compressor", "qoz", "--qp", "--qp-condition", "II",
        "--qp-max-level", "3",
    ])
    assert rc == 0
    out = tmp_path / "o.npy"
    main(["decompress", str(blob), str(out)])
    assert np.abs(np.load(out).astype(np.float64) - field_2d).max() <= 1e-3


def test_relative_bound(tmp_path, npy_field, field_2d):
    blob = tmp_path / "f.rz"
    main(["compress", str(npy_field), str(blob), "--eb", "1e-3", "--rel"])
    out = tmp_path / "o.npy"
    main(["decompress", str(blob), str(out)])
    eb = 1e-3 * float(field_2d.max() - field_2d.min())
    assert np.abs(np.load(out).astype(np.float64) - field_2d).max() <= eb


def test_info_dumps_header(tmp_path, npy_field, capsys):
    blob = tmp_path / "f.rz"
    main(["compress", str(npy_field), str(blob), "--eb", "1e-3"])
    capsys.readouterr()  # drain the compress report
    assert main(["info", str(blob)]) == 0
    header = json.loads(capsys.readouterr().out)
    assert header["compressor"] == "sz3"
    assert "section_sizes" in header


def test_dataset_generation(tmp_path, capsys):
    out = tmp_path / "mini.npy"
    rc = main(["dataset", "miranda", "pressure", "-o", str(out),
               "--shape", "16,24,24", "--seed", "3"])
    assert rc == 0
    data = np.load(out)
    assert data.shape == (16, 24, 24)


def test_evaluate_command(capsys):
    rc = main(["evaluate", "-d", "s3d", "-f", "pressure", "-c", "zfp",
               "--eb", "1e-3", "--rel"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "PSNR" in out and "CR" in out


def test_characterize_command(capsys):
    rc = main(["characterize", "-d", "miranda", "-f", "velocityx",
               "--eb", "1e-3", "--rel"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "H(Q)" in out


def test_sweep_command(capsys):
    rc = main(["sweep", "-d", "s3d", "-f", "pressure", "-c", "sz3",
               "--bounds", "1e-2,1e-3", "--qp"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "gain %" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["explode"])


def test_missing_required_arg():
    with pytest.raises(SystemExit):
        main(["compress", "a.npy", "b.rz"])  # --eb missing


def test_archive_and_extract(tmp_path, capsys):
    arch = tmp_path / "ds.rarc"
    rc = main(["archive", "segsalt", "-o", str(arch), "--eb", "1e-3", "--rel",
               "--shape", "24,24,12", "--qp"])
    assert rc == 0
    assert "CR" in capsys.readouterr().out

    rc = main(["extract", str(arch), "list"])
    assert rc == 0
    listed = capsys.readouterr().out
    assert "Pressure2000" in listed

    out = tmp_path / "p.npy"
    rc = main(["extract", str(arch), "Pressure2000", "-o", str(out)])
    assert rc == 0
    data = np.load(out)
    assert data.shape == (24, 24, 12)
