"""Gap-filling tests: edge cases uncovered by the main suites."""
import numpy as np
import pytest

from repro.compressors import HPEZ, MGARD, SZ3, QoZ
from repro.compressors.qoz import tune_level_eb
from repro.compressors.sperr import SPERR
from repro.core import QPConfig


class TestMGARDResolutionEdges:
    def test_level_beyond_hierarchy(self, smooth_field):
        comp = MGARD(1e-3)
        blob = comp.compress(smooth_field)
        from repro.utils.levels import num_levels

        levels = num_levels(smooth_field.shape)
        coarse = comp.decompress_resolution(blob, levels)
        s = 1 << levels
        expected = tuple(-(-n // s) for n in smooth_field.shape)
        assert coarse.shape == expected

    def test_resolution_with_qp(self, smooth_field):
        comp = MGARD(1e-3, qp=QPConfig())
        blob = comp.compress(smooth_field)
        half = comp.decompress_resolution(blob, 1)
        full = comp.decompress(blob)
        assert np.array_equal(half, full[::2, ::2, ::2])

    def test_rejects_foreign_blob(self, smooth_field):
        blob = SZ3(1e-3).compress(smooth_field)
        with pytest.raises(ValueError):
            MGARD(1e-3).decompress_resolution(blob, 1)


class TestQoZTuner:
    def test_explicit_passthrough(self, smooth_field):
        assert tune_level_eb(smooth_field, 1e-3, 4, alpha=1.5, beta=2.0) == (1.5, 2.0)

    def test_auto_returns_candidate(self, smooth_field):
        a, b = tune_level_eb(smooth_field, 1e-3, 5)
        assert a in (1.0, 1.25, 1.5, 2.0)
        assert b in (1.5, 2.0, 3.0, 4.0)

    def test_partial_auto(self, smooth_field):
        a, b = tune_level_eb(smooth_field, 1e-3, 5, alpha=1.25, beta="auto")
        assert a == 1.25


class TestSperrQP2D:
    def test_sperr_qp_on_2d(self, field_2d):
        eb = 1e-3
        base = SPERR(eb)
        plus = SPERR(eb, qp=QPConfig())
        out_b = base.decompress(base.compress(field_2d))
        out_p = plus.decompress(plus.compress(field_2d))
        assert np.array_equal(out_b, out_p)
        assert np.abs(out_b.astype(np.float64) - field_2d).max() <= eb


class TestHPEZEdges:
    def test_hpez_2d_data(self, field_2d):
        comp = HPEZ(1e-3, qp=QPConfig())
        out = comp.decompress(comp.compress(field_2d))
        assert np.abs(out.astype(np.float64) - field_2d).max() <= 1e-3 * (1 + 1e-9)

    def test_hpez_tiny_block_side(self, smooth_field):
        comp = HPEZ(1e-2, block_side=16)
        out = comp.decompress(comp.compress(smooth_field))
        assert np.abs(out.astype(np.float64) - smooth_field).max() <= 1e-2 * (1 + 1e-9)


class TestExtremeInputs:
    def test_constant_field(self):
        data = np.full((20, 20, 20), 3.25, dtype=np.float32)
        for cls in (SZ3, QoZ, MGARD):
            comp = cls(1e-4, qp=QPConfig())
            blob = comp.compress(data)
            out = comp.decompress(blob)
            assert np.abs(out - data).max() <= 1e-4
            # constants compress extremely well
            assert len(blob) < data.nbytes / 50

    def test_large_dynamic_range(self):
        rng = np.random.default_rng(0)
        data = (rng.normal(0, 1, (16, 16, 16)) * 1e20).astype(np.float64)
        eb = 1e15
        comp = SZ3(eb, predictor="interp")
        out = comp.decompress(comp.compress(data))
        assert np.abs(out - data).max() <= eb

    def test_tiny_values(self):
        data = (np.random.default_rng(1).normal(0, 1, (16, 16)) * 1e-20).astype(np.float64)
        eb = 1e-25
        comp = SZ3(eb, predictor="interp")
        out = comp.decompress(comp.compress(data))
        assert np.abs(out - data).max() <= eb

    def test_very_loose_bound_collapses(self, smooth_field):
        comp = SZ3(100.0, predictor="interp")
        blob = comp.compress(smooth_field)
        out = comp.decompress(blob)
        assert np.abs(out.astype(np.float64) - smooth_field).max() <= 100.0
        assert len(blob) < smooth_field.nbytes / 100

    def test_single_voxel_axis(self):
        data = np.sin(np.linspace(0, 6, 64)).astype(np.float32).reshape(1, 64, 1)
        comp = SZ3(1e-3, qp=QPConfig())
        out = comp.decompress(comp.compress(data))
        assert np.abs(out.astype(np.float64) - data).max() <= 1e-3 * (1 + 1e-9)
