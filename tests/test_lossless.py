"""Unit + property tests for the lossless byte backends."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.lossless import BACKENDS, compress, decompress


ALL = list(BACKENDS)


@pytest.mark.parametrize("backend", ALL)
def test_empty(backend):
    assert decompress(compress(b"", backend)) == b""


@pytest.mark.parametrize("backend", ALL)
def test_short(backend):
    for data in (b"a", b"ab", b"abc", b"\x00\x01"):
        assert decompress(compress(data, backend)) == data


@pytest.mark.parametrize("backend", ALL)
def test_runs(backend):
    data = b"\x00" * 1000 + b"abc" + b"\xff" * 300
    blob = compress(data, backend)
    assert decompress(blob) == data
    if backend in ("zlib", "rle", "lz77"):
        assert len(blob) < len(data)


@pytest.mark.parametrize("backend", ALL)
def test_repetitive_structure(backend):
    data = b"the quick brown fox " * 200
    blob = compress(data, backend)
    assert decompress(blob) == data
    if backend in ("zlib", "lz77"):
        assert len(blob) < len(data) // 2


@pytest.mark.parametrize("backend", ALL)
def test_incompressible_falls_back_to_raw(backend):
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, 5000, dtype=np.uint8).tobytes()
    blob = compress(data, backend)
    assert decompress(blob) == data
    # raw fallback caps expansion at the 9-byte frame header
    assert len(blob) <= len(data) + 9


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        compress(b"x", "snappy")


def test_corrupt_backend_id_rejected():
    blob = bytearray(compress(b"hello world", "zlib"))
    blob[0] = 99
    with pytest.raises(ValueError):
        decompress(bytes(blob))


def test_size_mismatch_detected():
    import struct

    payload = compress(b"hello", "raw")
    # tamper with the recorded original size
    bad = payload[:1] + struct.pack("<Q", 99) + payload[9:]
    with pytest.raises(ValueError):
        decompress(bad)


def test_lz77_overlapping_match():
    # "aaaa..." forces dist=1 overlapping copies
    data = b"a" * 500 + b"bcd" + b"a" * 500
    assert decompress(compress(data, "lz77")) == data


@given(st.binary(max_size=3000))
@settings(max_examples=40, deadline=None)
def test_roundtrip_property_all_backends(data):
    for backend in ALL:
        assert decompress(compress(data, backend)) == data
