"""Archive v1: integrity-checked entries, journaled appends, torn-write
recovery, and v0 back-compat.

``Archive.append`` rewrites the tail (index + footer) in place, so a crash
mid-append used to leave an unreadable file.  These tests drive the
``_crash_point`` fault hooks through every window of the append and assert
the journal either rolls the file back to its pre-append state or confirms
the completed append — never leaves it corrupt.
"""
import json
import struct
import zlib

import numpy as np
import pytest

from repro.errors import CorruptArchiveError, IntegrityError
from repro.io import Archive
from repro.io.container import _FOOT_V0, _MAGIC, _SimulatedCrash

pytestmark = pytest.mark.faults


def _crc(b):
    return zlib.crc32(b) & 0xFFFFFFFF


@pytest.fixture()
def arch(tmp_path):
    a = Archive.create(tmp_path / "t.rarc")
    a.append("base", b"A" * 64)
    return a


class TestV1Format:
    def test_version_and_checksums(self, arch):
        assert arch.version == 1
        assert arch.checksums() == {"base": _crc(b"A" * 64)}

    def test_read_verifies_crc(self, arch):
        raw = bytearray(arch.path.read_bytes())
        off = 4  # first payload byte ('base' is the only entry)
        raw[off + 10] ^= 0x01  # flip a payload bit
        arch.path.write_bytes(bytes(raw))
        # the index CRC still matches (payload bytes aren't covered by it),
        # but the per-entry CRC catches the flip
        with pytest.raises(IntegrityError):
            arch.read("base")
        assert arch.read("base", verify=False) == bytes(raw[off:off + 64])
        assert arch.verify_all() == {"base": False}

    def test_footer_tamper_detected(self, arch):
        raw = bytearray(arch.path.read_bytes())
        raw[-10] ^= 0x01  # inside the index CRC / offset fields
        arch.path.write_bytes(bytes(raw))
        with pytest.raises(CorruptArchiveError):
            arch.names()

    def test_duplicate_append_rejected(self, arch):
        with pytest.raises(KeyError):
            arch.append("base", b"again")

    def test_append_many_and_total_roundtrip(self, arch):
        blobs = {f"s{i}": bytes([i]) * (10 + i) for i in range(5)}
        arch.append_many(blobs)
        assert set(arch.names()) == {"base", *blobs}
        for name, blob in blobs.items():
            assert arch.read(name) == blob
        assert arch.verify_all() == {n: True for n in arch.names()}


class TestTornWriteRecovery:
    @pytest.mark.parametrize(
        "crash_point", ["after_journal", "after_payload", "after_index"]
    )
    def test_crash_rolls_back_or_completes(self, arch, crash_point):
        before = arch.path.read_bytes()
        with pytest.raises(_SimulatedCrash):
            arch.append("new", b"B" * 128, _crash_point=crash_point)
        assert arch.journal_path.exists()
        status = arch.recover()
        assert status in ("clean", "restored")
        assert not arch.journal_path.exists()
        # the archive is readable and 'base' survived intact either way
        assert arch.read("base") == b"A" * 64
        if status == "restored":
            assert arch.path.read_bytes() == before
            assert arch.names() == ["base"]
        # and the interrupted append can simply be replayed
        if "new" not in arch.names():
            arch.append("new", b"B" * 128)
        assert arch.read("new") == b"B" * 128

    def test_read_auto_recovers(self, arch):
        with pytest.raises(_SimulatedCrash):
            arch.append("new", b"B" * 500, _crash_point="after_payload")
        # no explicit recover(): the next read resolves the journal itself
        assert arch.names() == ["base"]
        assert arch.read("base") == b"A" * 64
        assert not arch.journal_path.exists()

    def test_recover_clean_when_append_completed(self, arch):
        # journal left behind *after* the footer was published (crash in the
        # unlink window): recover must keep the completed append
        arch.append("new", b"B" * 32)
        arch._write_journal(arch._index_offset())
        assert arch.recover() == "clean"
        assert set(arch.names()) == {"base", "new"}

    def test_torn_journal_discarded(self, arch):
        arch.journal_path.write_bytes(b"RJNL" + b"\x01" * 10)  # torn mid-write
        assert arch.recover() == "discarded"
        assert arch.read("base") == b"A" * 64

    def test_recover_without_journal_is_clean(self, arch):
        assert arch.recover() == "clean"


class TestV0BackCompat:
    def _write_v0(self, path, entries):
        payload = b"".join(entries.values())
        index = {}
        off = 4
        for name, blob in entries.items():
            index[name] = [off, len(blob)]
            off += len(blob)
        raw = json.dumps(index).encode()
        body = _MAGIC + payload + raw + struct.pack("<Q", off) + _FOOT_V0
        path.write_bytes(body)

    def test_v0_archive_still_reads(self, tmp_path):
        path = tmp_path / "legacy.rarc"
        entries = {"a": b"xx" * 10, "b": b"yo" * 33}
        self._write_v0(path, entries)
        arch = Archive(path)
        assert arch.version == 0
        assert set(arch.names()) == set(entries)
        for name, blob in entries.items():
            assert arch.read(name) == blob
        assert arch.checksums() == {"a": None, "b": None}
        assert arch.verify_all() == {"a": True, "b": True}

    def test_append_upgrades_v0_to_v1(self, tmp_path):
        path = tmp_path / "legacy.rarc"
        self._write_v0(path, {"a": b"xx" * 10})
        arch = Archive(path)
        arch.append("b", b"new" * 5)
        assert arch.version == 1
        assert arch.read("a") == b"xx" * 10
        assert arch.checksums()["b"] == _crc(b"new" * 5)
        assert arch.checksums()["a"] is None  # legacy entry stays unhashed


def test_entry_bounds_validated(tmp_path):
    arch = Archive.create(tmp_path / "t.rarc")
    arch.append("a", b"Z" * 16)
    # forge an index entry that points outside the payload region
    raw = bytearray(arch.path.read_bytes())
    idx_off = struct.unpack("<Q", raw[-16:-8])[0]
    index = json.loads(raw[idx_off:-16].decode())
    index["entries"]["evil"] = [4, 10**6, 0]
    new_idx = json.dumps(index, separators=(",", ":")).encode()
    body = raw[:idx_off] + new_idx + struct.pack("<QI", idx_off, _crc(new_idx)) + b"RAR1"
    arch.path.write_bytes(bytes(body))
    with pytest.raises(CorruptArchiveError):
        arch.read("evil")
