"""Tests for the rate-distortion sweep harness and table rendering."""
import numpy as np
import pytest

from repro.analysis import format_table, max_cr_gain, qp_comparison, rd_sweep
from repro.core import QPConfig


@pytest.fixture(scope="module")
def small_field():
    n = 40
    x, y, z = np.meshgrid(*[np.linspace(0, 1, n)] * 3, indexing="ij")
    return (np.sin(5 * np.pi * x) * np.cos(3 * np.pi * y) * (1 - z)).astype(np.float32)


def test_rd_sweep_monotone(small_field):
    results = rd_sweep("sz3", small_field, rel_bounds=(1e-2, 1e-3, 1e-4))
    crs = [r.cr for r in results]
    psnrs = [r.psnr for r in results]
    # tighter bounds -> lower CR, higher PSNR
    assert crs[0] > crs[-1]
    assert psnrs[0] < psnrs[-1]


def test_qp_comparison_same_psnr(small_field):
    points = qp_comparison("sz3", small_field, rel_bounds=(1e-3, 1e-4),
                           predictor="interp")
    for p in points:
        assert p.base.psnr == pytest.approx(p.qp.psnr, abs=1e-9)
        assert p.qp.max_abs_error == p.base.max_abs_error


def test_max_cr_gain_annotation(small_field):
    points = qp_comparison("sz3", small_field, rel_bounds=(1e-3, 1e-4),
                           predictor="interp")
    gain, at_psnr = max_cr_gain(points)
    assert np.isfinite(gain)
    assert at_psnr > 0


def test_rd_sweep_transform_compressor(small_field):
    results = rd_sweep("sperr", small_field, rel_bounds=(1e-2,))
    assert results[0].cr > 1


def test_format_table():
    rows = [{"a": 1, "b": 2.5}, {"a": 30, "b": 0.00012}]
    text = format_table(rows, title="T")
    assert "T" in text and "a" in text and "30" in text
    assert format_table([]).startswith("(empty)")
