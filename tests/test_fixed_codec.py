"""Tests for the fixed-width integer codec."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.codecs.fixed import decode_fixed, encode_fixed


def test_empty():
    assert decode_fixed(encode_fixed(np.empty(0, dtype=np.int64))).size == 0


def test_zeros():
    v = np.zeros(17, dtype=np.int64)
    assert np.array_equal(decode_fixed(encode_fixed(v)), v)


def test_single():
    assert decode_fixed(encode_fixed(np.array([123456789]))).tolist() == [123456789]


def test_width_is_minimal():
    small = encode_fixed(np.array([1, 0, 1]))
    large = encode_fixed(np.array([255, 0, 1]))
    assert len(small) < len(large)


def test_bad_magic():
    with pytest.raises(ValueError):
        decode_fixed(b"nope" + b"\x00" * 9)


def test_multidim_input_flattened():
    v = np.arange(12).reshape(3, 4)
    assert np.array_equal(decode_fixed(encode_fixed(v)), v.ravel())


@given(
    hnp.arrays(
        dtype=np.uint64,
        shape=st.integers(0, 500),
        elements=st.integers(0, 2**50),
    )
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(v):
    out = decode_fixed(encode_fixed(v))
    assert np.array_equal(out.astype(np.uint64), v)
